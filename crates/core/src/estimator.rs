//! End-to-end noise-figure estimation: glue between a power-ratio
//! estimate and the Y-factor equations.

use crate::figure::{NoiseFactor, NoiseFigure};
use crate::power_ratio::{OneBitPowerRatio, OneBitRatioEstimate};
use crate::yfactor;
use crate::CoreError;
use nfbist_analog::bitstream::Bitstream;

/// A complete noise-figure measurement result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfMeasurement {
    /// The measured Y factor (hot/cold noise power ratio).
    pub y: f64,
    /// The derived noise factor.
    pub factor: NoiseFactor,
    /// The derived noise figure.
    pub figure: NoiseFigure,
}

impl NfMeasurement {
    /// Derives a measurement from a Y factor and the source
    /// temperatures (eq. 8).
    ///
    /// # Errors
    ///
    /// Propagates [`yfactor::noise_factor_from_temperatures`] errors.
    pub fn from_y(y: f64, hot_kelvin: f64, cold_kelvin: f64) -> Result<Self, CoreError> {
        let factor = yfactor::noise_factor_from_temperatures(y, hot_kelvin, cold_kelvin)?;
        Ok(NfMeasurement {
            y,
            factor,
            figure: factor.to_figure(),
        })
    }
}

impl std::fmt::Display for NfMeasurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Y={:.4} F={:.3} NF={:.2} dB",
            self.y,
            self.factor.value(),
            self.figure.db()
        )
    }
}

/// The full BIST estimator: 1-bit power ratio + Y-factor equation.
///
/// # Examples
///
/// ```
/// use nfbist_core::estimator::OneBitNfEstimator;
/// use nfbist_core::power_ratio::OneBitPowerRatio;
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let ratio = OneBitPowerRatio::new(20_000.0, 2_048, 3_000.0, (100.0, 1_500.0))?;
/// let est = OneBitNfEstimator::new(ratio, 2_900.0, 290.0)?;
/// assert_eq!(est.hot_kelvin(), 2_900.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OneBitNfEstimator {
    ratio: OneBitPowerRatio,
    hot_kelvin: f64,
    cold_kelvin: f64,
}

impl OneBitNfEstimator {
    /// Combines a ratio estimator with declared source temperatures.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `hot > cold ≥ 0`.
    pub fn new(
        ratio: OneBitPowerRatio,
        hot_kelvin: f64,
        cold_kelvin: f64,
    ) -> Result<Self, CoreError> {
        if !(hot_kelvin > cold_kelvin) || !(cold_kelvin >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "temperatures",
                reason: "requires hot > cold >= 0",
            });
        }
        Ok(OneBitNfEstimator {
            ratio,
            hot_kelvin,
            cold_kelvin,
        })
    }

    /// Declared hot temperature in kelvin.
    pub fn hot_kelvin(&self) -> f64 {
        self.hot_kelvin
    }

    /// Declared cold temperature in kelvin.
    pub fn cold_kelvin(&self) -> f64 {
        self.cold_kelvin
    }

    /// The underlying power-ratio estimator.
    pub fn ratio_estimator(&self) -> &OneBitPowerRatio {
        &self.ratio
    }

    /// Estimates the noise figure from hot/cold bitstreams, returning
    /// both the measurement and the ratio-level intermediates.
    ///
    /// # Errors
    ///
    /// Propagates ratio-estimation and Y-factor errors.
    pub fn estimate(
        &self,
        hot: &Bitstream,
        cold: &Bitstream,
    ) -> Result<(NfMeasurement, OneBitRatioEstimate), CoreError> {
        let ratio = self.ratio.estimate_bits(hot, cold)?;
        let nf = NfMeasurement::from_y(ratio.ratio, self.hot_kelvin, self.cold_kelvin)?;
        Ok((nf, ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::converter::OneBitDigitizer;
    use nfbist_analog::noise::WhiteNoise;
    use nfbist_analog::source::{SquareSource, Waveform};

    #[test]
    fn measurement_from_y() {
        let m = NfMeasurement::from_y(3.4866, 10_000.0, 1_000.0).unwrap();
        assert!((m.factor.value() - 10.03).abs() < 0.01);
        assert!((m.figure.db() - 10.01).abs() < 0.01);
        assert!(m.to_string().contains("NF=10.01 dB"));
    }

    #[test]
    fn estimator_validation() {
        let ratio = OneBitPowerRatio::new(20_000.0, 1024, 3_000.0, (100.0, 1_500.0)).unwrap();
        assert!(OneBitNfEstimator::new(ratio.clone(), 290.0, 290.0).is_err());
        assert!(OneBitNfEstimator::new(ratio.clone(), 290.0, -1.0).is_err());
        assert!(OneBitNfEstimator::new(ratio, 2_900.0, 290.0).is_ok());
    }

    #[test]
    fn end_to_end_known_dut() {
        // Synthesize the Table 2 scenario directly: a DUT with F = 10
        // observed with Th = 10000 K, Tc = 1000 K. The expected Y is
        // (10000 + 2610)/(1000 + 2610) ≈ 3.4876.
        let fs = 20_000.0;
        let n = 1 << 19;
        let f_true = NoiseFactor::new(10.0).unwrap();
        let y_true = crate::yfactor::expected_y(f_true, 10_000.0, 1_000.0).unwrap();

        // Hot/cold records whose powers stand in the exact ratio.
        let sigma_cold = 0.5;
        let sigma_hot = sigma_cold * y_true.sqrt();
        let hot = WhiteNoise::new(sigma_hot, 31).unwrap().generate(n);
        let cold = WhiteNoise::new(sigma_cold, 32).unwrap().generate(n);
        let reference = SquareSource::new(3_000.0, 0.2 * sigma_cold)
            .unwrap()
            .generate(n, fs)
            .unwrap();
        let d = OneBitDigitizer::ideal();
        let bh = d.digitize(&hot, &reference).unwrap();
        let bc = d.digitize(&cold, &reference).unwrap();

        let ratio = OneBitPowerRatio::new(fs, 2_000, 3_000.0, (100.0, 1_500.0)).unwrap();
        let est = OneBitNfEstimator::new(ratio, 10_000.0, 1_000.0).unwrap();
        let (nf, inter) = est.estimate(&bh, &bc).unwrap();

        // Paper Table 2 1-bit row: NF 9.85 dB vs true 10 dB. Allow
        // ±1 dB here (shorter record than the paper's would allow).
        assert!(
            (nf.figure.db() - 10.0).abs() < 1.0,
            "NF {} (Y {})",
            nf.figure.db(),
            nf.y
        );
        assert!(inter.ratio > 1.0);
    }
}
