//! Uncertainty analysis for the Y-factor BIST.
//!
//! Paper §4.2 cites the companion analysis (\[6\], ETS'04): "even large
//! errors like 5 % in the hot temperature can still provide useful
//! measurements … if an error of ±0.3 dB is acceptable (for noise
//! figures of 3 dB and 10 dB)". This module reproduces that propagation
//! analytically, plus the finite-record variance of the power-ratio
//! estimate.

use crate::figure::NoiseFactor;
use crate::yfactor;
use crate::CoreError;

/// NF error (dB) caused by a fractional hot-temperature calibration
/// error: the source actually emits `Th·(1+δ)` but the Y-factor
/// computation believes `Th`.
///
/// Returns `NF_reported − NF_true` in dB.
///
/// # Errors
///
/// Propagates Y-factor equation errors for non-physical inputs.
///
/// # Examples
///
/// ```
/// use nfbist_core::figure::NoiseFigure;
/// use nfbist_core::uncertainty::nf_error_from_hot_uncertainty;
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// // The paper's guideline: 5 % hot error keeps |ΔNF| within 0.3 dB
/// // for NF of 3 and 10 dB.
/// for nf_db in [3.0, 10.0] {
///     let f = NoiseFigure::from_db(nf_db)?.to_factor();
///     let err = nf_error_from_hot_uncertainty(f, 2_900.0, 290.0, 0.05)?;
///     assert!(err.abs() <= 0.3, "NF {nf_db}: error {err}");
/// }
/// # Ok(())
/// # }
/// ```
pub fn nf_error_from_hot_uncertainty(
    true_factor: NoiseFactor,
    hot_kelvin: f64,
    cold_kelvin: f64,
    hot_error_fraction: f64,
) -> Result<f64, CoreError> {
    if !hot_error_fraction.is_finite() || hot_error_fraction <= -1.0 {
        return Err(CoreError::InvalidParameter {
            name: "hot_error_fraction",
            reason: "must be finite and above -1",
        });
    }
    let emitted_hot = hot_kelvin * (1.0 + hot_error_fraction);
    // The physics: Y reflects the emitted temperature.
    let y_actual = yfactor::expected_y(true_factor, emitted_hot, cold_kelvin)?;
    // The computation: eq. 8 with the declared temperature.
    let reported = yfactor::noise_factor_from_temperatures(y_actual, hot_kelvin, cold_kelvin)?;
    Ok(reported.to_figure().db() - true_factor.to_figure().db())
}

/// Relative standard deviation of a noise-power estimate from `n`
/// independent Gaussian samples: `std(P̂)/P = √(2/n)`.
///
/// For band-limited noise observed at a higher sample rate, pass the
/// effective independent-sample count `≈ 2·B·T`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `n == 0`.
pub fn power_estimate_relative_std(n: usize) -> Result<f64, CoreError> {
    if n == 0 {
        return Err(CoreError::InvalidParameter {
            name: "n",
            reason: "need at least one sample",
        });
    }
    Ok((2.0 / n as f64).sqrt())
}

/// Approximate standard deviation of the NF estimate (dB) for a finite
/// acquisition: propagates the Y-ratio variance through eq. 8 by the
/// delta method.
///
/// * `true_factor` — the DUT's noise factor.
/// * `hot_kelvin`, `cold_kelvin` — source temperatures.
/// * `n_effective` — independent samples per record (`≈ 2·B·T`).
///
/// # Errors
///
/// Propagates parameter errors.
///
/// # Examples
///
/// ```
/// use nfbist_core::figure::NoiseFactor;
/// use nfbist_core::uncertainty::nf_std_from_record_length;
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let f = NoiseFactor::new(10.0)?;
/// let long = nf_std_from_record_length(f, 2_900.0, 290.0, 1_000_000)?;
/// let short = nf_std_from_record_length(f, 2_900.0, 290.0, 10_000)?;
/// assert!(long < short / 5.0); // 100× samples → 10× tighter
/// # Ok(())
/// # }
/// ```
pub fn nf_std_from_record_length(
    true_factor: NoiseFactor,
    hot_kelvin: f64,
    cold_kelvin: f64,
    n_effective: usize,
) -> Result<f64, CoreError> {
    let y = yfactor::expected_y(true_factor, hot_kelvin, cold_kelvin)?;
    // Var of ln(Y) ≈ 2/n + 2/n (hot and cold records independent).
    let rel_y = (2.0 * 2.0 / n_effective as f64).sqrt();
    // dF/dY from eq. 8: F = (a − Y·b)/(Y−1), a = Th/T0 − 1,
    // b = Tc/T0 − 1 ⇒ dF/dY = (b − a)/(Y−1)².
    let a = hot_kelvin / yfactor::T0 - 1.0;
    let b = cold_kelvin / yfactor::T0 - 1.0;
    let dfdy = (b - a) / ((y - 1.0) * (y - 1.0));
    let sigma_f = dfdy.abs() * rel_y * y;
    // Convert to dB around the true factor.
    let f = true_factor.value();
    Ok(10.0 / std::f64::consts::LN_10 * sigma_f / f)
}

/// Inverse of the standard normal CDF: the z-score below which a
/// standard normal variate falls with probability `p`.
///
/// This is the bridge from an error *budget* to a confidence
/// threshold: a sequential screen that tolerates a false-fail
/// probability α compares its running NF against
/// `limit ± normal_quantile(1 − α) · σ_NF`, with `σ_NF` from
/// [`nf_std_from_record_length`].
///
/// Uses Acklam's rational approximation (relative error < 1.2 × 10⁻⁹
/// over the whole open interval) — pure `f64` arithmetic, so the
/// result is a deterministic function of `p` on every platform, which
/// the bit-identical stopping rule depends on.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] unless `0 < p < 1`.
///
/// # Examples
///
/// ```
/// use nfbist_core::uncertainty::normal_quantile;
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// assert!(normal_quantile(0.5)?.abs() < 1e-12);
/// assert!((normal_quantile(0.975)? - 1.959_964).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn normal_quantile(p: f64) -> Result<f64, CoreError> {
    if !(p > 0.0 && p < 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "p",
            reason: "probability must lie strictly between 0 and 1",
        });
    }
    // Acklam's coefficients: central rational approximation plus two
    // tail expansions in √(−2 ln p).
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    Ok(x)
}

/// Scans the NF error over a grid of hot-temperature error fractions —
/// the data behind an uncertainty plot.
///
/// Returns `(fraction, nf_error_db)` pairs.
///
/// # Errors
///
/// Propagates per-point errors.
pub fn hot_uncertainty_sweep(
    true_factor: NoiseFactor,
    hot_kelvin: f64,
    cold_kelvin: f64,
    fractions: &[f64],
) -> Result<Vec<(f64, f64)>, CoreError> {
    fractions
        .iter()
        .map(|&frac| {
            nf_error_from_hot_uncertainty(true_factor, hot_kelvin, cold_kelvin, frac)
                .map(|e| (frac, e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::NoiseFigure;

    #[test]
    fn validation() {
        let f = NoiseFactor::new(2.0).unwrap();
        assert!(nf_error_from_hot_uncertainty(f, 2900.0, 290.0, -1.0).is_err());
        assert!(nf_error_from_hot_uncertainty(f, 2900.0, 290.0, f64::NAN).is_err());
        assert!(power_estimate_relative_std(0).is_err());
    }

    #[test]
    fn zero_error_means_zero_bias() {
        let f = NoiseFactor::new(4.2).unwrap();
        let e = nf_error_from_hot_uncertainty(f, 2900.0, 290.0, 0.0).unwrap();
        assert!(e.abs() < 1e-9);
    }

    #[test]
    fn paper_guideline_5_percent_within_0_3_db() {
        // The claim the paper imports from [6].
        for nf_db in [3.0, 10.0] {
            let f = NoiseFigure::from_db(nf_db).unwrap().to_factor();
            for frac in [-0.05, 0.05] {
                let e = nf_error_from_hot_uncertainty(f, 2900.0, 290.0, frac).unwrap();
                assert!(e.abs() <= 0.3, "NF {nf_db} frac {frac}: {e}");
            }
        }
    }

    #[test]
    fn error_sign_is_opposite_to_hot_error_sign() {
        // The source emits hotter than declared → the measured Y rises
        // → eq. 8 (using the declared Th) attributes the extra power to
        // a quieter DUT → the reported NF is *lower* than the truth.
        let f = NoiseFactor::new(2.0).unwrap();
        let over = nf_error_from_hot_uncertainty(f, 2900.0, 290.0, 0.05).unwrap();
        let under = nf_error_from_hot_uncertainty(f, 2900.0, 290.0, -0.05).unwrap();
        assert!(over < 0.0, "over {over}");
        assert!(under > 0.0, "under {under}");
    }

    #[test]
    fn quieter_duts_are_more_sensitive_to_source_error() {
        // With a fixed ENR, a low-NF DUT leaves less margin: the same
        // 5 % source error moves its NF estimate more in dB? Verify
        // monotonic behaviour numerically rather than asserting a
        // direction by intuition.
        let f3 = NoiseFigure::from_db(3.0).unwrap().to_factor();
        let f10 = NoiseFigure::from_db(10.0).unwrap().to_factor();
        let e3 = nf_error_from_hot_uncertainty(f3, 2900.0, 290.0, 0.05)
            .unwrap()
            .abs();
        let e10 = nf_error_from_hot_uncertainty(f10, 2900.0, 290.0, 0.05)
            .unwrap()
            .abs();
        // Both are within the paper's envelope and nonzero.
        assert!(e3 > 0.0 && e10 > 0.0);
        assert!(e3 <= 0.3 && e10 <= 0.3);
    }

    #[test]
    fn power_estimate_scaling() {
        let a = power_estimate_relative_std(100).unwrap();
        let b = power_estimate_relative_std(10_000).unwrap();
        assert!((a / b - 10.0).abs() < 1e-9);
    }

    #[test]
    fn record_length_variance_reasonable_scale() {
        // 10⁶ samples over a 1 kHz band at 20 kHz sampling →
        // n_eff = 2·B·T = 2·1000·50 = 10⁵.
        let f = NoiseFigure::from_db(10.0).unwrap().to_factor();
        let s = nf_std_from_record_length(f, 2900.0, 290.0, 100_000).unwrap();
        assert!(s > 0.001 && s < 0.5, "σ_NF {s} dB");
    }

    #[test]
    fn normal_quantile_known_values_and_symmetry() {
        // Exact center, classic two-sided z-scores, and a deep tail.
        assert!(normal_quantile(0.5).unwrap().abs() < 1e-12);
        for (p, z) in [
            (0.975, 1.959_963_985),
            (0.95, 1.644_853_627),
            (0.84134, 0.999_981_468), // Φ(1) to 5 decimals
            (0.999, 3.090_232_306),
            (1e-6, -4.753_424_309),
        ] {
            let q = normal_quantile(p).unwrap();
            assert!((q - z).abs() < 1e-4, "Φ⁻¹({p}) = {q}, expected ≈{z}");
        }
        // Antisymmetry about the median, on both branch pairs.
        for p in [0.6, 0.9, 0.99, 0.999_9] {
            let hi = normal_quantile(p).unwrap();
            let lo = normal_quantile(1.0 - p).unwrap();
            assert!((hi + lo).abs() < 1e-9, "Φ⁻¹ must be antisymmetric at {p}");
        }
        // Strictly monotone across the branch joins.
        let grid = [0.001, 0.02, 0.024, 0.025, 0.5, 0.975, 0.976, 0.999];
        for w in grid.windows(2) {
            assert!(normal_quantile(w[0]).unwrap() < normal_quantile(w[1]).unwrap());
        }
    }

    #[test]
    fn normal_quantile_rejects_out_of_domain_probabilities() {
        for p in [0.0, 1.0, -0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(normal_quantile(p).is_err(), "p = {p} must be rejected");
        }
    }

    #[test]
    fn stop_rule_inputs_degenerate_gracefully() {
        // The sequential screen's stop rule consumes these functions;
        // its Continue-on-uncertainty contract relies on the edge
        // behaviour pinned here.
        let f = NoiseFactor::new(2.0).unwrap();
        // Zero effective samples: σ must come back non-finite (the
        // screen reads that as "no information yet → Continue"), not
        // panic and not masquerade as a tight interval.
        let s = nf_std_from_record_length(f, 2900.0, 290.0, 0).unwrap();
        assert!(!s.is_finite(), "σ at n=0 must be non-finite, got {s}");
        // One effective sample: finite but enormous next to any guard
        // band a real screen uses.
        let s1 = nf_std_from_record_length(f, 2900.0, 290.0, 1).unwrap();
        assert!(s1.is_finite() && s1 > 1.0, "σ at n=1 is {s1} dB");
        // A −100 % hot error (dead source) is rejected, and a sweep
        // containing it propagates the error instead of emitting a
        // poisoned grid point.
        assert!(nf_error_from_hot_uncertainty(f, 2900.0, 290.0, -1.0).is_err());
        assert!(hot_uncertainty_sweep(f, 2900.0, 290.0, &[0.0, -1.0, 0.05]).is_err());
        assert!(hot_uncertainty_sweep(f, 2900.0, 290.0, &[f64::NAN]).is_err());
        assert!(hot_uncertainty_sweep(f, 2900.0, 290.0, &[f64::INFINITY]).is_err());
        // An empty grid is a valid (empty) sweep, not an error.
        assert_eq!(
            hot_uncertainty_sweep(f, 2900.0, 290.0, &[]).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn sweep_produces_grid() {
        let f = NoiseFactor::new(2.0).unwrap();
        let grid = [-0.05, 0.0, 0.05];
        let pts = hot_uncertainty_sweep(f, 2900.0, 290.0, &grid).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], (0.0, pts[1].1));
        assert!(pts[1].1.abs() < 1e-9);
        // Monotonically decreasing in the error fraction (see the sign
        // test above).
        assert!(pts[0].1 > pts[1].1 && pts[1].1 > pts[2].1);
    }
}
