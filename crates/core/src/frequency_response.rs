//! Frequency-response measurement through the 1-bit digitizer.
//!
//! The paper's conclusion stresses that the same BIST cell "allows one
//! to perform frequency and noise measurements" (§7, building on
//! ref. \[3\]). The mechanism mirrors the noise-figure normalization: a
//! test tone of constant input amplitude is swept across frequency; at
//! the DUT output it rides on the DUT's own noise, which acts as the
//! comparator dither. The bitstream line amplitude at each tone
//! frequency is `≈ √(2/π)·A_out(f)/σ`, and since `σ` (the broadband
//! output noise) is the same at every sweep point, the *relative*
//! response `A_out(f)/A_out(f_ref)` survives 1-bit quantization
//! exactly.

use crate::CoreError;

/// One sweep point: tone frequency and the measured bitstream line
/// **power** at that frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Tone frequency in hertz.
    pub frequency: f64,
    /// Measured line power in the bitstream PSD (any consistent unit).
    pub line_power: f64,
}

/// A relative frequency response in dB, normalized to a reference
/// point.
///
/// # Examples
///
/// ```
/// use nfbist_core::frequency_response::{relative_response, SweepPoint};
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let sweep = [
///     SweepPoint { frequency: 100.0, line_power: 4.0 },
///     SweepPoint { frequency: 1_000.0, line_power: 4.0 },
///     SweepPoint { frequency: 10_000.0, line_power: 1.0 },
/// ];
/// let resp = relative_response(&sweep, 0)?;
/// assert_eq!(resp.len(), 3);
/// assert!((resp[2].1 + 6.02).abs() < 0.01); // power ÷4 → −6 dB
/// # Ok(())
/// # }
/// ```
pub fn relative_response(
    sweep: &[SweepPoint],
    reference_index: usize,
) -> Result<Vec<(f64, f64)>, CoreError> {
    if sweep.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "sweep",
            reason: "needs at least one point",
        });
    }
    let anchor = sweep
        .get(reference_index)
        .ok_or(CoreError::InvalidParameter {
            name: "reference_index",
            reason: "out of range",
        })?;
    if !(anchor.line_power > 0.0) {
        return Err(CoreError::Degenerate {
            reason: "reference sweep point carries no line power",
        });
    }
    sweep
        .iter()
        .map(|p| {
            if !(p.line_power > 0.0) || !p.line_power.is_finite() {
                return Err(CoreError::Degenerate {
                    reason: "sweep point carries no line power",
                });
            }
            Ok((
                p.frequency,
                10.0 * (p.line_power / anchor.line_power).log10(),
            ))
        })
        .collect()
}

/// Locates the −3 dB corner of a relative response by linear
/// interpolation between the bracketing sweep points.
///
/// Assumes a lowpass-shaped response normalized near 0 dB in the
/// passband; returns `None` when the response never crosses −3 dB.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for an empty response.
pub fn corner_frequency(response: &[(f64, f64)]) -> Result<Option<f64>, CoreError> {
    if response.is_empty() {
        return Err(CoreError::InvalidParameter {
            name: "response",
            reason: "needs at least one point",
        });
    }
    const TARGET: f64 = -3.0103; // 10·log10(1/2)
    for pair in response.windows(2) {
        let (f1, g1) = pair[0];
        let (f2, g2) = pair[1];
        if (g1 - TARGET) * (g2 - TARGET) <= 0.0 && g1 != g2 {
            let t = (TARGET - g1) / (g2 - g1);
            return Ok(Some(f1 + t * (f2 - f1)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(frequency: f64, line_power: f64) -> SweepPoint {
        SweepPoint {
            frequency,
            line_power,
        }
    }

    #[test]
    fn validation() {
        assert!(relative_response(&[], 0).is_err());
        assert!(relative_response(&[point(1.0, 1.0)], 5).is_err());
        assert!(relative_response(&[point(1.0, 0.0)], 0).is_err());
        assert!(relative_response(&[point(1.0, 1.0), point(2.0, 0.0)], 0).is_err());
        assert!(corner_frequency(&[]).is_err());
    }

    #[test]
    fn reference_point_is_zero_db() {
        let resp = relative_response(&[point(100.0, 2.0), point(200.0, 8.0)], 1).unwrap();
        assert!((resp[1].1).abs() < 1e-12);
        assert!((resp[0].1 + 6.0206).abs() < 1e-3);
    }

    #[test]
    fn corner_interpolation_exact_for_linear_segment() {
        let resp = vec![(100.0, 0.0), (1_000.0, -6.0206)];
        let corner = corner_frequency(&resp).unwrap().unwrap();
        // Linear interpolation in (f, dB): −3.01 dB halfway.
        assert!((corner - 550.0).abs() < 5.0, "corner {corner}");
    }

    #[test]
    fn no_crossing_returns_none() {
        let resp = vec![(100.0, 0.0), (1_000.0, -1.0)];
        assert_eq!(corner_frequency(&resp).unwrap(), None);
    }

    #[test]
    fn one_pole_response_corner_recovered() {
        // Synthesize |H(f)|² = 1/(1+(f/fc)²) sampled log-spaced.
        let fc = 1_000.0;
        let sweep: Vec<SweepPoint> = (0..30)
            .map(|i| {
                let f = 50.0 * 10f64.powf(i as f64 / 10.0);
                point(f, 1.0 / (1.0 + (f / fc) * (f / fc)))
            })
            .collect();
        let resp = relative_response(&sweep, 0).unwrap();
        let corner = corner_frequency(&resp).unwrap().unwrap();
        assert!(
            (corner - fc).abs() / fc < 0.1,
            "recovered corner {corner} vs {fc}"
        );
    }
}
