use std::fmt;

/// Error type for noise-figure estimation.
///
/// # Examples
///
/// ```
/// use nfbist_core::yfactor;
///
/// // Y = 1 makes the Y-factor equation singular.
/// let err = yfactor::noise_factor_from_temperatures(1.0, 2900.0, 290.0).unwrap_err();
/// assert!(err.to_string().contains("y factor"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        reason: &'static str,
    },
    /// The measured data does not permit an estimate (e.g. Y ≈ 1, or a
    /// reference line buried in noise).
    Degenerate {
        /// What went wrong.
        reason: &'static str,
    },
    /// A DSP-layer operation failed.
    Dsp(nfbist_dsp::DspError),
    /// An analog-layer operation failed.
    Analog(nfbist_analog::AnalogError),
}

impl CoreError {
    /// `true` when the error means the *measured data* could not yield
    /// a physical estimate — a degenerate measurement (Y ≤ 1, a
    /// reference line buried in noise) or a noise-factor estimate
    /// below the physical limit beyond tolerance
    /// ([`crate::figure::NoiseFactor::from_estimate`]).
    ///
    /// Production screening uses this to classify a DUT as a gross
    /// reject instead of aborting: an unmeasurable part is a verdict,
    /// not a tester failure. Configuration errors return `false`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_core::yfactor;
    ///
    /// let err = yfactor::noise_factor_from_temperatures(0.9, 2_900.0, 290.0).unwrap_err();
    /// assert!(err.indicates_unmeasurable_estimate());
    /// let err = yfactor::noise_factor_from_temperatures(3.0, 290.0, 2_900.0).unwrap_err();
    /// assert!(!err.indicates_unmeasurable_estimate(), "a config error is not a verdict");
    /// ```
    pub fn indicates_unmeasurable_estimate(&self) -> bool {
        matches!(
            self,
            CoreError::Degenerate { .. }
                | CoreError::InvalidParameter {
                    name: "noise_factor",
                    ..
                }
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            CoreError::Degenerate { reason } => write!(f, "degenerate measurement: {reason}"),
            CoreError::Dsp(e) => write!(f, "dsp error: {e}"),
            CoreError::Analog(e) => write!(f, "analog error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dsp(e) => Some(e),
            CoreError::Analog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nfbist_dsp::DspError> for CoreError {
    fn from(e: nfbist_dsp::DspError) -> Self {
        CoreError::Dsp(e)
    }
}

impl From<nfbist_analog::AnalogError> for CoreError {
    fn from(e: nfbist_analog::AnalogError) -> Self {
        CoreError::Analog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::Degenerate {
            reason: "y factor too close to unity",
        };
        assert!(e.to_string().contains("degenerate"));
        assert!(e.source().is_none());

        let e = CoreError::from(nfbist_dsp::DspError::EmptyInput { context: "x" });
        assert!(e.source().is_some());
        let e = CoreError::from(nfbist_analog::AnalogError::EmptyInput { context: "x" });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn unmeasurable_classification_is_pinned_to_its_producers() {
        // The two ways measured data fails to yield a physical
        // estimate; screening relies on both classifying as
        // unmeasurable, so this test pins them to the actual
        // producers.
        let degenerate =
            crate::yfactor::noise_factor_from_temperatures(1.0, 2_900.0, 290.0).unwrap_err();
        assert!(degenerate.indicates_unmeasurable_estimate());
        let below_limit = crate::figure::NoiseFactor::from_estimate(0.5, 0.01).unwrap_err();
        assert!(below_limit.indicates_unmeasurable_estimate());
        // Configuration mistakes are not verdicts.
        let config =
            crate::yfactor::noise_factor_from_temperatures(3.0, 290.0, 2_900.0).unwrap_err();
        assert!(!config.indicates_unmeasurable_estimate());
        assert!(
            !CoreError::from(nfbist_dsp::DspError::EmptyInput { context: "x" })
                .indicates_unmeasurable_estimate()
        );
    }
}
