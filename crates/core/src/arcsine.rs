//! The arcsine law (paper eq. 12): the statistics a hard limiter
//! preserves.
//!
//! For a zero-mean stationary Gaussian process `x`, the normalized
//! autocorrelation of its sign `y = sgn(x)` is
//!
//! `ρy(τ) = (2/π)·asin(ρx(τ))`
//!
//! which is nearly linear for small `ρx` — this is why the spectral
//! *shape* of the DUT noise survives the 1-bit digitizer, and why a
//! small deterministic reference reappears at the output scaled by
//! `√(2/π)·(A/σ)`.

use crate::CoreError;

/// The linearized small-signal gain of the hard limiter, `2/π`.
///
/// A correlation (or a small reference amplitude relative to the noise
/// σ) passes through the limiter scaled by this factor to first order.
pub const SMALL_SIGNAL_GAIN: f64 = 2.0 / std::f64::consts::PI;

/// Applies the arcsine law to one normalized correlation value.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `|rho| > 1`.
///
/// # Examples
///
/// ```
/// use nfbist_core::arcsine::{arcsine_law, SMALL_SIGNAL_GAIN};
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// assert_eq!(arcsine_law(0.0)?, 0.0);
/// assert!((arcsine_law(1.0)? - 1.0).abs() < 1e-12);
/// // Near zero it is linear with slope 2/π.
/// let rho = 0.01;
/// assert!((arcsine_law(rho)? - SMALL_SIGNAL_GAIN * rho).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn arcsine_law(rho: f64) -> Result<f64, CoreError> {
    if !(-1.0..=1.0).contains(&rho) || !rho.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "rho",
            reason: "normalized correlation must be in [-1, 1]",
        });
    }
    Ok(SMALL_SIGNAL_GAIN * rho.asin())
}

/// Inverts the arcsine law: recovers the input correlation from the
/// measured output correlation.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for `|rho_out| > 1`.
pub fn arcsine_law_inverse(rho_out: f64) -> Result<f64, CoreError> {
    if !(-1.0..=1.0).contains(&rho_out) || !rho_out.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "rho_out",
            reason: "normalized correlation must be in [-1, 1]",
        });
    }
    // y = (2/π)·asin(x)  ⇒  x = sin(π·y/2).
    Ok((rho_out * std::f64::consts::FRAC_PI_2)
        .sin()
        .clamp(-1.0, 1.0))
}

/// Applies the arcsine law to a whole normalized autocorrelation
/// sequence (lag 0 must be 1).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if any lag is outside
/// `[-1, 1]`.
pub fn apply_to_sequence(rho: &[f64]) -> Result<Vec<f64>, CoreError> {
    rho.iter().map(|&r| arcsine_law(r)).collect()
}

/// Corrects a measured 1-bit autocorrelation sequence back to the
/// underlying Gaussian correlation (the inverse mapping, applied
/// lag-wise).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if any lag is outside
/// `[-1, 1]`.
pub fn invert_sequence(rho_out: &[f64]) -> Result<Vec<f64>, CoreError> {
    rho_out.iter().map(|&r| arcsine_law_inverse(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(arcsine_law(1.1).is_err());
        assert!(arcsine_law(-1.1).is_err());
        assert!(arcsine_law(f64::NAN).is_err());
        assert!(arcsine_law_inverse(2.0).is_err());
    }

    #[test]
    fn fixed_points() {
        assert_eq!(arcsine_law(0.0).unwrap(), 0.0);
        assert!((arcsine_law(1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((arcsine_law(-1.0).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        for rho in [-0.99, -0.5, -0.1, 0.0, 0.3, 0.77, 1.0] {
            let out = arcsine_law(rho).unwrap();
            let back = arcsine_law_inverse(out).unwrap();
            assert!((back - rho).abs() < 1e-9, "rho {rho}: back {back}");
        }
    }

    #[test]
    fn compressive_nonlinearity() {
        // |output| ≤ |input| is false — the arcsine *expands* large
        // correlations toward ±1 more slowly than linear; check
        // monotonicity and the known midpoint instead.
        let half = arcsine_law(0.5).unwrap();
        assert!((half - 2.0 / std::f64::consts::PI * (0.5f64).asin()).abs() < 1e-15);
        let mut prev = -1.0;
        for i in 0..=20 {
            let rho = -1.0 + i as f64 * 0.1;
            let v = arcsine_law(rho).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn sequence_helpers() {
        let rho = [1.0, 0.5, 0.1, 0.0];
        let out = apply_to_sequence(&rho).unwrap();
        assert_eq!(out.len(), 4);
        assert!((out[0] - 1.0).abs() < 1e-12);
        let back = invert_sequence(&out).unwrap();
        for (a, b) in rho.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(apply_to_sequence(&[2.0]).is_err());
        assert!(invert_sequence(&[-3.0]).is_err());
    }

    #[test]
    fn small_signal_gain_value() {
        assert!((SMALL_SIGNAL_GAIN - 0.637).abs() < 1e-3);
    }
}
