//! # nfbist-core — noise figure evaluation using a low-cost 1-bit BIST
//!
//! This crate is the reproduction of the primary contribution of
//! Negreiros, Carro & Susin, *"Noise Figure Evaluation Using Low Cost
//! BIST"* (DATE 2005): estimating the noise figure of an analog circuit
//! from the bitstream of a single voltage comparator, using a reference
//! waveform for power normalization and the Y-factor method for the NF
//! computation.
//!
//! * [`figure`] — [`figure::NoiseFactor`] / [`figure::NoiseFigure`]
//!   types and the Table 1 reference points.
//! * [`yfactor`] — equations 5–9: Y from hot/cold powers, F from Y.
//! * [`direct`] — the direct method (eq. 4) and its gain-error
//!   sensitivity (eq. 10), the weakness that motivates the Y-factor
//!   BIST.
//! * [`arcsine`] — the arcsine law (eq. 12) governing the 1-bit
//!   digitizer, with its linearized small-signal gain.
//! * [`power_ratio`] — the three power-ratio estimators of Table 2
//!   (time-domain mean-square, PSD ratio, and the 1-bit PSD ratio with
//!   reference normalization and exclusion), unified behind the
//!   object-safe [`power_ratio::PowerRatioEstimator`] trait with the
//!   common [`power_ratio::RatioEstimate`] report.
//! * [`normalize`] — the reference-line tracking and spectrum
//!   normalization procedure of §5.2.
//! * [`estimator`] — end-to-end helpers gluing a power-ratio estimate to
//!   a noise-figure number.
//! * [`uncertainty`] — error propagation: hot-temperature calibration
//!   error → NF error (the ±0.3 dB guideline), and record-length →
//!   estimator variance.
//!
//! ## Example: the full 1-bit Y-factor estimate
//!
//! ```
//! use nfbist_analog::converter::OneBitDigitizer;
//! use nfbist_analog::noise::WhiteNoise;
//! use nfbist_analog::source::{SquareSource, Waveform};
//! use nfbist_core::power_ratio::OneBitPowerRatio;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fs = 20_000.0;
//! let n = 1 << 18;
//!
//! // Hot and cold noise, 2:1 power ratio, reference at 3 kHz.
//! let hot = WhiteNoise::new(1.0, 1)?.generate(n);
//! let cold = WhiteNoise::new(1.0 / 2f64.sqrt(), 2)?.generate(n);
//! let reference = SquareSource::new(3_000.0, 0.2)?.generate(n, fs)?;
//!
//! let digitizer = OneBitDigitizer::ideal();
//! let bits_hot = digitizer.digitize(&hot, &reference)?;
//! let bits_cold = digitizer.digitize(&cold, &reference)?;
//!
//! let estimator = OneBitPowerRatio::new(fs, 4096, 3_000.0, (100.0, 1_500.0))?;
//! let estimate = estimator.estimate_bits(&bits_hot, &bits_cold)?;
//! assert!((estimate.ratio - 2.0).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arcsine;
pub mod direct;
pub mod estimator;
pub mod figure;
pub mod frequency_response;
pub mod normalize;
pub mod power_ratio;
pub mod snr;
pub mod streaming;
pub mod uncertainty;
pub mod yfactor;

mod error;

pub use error::CoreError;
