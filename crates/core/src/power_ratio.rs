//! The three noise-power-ratio estimators of the paper's Table 2:
//! time-domain mean-square, PSD band-power ratio, and the 1-bit PSD
//! ratio with reference normalization and exclusion — unified behind
//! the object-safe [`PowerRatioEstimator`] trait so measurement
//! sessions can swap them axis-by-axis.

use crate::normalize::{normalize_to_reference, Normalization, ReferenceTracker};
use crate::CoreError;
use nfbist_analog::bitstream::Bitstream;
use nfbist_dsp::psd::{DspWorkspace, WelchConfig};
use nfbist_dsp::spectrum::Spectrum;
use nfbist_dsp::window::Window;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// The workspace an estimate runs against: the estimator's cached one
/// when it is free, or a fresh throwaway under contention.
enum WorkspaceHandle<'a> {
    Cached(MutexGuard<'a, DspWorkspace>),
    Fresh(DspWorkspace),
}

impl Deref for WorkspaceHandle<'_> {
    type Target = DspWorkspace;
    fn deref(&self) -> &DspWorkspace {
        match self {
            WorkspaceHandle::Cached(guard) => guard,
            WorkspaceHandle::Fresh(ws) => ws,
        }
    }
}

impl DerefMut for WorkspaceHandle<'_> {
    fn deref_mut(&mut self) -> &mut DspWorkspace {
        match self {
            WorkspaceHandle::Cached(guard) => guard,
            WorkspaceHandle::Fresh(ws) => ws,
        }
    }
}

/// Grabs the estimator's cached [`DspWorkspace`] without blocking.
/// Under contention — several worker threads driving the *same*
/// estimator instance — the call falls back to a fresh local
/// workspace, so parallel fan-outs never serialize on the cache; the
/// contended call merely forfeits the steady-state allocation win
/// (results are bit-identical either way — the workspace holds only
/// plans and scratch, never data). A poisoned lock is recovered for
/// the same reason.
fn workspace_handle(ws: &Mutex<DspWorkspace>) -> WorkspaceHandle<'_> {
    match ws.try_lock() {
        Ok(guard) => WorkspaceHandle::Cached(guard),
        Err(TryLockError::Poisoned(poisoned)) => WorkspaceHandle::Cached(poisoned.into_inner()),
        Err(TryLockError::WouldBlock) => WorkspaceHandle::Fresh(DspWorkspace::new()),
    }
}

/// Estimator-specific intermediate results carried by a
/// [`RatioEstimate`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum RatioDetail {
    /// Time-domain mean-square ratio: no intermediates beyond the
    /// powers.
    MeanSquare,
    /// PSD band-power ratio: the analysis configuration.
    Psd {
        /// Welch segment length used.
        nfft: usize,
        /// Integrated band in hertz.
        band: (f64, f64),
    },
    /// 1-bit estimator: full normalization bookkeeping and spectra.
    OneBit(Box<OneBitRatioEstimate>),
}

/// The uniform result every [`PowerRatioEstimator`] returns: the Y
/// ratio, the band powers it was formed from, and estimator-specific
/// intermediates for reporting.
#[derive(Debug, Clone)]
pub struct RatioEstimate {
    /// The estimated hot/cold noise power ratio (the Y factor).
    pub ratio: f64,
    /// Hot-record noise power entering the ratio.
    pub hot_power: f64,
    /// Cold-record noise power entering the ratio (before any
    /// normalization).
    pub cold_power: f64,
    /// Estimator-specific intermediates.
    pub detail: RatioDetail,
}

impl RatioEstimate {
    /// The 1-bit intermediates (spectra, reference lines,
    /// normalization), when this estimate came from the 1-bit
    /// estimator.
    pub fn one_bit(&self) -> Option<&OneBitRatioEstimate> {
        match &self.detail {
            RatioDetail::OneBit(e) => Some(e),
            _ => None,
        }
    }
}

/// A hot/cold noise-power-ratio estimator (one row of the paper's
/// Table 2), object-safe so a measurement session can hold any of
/// them.
///
/// Inputs are expanded sample buffers: `±1` samples for a digitized
/// bitstream (see `Record::to_samples` in `nfbist-analog`), plain
/// voltages for an ADC record.
///
/// # Examples
///
/// ```
/// use nfbist_core::power_ratio::{MeanSquareEstimator, PowerRatioEstimator};
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let est: Box<dyn PowerRatioEstimator> = Box::new(MeanSquareEstimator);
/// let r = est.estimate(&[2.0, -2.0], &[1.0, -1.0])?;
/// assert!((r.ratio - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub trait PowerRatioEstimator: Send + Sync {
    /// Human-readable description for reports.
    fn label(&self) -> String;

    /// Estimates the hot/cold noise power ratio from two records.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Degenerate`] when a usable ratio cannot be
    /// formed and propagates analysis errors.
    fn estimate(&self, hot: &[f64], cold: &[f64]) -> Result<RatioEstimate, CoreError>;

    /// The streaming view of this estimator, when it has one.
    ///
    /// All three Table 2 estimators support chunked, bounded-memory
    /// estimation through
    /// [`crate::streaming::StreamingPowerRatioEstimator`]; a custom
    /// estimator that does not override this simply reports `None` and
    /// measurement sessions keep using the batch path for it.
    fn streaming(&self) -> Option<&dyn crate::streaming::StreamingPowerRatioEstimator> {
        None
    }

    /// The windowed (retiring) view of this estimator, when it has
    /// one — the continuous-monitoring analogue of
    /// [`PowerRatioEstimator::streaming`].
    ///
    /// All three Table 2 estimators support sliding and forgetting
    /// windows through
    /// [`crate::streaming::WindowedPowerRatioEstimator`]; a custom
    /// estimator that does not override this reports `None` and the
    /// monitor layer refuses to run it.
    fn windowed(&self) -> Option<&dyn crate::streaming::WindowedPowerRatioEstimator> {
        None
    }
}

impl<E: PowerRatioEstimator + ?Sized> PowerRatioEstimator for Box<E> {
    fn label(&self) -> String {
        (**self).label()
    }

    fn estimate(&self, hot: &[f64], cold: &[f64]) -> Result<RatioEstimate, CoreError> {
        (**self).estimate(hot, cold)
    }

    fn streaming(&self) -> Option<&dyn crate::streaming::StreamingPowerRatioEstimator> {
        (**self).streaming()
    }

    fn windowed(&self) -> Option<&dyn crate::streaming::WindowedPowerRatioEstimator> {
        (**self).windowed()
    }
}

/// Table 2 row 1 as a [`PowerRatioEstimator`]: the ratio of
/// time-domain mean squares (see [`mean_square_ratio`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanSquareEstimator;

impl PowerRatioEstimator for MeanSquareEstimator {
    fn label(&self) -> String {
        "time-domain mean-square ratio".to_string()
    }

    fn streaming(&self) -> Option<&dyn crate::streaming::StreamingPowerRatioEstimator> {
        Some(self)
    }

    fn windowed(&self) -> Option<&dyn crate::streaming::WindowedPowerRatioEstimator> {
        Some(self)
    }

    fn estimate(&self, hot: &[f64], cold: &[f64]) -> Result<RatioEstimate, CoreError> {
        let hot_power = nfbist_dsp::stats::mean_square(hot)?;
        let cold_power = nfbist_dsp::stats::mean_square(cold)?;
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold record carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::MeanSquare,
        })
    }
}

/// Table 2 row 2 as a [`PowerRatioEstimator`]: the ratio of Welch PSD
/// band powers (see [`psd_ratio`]).
///
/// Holds a [`DspWorkspace`] behind a mutex so the FFT plan and Welch
/// scratch buffers are built once and reused across every hot/cold
/// estimate (cloning starts a fresh, empty workspace).
#[derive(Debug)]
pub struct PsdRatioEstimator {
    sample_rate: f64,
    nfft: usize,
    band: (f64, f64),
    workspace: Mutex<DspWorkspace>,
}

impl Clone for PsdRatioEstimator {
    fn clone(&self) -> Self {
        PsdRatioEstimator {
            sample_rate: self.sample_rate,
            nfft: self.nfft,
            band: self.band,
            workspace: Mutex::new(DspWorkspace::new()),
        }
    }
}

impl PartialEq for PsdRatioEstimator {
    /// Configuration equality; the cached workspace is not part of the
    /// estimator's identity.
    fn eq(&self, other: &Self) -> bool {
        self.sample_rate == other.sample_rate && self.nfft == other.nfft && self.band == other.band
    }
}

impl PsdRatioEstimator {
    /// Creates the estimator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-positive
    /// sample rate, a zero FFT size, or an empty/inverted band.
    pub fn new(sample_rate: f64, nfft: usize, band: (f64, f64)) -> Result<Self, CoreError> {
        if !(sample_rate > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if nfft == 0 {
            return Err(CoreError::InvalidParameter {
                name: "nfft",
                reason: "must be nonzero",
            });
        }
        if !(band.0 >= 0.0 && band.1 > band.0) {
            return Err(CoreError::InvalidParameter {
                name: "band",
                reason: "requires 0 <= f_lo < f_hi",
            });
        }
        Ok(PsdRatioEstimator {
            sample_rate,
            nfft,
            band,
            workspace: Mutex::new(DspWorkspace::new()),
        })
    }

    /// The integrated band.
    pub fn band(&self) -> (f64, f64) {
        self.band
    }

    /// The Welch segment / FFT length.
    pub fn nfft(&self) -> usize {
        self.nfft
    }

    /// The sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }
}

impl PowerRatioEstimator for PsdRatioEstimator {
    fn label(&self) -> String {
        format!(
            "PSD band-power ratio ({:.0}–{:.0} Hz, nfft {})",
            self.band.0, self.band.1, self.nfft
        )
    }

    fn streaming(&self) -> Option<&dyn crate::streaming::StreamingPowerRatioEstimator> {
        Some(self)
    }

    fn windowed(&self) -> Option<&dyn crate::streaming::WindowedPowerRatioEstimator> {
        Some(self)
    }

    fn estimate(&self, hot: &[f64], cold: &[f64]) -> Result<RatioEstimate, CoreError> {
        let welch = WelchConfig::new(self.nfft)?;
        let mut ws = workspace_handle(&self.workspace);
        let psd_hot = welch.estimate_with(hot, self.sample_rate, &mut ws)?;
        let psd_cold = welch.estimate_with(cold, self.sample_rate, &mut ws)?;
        let hot_power = psd_hot.band_power(self.band.0, self.band.1)?;
        let cold_power = psd_cold.band_power(self.band.0, self.band.1)?;
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold band carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::Psd {
                nfft: self.nfft,
                band: self.band,
            },
        })
    }
}

impl PowerRatioEstimator for OneBitPowerRatio {
    fn label(&self) -> String {
        "1-bit reference-normalized PSD ratio".to_string()
    }

    fn streaming(&self) -> Option<&dyn crate::streaming::StreamingPowerRatioEstimator> {
        Some(self)
    }

    fn windowed(&self) -> Option<&dyn crate::streaming::WindowedPowerRatioEstimator> {
        Some(self)
    }

    fn estimate(&self, hot: &[f64], cold: &[f64]) -> Result<RatioEstimate, CoreError> {
        let est = self.estimate_samples(hot, cold)?;
        Ok(RatioEstimate {
            ratio: est.ratio,
            hot_power: est.hot_noise_power,
            cold_power: est.cold_noise_power,
            detail: RatioDetail::OneBit(Box::new(est)),
        })
    }
}

/// Time-domain estimator: the ratio of mean-square values
/// (Table 2 row 1).
///
/// # Errors
///
/// Returns [`CoreError::Dsp`] for empty inputs and
/// [`CoreError::Degenerate`] when the cold record carries no power.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let hot = [2.0, -2.0, 2.0, -2.0];
/// let cold = [1.0, -1.0, 1.0, -1.0];
/// let y = nfbist_core::power_ratio::mean_square_ratio(&hot, &cold)?;
/// assert!((y - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn mean_square_ratio(hot: &[f64], cold: &[f64]) -> Result<f64, CoreError> {
    let ph = nfbist_dsp::stats::mean_square(hot)?;
    let pc = nfbist_dsp::stats::mean_square(cold)?;
    if !(pc > 0.0) {
        return Err(CoreError::Degenerate {
            reason: "cold record carries no power",
        });
    }
    Ok(ph / pc)
}

/// Spectral estimator: the ratio of PSD band powers (Table 2 row 2).
///
/// Integrates each record's Welch PSD over `band` and takes the ratio.
///
/// # Errors
///
/// Propagates PSD and band errors; returns [`CoreError::Degenerate`]
/// for a powerless cold band.
pub fn psd_ratio(
    hot: &[f64],
    cold: &[f64],
    sample_rate: f64,
    nfft: usize,
    band: (f64, f64),
) -> Result<f64, CoreError> {
    let welch = WelchConfig::new(nfft)?;
    let psd_hot = welch.estimate(hot, sample_rate)?;
    let psd_cold = welch.estimate(cold, sample_rate)?;
    let ph = psd_hot.band_power(band.0, band.1)?;
    let pc = psd_cold.band_power(band.0, band.1)?;
    if !(pc > 0.0) {
        return Err(CoreError::Degenerate {
            reason: "cold band carries no power",
        });
    }
    Ok(ph / pc)
}

/// Result of a 1-bit power-ratio estimate, exposing the intermediate
/// quantities (C-INTERMEDIATE): the spectra, the reference lines and
/// the normalization.
#[derive(Debug, Clone)]
pub struct OneBitRatioEstimate {
    /// The estimated hot/cold noise power ratio (the Y factor).
    pub ratio: f64,
    /// In-band noise power of the hot bitstream (reference excluded).
    pub hot_noise_power: f64,
    /// In-band noise power of the cold bitstream, before normalization.
    pub cold_noise_power: f64,
    /// Reference normalization bookkeeping.
    pub normalization: Normalization,
    /// Welch PSD of the hot bitstream.
    pub hot_spectrum: Spectrum,
    /// Welch PSD of the cold bitstream, **after** normalization.
    pub cold_spectrum_normalized: Spectrum,
}

/// The paper's estimator: noise power ratio from two 1-bit records with
/// a shared constant-amplitude reference (Table 2 row 3, §5.2).
///
/// Pipeline per record: Welch PSD of the ±1 bitstream → locate the
/// reference line → normalize the cold spectrum so the lines coincide →
/// integrate the noise band with the reference (and optionally its
/// harmonics) excluded → ratio.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
///
/// Holds a [`DspWorkspace`] behind a mutex so the Welch FFT plan and
/// scratch buffers are built once and reused across every hot/cold
/// estimate (cloning starts a fresh, empty workspace).
#[derive(Debug)]
pub struct OneBitPowerRatio {
    sample_rate: f64,
    nfft: usize,
    noise_band: (f64, f64),
    tracker: ReferenceTracker,
    excluded_harmonics: usize,
    window: Window,
    exclude_reference: bool,
    workspace: Mutex<DspWorkspace>,
}

impl Clone for OneBitPowerRatio {
    fn clone(&self) -> Self {
        OneBitPowerRatio {
            sample_rate: self.sample_rate,
            nfft: self.nfft,
            noise_band: self.noise_band,
            tracker: self.tracker,
            excluded_harmonics: self.excluded_harmonics,
            window: self.window,
            exclude_reference: self.exclude_reference,
            workspace: Mutex::new(DspWorkspace::new()),
        }
    }
}

impl OneBitPowerRatio {
    /// Creates an estimator.
    ///
    /// * `sample_rate` — the bitstream sample rate in Hz.
    /// * `nfft` — Welch segment length (any size; the paper used 10⁴).
    /// * `reference_frequency` — nominal reference tone frequency.
    /// * `noise_band` — `(f_lo, f_hi)` of the noise measurement band.
    ///
    /// Defaults: Hann window, ±2 % search window around the reference,
    /// a ±3-bin line width, harmonics 2–9 excluded, reference exclusion
    /// on.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for non-positive rates,
    /// a zero FFT size, or an empty/inverted noise band.
    pub fn new(
        sample_rate: f64,
        nfft: usize,
        reference_frequency: f64,
        noise_band: (f64, f64),
    ) -> Result<Self, CoreError> {
        if !(sample_rate > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if nfft == 0 {
            return Err(CoreError::InvalidParameter {
                name: "nfft",
                reason: "must be nonzero",
            });
        }
        if !(noise_band.0 >= 0.0 && noise_band.1 > noise_band.0) {
            return Err(CoreError::InvalidParameter {
                name: "noise_band",
                reason: "requires 0 <= f_lo < f_hi",
            });
        }
        let tracker = ReferenceTracker::new(reference_frequency, 0.02 * reference_frequency, 3)?;
        Ok(OneBitPowerRatio {
            sample_rate,
            nfft,
            noise_band,
            tracker,
            excluded_harmonics: 9,
            window: Window::Hann,
            exclude_reference: true,
            workspace: Mutex::new(DspWorkspace::new()),
        })
    }

    /// Overrides the reference tracker (search window / line width).
    pub fn with_tracker(mut self, tracker: ReferenceTracker) -> Self {
        self.tracker = tracker;
        self
    }

    /// Sets how many reference harmonics (`2f … n·f`) to exclude from
    /// the noise band (0 disables harmonic exclusion).
    pub fn with_excluded_harmonics(mut self, n: usize) -> Self {
        self.excluded_harmonics = n;
        self
    }

    /// Selects the Welch analysis window.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Disables exclusion of the reference bins from the noise
    /// integration — the ablation the paper implies when it notes the
    /// reference "must be excluded from the power ratio evaluation".
    pub fn with_reference_exclusion(mut self, on: bool) -> Self {
        self.exclude_reference = on;
        self
    }

    /// The configured noise band.
    pub fn noise_band(&self) -> (f64, f64) {
        self.noise_band
    }

    /// The Welch segment / FFT length.
    pub fn nfft(&self) -> usize {
        self.nfft
    }

    /// The sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The configured analysis window.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Runs the estimator on two packed bitstreams.
    ///
    /// The ±1 expansion of each record goes through the workspace's
    /// reusable staging buffer
    /// ([`DspWorkspace::take_record_buf`]), so the bit path
    /// materializes no per-call float vectors in the steady state —
    /// results are bit-identical to
    /// [`OneBitPowerRatio::estimate_samples`] on the expanded records.
    ///
    /// (The [`PowerRatioEstimator`] impl accepts pre-expanded sample
    /// buffers instead, which is what generic measurement sessions
    /// use.)
    ///
    /// # Errors
    ///
    /// Propagates PSD errors, reference-tracking failures
    /// ([`CoreError::Degenerate`] when a line cannot be found) and band
    /// errors.
    pub fn estimate_bits(
        &self,
        hot: &Bitstream,
        cold: &Bitstream,
    ) -> Result<OneBitRatioEstimate, CoreError> {
        let welch = WelchConfig::new(self.nfft)?.window(self.window);
        let (psd_hot, psd_cold) = {
            let mut ws = workspace_handle(&self.workspace);
            let mut buf = ws.take_record_buf();
            let expand_and_estimate =
                |bits: &Bitstream, buf: &mut Vec<f64>, ws: &mut DspWorkspace| {
                    buf.resize(bits.len(), 0.0);
                    bits.expand_bipolar_into(buf)?;
                    Ok::<_, CoreError>(welch.estimate_with(buf, self.sample_rate, ws)?)
                };
            // A failed hot estimate must not pay for a cold one, but the
            // staging buffer goes back to the workspace on every path.
            let psds = expand_and_estimate(hot, &mut buf, &mut ws).and_then(|psd_hot| {
                let psd_cold = expand_and_estimate(cold, &mut buf, &mut ws)?;
                Ok((psd_hot, psd_cold))
            });
            ws.return_record_buf(buf);
            psds?
        };
        self.finish(psd_hot, psd_cold)
    }

    /// Runs the estimator on pre-expanded ±1 sample buffers.
    ///
    /// # Errors
    ///
    /// Same as [`OneBitPowerRatio::estimate_bits`].
    pub fn estimate_samples(
        &self,
        hot: &[f64],
        cold: &[f64],
    ) -> Result<OneBitRatioEstimate, CoreError> {
        let welch = WelchConfig::new(self.nfft)?.window(self.window);
        let (psd_hot, psd_cold) = {
            let mut ws = workspace_handle(&self.workspace);
            (
                welch.estimate_with(hot, self.sample_rate, &mut ws)?,
                welch.estimate_with(cold, self.sample_rate, &mut ws)?,
            )
        };
        self.finish(psd_hot, psd_cold)
    }

    /// The estimator tail shared by the bit and sample entry points
    /// (and by the streaming accumulator in [`crate::streaming`]):
    /// reference normalization, exclusion bookkeeping and the band
    /// ratio.
    pub(crate) fn finish(
        &self,
        psd_hot: Spectrum,
        psd_cold: Spectrum,
    ) -> Result<OneBitRatioEstimate, CoreError> {
        let (psd_cold_norm, normalization) =
            normalize_to_reference(&psd_hot, &psd_cold, &self.tracker)?;

        // Bins to exclude: the reference line in each spectrum plus its
        // harmonics (the line may sit at slightly different bins if the
        // generator drifted between acquisitions, so take the union).
        let mut excluded: Vec<usize> = Vec::new();
        if self.exclude_reference {
            excluded.extend(&normalization.anchor_line.bins);
            excluded.extend(&normalization.scaled_line.bins);
            if self.excluded_harmonics >= 2 {
                excluded.extend(self.tracker.harmonic_bins(
                    &psd_hot,
                    &normalization.anchor_line,
                    self.excluded_harmonics,
                )?);
            }
            excluded.sort_unstable();
            excluded.dedup();
        }

        let hot_noise =
            psd_hot.band_power_excluding(self.noise_band.0, self.noise_band.1, &excluded)?;
        let cold_noise_norm =
            psd_cold_norm.band_power_excluding(self.noise_band.0, self.noise_band.1, &excluded)?;
        if !(cold_noise_norm > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "normalized cold noise band carries no power",
            });
        }

        Ok(OneBitRatioEstimate {
            ratio: hot_noise / cold_noise_norm,
            hot_noise_power: hot_noise,
            cold_noise_power: cold_noise_norm / normalization.scale,
            normalization,
            hot_spectrum: psd_hot,
            cold_spectrum_normalized: psd_cold_norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::converter::OneBitDigitizer;
    use nfbist_analog::noise::WhiteNoise;
    use nfbist_analog::source::{SquareSource, Waveform};

    const FS: f64 = 20_000.0;

    fn digitized_pair(
        sigma_hot: f64,
        sigma_cold: f64,
        ref_level: f64,
        n: usize,
    ) -> (Bitstream, Bitstream) {
        let hot = WhiteNoise::new(sigma_hot, 11).unwrap().generate(n);
        let cold = WhiteNoise::new(sigma_cold, 22).unwrap().generate(n);
        let reference = SquareSource::new(3_000.0, ref_level)
            .unwrap()
            .generate(n, FS)
            .unwrap();
        let d = OneBitDigitizer::ideal();
        (
            d.digitize(&hot, &reference).unwrap(),
            d.digitize(&cold, &reference).unwrap(),
        )
    }

    #[test]
    fn config_validation() {
        assert!(OneBitPowerRatio::new(0.0, 1024, 3e3, (0.0, 1e3)).is_err());
        assert!(OneBitPowerRatio::new(FS, 0, 3e3, (0.0, 1e3)).is_err());
        assert!(OneBitPowerRatio::new(FS, 1024, 3e3, (1e3, 1e3)).is_err());
        assert!(OneBitPowerRatio::new(FS, 1024, 3e3, (-1.0, 1e3)).is_err());
    }

    #[test]
    fn mean_square_ratio_basics() {
        assert!(mean_square_ratio(&[], &[1.0]).is_err());
        assert!(mean_square_ratio(&[1.0], &[0.0]).is_err());
        let y = mean_square_ratio(&[3.0, -3.0], &[1.0, -1.0]).unwrap();
        assert!((y - 9.0).abs() < 1e-12);
    }

    #[test]
    fn psd_ratio_recovers_white_noise_ratio() {
        let hot = WhiteNoise::new(2.0, 1).unwrap().generate(200_000);
        let cold = WhiteNoise::new(1.0, 2).unwrap().generate(200_000);
        let y = psd_ratio(&hot, &cold, FS, 2048, (100.0, 9_000.0)).unwrap();
        assert!((y - 4.0).abs() < 0.15, "y {y}");
    }

    #[test]
    fn one_bit_recovers_known_ratio() {
        // True ratio 10 (like Th = 10·Tc through a noiseless DUT);
        // reference at 20 % of the cold σ.
        let (hot, cold) = digitized_pair(1.0, (0.1f64).sqrt(), 0.2 * (0.1f64).sqrt(), 1 << 19);
        let est = OneBitPowerRatio::new(FS, 2048, 3_000.0, (100.0, 1_500.0)).unwrap();
        let r = est.estimate_bits(&hot, &cold).unwrap();
        // The paper saw ~2.5 % error on a ratio of 3.5; the arcsine
        // compression grows the error with the ratio, so allow 12 % on
        // a ratio of 10 with this record length.
        assert!(
            (r.ratio - 10.0).abs() / 10.0 < 0.12,
            "estimated ratio {}",
            r.ratio
        );
    }

    #[test]
    fn reference_exclusion_matters() {
        // Without excluding the reference bins the ratio collapses
        // toward 1 because both spectra contain the (equalized)
        // reference line. Put the reference *inside* the noise band to
        // maximize the effect.
        let n = 1 << 18;
        let hot = WhiteNoise::new(1.0, 5).unwrap().generate(n);
        let cold = WhiteNoise::new(0.5, 6).unwrap().generate(n);
        let reference = SquareSource::new(700.0, 0.15)
            .unwrap()
            .generate(n, FS)
            .unwrap();
        let d = OneBitDigitizer::ideal();
        let bh = d.digitize(&hot, &reference).unwrap();
        let bc = d.digitize(&cold, &reference).unwrap();

        let with = OneBitPowerRatio::new(FS, 2048, 700.0, (100.0, 1_500.0)).unwrap();
        let without = with.clone().with_reference_exclusion(false);
        let r_with = with.estimate_bits(&bh, &bc).unwrap().ratio;
        let r_without = without.estimate_bits(&bh, &bc).unwrap().ratio;
        assert!((r_with - 4.0).abs() / 4.0 < 0.12, "with exclusion {r_with}");
        assert!(
            r_without < r_with * 0.85,
            "exclusion made no difference: {r_without} vs {r_with}"
        );
    }

    #[test]
    fn bit_path_is_bit_identical_to_expanded_sample_path() {
        // The packed entry point stages its expansion through the
        // workspace record buffer; the result must be bit-identical to
        // estimating over a caller-expanded buffer.
        let (hot, cold) = digitized_pair(1.0, 0.5, 0.1, 1 << 16);
        let est = OneBitPowerRatio::new(FS, 2048, 3_000.0, (100.0, 1_500.0)).unwrap();
        let from_bits = est.estimate_bits(&hot, &cold).unwrap();
        let from_samples = est
            .estimate_samples(&hot.to_bipolar(), &cold.to_bipolar())
            .unwrap();
        assert_eq!(from_bits.ratio, from_samples.ratio);
        assert_eq!(from_bits.hot_noise_power, from_samples.hot_noise_power);
        assert_eq!(from_bits.cold_noise_power, from_samples.cold_noise_power);
        assert_eq!(
            from_bits.hot_spectrum.density(),
            from_samples.hot_spectrum.density()
        );
        // Records of different lengths reuse the same staging buffer.
        let (short_hot, short_cold) = digitized_pair(1.0, 0.5, 0.1, (1 << 16) - 777);
        let r = est.estimate_bits(&short_hot, &short_cold).unwrap();
        assert!(r.ratio > 0.0);
    }

    #[test]
    fn intermediate_results_are_consistent() {
        let (hot, cold) = digitized_pair(1.0, 0.5, 0.1, 1 << 17);
        let est = OneBitPowerRatio::new(FS, 2048, 3_000.0, (100.0, 1_500.0)).unwrap();
        let r = est.estimate_bits(&hot, &cold).unwrap();
        assert!(r.hot_noise_power > 0.0);
        assert!(r.cold_noise_power > 0.0);
        assert!(r.normalization.scale > 0.0);
        assert_eq!(r.hot_spectrum.nfft(), 2048);
        // The normalized cold spectrum's line matches the hot one's.
        let t = ReferenceTracker::new(3_000.0, 60.0, 3).unwrap();
        let lh = t.locate(&r.hot_spectrum).unwrap();
        let lc = t.locate(&r.cold_spectrum_normalized).unwrap();
        assert!((lh.power - lc.power).abs() / lh.power < 1e-9);
    }

    #[test]
    fn missing_reference_is_degenerate() {
        // Digitize with no reference at all: the tracker must refuse to
        // normalize against a floor fluctuation instead of silently
        // returning a ratio near 1.
        let n = 1 << 16;
        let hot = WhiteNoise::new(1.0, 7).unwrap().generate(n);
        let cold = WhiteNoise::new(0.5, 8).unwrap().generate(n);
        let zeros = vec![0.0; n];
        let d = OneBitDigitizer::ideal();
        let bh = d.digitize(&hot, &zeros).unwrap();
        let bc = d.digitize(&cold, &zeros).unwrap();
        let est = OneBitPowerRatio::new(FS, 2048, 3_000.0, (100.0, 1_500.0)).unwrap();
        assert!(matches!(
            est.estimate_bits(&bh, &bc),
            Err(crate::CoreError::Degenerate { .. })
        ));
    }

    #[test]
    fn harmonics_excluded_when_in_band() {
        // Reference at 400 Hz: harmonics at 800, 1200 Hz fall inside
        // the 100–1500 Hz noise band and would bias the ratio toward 1
        // if counted.
        let n = 1 << 18;
        let hot = WhiteNoise::new(1.0, 9).unwrap().generate(n);
        let cold = WhiteNoise::new(0.5, 10).unwrap().generate(n);
        let reference = SquareSource::new(400.0, 0.12)
            .unwrap()
            .generate(n, FS)
            .unwrap();
        let d = OneBitDigitizer::ideal();
        let bh = d.digitize(&hot, &reference).unwrap();
        let bc = d.digitize(&cold, &reference).unwrap();
        let with = OneBitPowerRatio::new(FS, 2048, 400.0, (100.0, 1_500.0)).unwrap();
        let without = with.clone().with_excluded_harmonics(0);
        let r_with = with.estimate_bits(&bh, &bc).unwrap().ratio;
        let r_without = without.estimate_bits(&bh, &bc).unwrap().ratio;
        assert!(
            (r_with - 4.0).abs() / 4.0 < 0.12,
            "with harmonics excluded {r_with}"
        );
        assert!(r_without < r_with, "{r_without} vs {r_with}");
    }

    #[test]
    fn trait_objects_cover_all_three_table2_rows() {
        // 4:1 analog records for the two analog-domain estimators; the
        // digitized pair for the 1-bit row.
        let n = 200_000;
        let hot = WhiteNoise::new(2.0, 41).unwrap().generate(n);
        let cold = WhiteNoise::new(1.0, 42).unwrap().generate(n);
        let (bh, bc) = digitized_pair(2.0, 1.0, 0.2, 1 << 18);

        type Case<'a> = (Box<dyn PowerRatioEstimator>, &'a [f64], &'a [f64], f64);
        let estimators: Vec<Case> = vec![
            (Box::new(MeanSquareEstimator), &hot, &cold, 0.03),
            (
                Box::new(PsdRatioEstimator::new(FS, 2_048, (100.0, 9_000.0)).unwrap()),
                &hot,
                &cold,
                0.05,
            ),
        ];
        for (est, h, c, tol) in &estimators {
            let r = est.estimate(h, c).unwrap();
            assert!(
                (r.ratio - 4.0).abs() / 4.0 < *tol,
                "{}: ratio {}",
                est.label(),
                r.ratio
            );
            assert!(r.hot_power > r.cold_power);
        }

        let one_bit: Box<dyn PowerRatioEstimator> =
            Box::new(OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0)).unwrap());
        let r = one_bit
            .estimate(&bh.to_bipolar(), &bc.to_bipolar())
            .unwrap();
        assert!(
            (r.ratio - 4.0).abs() / 4.0 < 0.10,
            "one-bit ratio {}",
            r.ratio
        );
        assert!(r.one_bit().is_some(), "1-bit detail must be attached");
        assert!(r.one_bit().unwrap().normalization.scale > 0.0);
    }

    #[test]
    fn psd_estimator_validation_and_detail() {
        assert!(PsdRatioEstimator::new(0.0, 1024, (0.0, 1e3)).is_err());
        assert!(PsdRatioEstimator::new(FS, 0, (0.0, 1e3)).is_err());
        assert!(PsdRatioEstimator::new(FS, 1024, (1e3, 1e3)).is_err());
        let est = PsdRatioEstimator::new(FS, 1024, (100.0, 2e3)).unwrap();
        assert_eq!(est.band(), (100.0, 2e3));
        let hot = WhiteNoise::new(1.0, 1).unwrap().generate(50_000);
        let cold = WhiteNoise::new(1.0, 2).unwrap().generate(50_000);
        let r = PowerRatioEstimator::estimate(&est, &hot, &cold).unwrap();
        match r.detail {
            RatioDetail::Psd { nfft, band } => {
                assert_eq!(nfft, 1024);
                assert_eq!(band, (100.0, 2e3));
            }
            ref other => panic!("wrong detail {other:?}"),
        }
        assert!(r.one_bit().is_none());
    }

    #[test]
    fn mean_square_estimator_degenerate_cases() {
        let est = MeanSquareEstimator;
        assert!(est.estimate(&[], &[1.0]).is_err());
        assert!(matches!(
            est.estimate(&[1.0], &[0.0]),
            Err(CoreError::Degenerate { .. })
        ));
        assert!(est.label().contains("mean-square"));
    }

    #[test]
    fn workspace_reuse_is_deterministic_and_estimators_stay_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MeanSquareEstimator>();
        assert_send_sync::<PsdRatioEstimator>();
        assert_send_sync::<OneBitPowerRatio>();

        let hot = WhiteNoise::new(2.0, 77).unwrap().generate(50_000);
        let cold = WhiteNoise::new(1.0, 78).unwrap().generate(50_000);
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        // Same estimator instance, warm workspace: bit-identical ratios.
        let first = est.estimate(&hot, &cold).unwrap();
        let second = est.estimate(&hot, &cold).unwrap();
        assert_eq!(first.ratio, second.ratio);
        // A clone (fresh workspace) agrees exactly too, and compares
        // equal on configuration.
        let cloned = est.clone();
        assert_eq!(est, cloned);
        assert_eq!(cloned.estimate(&hot, &cold).unwrap().ratio, first.ratio);

        let (bh, bc) = digitized_pair(1.0, 0.5, 0.1, 1 << 16);
        let one_bit = OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0)).unwrap();
        let a = one_bit.estimate_bits(&bh, &bc).unwrap();
        let b = one_bit.estimate_bits(&bh, &bc).unwrap();
        assert_eq!(a.ratio, b.ratio);
        assert_eq!(
            one_bit.clone().estimate_bits(&bh, &bc).unwrap().ratio,
            a.ratio
        );
    }

    #[test]
    fn boxed_estimator_delegates() {
        let boxed: Box<dyn PowerRatioEstimator> = Box::new(MeanSquareEstimator);
        let double: Box<dyn PowerRatioEstimator> = Box::new(boxed);
        let r = double.estimate(&[3.0, -3.0], &[1.0, -1.0]).unwrap();
        assert!((r.ratio - 9.0).abs() < 1e-12);
        assert_eq!(double.label(), MeanSquareEstimator.label());
    }
}
