//! The Y-factor method (paper §3.2, eqs. 5–9).
//!
//! Two measurements of DUT output noise power — with the source hot
//! (`Nh`) and cold (`Nc`) — give `Y = Nh/Nc` (eq. 5). Because the DUT's
//! own added noise `Na` appears in both (eqs. 6–7), the noise factor
//! follows as
//!
//! `F = ((Th/T0 − 1) − Y·(Tc/T0 − 1)) / (Y − 1)`   (eq. 8)
//!
//! with the power form eq. 9 substituting normalized powers for
//! temperatures.

use crate::figure::NoiseFactor;
use crate::CoreError;

/// Reference temperature T₀ = 290 K used by eqs. 8–9.
pub const T0: f64 = 290.0;

/// Computes `Y = Nh / Nc` from the two measured powers (eq. 5).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive powers and
/// [`CoreError::Degenerate`] when `Nh ≤ Nc` (the hot measurement must
/// carry more power).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let y = nfbist_core::yfactor::y_from_powers(3.4866, 1.0)?;
/// assert!((y - 3.4866).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn y_from_powers(hot_power: f64, cold_power: f64) -> Result<f64, CoreError> {
    if !(hot_power > 0.0) || !(cold_power > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "power",
            reason: "powers must be positive",
        });
    }
    if hot_power <= cold_power {
        return Err(CoreError::Degenerate {
            reason: "hot power does not exceed cold power",
        });
    }
    Ok(hot_power / cold_power)
}

/// Solves eq. 8 for the noise factor given `Y` and the source
/// temperatures in kelvin.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-physical
/// temperatures, [`CoreError::Degenerate`] for `Y ≤ 1` (the equation is
/// singular at Y = 1) or an estimate below the physical limit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// // Table 2's simulation: Th = 10000 K, Tc = 1000 K, Y = 3.4866
/// // must recover F ≈ 10.03 (NF ≈ 10.01 dB).
/// let f = nfbist_core::yfactor::noise_factor_from_temperatures(3.4866, 10_000.0, 1_000.0)?;
/// assert!((f.value() - 10.03).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn noise_factor_from_temperatures(
    y: f64,
    hot_kelvin: f64,
    cold_kelvin: f64,
) -> Result<NoiseFactor, CoreError> {
    if !(hot_kelvin > cold_kelvin) || !(cold_kelvin >= 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "temperatures",
            reason: "requires hot > cold >= 0",
        });
    }
    if !(y > 1.0) || !y.is_finite() {
        return Err(CoreError::Degenerate {
            reason: "y factor must exceed 1 for the method to be solvable",
        });
    }
    let f = ((hot_kelvin / T0 - 1.0) - y * (cold_kelvin / T0 - 1.0)) / (y - 1.0);
    NoiseFactor::from_estimate(f, 0.2)
}

/// Eq. 9: the power form, where `hot_norm = Nh/N0` and
/// `cold_norm = Nc/N0` are the measured powers normalized to the
/// reference power `N0 = k·T0·B·G`.
///
/// # Errors
///
/// Same as [`noise_factor_from_temperatures`].
pub fn noise_factor_from_normalized_powers(
    y: f64,
    hot_norm: f64,
    cold_norm: f64,
) -> Result<NoiseFactor, CoreError> {
    if !(hot_norm > cold_norm) || !(cold_norm >= 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "normalized powers",
            reason: "requires hot > cold >= 0",
        });
    }
    if !(y > 1.0) || !y.is_finite() {
        return Err(CoreError::Degenerate {
            reason: "y factor must exceed 1 for the method to be solvable",
        });
    }
    let f = ((hot_norm - 1.0) - y * (cold_norm - 1.0)) / (y - 1.0);
    NoiseFactor::from_estimate(f, 0.2)
}

/// Forward model: the `Y` a DUT with noise factor `f` produces for
/// given source temperatures (inverting eq. 8).
///
/// `Y = (Th + Te) / (Tc + Te)` with `Te = (F−1)·T0`.
///
/// Useful for generating ground truth in tests and experiments.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-physical
/// temperatures.
///
/// # Examples
///
/// ```
/// use nfbist_core::figure::NoiseFactor;
/// use nfbist_core::yfactor::{expected_y, noise_factor_from_temperatures};
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let f = NoiseFactor::new(10.0)?;
/// let y = expected_y(f, 10_000.0, 1_000.0)?;
/// // Round-trips through eq. 8.
/// let back = noise_factor_from_temperatures(y, 10_000.0, 1_000.0)?;
/// assert!((back.value() - 10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn expected_y(f: NoiseFactor, hot_kelvin: f64, cold_kelvin: f64) -> Result<f64, CoreError> {
    if !(hot_kelvin > cold_kelvin) || !(cold_kelvin >= 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "temperatures",
            reason: "requires hot > cold >= 0",
        });
    }
    let te = f.equivalent_temperature();
    Ok((hot_kelvin + te) / (cold_kelvin + te))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn y_from_powers_validation() {
        assert!(y_from_powers(0.0, 1.0).is_err());
        assert!(y_from_powers(1.0, -1.0).is_err());
        assert!(y_from_powers(1.0, 2.0).is_err());
        assert!(y_from_powers(1.0, 1.0).is_err());
        assert!((y_from_powers(4.0, 2.0).unwrap() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn temperature_form_validation() {
        assert!(noise_factor_from_temperatures(2.0, 290.0, 290.0).is_err());
        assert!(noise_factor_from_temperatures(2.0, 290.0, -5.0).is_err());
        assert!(noise_factor_from_temperatures(1.0, 2900.0, 290.0).is_err());
        assert!(noise_factor_from_temperatures(0.5, 2900.0, 290.0).is_err());
        assert!(noise_factor_from_temperatures(f64::NAN, 2900.0, 290.0).is_err());
    }

    #[test]
    fn paper_table2_row() {
        // Table 2, mean-square row: Y = 3.4866 → F = 10.03, NF = 10.01.
        let f = noise_factor_from_temperatures(3.4866, 10_000.0, 1_000.0).unwrap();
        assert!((f.value() - 10.03).abs() < 0.01, "F {}", f.value());
        assert!((f.to_figure().db() - 10.01).abs() < 0.01);
        // PSD row: Y = 3.4766 → F = 10.08, NF = 10.03.
        let f = noise_factor_from_temperatures(3.4766, 10_000.0, 1_000.0).unwrap();
        assert!((f.value() - 10.08).abs() < 0.01);
        // 1-bit row: Y = 3.5620 → F = 9.66, NF = 9.85.
        let f = noise_factor_from_temperatures(3.5620, 10_000.0, 1_000.0).unwrap();
        assert!((f.value() - 9.66).abs() < 0.01);
        assert!((f.to_figure().db() - 9.85).abs() < 0.01);
    }

    #[test]
    fn cold_at_reference_simplifies() {
        // With Tc = T0 the correction term vanishes:
        // F = (Th/T0 − 1)/(Y − 1) = ENR_lin/(Y−1).
        let th = 2900.0;
        let y = 4.0;
        let f = noise_factor_from_temperatures(y, th, 290.0).unwrap();
        assert!((f.value() - (th / T0 - 1.0) / (y - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn forward_model_roundtrip_over_grid() {
        for nf_db in [0.5, 3.0, 6.5, 10.1, 16.2] {
            let f = crate::figure::NoiseFigure::from_db(nf_db)
                .unwrap()
                .to_factor();
            for (th, tc) in [(2900.0, 290.0), (10_000.0, 1_000.0), (1_000.0, 77.0)] {
                let y = expected_y(f, th, tc).unwrap();
                let back = noise_factor_from_temperatures(y, th, tc).unwrap();
                assert!(
                    (back.value() - f.value()).abs() / f.value() < 1e-9,
                    "nf {nf_db} th {th} tc {tc}"
                );
            }
        }
    }

    #[test]
    fn normalized_power_form_matches_temperature_form() {
        // Eq. 9 with Nh/N0 = Th/T0 etc. reduces to eq. 8.
        let (th, tc) = (10_000.0, 1_000.0);
        let y = 3.4866;
        let a = noise_factor_from_temperatures(y, th, tc).unwrap();
        let b = noise_factor_from_normalized_powers(y, th / T0, tc / T0).unwrap();
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    fn higher_y_means_quieter_dut() {
        let (th, tc) = (2900.0, 290.0);
        let quiet = noise_factor_from_temperatures(5.0, th, tc).unwrap();
        let noisy = noise_factor_from_temperatures(2.0, th, tc).unwrap();
        assert!(quiet.value() < noisy.value());
    }

    #[test]
    fn noiseless_dut_yields_temperature_ratio() {
        let f = NoiseFactor::NOISELESS;
        let y = expected_y(f, 2900.0, 290.0).unwrap();
        assert!((y - 10.0).abs() < 1e-12);
    }
}
