//! Reference-line tracking and spectrum normalization (paper §5.2).
//!
//! The bitstream PSD loses the absolute power scale (a ±1 stream always
//! has unit power), but a constant-amplitude reference tone reappears in
//! it scaled by `√(2/π)·A/σ` — inversely proportional to the noise RMS.
//! Measuring the reference line in two spectra and rescaling one so the
//! lines coincide therefore restores the *relative* noise scale, which
//! is all the Y-factor ratio needs.
//!
//! §6 adds the robustness argument: "the normalization process would
//! track the main frequency component (disregarding harmonics)", so the
//! tracker here locks onto the fundamental only.

use crate::CoreError;
use nfbist_dsp::spectrum::Spectrum;

/// A measured reference line in a spectrum.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceLine {
    /// Bin of the line's peak.
    pub bin: usize,
    /// Peak frequency in hertz.
    pub frequency: f64,
    /// Total power of the line (main-lobe sum, in the spectrum's power
    /// units).
    pub power: f64,
    /// Bins occupied by the line (to exclude from noise integration).
    pub bins: Vec<usize>,
}

/// Configuration for reference tracking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceTracker {
    /// Nominal reference frequency in hertz.
    pub frequency: f64,
    /// Search window around the nominal frequency, in hertz (the
    /// low-cost generator may be off-frequency).
    pub search_window: f64,
    /// Half-width, in bins, of the line (main lobe plus leakage skirt).
    pub half_width: usize,
}

impl ReferenceTracker {
    /// Creates a tracker for a reference at `frequency` Hz with a
    /// ±`search_window` Hz search range and a ±`half_width`-bin line
    /// extent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-positive
    /// frequency or negative window.
    pub fn new(frequency: f64, search_window: f64, half_width: usize) -> Result<Self, CoreError> {
        if !(frequency > 0.0) || !frequency.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "frequency",
                reason: "must be positive and finite",
            });
        }
        if !(search_window >= 0.0) || !search_window.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "search_window",
                reason: "must be non-negative and finite",
            });
        }
        Ok(ReferenceTracker {
            frequency,
            search_window,
            half_width,
        })
    }

    /// Locates the reference line in a spectrum: the strongest bin in
    /// the search window, with the line power summed over the
    /// configured half-width **after subtracting the local noise
    /// floor** (estimated from sideband bins flanking the line).
    ///
    /// Floor subtraction matters: in the 1-bit bitstream PSD, a weak
    /// reference line (hot record, large σ) sits barely above the
    /// floor, and counting the floor as line power destroys the
    /// normalization — this is the left side of the paper's Fig. 10
    /// error curve.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dsp`] wrapping range errors when the search
    /// band leaves the spectrum, and [`CoreError::Degenerate`] if the
    /// located line does not rise above the local noise floor.
    pub fn locate(&self, spectrum: &Spectrum) -> Result<ReferenceLine, CoreError> {
        let lo = (self.frequency - self.search_window).max(0.0);
        let hi = (self.frequency + self.search_window).min(spectrum.nyquist());
        let peak = spectrum.peak_in_band(lo, hi)?;
        let bins = spectrum.bins_around(peak.frequency, self.half_width)?;

        // Local floor: mean density over sideband annuli on both sides
        // of the line (each up to 3 line-widths, clipped to the
        // spectrum).
        let hw = self.half_width.max(1);
        let d = spectrum.density();
        let mut floor_acc = 0.0;
        let mut floor_n = 0usize;
        let left_hi = bins[0];
        let right_lo = *bins.last().expect("bins_around is never empty") + 1;
        for &v in &d[left_hi.saturating_sub(3 * hw)..left_hi] {
            floor_acc += v;
            floor_n += 1;
        }
        for &v in &d[right_lo..(right_lo + 3 * hw).min(d.len())] {
            floor_acc += v;
            floor_n += 1;
        }
        let floor = if floor_n > 0 {
            floor_acc / floor_n as f64
        } else {
            0.0
        };

        let df = spectrum.resolution();
        let power: f64 = bins.iter().map(|&k| (d[k] - floor).max(0.0) * df).sum();
        // Reject a "line" indistinguishable from floor fluctuations:
        // require the summed excess to beat the floor statistics.
        if !(power > 0.0) || peak.density < 2.0 * floor {
            return Err(CoreError::Degenerate {
                reason: "reference line not found above the noise floor",
            });
        }
        Ok(ReferenceLine {
            bin: peak.bin,
            frequency: peak.frequency,
            power,
            bins,
        })
    }

    /// Bins occupied by harmonics `2f, 3f, … n·f` of the located line
    /// that fall below Nyquist — these must also be excluded from noise
    /// integration when the reference is a square wave.
    ///
    /// # Errors
    ///
    /// Propagates range errors from the spectrum.
    pub fn harmonic_bins(
        &self,
        spectrum: &Spectrum,
        line: &ReferenceLine,
        max_harmonic: usize,
    ) -> Result<Vec<usize>, CoreError> {
        let mut bins = Vec::new();
        for k in 2..=max_harmonic {
            let f = line.frequency * k as f64;
            if f > spectrum.nyquist() {
                break;
            }
            bins.extend(spectrum.bins_around(f, self.half_width)?);
        }
        Ok(bins)
    }
}

/// The result of normalizing one spectrum against another.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalization {
    /// The scale factor applied to the second spectrum's densities.
    pub scale: f64,
    /// Reference line located in the first (anchor) spectrum.
    pub anchor_line: ReferenceLine,
    /// Reference line located in the second (rescaled) spectrum.
    pub scaled_line: ReferenceLine,
}

/// Rescales `other` so its reference line matches `anchor`'s
/// (paper §5.2's "simple normalization procedure"), returning the
/// normalized spectrum and the bookkeeping.
///
/// # Errors
///
/// Propagates tracking failures from [`ReferenceTracker::locate`].
///
/// # Examples
///
/// ```
/// use nfbist_core::normalize::{normalize_to_reference, ReferenceTracker};
/// use nfbist_dsp::spectrum::Spectrum;
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// // Two flat spectra with a line at bin 8; the second line is 4× weaker.
/// let mut a = vec![1.0; 17];
/// let mut b = vec![1.0; 17];
/// a[8] = 101.0;
/// b[8] = 26.0; // line 25 vs 100 above the floor of 1
/// let sa = Spectrum::new(a, 3_200.0, 32)?;
/// let sb = Spectrum::new(b, 3_200.0, 32)?;
/// let tracker = ReferenceTracker::new(800.0, 100.0, 0)?;
/// let (normalized_b, norm) = normalize_to_reference(&sa, &sb, &tracker)?;
/// // Line excesses above the floor were 100 and 25 → scale 4.
/// assert!((norm.scale - 4.0).abs() < 1e-9);
/// assert!((normalized_b.density()[8] - 4.0 * sb.density()[8]).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn normalize_to_reference(
    anchor: &Spectrum,
    other: &Spectrum,
    tracker: &ReferenceTracker,
) -> Result<(Spectrum, Normalization), CoreError> {
    let anchor_line = tracker.locate(anchor)?;
    let other_line = tracker.locate(other)?;
    let scale = anchor_line.power / other_line.power;
    let normalized = other.scaled(scale);
    Ok((
        normalized,
        Normalization {
            scale,
            anchor_line,
            scaled_line: other_line,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum_with_line(floor: f64, line_bin: usize, line_density: f64) -> Spectrum {
        let mut d = vec![floor; 65];
        d[line_bin] += line_density;
        Spectrum::new(d, 12_800.0, 128).unwrap() // Δf = 100 Hz
    }

    #[test]
    fn tracker_validation() {
        assert!(ReferenceTracker::new(0.0, 10.0, 1).is_err());
        assert!(ReferenceTracker::new(100.0, -1.0, 1).is_err());
        assert!(ReferenceTracker::new(100.0, 0.0, 1).is_ok());
    }

    #[test]
    fn locate_finds_offset_reference() {
        // Nominal 3 kHz but the line actually sits at 3.1 kHz (bin 31).
        let s = spectrum_with_line(0.01, 31, 50.0);
        let tracker = ReferenceTracker::new(3_000.0, 200.0, 1).unwrap();
        let line = tracker.locate(&s).unwrap();
        assert_eq!(line.bin, 31);
        assert_eq!(line.frequency, 3_100.0);
        assert_eq!(line.bins, vec![30, 31, 32]);
        // Floor-subtracted power: 50.0 × 100 Hz = 5000.
        assert!((line.power - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn locate_rejects_window_with_no_line() {
        let s = spectrum_with_line(0.01, 40, 50.0); // line at 4 kHz
        let tracker = ReferenceTracker::new(3_000.0, 200.0, 1).unwrap();
        // Only floor inside the 3 kHz window → degenerate.
        assert!(matches!(
            tracker.locate(&s),
            Err(CoreError::Degenerate { .. })
        ));
    }

    #[test]
    fn zero_spectrum_is_degenerate() {
        let s = Spectrum::new(vec![0.0; 65], 12_800.0, 128).unwrap();
        let tracker = ReferenceTracker::new(3_000.0, 200.0, 1).unwrap();
        assert!(matches!(
            tracker.locate(&s),
            Err(CoreError::Degenerate { .. })
        ));
    }

    #[test]
    fn harmonics_enumerated_below_nyquist() {
        let s = spectrum_with_line(0.01, 20, 50.0); // fundamental 2 kHz
        let tracker = ReferenceTracker::new(2_000.0, 100.0, 0).unwrap();
        let line = tracker.locate(&s).unwrap();
        // Nyquist is 6.4 kHz: harmonics at 4 and 6 kHz fit; 8 kHz does
        // not.
        let bins = tracker.harmonic_bins(&s, &line, 5).unwrap();
        assert_eq!(bins, vec![40, 60]);
    }

    #[test]
    fn normalization_restores_relative_scale() {
        // Simulate the bitstream situation: equal floors, different
        // line strengths (hot noise → weaker line).
        let hot = spectrum_with_line(1.0, 30, 10.0);
        let cold = spectrum_with_line(1.0, 30, 40.0);
        let tracker = ReferenceTracker::new(3_000.0, 100.0, 0).unwrap();
        let (cold_norm, norm) = normalize_to_reference(&hot, &cold, &tracker).unwrap();
        // Floor-subtracted line excesses: 10 vs 40 → scale 0.25.
        assert!((norm.scale - 0.25).abs() < 1e-9);
        // Floors now differ by the same factor.
        let hot_floor = hot.density()[5];
        let cold_floor = cold_norm.density()[5];
        assert!((cold_floor / hot_floor - norm.scale).abs() < 1e-12);
        assert_eq!(norm.anchor_line.bin, 30);
        assert_eq!(norm.scaled_line.bin, 30);
    }
}
