//! Streaming (bounded-memory) power-ratio estimation.
//!
//! The batch [`PowerRatioEstimator`] consumes whole hot/cold records,
//! which ties the achievable acquisition length to RAM. The paper's
//! accuracy, however, improves with *longer* records (the Welch
//! variance shrinks as `1/segments`), so record length should be a pure
//! test-*time* cost — as it is in the real hardware, where the
//! correlator integrates on the fly.
//!
//! This module restores that property to the estimation layer:
//! [`StreamingPowerRatioEstimator::begin`] opens a [`RatioAccumulator`]
//! that consumes the two records chunk by chunk in `O(segment)` memory
//! and finishes into the **identical** [`RatioEstimate`] — bitwise, per
//! `f64::to_bits` — that the batch estimator computes over the
//! concatenated records. All three Table 2 estimators implement it:
//!
//! * [`MeanSquareEstimator`] — running power sums (the float
//!   accumulation order is exactly the batch fold);
//! * [`PsdRatioEstimator`] — one [`StreamingWelch`] per record;
//! * [`OneBitPowerRatio`] — two [`StreamingWelch`] accumulators feeding
//!   the same reference-normalization tail as the batch path.
//!
//! Measurement sessions discover streaming support through
//! [`PowerRatioEstimator::streaming`], so `Box<dyn PowerRatioEstimator>`
//! stays the only estimator currency.
//!
//! ```
//! use nfbist_core::power_ratio::{PowerRatioEstimator, PsdRatioEstimator};
//!
//! # fn main() -> Result<(), nfbist_core::CoreError> {
//! let est = PsdRatioEstimator::new(20_000.0, 1_024, (100.0, 9_000.0))?;
//! let hot: Vec<f64> = (0..8_192).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
//! let cold: Vec<f64> = hot.iter().map(|v| v * 0.5).collect();
//!
//! let batch = est.estimate(&hot, &cold)?;
//! let mut acc = est.streaming().expect("PSD estimator streams").begin()?;
//! for (h, c) in hot.chunks(700).zip(cold.chunks(700)) {
//!     acc.push_hot(h)?;
//!     acc.push_cold(c)?;
//! }
//! let streamed = acc.finish()?;
//! assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
//! # Ok(())
//! # }
//! ```

use crate::power_ratio::{
    MeanSquareEstimator, OneBitPowerRatio, PowerRatioEstimator, PsdRatioEstimator, RatioDetail,
    RatioEstimate,
};
use crate::CoreError;
use nfbist_dsp::psd::{StreamingWelch, WelchConfig};

/// An in-flight streaming ratio estimate: hot/cold chunks in, one
/// [`RatioEstimate`] out.
///
/// Hot and cold pushes may be interleaved arbitrarily — the two
/// records accumulate independently; only the per-record chunk order
/// matters (and it is the record order).
pub trait RatioAccumulator: Send {
    /// Consumes one chunk of the hot record.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError>;

    /// Consumes one chunk of the cold record.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError>;

    /// Forms the ratio from everything pushed **so far**, without
    /// closing the accumulator — the interim estimate a sequential
    /// (early-stopping) screen consults at each checkpoint. Bitwise
    /// identical to what [`RatioAccumulator::finish`] would return at
    /// this point; pushing more chunks afterwards keeps refining the
    /// same accumulator.
    ///
    /// # Errors
    ///
    /// Exactly the batch estimator's failure modes at the current
    /// record length: empty/short records and
    /// [`CoreError::Degenerate`] ratios.
    fn snapshot(&self) -> Result<RatioEstimate, CoreError>;

    /// Closes both records and forms the ratio — bitwise identical to
    /// the batch estimator over the concatenated records.
    ///
    /// # Errors
    ///
    /// Exactly the batch estimator's failure modes: empty/short records
    /// and [`CoreError::Degenerate`] ratios.
    fn finish(self: Box<Self>) -> Result<RatioEstimate, CoreError> {
        self.snapshot()
    }
}

/// A [`PowerRatioEstimator`] that can also run chunked with bounded
/// memory. Obtained through [`PowerRatioEstimator::streaming`].
pub trait StreamingPowerRatioEstimator: PowerRatioEstimator {
    /// Opens a fresh accumulator for one hot/cold record pair.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (invalid FFT size or sample rate).
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError>;
}

/// Running power sums for the time-domain mean-square ratio.
///
/// The sums accumulate sample by sample in record order — the same
/// fold, in the same order, as `stats::mean_square` over the whole
/// record, so the result carries identical bits.
struct MeanSquareAccumulator {
    hot_sum: f64,
    hot_n: usize,
    cold_sum: f64,
    cold_n: usize,
}

impl RatioAccumulator for MeanSquareAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        for &v in chunk {
            self.hot_sum += v * v;
        }
        self.hot_n += chunk.len();
        Ok(())
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        for &v in chunk {
            self.cold_sum += v * v;
        }
        self.cold_n += chunk.len();
        Ok(())
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        if self.hot_n == 0 || self.cold_n == 0 {
            return Err(CoreError::Dsp(nfbist_dsp::DspError::EmptyInput {
                context: "mean_square",
            }));
        }
        let hot_power = self.hot_sum / self.hot_n as f64;
        let cold_power = self.cold_sum / self.cold_n as f64;
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold record carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::MeanSquare,
        })
    }
}

impl StreamingPowerRatioEstimator for MeanSquareEstimator {
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError> {
        Ok(Box::new(MeanSquareAccumulator {
            hot_sum: 0.0,
            hot_n: 0,
            cold_sum: 0.0,
            cold_n: 0,
        }))
    }
}

/// One [`StreamingWelch`] per record for the PSD band-power ratio.
struct PsdRatioAccumulator {
    hot: StreamingWelch,
    cold: StreamingWelch,
    nfft: usize,
    band: (f64, f64),
}

impl RatioAccumulator for PsdRatioAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.hot.push(chunk)?)
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.cold.push(chunk)?)
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        let psd_hot = self.hot.finalize()?;
        let psd_cold = self.cold.finalize()?;
        let hot_power = psd_hot.band_power(self.band.0, self.band.1)?;
        let cold_power = psd_cold.band_power(self.band.0, self.band.1)?;
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold band carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::Psd {
                nfft: self.nfft,
                band: self.band,
            },
        })
    }
}

impl StreamingPowerRatioEstimator for PsdRatioEstimator {
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError> {
        let cfg = WelchConfig::new(self.nfft())?;
        Ok(Box::new(PsdRatioAccumulator {
            hot: StreamingWelch::new(cfg.clone(), self.sample_rate())?,
            cold: StreamingWelch::new(cfg, self.sample_rate())?,
            nfft: self.nfft(),
            band: self.band(),
        }))
    }
}

/// Two [`StreamingWelch`] accumulators feeding the 1-bit estimator's
/// reference-normalization tail.
struct OneBitAccumulator {
    estimator: OneBitPowerRatio,
    hot: StreamingWelch,
    cold: StreamingWelch,
}

impl RatioAccumulator for OneBitAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.hot.push(chunk)?)
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.cold.push(chunk)?)
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        let psd_hot = self.hot.finalize()?;
        let psd_cold = self.cold.finalize()?;
        let est = self.estimator.finish(psd_hot, psd_cold)?;
        Ok(RatioEstimate {
            ratio: est.ratio,
            hot_power: est.hot_noise_power,
            cold_power: est.cold_noise_power,
            detail: RatioDetail::OneBit(Box::new(est)),
        })
    }
}

impl StreamingPowerRatioEstimator for OneBitPowerRatio {
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError> {
        let cfg = WelchConfig::new(self.nfft())?.window(self.window());
        Ok(Box::new(OneBitAccumulator {
            estimator: self.clone(),
            hot: StreamingWelch::new(cfg.clone(), self.sample_rate())?,
            cold: StreamingWelch::new(cfg, self.sample_rate())?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::converter::OneBitDigitizer;
    use nfbist_analog::noise::WhiteNoise;
    use nfbist_analog::source::{SquareSource, Waveform};

    const FS: f64 = 20_000.0;

    fn records(n: usize) -> (Vec<f64>, Vec<f64>) {
        (
            WhiteNoise::new(2.0, 51).unwrap().generate(n),
            WhiteNoise::new(1.0, 52).unwrap().generate(n),
        )
    }

    fn stream_estimate(
        est: &dyn PowerRatioEstimator,
        hot: &[f64],
        cold: &[f64],
        chunk: usize,
    ) -> RatioEstimate {
        let mut acc = est.streaming().expect("streaming support").begin().unwrap();
        for c in hot.chunks(chunk) {
            acc.push_hot(c).unwrap();
        }
        for c in cold.chunks(chunk) {
            acc.push_cold(c).unwrap();
        }
        acc.finish().unwrap()
    }

    #[test]
    fn mean_square_streaming_is_bitwise_identical() {
        let (hot, cold) = records(50_000);
        let est = MeanSquareEstimator;
        let batch = est.estimate(&hot, &cold).unwrap();
        for chunk in [1usize, 997, 50_000] {
            let streamed = stream_estimate(&est, &hot, &cold, chunk);
            assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
            assert_eq!(streamed.hot_power.to_bits(), batch.hot_power.to_bits());
            assert_eq!(streamed.cold_power.to_bits(), batch.cold_power.to_bits());
        }
    }

    #[test]
    fn psd_streaming_is_bitwise_identical() {
        let (hot, cold) = records(30_000);
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let batch = PowerRatioEstimator::estimate(&est, &hot, &cold).unwrap();
        for chunk in [511usize, 1_024, 1_025, 30_000] {
            let streamed = stream_estimate(&est, &hot, &cold, chunk);
            assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
            assert_eq!(streamed.hot_power.to_bits(), batch.hot_power.to_bits());
        }
    }

    #[test]
    fn one_bit_streaming_is_bitwise_identical_with_full_detail() {
        let n = 1 << 16;
        let hot = WhiteNoise::new(1.0, 61).unwrap().generate(n);
        let cold = WhiteNoise::new(0.5, 62).unwrap().generate(n);
        let reference = SquareSource::new(3_000.0, 0.1)
            .unwrap()
            .generate(n, FS)
            .unwrap();
        let d = OneBitDigitizer::ideal();
        let bh = d.digitize(&hot, &reference).unwrap().to_bipolar();
        let bc = d.digitize(&cold, &reference).unwrap().to_bipolar();

        let est = OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0)).unwrap();
        let batch = PowerRatioEstimator::estimate(&est, &bh, &bc).unwrap();
        for chunk in [777usize, 2_048, 4_099] {
            let streamed = stream_estimate(&est, &bh, &bc, chunk);
            assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
            let (sd, bd) = (
                streamed.one_bit().expect("detail"),
                batch.one_bit().expect("detail"),
            );
            assert_eq!(
                sd.normalization.scale.to_bits(),
                bd.normalization.scale.to_bits()
            );
            assert_eq!(sd.hot_spectrum.density(), bd.hot_spectrum.density());
            assert_eq!(
                sd.cold_spectrum_normalized.density(),
                bd.cold_spectrum_normalized.density()
            );
        }
    }

    #[test]
    fn degenerate_and_empty_cases_match_batch_semantics() {
        // Empty records error like the batch estimator.
        let acc = MeanSquareEstimator.streaming().unwrap().begin().unwrap();
        assert!(acc.finish().is_err());
        // A powerless cold record is Degenerate, not a panic.
        let mut acc = MeanSquareEstimator.streaming().unwrap().begin().unwrap();
        acc.push_hot(&[1.0, -1.0]).unwrap();
        acc.push_cold(&[0.0, 0.0]).unwrap();
        assert!(matches!(acc.finish(), Err(CoreError::Degenerate { .. })));
        // Too-short PSD records error like "input shorter than one
        // segment".
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let mut acc = est.streaming().unwrap().begin().unwrap();
        acc.push_hot(&[0.5; 100]).unwrap();
        acc.push_cold(&[0.5; 100]).unwrap();
        assert!(acc.finish().is_err());
    }

    #[test]
    fn snapshot_matches_finish_and_leaves_the_accumulator_live() {
        // At every prefix length, snapshot() must carry exactly the
        // bits a fresh accumulator fed the same prefix would finish
        // with — and taking the snapshot must not disturb the
        // continued accumulation.
        let (hot, cold) = records(30_000);
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let mut acc = est.streaming().unwrap().begin().unwrap();
        let chunk = 7_000;
        let mut fed = 0usize;
        for (h, c) in hot.chunks(chunk).zip(cold.chunks(chunk)) {
            acc.push_hot(h).unwrap();
            acc.push_cold(c).unwrap();
            fed += h.len();
            let prefix = stream_estimate(&est, &hot[..fed], &cold[..fed], chunk);
            let snap = acc.snapshot().unwrap();
            assert_eq!(snap.ratio.to_bits(), prefix.ratio.to_bits());
            assert_eq!(snap.hot_power.to_bits(), prefix.hot_power.to_bits());
        }
        // The final finish is untouched by the interim snapshots.
        let batch = PowerRatioEstimator::estimate(&est, &hot, &cold).unwrap();
        assert_eq!(acc.finish().unwrap().ratio.to_bits(), batch.ratio.to_bits());

        // Same for the time-domain sums.
        let est = MeanSquareEstimator;
        let mut acc = est.streaming().unwrap().begin().unwrap();
        acc.push_hot(&hot[..1_000]).unwrap();
        acc.push_cold(&cold[..1_000]).unwrap();
        let snap = acc.snapshot().unwrap();
        let fresh = stream_estimate(&est, &hot[..1_000], &cold[..1_000], 100);
        assert_eq!(snap.ratio.to_bits(), fresh.ratio.to_bits());
        // An empty accumulator's snapshot errors like finish.
        let empty = MeanSquareEstimator.streaming().unwrap().begin().unwrap();
        assert!(empty.snapshot().is_err());
    }

    #[test]
    fn discovery_through_trait_objects() {
        let boxed: Box<dyn PowerRatioEstimator> =
            Box::new(PsdRatioEstimator::new(FS, 512, (100.0, 9_000.0)).unwrap());
        assert!(boxed.streaming().is_some());
        let boxed: Box<dyn PowerRatioEstimator> = Box::new(MeanSquareEstimator);
        assert!(boxed.streaming().is_some());
        let boxed: Box<dyn PowerRatioEstimator> =
            Box::new(OneBitPowerRatio::new(FS, 512, 3_000.0, (100.0, 1_500.0)).unwrap());
        assert!(boxed.streaming().is_some());

        /// An estimator that never opted in.
        #[derive(Debug)]
        struct Opaque;
        impl PowerRatioEstimator for Opaque {
            fn label(&self) -> String {
                "opaque".into()
            }
            fn estimate(&self, _h: &[f64], _c: &[f64]) -> Result<RatioEstimate, CoreError> {
                Err(CoreError::Degenerate { reason: "stub" })
            }
        }
        let boxed: Box<dyn PowerRatioEstimator> = Box::new(Opaque);
        assert!(boxed.streaming().is_none(), "default is no streaming");
    }
}
