//! Streaming (bounded-memory) power-ratio estimation.
//!
//! The batch [`PowerRatioEstimator`] consumes whole hot/cold records,
//! which ties the achievable acquisition length to RAM. The paper's
//! accuracy, however, improves with *longer* records (the Welch
//! variance shrinks as `1/segments`), so record length should be a pure
//! test-*time* cost — as it is in the real hardware, where the
//! correlator integrates on the fly.
//!
//! This module restores that property to the estimation layer:
//! [`StreamingPowerRatioEstimator::begin`] opens a [`RatioAccumulator`]
//! that consumes the two records chunk by chunk in `O(segment)` memory
//! and finishes into the **identical** [`RatioEstimate`] — bitwise, per
//! `f64::to_bits` — that the batch estimator computes over the
//! concatenated records. All three Table 2 estimators implement it:
//!
//! * [`MeanSquareEstimator`] — running power sums (the float
//!   accumulation order is exactly the batch fold);
//! * [`PsdRatioEstimator`] — one [`StreamingWelch`] per record;
//! * [`OneBitPowerRatio`] — two [`StreamingWelch`] accumulators feeding
//!   the same reference-normalization tail as the batch path.
//!
//! Measurement sessions discover streaming support through
//! [`PowerRatioEstimator::streaming`], so `Box<dyn PowerRatioEstimator>`
//! stays the only estimator currency.
//!
//! For continuous in-field monitoring the cumulative accumulators are
//! not enough: a drift that starts after 10⁷ healthy samples is diluted
//! away by everything already integrated. [`WindowedRatioAccumulator`]
//! (obtained through [`PowerRatioEstimator::windowed`] with an
//! [`EstimatorWindow`]) is the retiring variant — a sliding window of
//! the most recent segments or an exponentially forgetting average —
//! and [`windowed_nf_point`] turns any snapshot into an NF estimate
//! with a finite-window sigma from [`crate::uncertainty`], the
//! emission primitive of the monitor layer.
//!
//! ```
//! use nfbist_core::power_ratio::{PowerRatioEstimator, PsdRatioEstimator};
//!
//! # fn main() -> Result<(), nfbist_core::CoreError> {
//! let est = PsdRatioEstimator::new(20_000.0, 1_024, (100.0, 9_000.0))?;
//! let hot: Vec<f64> = (0..8_192).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
//! let cold: Vec<f64> = hot.iter().map(|v| v * 0.5).collect();
//!
//! let batch = est.estimate(&hot, &cold)?;
//! let mut acc = est.streaming().expect("PSD estimator streams").begin()?;
//! for (h, c) in hot.chunks(700).zip(cold.chunks(700)) {
//!     acc.push_hot(h)?;
//!     acc.push_cold(c)?;
//! }
//! let streamed = acc.finish()?;
//! assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
//! # Ok(())
//! # }
//! ```

use crate::figure::NoiseFactor;
use crate::power_ratio::{
    MeanSquareEstimator, OneBitPowerRatio, PowerRatioEstimator, PsdRatioEstimator, RatioDetail,
    RatioEstimate,
};
use crate::{uncertainty, yfactor, CoreError};
use nfbist_dsp::psd::{ForgettingWelch, SlidingWelch, StreamingWelch, WelchConfig};
use nfbist_dsp::spectrum::Spectrum;

/// An in-flight streaming ratio estimate: hot/cold chunks in, one
/// [`RatioEstimate`] out.
///
/// Hot and cold pushes may be interleaved arbitrarily — the two
/// records accumulate independently; only the per-record chunk order
/// matters (and it is the record order).
pub trait RatioAccumulator: Send {
    /// Consumes one chunk of the hot record.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError>;

    /// Consumes one chunk of the cold record.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError>;

    /// Forms the ratio from everything pushed **so far**, without
    /// closing the accumulator — the interim estimate a sequential
    /// (early-stopping) screen consults at each checkpoint. Bitwise
    /// identical to what [`RatioAccumulator::finish`] would return at
    /// this point; pushing more chunks afterwards keeps refining the
    /// same accumulator.
    ///
    /// # Errors
    ///
    /// Exactly the batch estimator's failure modes at the current
    /// record length: empty/short records and
    /// [`CoreError::Degenerate`] ratios.
    fn snapshot(&self) -> Result<RatioEstimate, CoreError>;

    /// Closes both records and forms the ratio — bitwise identical to
    /// the batch estimator over the concatenated records.
    ///
    /// # Errors
    ///
    /// Exactly the batch estimator's failure modes: empty/short records
    /// and [`CoreError::Degenerate`] ratios.
    fn finish(self: Box<Self>) -> Result<RatioEstimate, CoreError> {
        self.snapshot()
    }
}

/// A [`PowerRatioEstimator`] that can also run chunked with bounded
/// memory. Obtained through [`PowerRatioEstimator::streaming`].
pub trait StreamingPowerRatioEstimator: PowerRatioEstimator {
    /// Opens a fresh accumulator for one hot/cold record pair.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (invalid FFT size or sample rate).
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError>;
}

/// Running power sums for the time-domain mean-square ratio.
///
/// The sums accumulate sample by sample in record order — the same
/// fold, in the same order, as `stats::mean_square` over the whole
/// record, so the result carries identical bits.
struct MeanSquareAccumulator {
    hot_sum: f64,
    hot_n: usize,
    cold_sum: f64,
    cold_n: usize,
}

impl RatioAccumulator for MeanSquareAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        for &v in chunk {
            self.hot_sum += v * v;
        }
        self.hot_n += chunk.len();
        Ok(())
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        for &v in chunk {
            self.cold_sum += v * v;
        }
        self.cold_n += chunk.len();
        Ok(())
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        if self.hot_n == 0 || self.cold_n == 0 {
            return Err(CoreError::Dsp(nfbist_dsp::DspError::EmptyInput {
                context: "mean_square",
            }));
        }
        let hot_power = self.hot_sum / self.hot_n as f64;
        let cold_power = self.cold_sum / self.cold_n as f64;
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold record carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::MeanSquare,
        })
    }
}

impl StreamingPowerRatioEstimator for MeanSquareEstimator {
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError> {
        Ok(Box::new(MeanSquareAccumulator {
            hot_sum: 0.0,
            hot_n: 0,
            cold_sum: 0.0,
            cold_n: 0,
        }))
    }
}

/// One [`StreamingWelch`] per record for the PSD band-power ratio.
struct PsdRatioAccumulator {
    hot: StreamingWelch,
    cold: StreamingWelch,
    nfft: usize,
    band: (f64, f64),
}

impl RatioAccumulator for PsdRatioAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.hot.push(chunk)?)
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.cold.push(chunk)?)
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        let psd_hot = self.hot.finalize()?;
        let psd_cold = self.cold.finalize()?;
        let hot_power = psd_hot.band_power(self.band.0, self.band.1)?;
        let cold_power = psd_cold.band_power(self.band.0, self.band.1)?;
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold band carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::Psd {
                nfft: self.nfft,
                band: self.band,
            },
        })
    }
}

impl StreamingPowerRatioEstimator for PsdRatioEstimator {
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError> {
        let cfg = WelchConfig::new(self.nfft())?;
        Ok(Box::new(PsdRatioAccumulator {
            hot: StreamingWelch::new(cfg.clone(), self.sample_rate())?,
            cold: StreamingWelch::new(cfg, self.sample_rate())?,
            nfft: self.nfft(),
            band: self.band(),
        }))
    }
}

/// Two [`StreamingWelch`] accumulators feeding the 1-bit estimator's
/// reference-normalization tail.
struct OneBitAccumulator {
    estimator: OneBitPowerRatio,
    hot: StreamingWelch,
    cold: StreamingWelch,
}

impl RatioAccumulator for OneBitAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.hot.push(chunk)?)
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        Ok(self.cold.push(chunk)?)
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        let psd_hot = self.hot.finalize()?;
        let psd_cold = self.cold.finalize()?;
        let est = self.estimator.finish(psd_hot, psd_cold)?;
        Ok(RatioEstimate {
            ratio: est.ratio,
            hot_power: est.hot_noise_power,
            cold_power: est.cold_noise_power,
            detail: RatioDetail::OneBit(Box::new(est)),
        })
    }
}

impl StreamingPowerRatioEstimator for OneBitPowerRatio {
    fn begin(&self) -> Result<Box<dyn RatioAccumulator>, CoreError> {
        let cfg = WelchConfig::new(self.nfft())?.window(self.window());
        Ok(Box::new(OneBitAccumulator {
            estimator: self.clone(),
            hot: StreamingWelch::new(cfg.clone(), self.sample_rate())?,
            cold: StreamingWelch::new(cfg, self.sample_rate())?,
        }))
    }
}

/// Sample-block length the windowed mean-square accumulator retires
/// power sums in. The time-domain estimator has no natural segment
/// size, so its window is quantized in blocks of this many samples —
/// chosen to match the smallest Welch segment the stack uses, keeping
/// the three estimators' emission granularity comparable.
pub const MEAN_SQUARE_BLOCK_SAMPLES: usize = 1_024;

/// Window policy for a [`WindowedRatioAccumulator`]: how old data is
/// retired as new chunks arrive.
///
/// The unit is the estimator's own averaging quantum: Welch segments
/// for the PSD and 1-bit estimators, sample blocks of
/// [`MEAN_SQUARE_BLOCK_SAMPLES`] for the mean-square estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorWindow {
    /// Keep exactly the most recent `segments` averaging units and
    /// drop older ones bin-exactly — the snapshot carries the same
    /// bits as a batch estimate over the retained samples alone.
    Sliding {
        /// Retained unit count (≥ 1).
        segments: usize,
    },
    /// Exponentially forgetting average: each completed unit decays
    /// the running accumulation by `lambda`, for an effective depth of
    /// `(1 + λ)/(1 − λ)` units at steady state.
    Forgetting {
        /// Per-unit decay factor, strictly inside `(0, 1)`.
        lambda: f64,
    },
}

impl EstimatorWindow {
    /// Checks the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a zero sliding
    /// window or a forgetting factor outside the open unit interval.
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            EstimatorWindow::Sliding { segments } => {
                if segments == 0 {
                    return Err(CoreError::InvalidParameter {
                        name: "segments",
                        reason: "sliding window needs at least one segment",
                    });
                }
            }
            EstimatorWindow::Forgetting { lambda } => {
                if !(lambda > 0.0 && lambda < 1.0) {
                    return Err(CoreError::InvalidParameter {
                        name: "lambda",
                        reason: "forgetting factor must lie strictly inside (0, 1)",
                    });
                }
            }
        }
        Ok(())
    }
}

/// A windowed in-flight ratio estimate: hot/cold chunks in, a
/// *current-window* [`RatioEstimate`] out at any point.
///
/// Unlike [`RatioAccumulator`], whose snapshot always reflects the
/// whole stream, this snapshot reflects only what the
/// [`EstimatorWindow`] retains — the estimate tracks the DUT's present
/// state and forgets its history, which is what drift detection needs.
pub trait WindowedRatioAccumulator: Send {
    /// Consumes one chunk of the hot record.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError>;

    /// Consumes one chunk of the cold record.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError>;

    /// Forms the ratio over the currently retained window, without
    /// disturbing the accumulation. For a sliding window the
    /// Welch-based estimators return bitwise the batch estimate over
    /// exactly the retained samples (the mean-square path regroups its
    /// per-sample fold blockwise, so it agrees to rounding only).
    /// Every estimator's snapshot is a pure function of the absolute
    /// sample streams — chunk boundaries never change a bit.
    ///
    /// # Errors
    ///
    /// The batch estimator's failure modes at the current window
    /// content: empty/short windows and [`CoreError::Degenerate`]
    /// ratios.
    fn snapshot(&self) -> Result<RatioEstimate, CoreError>;

    /// Raw samples currently inside the window, as the minimum over
    /// the hot and cold records (fractional for a forgetting window,
    /// where it is the effective depth `(Σλᵏ)²/Σλ²ᵏ` units deep).
    ///
    /// This is the record length to feed — after scaling by the
    /// band-limiting fraction `2B/fs` — into
    /// [`uncertainty::nf_std_from_record_length`];
    /// [`windowed_nf_point`] does exactly that.
    fn effective_samples(&self) -> f64;
}

/// A [`PowerRatioEstimator`] that can run with a retiring window.
/// Obtained through [`PowerRatioEstimator::windowed`].
pub trait WindowedPowerRatioEstimator: PowerRatioEstimator {
    /// Opens a fresh windowed accumulator for one hot/cold stream pair.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (invalid window policy, FFT size
    /// or sample rate).
    fn begin_windowed(
        &self,
        window: EstimatorWindow,
    ) -> Result<Box<dyn WindowedRatioAccumulator>, CoreError>;
}

/// One emission point of a windowed NF time series: the windowed
/// Y-factor estimate folded through eq. 8 with a finite-window sigma.
#[derive(Debug, Clone)]
pub struct WindowedNfPoint {
    /// The windowed ratio estimate the point was formed from.
    pub estimate: RatioEstimate,
    /// The DUT noise factor implied by the windowed Y ratio.
    pub factor: NoiseFactor,
    /// The noise figure in dB.
    pub nf_db: f64,
    /// Predicted standard deviation of `nf_db` for the current window
    /// depth (delta-method, [`uncertainty::nf_std_from_record_length`]).
    /// Non-finite while the window holds no effective samples.
    pub sigma_db: f64,
    /// The effective independent-sample count the sigma was computed
    /// at (window samples × the band-limiting fraction, floored).
    pub n_effective: usize,
}

/// Forms a [`WindowedNfPoint`] from a windowed accumulator's current
/// snapshot: Y → noise factor via the declared source temperatures,
/// sigma via the delta-method variance at the window's effective
/// depth.
///
/// `effective_fraction` is the band-limiting correction `2B/fs` in
/// `(0, 1]` — the fraction of raw samples that count as independent
/// (1 for the full-band mean-square estimator).
///
/// All arithmetic is pure `f64`, so the point is a deterministic
/// function of the accumulator state and the parameters — the bits the
/// monitor's alarm timeline is pinned on.
///
/// # Errors
///
/// Propagates snapshot errors (short window, degenerate ratio),
/// Y-factor domain errors (ratio outside `(1, Th/Tc)`), and rejects an
/// `effective_fraction` outside `(0, 1]`.
pub fn windowed_nf_point(
    acc: &dyn WindowedRatioAccumulator,
    hot_kelvin: f64,
    cold_kelvin: f64,
    effective_fraction: f64,
) -> Result<WindowedNfPoint, CoreError> {
    if !(effective_fraction > 0.0 && effective_fraction <= 1.0) {
        return Err(CoreError::InvalidParameter {
            name: "effective_fraction",
            reason: "band-limiting fraction must lie in (0, 1]",
        });
    }
    let estimate = acc.snapshot()?;
    let factor = yfactor::noise_factor_from_temperatures(estimate.ratio, hot_kelvin, cold_kelvin)?;
    let n_effective = (acc.effective_samples() * effective_fraction).floor() as usize;
    let sigma_db =
        uncertainty::nf_std_from_record_length(factor, hot_kelvin, cold_kelvin, n_effective)?;
    Ok(WindowedNfPoint {
        estimate,
        factor,
        nf_db: factor.to_figure().db(),
        sigma_db,
        n_effective,
    })
}

/// Internal dispatch over the two retiring Welch accumulators, so the
/// PSD and 1-bit windowed paths share one push/finalize surface.
enum WindowedWelch {
    Sliding(SlidingWelch),
    Forgetting(ForgettingWelch),
}

impl WindowedWelch {
    fn new(cfg: WelchConfig, sample_rate: f64, window: EstimatorWindow) -> Result<Self, CoreError> {
        window.validate()?;
        Ok(match window {
            EstimatorWindow::Sliding { segments } => {
                WindowedWelch::Sliding(SlidingWelch::new(cfg, sample_rate, segments)?)
            }
            EstimatorWindow::Forgetting { lambda } => {
                WindowedWelch::Forgetting(ForgettingWelch::new(cfg, sample_rate, lambda)?)
            }
        })
    }

    fn push(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        match self {
            WindowedWelch::Sliding(w) => Ok(w.push(chunk)?),
            WindowedWelch::Forgetting(w) => Ok(w.push(chunk)?),
        }
    }

    fn finalize(&self) -> Result<Spectrum, CoreError> {
        match self {
            WindowedWelch::Sliding(w) => Ok(w.finalize()?),
            WindowedWelch::Forgetting(w) => Ok(w.finalize()?),
        }
    }

    /// Raw samples inside the window: the retained span for the
    /// sliding ring, effective segments × segment length for the
    /// forgetting average.
    fn window_samples(&self) -> f64 {
        match self {
            WindowedWelch::Sliding(w) => w
                .retained_range()
                .map(|(start, end)| (end - start) as f64)
                .unwrap_or(0.0),
            WindowedWelch::Forgetting(w) => {
                w.effective_segments() * w.config().segment_len() as f64
            }
        }
    }
}

/// Block-retiring power sums for the windowed mean-square path. The
/// partial (incomplete) block accumulates sample by sample in stream
/// order — chunk boundaries never change any float op — but only
/// completed blocks enter the snapshot, so emissions are quantized at
/// block rate exactly like the Welch-based estimators are at segment
/// rate.
struct WindowedPowerSum {
    kind: PowerSumKind,
    partial_sum: f64,
    partial_n: usize,
}

enum PowerSumKind {
    Sliding {
        ring: Vec<f64>,
        head: usize,
        filled: usize,
    },
    Forgetting {
        lambda: f64,
        weighted: f64,
        weight: f64,
        weight_sq: f64,
    },
}

impl WindowedPowerSum {
    fn new(window: EstimatorWindow) -> Result<Self, CoreError> {
        window.validate()?;
        let kind = match window {
            EstimatorWindow::Sliding { segments } => PowerSumKind::Sliding {
                ring: vec![0.0; segments],
                head: 0,
                filled: 0,
            },
            EstimatorWindow::Forgetting { lambda } => PowerSumKind::Forgetting {
                lambda,
                weighted: 0.0,
                weight: 0.0,
                weight_sq: 0.0,
            },
        };
        Ok(WindowedPowerSum {
            kind,
            partial_sum: 0.0,
            partial_n: 0,
        })
    }

    fn push(&mut self, chunk: &[f64]) {
        for &v in chunk {
            self.partial_sum += v * v;
            self.partial_n += 1;
            if self.partial_n == MEAN_SQUARE_BLOCK_SAMPLES {
                let sum = self.partial_sum;
                self.partial_sum = 0.0;
                self.partial_n = 0;
                match &mut self.kind {
                    PowerSumKind::Sliding { ring, head, filled } => {
                        ring[*head] = sum;
                        *head = (*head + 1) % ring.len();
                        *filled = (*filled + 1).min(ring.len());
                    }
                    PowerSumKind::Forgetting {
                        lambda,
                        weighted,
                        weight,
                        weight_sq,
                    } => {
                        *weighted = *lambda * *weighted + sum;
                        *weight = *lambda * *weight + 1.0;
                        *weight_sq = *lambda * *lambda * *weight_sq + 1.0;
                    }
                }
            }
        }
    }

    /// Mean-square power over the completed blocks in the window, or
    /// `None` before the first block completes. The fold over block
    /// sums runs oldest → newest from 0.0 — deterministic for any
    /// chunking, though regrouped relative to the per-sample batch
    /// fold.
    fn power(&self) -> Option<f64> {
        match &self.kind {
            PowerSumKind::Sliding { ring, head, filled } => {
                if *filled == 0 {
                    return None;
                }
                let oldest = if *filled < ring.len() { 0 } else { *head };
                let mut sum = 0.0;
                for k in 0..*filled {
                    sum += ring[(oldest + k) % ring.len()];
                }
                Some(sum / (*filled * MEAN_SQUARE_BLOCK_SAMPLES) as f64)
            }
            PowerSumKind::Forgetting {
                weighted, weight, ..
            } => {
                if *weight == 0.0 {
                    return None;
                }
                Some(weighted / (weight * MEAN_SQUARE_BLOCK_SAMPLES as f64))
            }
        }
    }

    fn window_samples(&self) -> f64 {
        match &self.kind {
            PowerSumKind::Sliding { filled, .. } => (filled * MEAN_SQUARE_BLOCK_SAMPLES) as f64,
            PowerSumKind::Forgetting {
                weight, weight_sq, ..
            } => {
                if *weight_sq == 0.0 {
                    0.0
                } else {
                    weight * weight / weight_sq * MEAN_SQUARE_BLOCK_SAMPLES as f64
                }
            }
        }
    }
}

/// Windowed time-domain mean-square ratio.
struct WindowedMeanSquareAccumulator {
    hot: WindowedPowerSum,
    cold: WindowedPowerSum,
}

impl WindowedRatioAccumulator for WindowedMeanSquareAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        self.hot.push(chunk);
        Ok(())
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        self.cold.push(chunk);
        Ok(())
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        let (hot_power, cold_power) = match (self.hot.power(), self.cold.power()) {
            (Some(h), Some(c)) => (h, c),
            _ => {
                return Err(CoreError::Dsp(nfbist_dsp::DspError::EmptyInput {
                    context: "mean_square",
                }))
            }
        };
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold record carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::MeanSquare,
        })
    }

    fn effective_samples(&self) -> f64 {
        self.hot.window_samples().min(self.cold.window_samples())
    }
}

impl WindowedPowerRatioEstimator for MeanSquareEstimator {
    fn begin_windowed(
        &self,
        window: EstimatorWindow,
    ) -> Result<Box<dyn WindowedRatioAccumulator>, CoreError> {
        Ok(Box::new(WindowedMeanSquareAccumulator {
            hot: WindowedPowerSum::new(window)?,
            cold: WindowedPowerSum::new(window)?,
        }))
    }
}

/// Windowed PSD band-power ratio: one retiring Welch per record.
struct WindowedPsdAccumulator {
    hot: WindowedWelch,
    cold: WindowedWelch,
    nfft: usize,
    band: (f64, f64),
}

impl WindowedRatioAccumulator for WindowedPsdAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        self.hot.push(chunk)
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        self.cold.push(chunk)
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        let psd_hot = self.hot.finalize()?;
        let psd_cold = self.cold.finalize()?;
        let hot_power = psd_hot.band_power(self.band.0, self.band.1)?;
        let cold_power = psd_cold.band_power(self.band.0, self.band.1)?;
        if !(cold_power > 0.0) {
            return Err(CoreError::Degenerate {
                reason: "cold band carries no power",
            });
        }
        Ok(RatioEstimate {
            ratio: hot_power / cold_power,
            hot_power,
            cold_power,
            detail: RatioDetail::Psd {
                nfft: self.nfft,
                band: self.band,
            },
        })
    }

    fn effective_samples(&self) -> f64 {
        self.hot.window_samples().min(self.cold.window_samples())
    }
}

impl WindowedPowerRatioEstimator for PsdRatioEstimator {
    fn begin_windowed(
        &self,
        window: EstimatorWindow,
    ) -> Result<Box<dyn WindowedRatioAccumulator>, CoreError> {
        let cfg = WelchConfig::new(self.nfft())?;
        Ok(Box::new(WindowedPsdAccumulator {
            hot: WindowedWelch::new(cfg.clone(), self.sample_rate(), window)?,
            cold: WindowedWelch::new(cfg, self.sample_rate(), window)?,
            nfft: self.nfft(),
            band: self.band(),
        }))
    }
}

/// Windowed 1-bit estimator: two retiring Welch accumulators feeding
/// the same reference-normalization tail as the batch path.
struct WindowedOneBitAccumulator {
    estimator: OneBitPowerRatio,
    hot: WindowedWelch,
    cold: WindowedWelch,
}

impl WindowedRatioAccumulator for WindowedOneBitAccumulator {
    fn push_hot(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        self.hot.push(chunk)
    }

    fn push_cold(&mut self, chunk: &[f64]) -> Result<(), CoreError> {
        self.cold.push(chunk)
    }

    fn snapshot(&self) -> Result<RatioEstimate, CoreError> {
        let psd_hot = self.hot.finalize()?;
        let psd_cold = self.cold.finalize()?;
        let est = self.estimator.finish(psd_hot, psd_cold)?;
        Ok(RatioEstimate {
            ratio: est.ratio,
            hot_power: est.hot_noise_power,
            cold_power: est.cold_noise_power,
            detail: RatioDetail::OneBit(Box::new(est)),
        })
    }

    fn effective_samples(&self) -> f64 {
        self.hot.window_samples().min(self.cold.window_samples())
    }
}

impl WindowedPowerRatioEstimator for OneBitPowerRatio {
    fn begin_windowed(
        &self,
        window: EstimatorWindow,
    ) -> Result<Box<dyn WindowedRatioAccumulator>, CoreError> {
        let cfg = WelchConfig::new(self.nfft())?.window(self.window());
        Ok(Box::new(WindowedOneBitAccumulator {
            estimator: self.clone(),
            hot: WindowedWelch::new(cfg.clone(), self.sample_rate(), window)?,
            cold: WindowedWelch::new(cfg, self.sample_rate(), window)?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::converter::OneBitDigitizer;
    use nfbist_analog::noise::WhiteNoise;
    use nfbist_analog::source::{SquareSource, Waveform};

    const FS: f64 = 20_000.0;

    fn records(n: usize) -> (Vec<f64>, Vec<f64>) {
        (
            WhiteNoise::new(2.0, 51).unwrap().generate(n),
            WhiteNoise::new(1.0, 52).unwrap().generate(n),
        )
    }

    fn stream_estimate(
        est: &dyn PowerRatioEstimator,
        hot: &[f64],
        cold: &[f64],
        chunk: usize,
    ) -> RatioEstimate {
        let mut acc = est.streaming().expect("streaming support").begin().unwrap();
        for c in hot.chunks(chunk) {
            acc.push_hot(c).unwrap();
        }
        for c in cold.chunks(chunk) {
            acc.push_cold(c).unwrap();
        }
        acc.finish().unwrap()
    }

    #[test]
    fn mean_square_streaming_is_bitwise_identical() {
        let (hot, cold) = records(50_000);
        let est = MeanSquareEstimator;
        let batch = est.estimate(&hot, &cold).unwrap();
        for chunk in [1usize, 997, 50_000] {
            let streamed = stream_estimate(&est, &hot, &cold, chunk);
            assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
            assert_eq!(streamed.hot_power.to_bits(), batch.hot_power.to_bits());
            assert_eq!(streamed.cold_power.to_bits(), batch.cold_power.to_bits());
        }
    }

    #[test]
    fn psd_streaming_is_bitwise_identical() {
        let (hot, cold) = records(30_000);
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let batch = PowerRatioEstimator::estimate(&est, &hot, &cold).unwrap();
        for chunk in [511usize, 1_024, 1_025, 30_000] {
            let streamed = stream_estimate(&est, &hot, &cold, chunk);
            assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
            assert_eq!(streamed.hot_power.to_bits(), batch.hot_power.to_bits());
        }
    }

    #[test]
    fn one_bit_streaming_is_bitwise_identical_with_full_detail() {
        let n = 1 << 16;
        let hot = WhiteNoise::new(1.0, 61).unwrap().generate(n);
        let cold = WhiteNoise::new(0.5, 62).unwrap().generate(n);
        let reference = SquareSource::new(3_000.0, 0.1)
            .unwrap()
            .generate(n, FS)
            .unwrap();
        let d = OneBitDigitizer::ideal();
        let bh = d.digitize(&hot, &reference).unwrap().to_bipolar();
        let bc = d.digitize(&cold, &reference).unwrap().to_bipolar();

        let est = OneBitPowerRatio::new(FS, 2_048, 3_000.0, (100.0, 1_500.0)).unwrap();
        let batch = PowerRatioEstimator::estimate(&est, &bh, &bc).unwrap();
        for chunk in [777usize, 2_048, 4_099] {
            let streamed = stream_estimate(&est, &bh, &bc, chunk);
            assert_eq!(streamed.ratio.to_bits(), batch.ratio.to_bits());
            let (sd, bd) = (
                streamed.one_bit().expect("detail"),
                batch.one_bit().expect("detail"),
            );
            assert_eq!(
                sd.normalization.scale.to_bits(),
                bd.normalization.scale.to_bits()
            );
            assert_eq!(sd.hot_spectrum.density(), bd.hot_spectrum.density());
            assert_eq!(
                sd.cold_spectrum_normalized.density(),
                bd.cold_spectrum_normalized.density()
            );
        }
    }

    #[test]
    fn degenerate_and_empty_cases_match_batch_semantics() {
        // Empty records error like the batch estimator.
        let acc = MeanSquareEstimator.streaming().unwrap().begin().unwrap();
        assert!(acc.finish().is_err());
        // A powerless cold record is Degenerate, not a panic.
        let mut acc = MeanSquareEstimator.streaming().unwrap().begin().unwrap();
        acc.push_hot(&[1.0, -1.0]).unwrap();
        acc.push_cold(&[0.0, 0.0]).unwrap();
        assert!(matches!(acc.finish(), Err(CoreError::Degenerate { .. })));
        // Too-short PSD records error like "input shorter than one
        // segment".
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let mut acc = est.streaming().unwrap().begin().unwrap();
        acc.push_hot(&[0.5; 100]).unwrap();
        acc.push_cold(&[0.5; 100]).unwrap();
        assert!(acc.finish().is_err());
    }

    #[test]
    fn snapshot_matches_finish_and_leaves_the_accumulator_live() {
        // At every prefix length, snapshot() must carry exactly the
        // bits a fresh accumulator fed the same prefix would finish
        // with — and taking the snapshot must not disturb the
        // continued accumulation.
        let (hot, cold) = records(30_000);
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let mut acc = est.streaming().unwrap().begin().unwrap();
        let chunk = 7_000;
        let mut fed = 0usize;
        for (h, c) in hot.chunks(chunk).zip(cold.chunks(chunk)) {
            acc.push_hot(h).unwrap();
            acc.push_cold(c).unwrap();
            fed += h.len();
            let prefix = stream_estimate(&est, &hot[..fed], &cold[..fed], chunk);
            let snap = acc.snapshot().unwrap();
            assert_eq!(snap.ratio.to_bits(), prefix.ratio.to_bits());
            assert_eq!(snap.hot_power.to_bits(), prefix.hot_power.to_bits());
        }
        // The final finish is untouched by the interim snapshots.
        let batch = PowerRatioEstimator::estimate(&est, &hot, &cold).unwrap();
        assert_eq!(acc.finish().unwrap().ratio.to_bits(), batch.ratio.to_bits());

        // Same for the time-domain sums.
        let est = MeanSquareEstimator;
        let mut acc = est.streaming().unwrap().begin().unwrap();
        acc.push_hot(&hot[..1_000]).unwrap();
        acc.push_cold(&cold[..1_000]).unwrap();
        let snap = acc.snapshot().unwrap();
        let fresh = stream_estimate(&est, &hot[..1_000], &cold[..1_000], 100);
        assert_eq!(snap.ratio.to_bits(), fresh.ratio.to_bits());
        // An empty accumulator's snapshot errors like finish.
        let empty = MeanSquareEstimator.streaming().unwrap().begin().unwrap();
        assert!(empty.snapshot().is_err());
    }

    fn windowed_feed(
        est: &dyn PowerRatioEstimator,
        window: EstimatorWindow,
        hot: &[f64],
        cold: &[f64],
        chunk: usize,
    ) -> Box<dyn WindowedRatioAccumulator> {
        let mut acc = est
            .windowed()
            .expect("windowed support")
            .begin_windowed(window)
            .unwrap();
        for (h, c) in hot.chunks(chunk).zip(cold.chunks(chunk)) {
            acc.push_hot(h).unwrap();
            acc.push_cold(c).unwrap();
        }
        acc
    }

    #[test]
    fn sliding_windowed_psd_is_bitwise_batch_over_the_retained_samples() {
        // Once the ring wraps, the snapshot must forget everything
        // before the window: estimate over exactly the retained span
        // with the batch estimator and demand identical bits.
        let (hot, cold) = records(40_000);
        let nfft = 1_024usize;
        let window = 8usize;
        let est = PsdRatioEstimator::new(FS, nfft, (100.0, 9_000.0)).unwrap();
        for chunk in [997usize, nfft, 4_096] {
            let acc = windowed_feed(
                &est,
                EstimatorWindow::Sliding { segments: window },
                &hot,
                &cold,
                chunk,
            );
            let snap = acc.snapshot().unwrap();
            // Default Welch config: 50 % overlap → hop = nfft/2; the
            // retained span is the last `count` hop-spaced segments.
            let hop = nfft / 2;
            let seen = (hot.len() - nfft) / hop + 1;
            let count = seen.min(window);
            let (start, end) = ((seen - count) * hop, (seen - 1) * hop + nfft);
            let batch =
                PowerRatioEstimator::estimate(&est, &hot[start..end], &cold[start..end]).unwrap();
            assert_eq!(snap.ratio.to_bits(), batch.ratio.to_bits(), "chunk {chunk}");
            assert_eq!(snap.hot_power.to_bits(), batch.hot_power.to_bits());
            assert_eq!(snap.cold_power.to_bits(), batch.cold_power.to_bits());
            // Window full → effective depth saturated at the span.
            assert_eq!(acc.effective_samples(), (end - start) as f64);
        }
    }

    #[test]
    fn sliding_windowed_one_bit_is_bitwise_batch_over_the_retained_samples() {
        let n = 1 << 15;
        let hot = WhiteNoise::new(1.0, 61).unwrap().generate(n);
        let cold = WhiteNoise::new(0.5, 62).unwrap().generate(n);
        let reference = SquareSource::new(3_000.0, 0.1)
            .unwrap()
            .generate(n, FS)
            .unwrap();
        let d = OneBitDigitizer::ideal();
        let bh = d.digitize(&hot, &reference).unwrap().to_bipolar();
        let bc = d.digitize(&cold, &reference).unwrap().to_bipolar();

        let nfft = 2_048usize;
        let window = 6usize;
        let est = OneBitPowerRatio::new(FS, nfft, 3_000.0, (100.0, 1_500.0)).unwrap();
        for chunk in [777usize, nfft, 4_099] {
            let acc = windowed_feed(
                &est,
                EstimatorWindow::Sliding { segments: window },
                &bh,
                &bc,
                chunk,
            );
            let snap = acc.snapshot().unwrap();
            let hop = nfft / 2;
            let seen = (n - nfft) / hop + 1;
            let count = seen.min(window);
            let (start, end) = ((seen - count) * hop, (seen - 1) * hop + nfft);
            let batch =
                PowerRatioEstimator::estimate(&est, &bh[start..end], &bc[start..end]).unwrap();
            assert_eq!(snap.ratio.to_bits(), batch.ratio.to_bits(), "chunk {chunk}");
            let (sd, bd) = (snap.one_bit().unwrap(), batch.one_bit().unwrap());
            assert_eq!(
                sd.normalization.scale.to_bits(),
                bd.normalization.scale.to_bits()
            );
        }
    }

    #[test]
    fn sliding_windowed_mean_square_tracks_the_retained_blocks() {
        let (hot, cold) = records(50_000);
        let window = 12usize;
        let est = MeanSquareEstimator;
        let acc = windowed_feed(
            &est,
            EstimatorWindow::Sliding { segments: window },
            &hot,
            &cold,
            997,
        );
        let snap = acc.snapshot().unwrap();
        let blocks = hot.len() / MEAN_SQUARE_BLOCK_SAMPLES;
        let count = blocks.min(window);
        let end = blocks * MEAN_SQUARE_BLOCK_SAMPLES;
        let start = end - count * MEAN_SQUARE_BLOCK_SAMPLES;
        let batch = est.estimate(&hot[start..end], &cold[start..end]).unwrap();
        // The blockwise fold regroups the batch sum, so agreement is
        // to rounding, not bitwise.
        assert!((snap.ratio / batch.ratio - 1.0).abs() < 1e-12);
        assert_eq!(
            acc.effective_samples(),
            (count * MEAN_SQUARE_BLOCK_SAMPLES) as f64
        );
    }

    #[test]
    fn windowed_snapshots_are_chunk_invariant_bitwise() {
        // Forgetting (and sliding) snapshots must carry identical bits
        // for any chunking of the same streams — the invariant the
        // monitor alarm timeline is pinned on.
        let (hot, cold) = records(30_000);
        for window in [
            EstimatorWindow::Forgetting { lambda: 0.8 },
            EstimatorWindow::Sliding { segments: 5 },
        ] {
            let psd = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
            let ests: [&dyn PowerRatioEstimator; 2] = [&MeanSquareEstimator, &psd];
            for est in ests {
                let reference = windowed_feed(est, window, &hot, &cold, 30_000)
                    .snapshot()
                    .unwrap();
                for chunk in [1usize, 63, 1_024, 1_025, 7_000] {
                    let snap = windowed_feed(est, window, &hot, &cold, chunk)
                        .snapshot()
                        .unwrap();
                    assert_eq!(
                        snap.ratio.to_bits(),
                        reference.ratio.to_bits(),
                        "{} chunk {chunk} window {window:?}",
                        est.label()
                    );
                    assert_eq!(snap.hot_power.to_bits(), reference.hot_power.to_bits());
                }
            }
        }
    }

    #[test]
    fn forgetting_window_depth_saturates() {
        // λ = 0.5 → (1 + λ)/(1 − λ) = 3 effective segments.
        let (hot, cold) = records(40_960);
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let acc = windowed_feed(
            &est,
            EstimatorWindow::Forgetting { lambda: 0.5 },
            &hot,
            &cold,
            4_096,
        );
        let depth = acc.effective_samples() / 1_024.0;
        assert!((depth - 3.0).abs() < 1e-6, "effective depth {depth}");

        // Mean-square forgetting saturates at the same depth in
        // blocks.
        let acc = windowed_feed(
            &MeanSquareEstimator,
            EstimatorWindow::Forgetting { lambda: 0.5 },
            &hot,
            &cold,
            4_096,
        );
        let depth = acc.effective_samples() / MEAN_SQUARE_BLOCK_SAMPLES as f64;
        assert!((depth - 3.0).abs() < 1e-6, "effective depth {depth}");
    }

    #[test]
    fn windowed_nf_point_carries_sigma_and_is_deterministic() {
        // Hot record at 2× the cold power → Y = 2, safely inside
        // (1, Th/Tc) for the 2900/290 K pair.
        let (hot, cold) = records(40_000);
        let est = PsdRatioEstimator::new(FS, 1_024, (100.0, 9_000.0)).unwrap();
        let window = EstimatorWindow::Sliding { segments: 8 };
        let acc = windowed_feed(&est, window, &hot, &cold, 1_024);
        let fraction = 2.0 * (9_000.0 - 100.0) / FS;
        let point = windowed_nf_point(&*acc, 2_900.0, 290.0, fraction).unwrap();
        assert_eq!(
            point.nf_db.to_bits(),
            point.factor.to_figure().db().to_bits()
        );
        assert!(point.sigma_db.is_finite() && point.sigma_db > 0.0);
        assert_eq!(
            point.n_effective,
            (acc.effective_samples() * fraction).floor() as usize
        );
        // Bit-determinism across re-runs.
        let again = windowed_nf_point(&*acc, 2_900.0, 290.0, fraction).unwrap();
        assert_eq!(point.nf_db.to_bits(), again.nf_db.to_bits());
        assert_eq!(point.sigma_db.to_bits(), again.sigma_db.to_bits());
        // A shallower window must widen the predicted sigma.
        let shallow = windowed_feed(
            &est,
            EstimatorWindow::Sliding { segments: 2 },
            &hot,
            &cold,
            1_024,
        );
        let wide = windowed_nf_point(&*shallow, 2_900.0, 290.0, fraction).unwrap();
        assert!(wide.sigma_db > point.sigma_db);
        // The band-limiting fraction is validated.
        assert!(windowed_nf_point(&*acc, 2_900.0, 290.0, 0.0).is_err());
        assert!(windowed_nf_point(&*acc, 2_900.0, 290.0, 1.5).is_err());
    }

    #[test]
    fn windowed_validation_and_empty_snapshots() {
        for est in [
            &MeanSquareEstimator as &dyn PowerRatioEstimator,
            &PsdRatioEstimator::new(FS, 512, (100.0, 9_000.0)).unwrap(),
        ] {
            let w = est.windowed().unwrap();
            assert!(w
                .begin_windowed(EstimatorWindow::Sliding { segments: 0 })
                .is_err());
            for lambda in [0.0, 1.0, -0.5, f64::NAN] {
                assert!(w
                    .begin_windowed(EstimatorWindow::Forgetting { lambda })
                    .is_err());
            }
            // Nothing pushed yet → snapshot errors like the batch
            // estimator on an empty record.
            let acc = w
                .begin_windowed(EstimatorWindow::Sliding { segments: 3 })
                .unwrap();
            assert!(acc.snapshot().is_err());
            assert_eq!(acc.effective_samples(), 0.0);
        }
        assert!(EstimatorWindow::Sliding { segments: 1 }.validate().is_ok());
        assert!(EstimatorWindow::Forgetting { lambda: 0.9 }
            .validate()
            .is_ok());
    }

    #[test]
    fn discovery_through_trait_objects() {
        let boxed: Box<dyn PowerRatioEstimator> =
            Box::new(PsdRatioEstimator::new(FS, 512, (100.0, 9_000.0)).unwrap());
        assert!(boxed.streaming().is_some());
        assert!(boxed.windowed().is_some());
        let boxed: Box<dyn PowerRatioEstimator> = Box::new(MeanSquareEstimator);
        assert!(boxed.streaming().is_some());
        assert!(boxed.windowed().is_some());
        let boxed: Box<dyn PowerRatioEstimator> =
            Box::new(OneBitPowerRatio::new(FS, 512, 3_000.0, (100.0, 1_500.0)).unwrap());
        assert!(boxed.streaming().is_some());
        assert!(boxed.windowed().is_some());

        /// An estimator that never opted in.
        #[derive(Debug)]
        struct Opaque;
        impl PowerRatioEstimator for Opaque {
            fn label(&self) -> String {
                "opaque".into()
            }
            fn estimate(&self, _h: &[f64], _c: &[f64]) -> Result<RatioEstimate, CoreError> {
                Err(CoreError::Degenerate { reason: "stub" })
            }
        }
        let boxed: Box<dyn PowerRatioEstimator> = Box::new(Opaque);
        assert!(boxed.streaming().is_none(), "default is no streaming");
        assert!(boxed.windowed().is_none(), "default is no windowing");
    }
}
