//! Signal-to-noise ratio measurement (paper eq. 1).
//!
//! `SNR = 10·log10(Vs²/Vn²)` — the quantity whose input/output ratio
//! defines the noise factor (eq. 2). This module estimates it from
//! records both in the time domain (signal-present vs signal-absent
//! captures) and spectrally (tone power vs integrated noise floor).

use crate::CoreError;
use nfbist_dsp::psd::WelchConfig;
use nfbist_dsp::spectrum::Spectrum;

/// An SNR estimate with its components exposed (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrEstimate {
    /// Signal power (mean square, V²).
    pub signal_power: f64,
    /// Noise power (mean square, V²).
    pub noise_power: f64,
    /// The ratio in dB (eq. 1).
    pub snr_db: f64,
}

/// Time-domain SNR from two captures: one with the signal present
/// (signal + noise) and one with it absent (noise only). The signal
/// power is the difference of mean squares — valid when signal and
/// noise are uncorrelated.
///
/// # Errors
///
/// Returns [`CoreError::Degenerate`] when the signal-present capture
/// does not exceed the noise capture in power, and propagates empty
/// input errors.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// // Square-wave "signal" of power 4 over noise of power 1.
/// let with: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 2.0 } else { -2.0 }).collect();
/// let mixed: Vec<f64> = with.iter().enumerate()
///     .map(|(i, v)| v + if i % 4 < 2 { 1.0 } else { -1.0 })
///     .collect();
/// let noise: Vec<f64> = (0..1000).map(|i| if i % 4 < 2 { 1.0 } else { -1.0 }).collect();
/// let est = nfbist_core::snr::snr_from_captures(&mixed, &noise)?;
/// assert!((est.snr_db - 6.02).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn snr_from_captures(
    signal_plus_noise: &[f64],
    noise_only: &[f64],
) -> Result<SnrEstimate, CoreError> {
    let total = nfbist_dsp::stats::mean_square(signal_plus_noise)?;
    let noise = nfbist_dsp::stats::mean_square(noise_only)?;
    if !(total > noise) || !(noise > 0.0) {
        return Err(CoreError::Degenerate {
            reason: "signal-present capture does not exceed the noise-only capture",
        });
    }
    let signal = total - noise;
    Ok(SnrEstimate {
        signal_power: signal,
        noise_power: noise,
        snr_db: 10.0 * (signal / noise).log10(),
    })
}

/// Spectral SNR of a tone at `tone_frequency` against the noise
/// integrated over `noise_band` (tone bins excluded), from a single
/// record.
///
/// # Errors
///
/// Propagates PSD and band errors; [`CoreError::Degenerate`] for a
/// powerless noise band.
pub fn snr_spectral(
    record: &[f64],
    sample_rate: f64,
    nfft: usize,
    tone_frequency: f64,
    noise_band: (f64, f64),
) -> Result<SnrEstimate, CoreError> {
    let psd = WelchConfig::new(nfft)?.estimate(record, sample_rate)?;
    snr_from_spectrum(&psd, tone_frequency, noise_band)
}

/// Same as [`snr_spectral`] but on a precomputed spectrum.
///
/// # Errors
///
/// Same as [`snr_spectral`].
pub fn snr_from_spectrum(
    psd: &Spectrum,
    tone_frequency: f64,
    noise_band: (f64, f64),
) -> Result<SnrEstimate, CoreError> {
    let k0 = psd.bin_of(tone_frequency)?;
    let tone_bins: Vec<usize> = psd.bins_around(tone_frequency, 3)?;
    let signal_power = psd.tone_power(k0, 3)?;
    let noise_power = psd.band_power_excluding(noise_band.0, noise_band.1, &tone_bins)?;
    if !(noise_power > 0.0) {
        return Err(CoreError::Degenerate {
            reason: "noise band carries no power",
        });
    }
    Ok(SnrEstimate {
        signal_power,
        noise_power,
        snr_db: 10.0 * (signal_power / noise_power).log10(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::noise::WhiteNoise;
    use nfbist_analog::source::{SineSource, Waveform};

    #[test]
    fn capture_method_validation() {
        assert!(snr_from_captures(&[], &[1.0]).is_err());
        // Noise-only exceeding the mixed capture is degenerate.
        assert!(snr_from_captures(&[1.0, -1.0], &[3.0, -3.0]).is_err());
        assert!(snr_from_captures(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn capture_method_on_synthetic_mix() {
        let n = 200_000;
        let fs = 20_000.0;
        let tone = SineSource::new(1_000.0, 1.0)
            .unwrap()
            .generate(n, fs)
            .unwrap();
        let noise = WhiteNoise::new(0.25, 1).unwrap().generate(n);
        let mixed: Vec<f64> = tone.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let fresh_noise = WhiteNoise::new(0.25, 2).unwrap().generate(n);
        let est = snr_from_captures(&mixed, &fresh_noise).unwrap();
        // Signal power 0.5, noise power 0.0625 → 9.03 dB.
        assert!((est.snr_db - 9.03).abs() < 0.2, "snr {}", est.snr_db);
        assert!((est.signal_power - 0.5).abs() < 0.02);
        assert!((est.noise_power - 0.0625).abs() < 0.005);
    }

    #[test]
    fn spectral_method_matches_construction() {
        let n = 1 << 18;
        let fs = 20_000.0;
        let amp = 0.5;
        let sigma = 0.2;
        let tone = SineSource::new(2_000.0, amp)
            .unwrap()
            .generate(n, fs)
            .unwrap();
        let noise = WhiteNoise::new(sigma, 3).unwrap().generate(n);
        let mixed: Vec<f64> = tone.iter().zip(&noise).map(|(a, b)| a + b).collect();
        let est = snr_spectral(&mixed, fs, 4_096, 2_000.0, (100.0, 9_000.0)).unwrap();
        // Tone power amp²/2 = 0.125; noise in 100–9000 Hz of the
        // σ² = 0.04 white floor ≈ 0.04·8900/10000 = 0.0356 → 5.45 dB.
        let expected = 10.0 * (0.125f64 / (0.04 * 8_900.0 / 10_000.0)).log10();
        assert!(
            (est.snr_db - expected).abs() < 0.3,
            "snr {} vs {expected}",
            est.snr_db
        );
    }

    #[test]
    fn spectral_method_degenerate_on_silence() {
        let tone = SineSource::new(2_000.0, 1.0)
            .unwrap()
            .generate(1 << 14, 20_000.0)
            .unwrap();
        // A pure tone has (numerically) zero noise-band power.
        let result = snr_spectral(&tone, 20_000.0, 2_048, 2_000.0, (100.0, 1_000.0));
        match result {
            Err(CoreError::Degenerate { .. }) => {}
            Ok(est) => assert!(est.snr_db > 60.0, "snr {}", est.snr_db),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
