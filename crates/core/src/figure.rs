//! Noise factor and noise figure types (paper §3.1, eqs. 2–3, Table 1).

use crate::CoreError;
use std::fmt;

/// Linear noise factor `F = SNR_in / SNR_out` (eq. 2); always ≥ 1 for a
/// physical two-port.
///
/// # Examples
///
/// ```
/// use nfbist_core::figure::{NoiseFactor, NoiseFigure};
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let f = NoiseFactor::new(10.0)?;
/// assert!((f.to_figure().db() - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct NoiseFactor(f64);

impl NoiseFactor {
    /// A noiseless circuit: `F = 1` (NF = 0 dB), Table 1 row 1.
    pub const NOISELESS: NoiseFactor = NoiseFactor(1.0);

    /// Creates a noise factor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for values below 1 or
    /// non-finite.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if !(value >= 1.0) || !value.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "noise_factor",
                reason: "must be finite and at least 1",
            });
        }
        Ok(NoiseFactor(value))
    }

    /// Creates a noise factor from a raw estimate that may sit slightly
    /// below 1 due to estimator variance; values in `[1−tolerance, 1)`
    /// are clamped to exactly 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the value is below the
    /// tolerance band or non-finite.
    pub fn from_estimate(value: f64, tolerance: f64) -> Result<Self, CoreError> {
        if !value.is_finite() || value < 1.0 - tolerance {
            return Err(CoreError::InvalidParameter {
                name: "noise_factor",
                reason: "estimate below the physical limit beyond tolerance",
            });
        }
        Ok(NoiseFactor(value.max(1.0)))
    }

    /// The linear value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to a noise figure (eq. 3).
    pub fn to_figure(self) -> NoiseFigure {
        NoiseFigure(10.0 * self.0.log10())
    }

    /// The equivalent input noise temperature `Te = (F−1)·T0` in
    /// kelvin.
    pub fn equivalent_temperature(self) -> f64 {
        (self.0 - 1.0) * 290.0
    }
}

impl fmt::Display for NoiseFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F={:.4}", self.0)
    }
}

/// Noise figure in dB: `NF = 10·log₁₀(F)` (eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct NoiseFigure(f64);

impl NoiseFigure {
    /// Creates a noise figure from a dB value (must be ≥ 0).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for negative or
    /// non-finite values.
    pub fn from_db(db: f64) -> Result<Self, CoreError> {
        if !(db >= 0.0) || !db.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "noise_figure_db",
                reason: "must be finite and non-negative",
            });
        }
        Ok(NoiseFigure(db))
    }

    /// The dB value.
    pub fn db(self) -> f64 {
        self.0
    }

    /// Converts back to a linear noise factor.
    pub fn to_factor(self) -> NoiseFactor {
        NoiseFactor(10f64.powf(self.0 / 10.0))
    }
}

impl fmt::Display for NoiseFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

/// One row of the paper's Table 1: a reference NF/F pair with its
/// example circuit class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferencePoint {
    /// Noise figure in dB.
    pub nf_db: f64,
    /// Linear noise factor.
    pub factor: f64,
    /// The example the paper attaches to this value.
    pub example: &'static str,
}

/// The paper's Table 1 ("some reference values for noise figure and
/// noise factor").
pub const TABLE_1: [ReferencePoint; 3] = [
    ReferencePoint {
        nf_db: 0.0,
        factor: 1.0,
        example: "noiseless analog circuit",
    },
    ReferencePoint {
        nf_db: 3.0,
        factor: 2.0,
        example: "RF low noise amplifier",
    },
    ReferencePoint {
        nf_db: 10.0,
        factor: 10.0,
        example: "RF mixer",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(NoiseFactor::new(0.9).is_err());
        assert!(NoiseFactor::new(f64::NAN).is_err());
        assert!(NoiseFigure::from_db(-0.1).is_err());
        assert!(NoiseFigure::from_db(f64::INFINITY).is_err());
    }

    #[test]
    fn roundtrip() {
        for f in [1.0, 2.0, 10.0, 41.7] {
            let factor = NoiseFactor::new(f).unwrap();
            let back = factor.to_figure().to_factor();
            assert!((back.value() - f).abs() < 1e-12);
        }
    }

    #[test]
    fn table1_is_consistent() {
        for row in TABLE_1 {
            let from_factor = NoiseFactor::new(row.factor).unwrap().to_figure().db();
            // The paper rounds 3.0103 → 3; allow that rounding.
            assert!(
                (from_factor - row.nf_db).abs() < 0.02,
                "{}: {} vs {}",
                row.example,
                from_factor,
                row.nf_db
            );
        }
    }

    #[test]
    fn noiseless_constant() {
        assert_eq!(NoiseFactor::NOISELESS.value(), 1.0);
        assert_eq!(NoiseFactor::NOISELESS.to_figure().db(), 0.0);
        assert_eq!(NoiseFactor::NOISELESS.equivalent_temperature(), 0.0);
    }

    #[test]
    fn equivalent_temperature() {
        // F = 2 → Te = 290 K.
        let f = NoiseFactor::new(2.0).unwrap();
        assert!((f.equivalent_temperature() - 290.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_clamping() {
        let f = NoiseFactor::from_estimate(0.995, 0.01).unwrap();
        assert_eq!(f.value(), 1.0);
        assert!(NoiseFactor::from_estimate(0.95, 0.01).is_err());
        let f = NoiseFactor::from_estimate(3.0, 0.01).unwrap();
        assert_eq!(f.value(), 3.0);
    }

    #[test]
    fn display() {
        assert_eq!(NoiseFactor::new(2.0).unwrap().to_string(), "F=2.0000");
        assert_eq!(NoiseFigure::from_db(3.01).unwrap().to_string(), "3.01 dB");
    }

    #[test]
    fn ordering() {
        let quiet = NoiseFactor::new(1.5).unwrap();
        let noisy = NoiseFactor::new(5.0).unwrap();
        assert!(quiet < noisy);
        assert!(quiet.to_figure() < noisy.to_figure());
    }
}
