//! The direct NF measurement method (paper §3.2 / §4.1, eqs. 4 and 10)
//! and its gain-error sensitivity — the weakness that motivates the
//! Y-factor BIST.

use crate::figure::NoiseFactor;
use crate::yfactor::T0;
use crate::CoreError;
use nfbist_analog::constants::BOLTZMANN;

/// Direct-method estimate (eq. 4): the measured output noise power with
/// a 290 K source termination, divided by `k·T0·B·G`.
///
/// * `output_power` — measured noise power at the chain output (W, or
///   any unit consistent with the gain).
/// * `bandwidth` — measurement bandwidth B in Hz.
/// * `power_gain` — the **believed** end-to-end power gain G.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-positive inputs and
/// the underlying estimate errors for non-physical results.
///
/// # Examples
///
/// ```
/// use nfbist_analog::constants::BOLTZMANN;
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// // A DUT with F = 2: output power is 2·kT0·B·G.
/// let b = 1_000.0;
/// let g = 1e6;
/// let n_out = 2.0 * BOLTZMANN * 290.0 * b * g;
/// let f = nfbist_core::direct::noise_factor_direct(n_out, b, g)?;
/// assert!((f.value() - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn noise_factor_direct(
    output_power: f64,
    bandwidth: f64,
    power_gain: f64,
) -> Result<NoiseFactor, CoreError> {
    if !(output_power > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "output_power",
            reason: "must be positive",
        });
    }
    if !(bandwidth > 0.0) || !(power_gain > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "bandwidth/gain",
            reason: "must be positive",
        });
    }
    let reference = BOLTZMANN * T0 * bandwidth * power_gain;
    NoiseFactor::from_estimate(output_power / reference, 0.2)
}

/// Eq. 10: the noise factor the direct method *reports* when the
/// conditioning amplifier's true power gain deviates from the believed
/// one by the fraction `gain_error` (`Ga → Ga·(1+ε)` in voltage terms
/// means the power gain deviates by `(1+ε)²`).
///
/// The numerator (measured power) scales with the actual gain while the
/// denominator uses the believed gain, so the estimate scales by the
/// power-gain error — this is the sensitivity the Y-factor method
/// cancels (its eq. 11 has the deviation in both numerator and
/// denominator).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for a gain error at or below
/// −100 %.
///
/// # Examples
///
/// ```
/// use nfbist_core::figure::NoiseFactor;
/// use nfbist_core::direct::reported_factor_with_gain_error;
///
/// # fn main() -> Result<(), nfbist_core::CoreError> {
/// let truth = NoiseFactor::new(2.0)?;
/// // +5 % voltage gain error → ~+10 % reported F (≈ +0.41 dB).
/// let reported = reported_factor_with_gain_error(truth, 0.05)?;
/// assert!((reported.value() - 2.0 * 1.05_f64.powi(2)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn reported_factor_with_gain_error(
    true_factor: NoiseFactor,
    gain_error: f64,
) -> Result<NoiseFactor, CoreError> {
    if !gain_error.is_finite() || gain_error <= -1.0 {
        return Err(CoreError::InvalidParameter {
            name: "gain_error",
            reason: "must be finite and above -1",
        });
    }
    let power_scale = (1.0 + gain_error) * (1.0 + gain_error);
    NoiseFactor::from_estimate(true_factor.value() * power_scale, 0.5)
}

/// The NF error in dB caused by a fractional voltage-gain error in the
/// direct method: `ΔNF = 20·log10(1+ε)` — independent of the DUT.
///
/// # Examples
///
/// ```
/// let e = nfbist_core::direct::nf_error_db_for_gain_error(0.05);
/// assert!((e - 0.424).abs() < 0.001);
/// ```
pub fn nf_error_db_for_gain_error(gain_error: f64) -> f64 {
    20.0 * (1.0 + gain_error).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(noise_factor_direct(0.0, 1.0, 1.0).is_err());
        assert!(noise_factor_direct(1.0, 0.0, 1.0).is_err());
        assert!(noise_factor_direct(1.0, 1.0, 0.0).is_err());
        let f = NoiseFactor::new(2.0).unwrap();
        assert!(reported_factor_with_gain_error(f, -1.0).is_err());
        assert!(reported_factor_with_gain_error(f, f64::NAN).is_err());
    }

    #[test]
    fn exact_recovery_with_known_gain() {
        for f_true in [1.0, 2.0, 10.0, 41.7] {
            let b = 1_000.0;
            let g = 1e8;
            let n_out = f_true * BOLTZMANN * T0 * b * g;
            let f = noise_factor_direct(n_out, b, g).unwrap();
            assert!((f.value() - f_true).abs() / f_true < 1e-12);
        }
    }

    #[test]
    fn gain_error_skews_estimate_multiplicatively() {
        let truth = NoiseFactor::new(10.0).unwrap();
        let high = reported_factor_with_gain_error(truth, 0.10).unwrap();
        assert!((high.value() - 12.1).abs() < 1e-9);
        let low = reported_factor_with_gain_error(truth, -0.10).unwrap();
        assert!((low.value() - 8.1).abs() < 1e-9);
    }

    #[test]
    fn nf_error_in_db_is_dut_independent() {
        for f_true in [1.5, 2.0, 10.0] {
            let truth = NoiseFactor::new(f_true).unwrap();
            let reported = reported_factor_with_gain_error(truth, 0.05).unwrap();
            let delta = reported.to_figure().db() - truth.to_figure().db();
            assert!((delta - nf_error_db_for_gain_error(0.05)).abs() < 1e-9);
        }
    }

    #[test]
    fn five_percent_gain_error_is_nearly_half_db() {
        // The scale of the problem the paper highlights: a 5 % gain
        // drift corrupts the direct method by ≈0.42 dB on any DUT.
        let e = nf_error_db_for_gain_error(0.05);
        assert!(e > 0.4 && e < 0.45, "error {e}");
        assert!(nf_error_db_for_gain_error(0.0).abs() < 1e-12);
        assert!(nf_error_db_for_gain_error(-0.05) < 0.0);
    }
}
