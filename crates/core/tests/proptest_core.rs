//! Property-based tests for the estimation core: the Y-factor algebra,
//! arcsine-law identities and figure conversions must hold over the
//! whole physical parameter space.

use nfbist_core::arcsine;
use nfbist_core::direct;
use nfbist_core::figure::{NoiseFactor, NoiseFigure};
use nfbist_core::uncertainty;
use nfbist_core::yfactor;
use proptest::prelude::*;

/// Strategy over physical noise factors (1 … 1000, i.e. NF 0–30 dB).
fn noise_factor() -> impl Strategy<Value = NoiseFactor> {
    (1.0f64..1000.0).prop_map(|f| NoiseFactor::new(f).unwrap())
}

/// Strategy over hot/cold temperature pairs with a usable ENR.
fn temperature_pair() -> impl Strategy<Value = (f64, f64)> {
    (300.0f64..20_000.0, 10.0f64..290.0).prop_map(|(th, tc)| (th.max(tc * 2.0), tc))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn yfactor_roundtrip_over_physical_space(f in noise_factor(), temps in temperature_pair()) {
        let (th, tc) = temps;
        let y = yfactor::expected_y(f, th, tc).unwrap();
        prop_assert!(y > 1.0);
        let back = yfactor::noise_factor_from_temperatures(y, th, tc).unwrap();
        prop_assert!((back.value() - f.value()).abs() / f.value() < 1e-6);
    }

    #[test]
    fn y_decreases_as_dut_gets_noisier(temps in temperature_pair(), f1 in 1.0f64..100.0, k in 1.01f64..10.0) {
        let (th, tc) = temps;
        let quiet = NoiseFactor::new(f1).unwrap();
        let noisy = NoiseFactor::new(f1 * k).unwrap();
        let y_quiet = yfactor::expected_y(quiet, th, tc).unwrap();
        let y_noisy = yfactor::expected_y(noisy, th, tc).unwrap();
        prop_assert!(y_noisy < y_quiet);
    }

    #[test]
    fn y_is_bounded_by_temperature_ratio(f in noise_factor(), temps in temperature_pair()) {
        let (th, tc) = temps;
        let y = yfactor::expected_y(f, th, tc).unwrap();
        // F = 1 gives the maximum Y = Th/Tc; added noise only compresses it.
        prop_assert!(y <= th / tc + 1e-9);
    }

    #[test]
    fn figure_factor_roundtrip(db in 0.0f64..40.0) {
        let f = NoiseFigure::from_db(db).unwrap().to_factor();
        prop_assert!((f.to_figure().db() - db).abs() < 1e-9);
    }

    #[test]
    fn equivalent_temperature_is_monotone(f1 in 1.0f64..500.0, delta in 0.01f64..500.0) {
        let a = NoiseFactor::new(f1).unwrap();
        let b = NoiseFactor::new(f1 + delta).unwrap();
        prop_assert!(b.equivalent_temperature() > a.equivalent_temperature());
    }

    #[test]
    fn arcsine_roundtrip(rho in -1.0f64..1.0) {
        let out = arcsine::arcsine_law(rho).unwrap();
        prop_assert!(out.abs() <= 1.0 + 1e-12);
        let back = arcsine::arcsine_law_inverse(out).unwrap();
        prop_assert!((back - rho).abs() < 1e-9);
    }

    #[test]
    fn arcsine_is_odd_and_monotone(rho in 0.0f64..1.0) {
        let pos = arcsine::arcsine_law(rho).unwrap();
        let neg = arcsine::arcsine_law(-rho).unwrap();
        prop_assert!((pos + neg).abs() < 1e-12);
        // |arcsine| ≥ linearized value (the law expands correlations).
        prop_assert!(pos >= arcsine::SMALL_SIGNAL_GAIN * rho - 1e-12);
    }

    #[test]
    fn direct_method_gain_error_is_multiplicative(
        f in 1.0f64..100.0,
        err in -0.5f64..0.5,
    ) {
        // The reported factor clamps at the physical limit; stay above
        // the clamp tolerance so the multiplicative identity applies.
        prop_assume!(f * (1.0 + err) * (1.0 + err) >= 0.6);
        let truth = NoiseFactor::new(f).unwrap();
        let reported = direct::reported_factor_with_gain_error(truth, err).unwrap();
        let expected = f * (1.0 + err) * (1.0 + err);
        prop_assert!((reported.value() - expected.max(1.0)).abs() < 1e-9 * expected);
    }

    #[test]
    fn direct_nf_error_matches_closed_form(err in -0.3f64..0.5) {
        let truth = NoiseFactor::new(50.0).unwrap();
        let reported = direct::reported_factor_with_gain_error(truth, err).unwrap();
        let delta = reported.to_figure().db() - truth.to_figure().db();
        prop_assert!((delta - direct::nf_error_db_for_gain_error(err)).abs() < 1e-9);
    }

    #[test]
    fn hot_uncertainty_error_is_zero_only_at_zero(
        f in 1.5f64..50.0,
        frac in -0.3f64..0.3,
    ) {
        let truth = NoiseFactor::new(f).unwrap();
        let e = uncertainty::nf_error_from_hot_uncertainty(truth, 2_900.0, 290.0, frac).unwrap();
        if frac.abs() < 1e-12 {
            prop_assert!(e.abs() < 1e-9);
        } else {
            // Error sign is opposite to the calibration error sign.
            prop_assert!(e * frac < 0.0, "frac {frac} err {e}");
        }
    }

    #[test]
    fn larger_records_never_increase_estimator_std(
        f in 1.5f64..50.0,
        n in 100usize..100_000,
        k in 2usize..10,
    ) {
        let truth = NoiseFactor::new(f).unwrap();
        let small = uncertainty::nf_std_from_record_length(truth, 2_900.0, 290.0, n).unwrap();
        let large = uncertainty::nf_std_from_record_length(truth, 2_900.0, 290.0, n * k).unwrap();
        prop_assert!(large <= small + 1e-15);
    }

    #[test]
    fn y_from_powers_is_scale_invariant(
        hot in 1.0f64..1e6,
        ratio in 1.001f64..100.0,
        scale in 1e-6f64..1e6,
    ) {
        let cold = hot / ratio;
        let y1 = yfactor::y_from_powers(hot, cold).unwrap();
        let y2 = yfactor::y_from_powers(hot * scale, cold * scale).unwrap();
        prop_assert!((y1 - y2).abs() < 1e-9 * y1);
    }

    #[test]
    fn normalized_power_form_equals_temperature_form(
        f in 1.0f64..100.0,
        temps in temperature_pair(),
    ) {
        let (th, tc) = temps;
        let factor = NoiseFactor::new(f).unwrap();
        let y = yfactor::expected_y(factor, th, tc).unwrap();
        let a = yfactor::noise_factor_from_temperatures(y, th, tc).unwrap();
        let b = yfactor::noise_factor_from_normalized_powers(y, th / yfactor::T0, tc / yfactor::T0)
            .unwrap();
        prop_assert!((a.value() - b.value()).abs() < 1e-9 * a.value());
    }
}
