//! Decibel conversions for power and amplitude quantities.
//!
//! Noise-figure work constantly moves between linear ratios and dB; the
//! paper's equations 1–3 are exactly these conversions. Keeping them in one
//! well-tested place avoids the classic 10·log₁₀ vs 20·log₁₀ mixups.

/// Converts a linear **power** ratio to decibels (`10·log₁₀`).
///
/// This is the conversion in eq. 3 of the paper, `NF = 10·log₁₀(F)`.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::db::power_ratio_to_db;
/// assert!((power_ratio_to_db(10.0) - 10.0).abs() < 1e-12);
/// assert!((power_ratio_to_db(2.0) - 3.0103).abs() < 1e-3);
/// ```
#[inline]
pub fn power_ratio_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels back to a linear **power** ratio (`10^{dB/10}`).
///
/// # Examples
///
/// ```
/// use nfbist_dsp::db::db_to_power_ratio;
/// assert!((db_to_power_ratio(3.0103) - 2.0).abs() < 1e-4);
/// ```
#[inline]
pub fn db_to_power_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear **amplitude** (voltage) ratio to decibels
/// (`20·log₁₀`).
///
/// # Examples
///
/// ```
/// use nfbist_dsp::db::amplitude_ratio_to_db;
/// assert!((amplitude_ratio_to_db(10.0) - 20.0).abs() < 1e-12);
/// ```
#[inline]
pub fn amplitude_ratio_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels back to a linear **amplitude** ratio (`10^{dB/20}`).
#[inline]
pub fn db_to_amplitude_ratio(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Signal-to-noise ratio in dB from signal and noise **powers**
/// (mean-square values), per eq. 1 of the paper.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::db::snr_db;
/// // Equal powers → 0 dB; 100× power → 20 dB.
/// assert!(snr_db(1.0, 1.0).abs() < 1e-12);
/// assert!((snr_db(100.0, 1.0) - 20.0).abs() < 1e-12);
/// ```
#[inline]
pub fn snr_db(signal_power: f64, noise_power: f64) -> f64 {
    power_ratio_to_db(signal_power / noise_power)
}

/// Converts a power in watts to dBm (decibels relative to 1 mW).
///
/// # Examples
///
/// ```
/// use nfbist_dsp::db::watts_to_dbm;
/// assert!(watts_to_dbm(1e-3).abs() < 1e-12);
/// assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-12);
/// ```
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    power_ratio_to_db(watts / 1e-3)
}

/// Converts dBm back to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    db_to_power_ratio(dbm) * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_db_roundtrip() {
        for ratio in [0.01, 0.5, 1.0, 2.0, 10.0, 1e6] {
            let back = db_to_power_ratio(power_ratio_to_db(ratio));
            assert!((back - ratio).abs() / ratio < 1e-12);
        }
    }

    #[test]
    fn amplitude_db_roundtrip() {
        for ratio in [0.1, 1.0, 3.0, 100.0] {
            let back = db_to_amplitude_ratio(amplitude_ratio_to_db(ratio));
            assert!((back - ratio).abs() / ratio < 1e-12);
        }
    }

    #[test]
    fn amplitude_is_twice_power_db() {
        for r in [0.25, 2.0, 7.0] {
            assert!((amplitude_ratio_to_db(r) - 2.0 * power_ratio_to_db(r)).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_table1_values() {
        // Table 1: NF 0 dB ↔ F=1, 3 dB ↔ F≈2, 10 dB ↔ F=10.
        assert!(power_ratio_to_db(1.0).abs() < 1e-12);
        assert!((power_ratio_to_db(2.0) - 3.0).abs() < 0.02);
        assert!((power_ratio_to_db(10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dbm_roundtrip() {
        for w in [1e-6, 1e-3, 0.5, 2.0] {
            assert!((dbm_to_watts(watts_to_dbm(w)) - w).abs() / w < 1e-12);
        }
    }

    #[test]
    fn snr_of_zero_noise_is_infinite() {
        assert!(snr_db(1.0, 0.0).is_infinite());
    }
}
