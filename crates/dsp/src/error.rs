use std::fmt;

/// Error type returned by all fallible operations in this crate.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::fft::Fft;
///
/// let err = Fft::new(0).unwrap_err();
/// assert!(err.to_string().contains("fft size"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// The requested FFT size is invalid (zero, or not supported by the
    /// selected algorithm).
    InvalidFftSize {
        /// The offending size.
        size: usize,
        /// Why the size was rejected.
        reason: &'static str,
    },
    /// An input buffer had an unexpected length.
    LengthMismatch {
        /// What the operation expected.
        expected: usize,
        /// What it received.
        actual: usize,
        /// The operation that failed.
        context: &'static str,
    },
    /// A buffer was empty where at least one sample is required.
    EmptyInput {
        /// The operation that failed.
        context: &'static str,
    },
    /// A numeric parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint description.
        reason: &'static str,
    },
    /// A requested frequency lies outside the representable range
    /// (negative, or above Nyquist).
    FrequencyOutOfRange {
        /// The requested frequency in hertz.
        frequency: f64,
        /// The Nyquist frequency in hertz.
        nyquist: f64,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidFftSize { size, reason } => {
                write!(f, "invalid fft size {size}: {reason}")
            }
            DspError::LengthMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "length mismatch in {context}: expected {expected}, got {actual}"
            ),
            DspError::EmptyInput { context } => {
                write!(f, "empty input in {context}")
            }
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            DspError::FrequencyOutOfRange { frequency, nyquist } => write!(
                f,
                "frequency {frequency} Hz out of range (nyquist {nyquist} Hz)"
            ),
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<DspError> = vec![
            DspError::InvalidFftSize {
                size: 3,
                reason: "not a power of two",
            },
            DspError::LengthMismatch {
                expected: 8,
                actual: 7,
                context: "forward",
            },
            DspError::EmptyInput { context: "mean" },
            DspError::InvalidParameter {
                name: "overlap",
                reason: "must be in [0, 1)",
            },
            DspError::FrequencyOutOfRange {
                frequency: 9000.0,
                nyquist: 8000.0,
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
