//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! A SoC BIST that only needs the reference line's power (for
//! normalization) or a handful of tone bins (for frequency-response
//! tests) does not need a full FFT: the Goertzel recurrence computes one
//! bin in `O(N)` with two state variables — exactly the kind of
//! resource-frugal processing the paper's §4 argues a SoC can afford.

use crate::DspError;

/// A planned Goertzel detector for one frequency at one sample rate.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::goertzel::Goertzel;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let fs = 8_000.0;
/// let g = Goertzel::new(1_000.0, fs)?;
/// let x: Vec<f64> = (0..800)
///     .map(|n| (2.0 * std::f64::consts::PI * 1_000.0 * n as f64 / fs).sin())
///     .collect();
/// // Amplitude of a unit sine is recovered.
/// let amp = g.amplitude(&x)?;
/// assert!((amp - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goertzel {
    frequency: f64,
    sample_rate: f64,
    coeff: f64,
    omega: f64,
}

impl Goertzel {
    /// Plans a detector for `frequency` Hz at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] unless
    /// `0 < frequency < sample_rate/2`, and
    /// [`DspError::InvalidParameter`] for a non-positive sample rate.
    pub fn new(frequency: f64, sample_rate: f64) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if frequency <= 0.0 || frequency >= sample_rate / 2.0 {
            return Err(DspError::FrequencyOutOfRange {
                frequency,
                nyquist: sample_rate / 2.0,
            });
        }
        let omega = std::f64::consts::TAU * frequency / sample_rate;
        Ok(Goertzel {
            frequency,
            sample_rate,
            coeff: 2.0 * omega.cos(),
            omega,
        })
    }

    /// The detector's target frequency.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// The sample rate the detector was planned for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Runs the Goertzel recurrence over a sample stream, returning the
    /// squared magnitude and the number of samples consumed.
    fn run(&self, x: impl Iterator<Item = f64>) -> (f64, usize) {
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        let mut n = 0usize;
        for v in x {
            let s0 = v + self.coeff * s1 - s2;
            s2 = s1;
            s1 = s0;
            n += 1;
        }
        (s1 * s1 + s2 * s2 - self.coeff * s1 * s2, n)
    }

    /// Squared DFT magnitude `|X(f)|²` of the record at the target
    /// frequency (unnormalized, matching [`crate::fft::Fft::forward`]
    /// conventions).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn magnitude_sq(&self, x: &[f64]) -> Result<f64, DspError> {
        self.magnitude_sq_iter(x.iter().copied())
    }

    /// [`Goertzel::magnitude_sq`] over any sample stream — lets packed
    /// records (e.g. a digitizer bitstream's ±1 expansion) feed the
    /// recurrence directly, without materializing a float vector.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty stream.
    pub fn magnitude_sq_iter<I>(&self, x: I) -> Result<f64, DspError>
    where
        I: IntoIterator<Item = f64>,
    {
        let (mag_sq, n) = self.run(x.into_iter());
        if n == 0 {
            return Err(DspError::EmptyInput {
                context: "goertzel",
            });
        }
        Ok(mag_sq)
    }

    /// Estimated amplitude of a sinusoid at the target frequency:
    /// `2·|X|/N`.
    ///
    /// Exact when the record holds an integer number of cycles;
    /// otherwise scalloping applies as with any unwindowed DFT bin.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn amplitude(&self, x: &[f64]) -> Result<f64, DspError> {
        self.amplitude_iter(x.iter().copied())
    }

    /// [`Goertzel::amplitude`] over any sample stream.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty stream.
    pub fn amplitude_iter<I>(&self, x: I) -> Result<f64, DspError>
    where
        I: IntoIterator<Item = f64>,
    {
        let (mag_sq, n) = self.run(x.into_iter());
        if n == 0 {
            return Err(DspError::EmptyInput {
                context: "goertzel",
            });
        }
        Ok(2.0 * mag_sq.sqrt() / n as f64)
    }

    /// Tone **power** estimate `amplitude²/2`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn power(&self, x: &[f64]) -> Result<f64, DspError> {
        self.power_iter(x.iter().copied())
    }

    /// [`Goertzel::power`] over any sample stream.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty stream.
    pub fn power_iter<I>(&self, x: I) -> Result<f64, DspError>
    where
        I: IntoIterator<Item = f64>,
    {
        let a = self.amplitude_iter(x)?;
        Ok(a * a / 2.0)
    }

    /// The angular frequency in radians/sample (exposed for testing and
    /// phase-sensitive extensions).
    pub fn omega(&self) -> f64 {
        self.omega
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    #[test]
    fn validation() {
        assert!(Goertzel::new(0.0, 8_000.0).is_err());
        assert!(Goertzel::new(4_000.0, 8_000.0).is_err());
        assert!(Goertzel::new(100.0, 0.0).is_err());
        let g = Goertzel::new(100.0, 8_000.0).unwrap();
        assert!(g.magnitude_sq(&[]).is_err());
        assert_eq!(g.frequency(), 100.0);
        assert_eq!(g.sample_rate(), 8_000.0);
    }

    #[test]
    fn matches_fft_bin() {
        let n = 1024;
        let fs = 1024.0;
        let k0 = 100;
        let x: Vec<f64> = (0..n)
            .map(|j| {
                (std::f64::consts::TAU * k0 as f64 * j as f64 / n as f64).sin()
                    + 0.3 * (j as f64 * 0.71).cos()
            })
            .collect();
        let g = Goertzel::new(k0 as f64, fs).unwrap();
        let fft_bin = Fft::new(n).unwrap().forward_real(&x).unwrap()[k0];
        assert!(
            (g.magnitude_sq(&x).unwrap() - fft_bin.norm_sqr()).abs() < 1e-6 * fft_bin.norm_sqr(),
            "goertzel vs fft"
        );
    }

    #[test]
    fn amplitude_of_offset_phase_tone() {
        let fs = 10_000.0;
        let n = 1_000; // integer cycles of 500 Hz
        let g = Goertzel::new(500.0, fs).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|j| 2.5 * (std::f64::consts::TAU * 500.0 * j as f64 / fs + 1.1).sin())
            .collect();
        assert!((g.amplitude(&x).unwrap() - 2.5).abs() < 1e-9);
        assert!((g.power(&x).unwrap() - 3.125).abs() < 1e-8);
    }

    #[test]
    fn iterator_path_is_bit_identical_to_slice_path() {
        let fs = 10_000.0;
        let g = Goertzel::new(500.0, fs).unwrap();
        let x: Vec<f64> = (0..777)
            .map(|j| (std::f64::consts::TAU * 500.0 * j as f64 / fs).sin() + 0.1)
            .collect();
        assert_eq!(
            g.magnitude_sq(&x).unwrap(),
            g.magnitude_sq_iter(x.iter().copied()).unwrap()
        );
        assert_eq!(
            g.amplitude(&x).unwrap(),
            g.amplitude_iter(x.iter().copied()).unwrap()
        );
        assert_eq!(
            g.power(&x).unwrap(),
            g.power_iter(x.iter().copied()).unwrap()
        );
        assert!(g.power_iter(std::iter::empty()).is_err());
        assert!(g.amplitude_iter(std::iter::empty()).is_err());
    }

    #[test]
    fn rejects_distant_tones() {
        let fs = 10_000.0;
        let n = 1_000;
        let g = Goertzel::new(500.0, fs).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|j| (std::f64::consts::TAU * 2_000.0 * j as f64 / fs).sin())
            .collect();
        assert!(g.amplitude(&x).unwrap() < 1e-9);
    }

    #[test]
    fn tracks_reference_through_one_bit_stream() {
        // The SoC use case: estimate the reference line amplitude in a
        // digitizer bitstream without a full FFT. A ±1 stream carrying
        // a tone of effective amplitude m yields Goertzel amplitude m.
        let fs = 20_000.0;
        let n = 200_000;
        let m = 0.2;
        // Deterministic pseudo-random dither via LCG.
        let mut state: u64 = 12345;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let bits: Vec<f64> = (0..n)
            .map(|j| {
                let tone = m * (std::f64::consts::TAU * 2_000.0 * j as f64 / fs).sin();
                // Comparator with uniform dither of width 1 around the
                // tone: E[bit] = tone (for |tone| < 0.5).
                if next() < tone {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let g = Goertzel::new(2_000.0, fs).unwrap();
        let est = g.amplitude(&bits).unwrap();
        // Uniform dither of total width 1 gives slope 2 → amplitude 2m.
        assert!((est - 2.0 * m).abs() < 0.02, "estimated {est}");
    }
}
