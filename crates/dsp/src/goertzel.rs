//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! A SoC BIST that only needs the reference line's power (for
//! normalization) or a handful of tone bins (for frequency-response
//! tests) does not need a full FFT: the Goertzel recurrence computes one
//! bin in `O(N)` with two state variables — exactly the kind of
//! resource-frugal processing the paper's §4 argues a SoC can afford.
//!
//! The recurrence is a serial dependency chain per bin, so it cannot be
//! vectorized along the sample axis — but it vectorizes perfectly
//! across *independent* chains. Two multi-chain forms are provided:
//! [`GoertzelBank`] runs several bins over one record (lanes = bins),
//! and [`Goertzel::magnitude_sq_soa`] runs one bin over several records
//! (lanes = repeats, for the SoA batch fan-out). Both produce results
//! bit-identical to running each chain through the single-bin
//! recurrence on the scalar arm.

use crate::simd;
use crate::soa::SoaRecords;
use crate::DspError;

/// A planned Goertzel detector for one frequency at one sample rate.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::goertzel::Goertzel;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let fs = 8_000.0;
/// let g = Goertzel::new(1_000.0, fs)?;
/// let x: Vec<f64> = (0..800)
///     .map(|n| (2.0 * std::f64::consts::PI * 1_000.0 * n as f64 / fs).sin())
///     .collect();
/// // Amplitude of a unit sine is recovered.
/// let amp = g.amplitude(&x)?;
/// assert!((amp - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goertzel {
    frequency: f64,
    sample_rate: f64,
    coeff: f64,
    omega: f64,
}

impl Goertzel {
    /// Plans a detector for `frequency` Hz at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] unless
    /// `0 < frequency < sample_rate/2`, and
    /// [`DspError::InvalidParameter`] for a non-positive sample rate.
    pub fn new(frequency: f64, sample_rate: f64) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if frequency <= 0.0 || frequency >= sample_rate / 2.0 {
            return Err(DspError::FrequencyOutOfRange {
                frequency,
                nyquist: sample_rate / 2.0,
            });
        }
        let omega = std::f64::consts::TAU * frequency / sample_rate;
        Ok(Goertzel {
            frequency,
            sample_rate,
            coeff: 2.0 * omega.cos(),
            omega,
        })
    }

    /// The detector's target frequency.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// The sample rate the detector was planned for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Runs the Goertzel recurrence over a sample stream, returning the
    /// squared magnitude and the number of samples consumed.
    fn run(&self, x: impl Iterator<Item = f64>) -> (f64, usize) {
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        let mut n = 0usize;
        for v in x {
            let s0 = v + self.coeff * s1 - s2;
            s2 = s1;
            s1 = s0;
            n += 1;
        }
        (s1 * s1 + s2 * s2 - self.coeff * s1 * s2, n)
    }

    /// Squared DFT magnitude `|X(f)|²` of the record at the target
    /// frequency (unnormalized, matching [`crate::fft::Fft::forward`]
    /// conventions).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn magnitude_sq(&self, x: &[f64]) -> Result<f64, DspError> {
        self.magnitude_sq_iter(x.iter().copied())
    }

    /// [`Goertzel::magnitude_sq`] over any sample stream — lets packed
    /// records (e.g. a digitizer bitstream's ±1 expansion) feed the
    /// recurrence directly, without materializing a float vector.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty stream.
    pub fn magnitude_sq_iter<I>(&self, x: I) -> Result<f64, DspError>
    where
        I: IntoIterator<Item = f64>,
    {
        let (mag_sq, n) = self.run(x.into_iter());
        if n == 0 {
            return Err(DspError::EmptyInput {
                context: "goertzel",
            });
        }
        Ok(mag_sq)
    }

    /// Estimated amplitude of a sinusoid at the target frequency:
    /// `2·|X|/N`.
    ///
    /// Exact when the record holds an integer number of cycles;
    /// otherwise scalloping applies as with any unwindowed DFT bin.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn amplitude(&self, x: &[f64]) -> Result<f64, DspError> {
        self.amplitude_iter(x.iter().copied())
    }

    /// [`Goertzel::amplitude`] over any sample stream.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty stream.
    pub fn amplitude_iter<I>(&self, x: I) -> Result<f64, DspError>
    where
        I: IntoIterator<Item = f64>,
    {
        let (mag_sq, n) = self.run(x.into_iter());
        if n == 0 {
            return Err(DspError::EmptyInput {
                context: "goertzel",
            });
        }
        Ok(2.0 * mag_sq.sqrt() / n as f64)
    }

    /// Tone **power** estimate `amplitude²/2`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn power(&self, x: &[f64]) -> Result<f64, DspError> {
        self.power_iter(x.iter().copied())
    }

    /// [`Goertzel::power`] over any sample stream.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty stream.
    pub fn power_iter<I>(&self, x: I) -> Result<f64, DspError>
    where
        I: IntoIterator<Item = f64>,
    {
        let a = self.amplitude_iter(x)?;
        Ok(a * a / 2.0)
    }

    /// The angular frequency in radians/sample (exposed for testing and
    /// phase-sensitive extensions).
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// The recurrence coefficient `2·cos(ω)` (exposed so multi-chain
    /// callers can feed the dispatched kernels directly).
    pub fn coefficient(&self) -> f64 {
        self.coeff
    }

    /// Squared DFT magnitudes of every lane of an SoA batch at the
    /// target frequency — one vectorized recurrence advances all
    /// repeats at once ([`crate::simd::goertzel_soa_run`]).
    ///
    /// Bit-identical to calling [`Goertzel::magnitude_sq`] on each lane
    /// separately, on every dispatch arm.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if the batch has no lanes or no
    /// samples.
    pub fn magnitude_sq_soa(&self, batch: &SoaRecords) -> Result<Vec<f64>, DspError> {
        if batch.lanes() == 0 || batch.samples() == 0 {
            return Err(DspError::EmptyInput {
                context: "goertzel (soa batch)",
            });
        }
        let lanes = batch.lanes();
        let mut s1 = vec![0.0f64; lanes];
        let mut s2 = vec![0.0f64; lanes];
        simd::goertzel_soa_run(batch.data(), lanes, self.coeff, &mut s1, &mut s2);
        Ok((0..lanes)
            .map(|l| {
                let (s1, s2) = (s1[l], s2[l]);
                s1 * s1 + s2 * s2 - self.coeff * s1 * s2
            })
            .collect())
    }

    /// Tone power estimate (`amplitude²/2`, amplitude `2·|X|/N`) of
    /// every lane of an SoA batch. Bit-identical to per-lane
    /// [`Goertzel::power`] on every dispatch arm.
    ///
    /// # Errors
    ///
    /// Same as [`Goertzel::magnitude_sq_soa`].
    pub fn power_soa(&self, batch: &SoaRecords) -> Result<Vec<f64>, DspError> {
        let n = batch.samples();
        let mut mags = self.magnitude_sq_soa(batch)?;
        for m in &mut mags {
            let a = 2.0 * m.sqrt() / n as f64;
            *m = a * a / 2.0;
        }
        Ok(mags)
    }
}

/// A bank of Goertzel detectors sharing one record pass: all bins'
/// recurrences advance per sample, vectorized across bins
/// ([`crate::simd::goertzel_bank_run`]).
///
/// Bit-identical to running each bin's [`Goertzel`] separately, on
/// every dispatch arm.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::goertzel::GoertzelBank;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let fs = 8_000.0;
/// let bank = GoertzelBank::new(&[500.0, 1_000.0, 2_000.0], fs)?;
/// let x: Vec<f64> = (0..800)
///     .map(|n| (2.0 * std::f64::consts::PI * 1_000.0 * n as f64 / fs).sin())
///     .collect();
/// let amps = bank.amplitudes(&x)?;
/// assert!((amps[1] - 1.0).abs() < 1e-6); // the 1 kHz bin
/// assert!(amps[0] < 1e-6 && amps[2] < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GoertzelBank {
    bins: Vec<Goertzel>,
    coeffs: Vec<f64>,
}

impl GoertzelBank {
    /// Plans detectors for each of `frequencies` at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty frequency list,
    /// and the per-bin errors of [`Goertzel::new`].
    pub fn new(frequencies: &[f64], sample_rate: f64) -> Result<Self, DspError> {
        if frequencies.is_empty() {
            return Err(DspError::EmptyInput {
                context: "goertzel bank (no frequencies)",
            });
        }
        let bins = frequencies
            .iter()
            .map(|&f| Goertzel::new(f, sample_rate))
            .collect::<Result<Vec<_>, _>>()?;
        let coeffs = bins.iter().map(|g| g.coeff).collect();
        Ok(GoertzelBank { bins, coeffs })
    }

    /// Number of bins in the bank.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` when the bank has no bins (unreachable through
    /// [`GoertzelBank::new`], provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The per-bin detectors, in construction order.
    pub fn bins(&self) -> &[Goertzel] {
        &self.bins
    }

    /// Squared DFT magnitude `|X(fᵢ)|²` for every bin over one pass of
    /// the record.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn magnitudes_sq(&self, x: &[f64]) -> Result<Vec<f64>, DspError> {
        if x.is_empty() {
            return Err(DspError::EmptyInput {
                context: "goertzel bank",
            });
        }
        let lanes = self.bins.len();
        let mut s1 = vec![0.0f64; lanes];
        let mut s2 = vec![0.0f64; lanes];
        simd::goertzel_bank_run(x, &self.coeffs, &mut s1, &mut s2);
        Ok((0..lanes)
            .map(|l| {
                let (c, s1, s2) = (self.coeffs[l], s1[l], s2[l]);
                s1 * s1 + s2 * s2 - c * s1 * s2
            })
            .collect())
    }

    /// Estimated sinusoid amplitude `2·|X|/N` for every bin.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn amplitudes(&self, x: &[f64]) -> Result<Vec<f64>, DspError> {
        let n = x.len();
        let mut mags = self.magnitudes_sq(x)?;
        for m in &mut mags {
            *m = 2.0 * m.sqrt() / n as f64;
        }
        Ok(mags)
    }

    /// Tone power estimate `amplitude²/2` for every bin.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty record.
    pub fn powers(&self, x: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut amps = self.amplitudes(x)?;
        for a in &mut amps {
            *a = *a * *a / 2.0;
        }
        Ok(amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    #[test]
    fn validation() {
        assert!(Goertzel::new(0.0, 8_000.0).is_err());
        assert!(Goertzel::new(4_000.0, 8_000.0).is_err());
        assert!(Goertzel::new(100.0, 0.0).is_err());
        let g = Goertzel::new(100.0, 8_000.0).unwrap();
        assert!(g.magnitude_sq(&[]).is_err());
        assert_eq!(g.frequency(), 100.0);
        assert_eq!(g.sample_rate(), 8_000.0);
    }

    #[test]
    fn matches_fft_bin() {
        let n = 1024;
        let fs = 1024.0;
        let k0 = 100;
        let x: Vec<f64> = (0..n)
            .map(|j| {
                (std::f64::consts::TAU * k0 as f64 * j as f64 / n as f64).sin()
                    + 0.3 * (j as f64 * 0.71).cos()
            })
            .collect();
        let g = Goertzel::new(k0 as f64, fs).unwrap();
        let fft_bin = Fft::new(n).unwrap().forward_real(&x).unwrap()[k0];
        assert!(
            (g.magnitude_sq(&x).unwrap() - fft_bin.norm_sqr()).abs() < 1e-6 * fft_bin.norm_sqr(),
            "goertzel vs fft"
        );
    }

    #[test]
    fn amplitude_of_offset_phase_tone() {
        let fs = 10_000.0;
        let n = 1_000; // integer cycles of 500 Hz
        let g = Goertzel::new(500.0, fs).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|j| 2.5 * (std::f64::consts::TAU * 500.0 * j as f64 / fs + 1.1).sin())
            .collect();
        assert!((g.amplitude(&x).unwrap() - 2.5).abs() < 1e-9);
        assert!((g.power(&x).unwrap() - 3.125).abs() < 1e-8);
    }

    #[test]
    fn iterator_path_is_bit_identical_to_slice_path() {
        let fs = 10_000.0;
        let g = Goertzel::new(500.0, fs).unwrap();
        let x: Vec<f64> = (0..777)
            .map(|j| (std::f64::consts::TAU * 500.0 * j as f64 / fs).sin() + 0.1)
            .collect();
        assert_eq!(
            g.magnitude_sq(&x).unwrap(),
            g.magnitude_sq_iter(x.iter().copied()).unwrap()
        );
        assert_eq!(
            g.amplitude(&x).unwrap(),
            g.amplitude_iter(x.iter().copied()).unwrap()
        );
        assert_eq!(
            g.power(&x).unwrap(),
            g.power_iter(x.iter().copied()).unwrap()
        );
        assert!(g.power_iter(std::iter::empty()).is_err());
        assert!(g.amplitude_iter(std::iter::empty()).is_err());
    }

    #[test]
    fn bank_matches_per_bin_detectors_bitwise() {
        let fs = 10_000.0;
        let freqs = [300.0, 500.0, 1_250.0, 2_000.0, 4_900.0];
        let x: Vec<f64> = (0..1_501)
            .map(|j| {
                (std::f64::consts::TAU * 500.0 * j as f64 / fs).sin()
                    + 0.25 * (j as f64 * 0.31).cos()
            })
            .collect();
        let bank = GoertzelBank::new(&freqs, fs).unwrap();
        assert_eq!(bank.len(), 5);
        assert!(!bank.is_empty());
        let mags = bank.magnitudes_sq(&x).unwrap();
        let amps = bank.amplitudes(&x).unwrap();
        let pows = bank.powers(&x).unwrap();
        for (i, &f) in freqs.iter().enumerate() {
            let g = Goertzel::new(f, fs).unwrap();
            assert_eq!(bank.bins()[i].frequency(), f);
            assert_eq!(mags[i].to_bits(), g.magnitude_sq(&x).unwrap().to_bits());
            assert_eq!(amps[i].to_bits(), g.amplitude(&x).unwrap().to_bits());
            assert_eq!(pows[i].to_bits(), g.power(&x).unwrap().to_bits());
        }
    }

    #[test]
    fn bank_validation() {
        assert!(GoertzelBank::new(&[], 8_000.0).is_err());
        assert!(GoertzelBank::new(&[100.0, 9_000.0], 8_000.0).is_err());
        let bank = GoertzelBank::new(&[100.0], 8_000.0).unwrap();
        assert!(bank.magnitudes_sq(&[]).is_err());
    }

    #[test]
    fn soa_batch_matches_per_lane_detector_bitwise() {
        let fs = 10_000.0;
        let g = Goertzel::new(750.0, fs).unwrap();
        assert_eq!(g.coefficient(), 2.0 * g.omega().cos());
        let records: Vec<Vec<f64>> = (0..5)
            .map(|r| {
                (0..903)
                    .map(|j| {
                        (std::f64::consts::TAU * 750.0 * j as f64 / fs + r as f64).sin()
                            + 0.1 * ((j + r) as f64 * 0.17).cos()
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = records.iter().map(Vec::as_slice).collect();
        let batch = crate::soa::SoaRecords::from_records(&refs);
        let mags = g.magnitude_sq_soa(&batch).unwrap();
        let pows = g.power_soa(&batch).unwrap();
        for (l, rec) in records.iter().enumerate() {
            assert_eq!(mags[l].to_bits(), g.magnitude_sq(rec).unwrap().to_bits());
            assert_eq!(pows[l].to_bits(), g.power(rec).unwrap().to_bits());
        }
        // Degenerate batches are rejected.
        assert!(g
            .magnitude_sq_soa(&crate::soa::SoaRecords::new(0, 10))
            .is_err());
        assert!(g
            .magnitude_sq_soa(&crate::soa::SoaRecords::new(3, 0))
            .is_err());
    }

    #[test]
    fn rejects_distant_tones() {
        let fs = 10_000.0;
        let n = 1_000;
        let g = Goertzel::new(500.0, fs).unwrap();
        let x: Vec<f64> = (0..n)
            .map(|j| (std::f64::consts::TAU * 2_000.0 * j as f64 / fs).sin())
            .collect();
        assert!(g.amplitude(&x).unwrap() < 1e-9);
    }

    #[test]
    fn tracks_reference_through_one_bit_stream() {
        // The SoC use case: estimate the reference line amplitude in a
        // digitizer bitstream without a full FFT. A ±1 stream carrying
        // a tone of effective amplitude m yields Goertzel amplitude m.
        let fs = 20_000.0;
        let n = 200_000;
        let m = 0.2;
        // Deterministic pseudo-random dither via LCG.
        let mut state: u64 = 12345;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let bits: Vec<f64> = (0..n)
            .map(|j| {
                let tone = m * (std::f64::consts::TAU * 2_000.0 * j as f64 / fs).sin();
                // Comparator with uniform dither of width 1 around the
                // tone: E[bit] = tone (for |tone| < 0.5).
                if next() < tone {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let g = Goertzel::new(2_000.0, fs).unwrap();
        let est = g.amplitude(&bits).unwrap();
        // Uniform dither of total width 1 gives slope 2 → amplitude 2m.
        assert!((est - 2.0 * m).abs() < 0.02, "estimated {est}");
    }
}
