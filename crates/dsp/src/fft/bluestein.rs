//! Bluestein's chirp-z algorithm: DFTs of arbitrary length built from
//! power-of-two convolutions.
//!
//! The paper's prototype processed 10⁶ samples with a 10⁴-point FFT —
//! neither a power of two. Matlab handles this transparently; we provide
//! [`ArbitraryFft`] so experiment configurations can use the paper's exact
//! record sizes.

use crate::complex::Complex64;
use crate::fft::Fft;
use crate::DspError;

/// A planned DFT of arbitrary (non-zero) size using Bluestein's algorithm.
///
/// Internally re-expresses the length-`N` DFT as a circular convolution of
/// length `M ≥ 2N-1` (the next power of two), so the cost is
/// `O(M log M)` regardless of the factorization of `N`.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::complex::Complex64;
/// use nfbist_dsp::fft::ArbitraryFft;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// // A 10-point DFT (10 = 2·5 is not a power of two).
/// let plan = ArbitraryFft::new(10)?;
/// let x = vec![Complex64::ONE; 10];
/// let spec = plan.forward(&x)?;
/// assert!((spec[0].re - 10.0).abs() < 1e-9);
/// assert!(spec[1..].iter().all(|z| z.abs() < 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ArbitraryFft {
    size: usize,
    inner: Fft,
    /// Chirp `a_n = e^{-jπn²/N}` for n in 0..N.
    chirp: Vec<Complex64>,
    /// FFT of the zero-padded, wrapped conjugate chirp.
    kernel_spectrum: Vec<Complex64>,
}

impl ArbitraryFft {
    /// Plans a DFT of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFftSize`] if `size` is zero.
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size == 0 {
            return Err(DspError::InvalidFftSize {
                size,
                reason: "fft size must be nonzero",
            });
        }
        let m = (2 * size - 1).next_power_of_two();
        let inner = Fft::new(m)?;

        // n² mod 2N computed incrementally to keep the phase argument
        // small for large N (direct n*n overflows the f64 mantissa around
        // N ≈ 10⁸; the modular form is exact for all practical sizes).
        let two_n = 2 * size;
        let mut chirp = Vec::with_capacity(size);
        let mut q: usize = 0; // q = n² mod 2N
        for n in 0..size {
            if n > 0 {
                // (n)² = (n-1)² + 2n - 1
                q = (q + 2 * n - 1) % two_n;
            }
            let theta = -std::f64::consts::PI * q as f64 / size as f64;
            chirp.push(Complex64::cis(theta));
        }

        // Kernel b_n = conj(a_n) arranged circularly: b[0..N) and the
        // mirrored tail b[M-n] for n in 1..N.
        let mut kernel = vec![Complex64::ZERO; m];
        for n in 0..size {
            let b = chirp[n].conj();
            kernel[n] = b;
            if n > 0 {
                kernel[m - n] = b;
            }
        }
        let kernel_spectrum = inner.forward(&kernel)?;

        Ok(ArbitraryFft {
            size,
            inner,
            chirp,
            kernel_spectrum,
        })
    }

    /// The planned transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Length of the caller-owned scratch buffer the `_into` transforms
    /// require (the internal power-of-two convolution length `M`).
    pub fn scratch_len(&self) -> usize {
        self.inner.size()
    }

    /// Forward DFT (no scaling), matching [`Fft::forward`] conventions.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn forward(&self, x: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
        if x.len() != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual: x.len(),
                context: "arbitrary fft forward",
            });
        }
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        let mut out = vec![Complex64::ZERO; self.size];
        self.chirp_convolve(&mut scratch, &mut out, |n| x[n])?;
        Ok(out)
    }

    /// Forward DFT of a real buffer into a caller-owned output buffer,
    /// using caller-owned scratch of length [`ArbitraryFft::scratch_len`]
    /// — the zero-allocation variant used by the PSD workspace hot path.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when `x`/`out` differ from
    /// `self.size()` or `scratch` from `self.scratch_len()`.
    pub fn forward_real_into(
        &self,
        x: &[f64],
        scratch: &mut [Complex64],
        out: &mut [Complex64],
    ) -> Result<(), DspError> {
        if x.len() != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual: x.len(),
                context: "arbitrary fft forward_real_into (input)",
            });
        }
        self.chirp_convolve(scratch, out, |n| Complex64::from_real(x[n]))
    }

    /// The Bluestein body shared by the allocating and `_into` paths:
    /// chirp-premultiplied input → convolution with the planned kernel →
    /// chirp-postmultiplied output.
    fn chirp_convolve<G: Fn(usize) -> Complex64>(
        &self,
        scratch: &mut [Complex64],
        out: &mut [Complex64],
        input: G,
    ) -> Result<(), DspError> {
        if scratch.len() != self.scratch_len() {
            return Err(DspError::LengthMismatch {
                expected: self.scratch_len(),
                actual: scratch.len(),
                context: "arbitrary fft (scratch)",
            });
        }
        if out.len() != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual: out.len(),
                context: "arbitrary fft (output)",
            });
        }
        for (n, (s, c)) in scratch[..self.size].iter_mut().zip(&self.chirp).enumerate() {
            *s = input(n) * *c;
        }
        for s in scratch[self.size..].iter_mut() {
            *s = Complex64::ZERO;
        }
        self.inner.forward_in_place(scratch)?;
        for (w, k) in scratch.iter_mut().zip(&self.kernel_spectrum) {
            *w *= *k;
        }
        self.inner.inverse_in_place(scratch)?;
        for ((o, s), c) in out.iter_mut().zip(scratch.iter()).zip(&self.chirp) {
            *o = *s * *c;
        }
        Ok(())
    }

    /// Inverse DFT with the `1/N` scale, matching [`Fft::inverse`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn inverse(&self, x: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
        if x.len() != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual: x.len(),
                context: "arbitrary fft inverse",
            });
        }
        // IDFT(x) = conj(DFT(conj(x))) / N.
        let conj_in: Vec<Complex64> = x.iter().map(|z| z.conj()).collect();
        let spec = self.forward(&conj_in)?;
        let scale = 1.0 / self.size as f64;
        Ok(spec.iter().map(|z| z.conj().scale(scale)).collect())
    }

    /// Forward DFT of a real buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn forward_real(&self, x: &[f64]) -> Result<Vec<Complex64>, DspError> {
        if x.len() != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual: x.len(),
                context: "arbitrary fft forward_real",
            });
        }
        let buf: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        self.forward(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;

    #[test]
    fn rejects_zero_size() {
        assert!(ArbitraryFft::new(0).is_err());
    }

    #[test]
    fn matches_naive_dft_for_awkward_sizes() {
        for n in [1usize, 2, 3, 5, 7, 10, 12, 100, 101, 255] {
            let x: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64 * 0.37).sin(), (j as f64 * 0.91).cos()))
                .collect();
            let fast = ArbitraryFft::new(n).unwrap().forward(&x).unwrap();
            let slow = dft_naive(&x);
            for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-7 * (n as f64).max(1.0),
                    "n={n} bin {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn power_of_two_sizes_also_work() {
        let n = 16;
        let x: Vec<Complex64> = (0..n).map(|j| Complex64::new(j as f64, -1.0)).collect();
        let a = ArbitraryFft::new(n).unwrap().forward(&x).unwrap();
        let b = Fft::new(n).unwrap().forward(&x).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-8);
        }
    }

    #[test]
    fn roundtrip_non_power_of_two() {
        let n = 30;
        let plan = ArbitraryFft::new(n).unwrap();
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j as f64).cos(), (j as f64 * 2.0).sin()))
            .collect();
        let back = plan.inverse(&plan.forward(&x).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn ten_thousand_point_tone() {
        // The paper's FFT size: 10⁴ points. A bin-centred tone must land
        // in exactly one bin.
        let n = 10_000;
        let plan = ArbitraryFft::new(n).unwrap();
        let k0 = 300;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64).cos())
            .collect();
        let spec = plan.forward_real(&x).unwrap();
        // cos splits between k0 and N-k0 with height N/2.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-5 * n as f64);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-5 * n as f64);
        let leakage: f64 = spec
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != k0 && *k != n - k0)
            .map(|(_, z)| z.abs())
            .fold(0.0, f64::max);
        assert!(leakage < 1e-6 * n as f64, "max leakage {leakage}");
    }

    #[test]
    fn length_mismatch_reported() {
        let plan = ArbitraryFft::new(5).unwrap();
        assert!(plan.forward(&[Complex64::ZERO; 4]).is_err());
        assert!(plan.inverse(&[Complex64::ZERO; 6]).is_err());
        assert!(plan.forward_real(&[0.0; 3]).is_err());
    }

    #[test]
    fn into_variant_matches_allocating_path_bitwise() {
        let n = 300;
        let plan = ArbitraryFft::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.83).sin()).collect();
        let alloc = plan.forward_real(&x).unwrap();
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        // Dirty scratch must not leak into the result.
        scratch.fill(Complex64::new(7.0, -3.0));
        let mut out = vec![Complex64::ZERO; n];
        plan.forward_real_into(&x, &mut scratch, &mut out).unwrap();
        assert_eq!(alloc, out, "into-buffer path must be bit-identical");
    }

    #[test]
    fn into_variant_rejects_bad_buffer_lengths() {
        let plan = ArbitraryFft::new(10).unwrap();
        let x = [0.0; 10];
        let mut good_scratch = vec![Complex64::ZERO; plan.scratch_len()];
        let mut out = vec![Complex64::ZERO; 10];
        assert!(plan
            .forward_real_into(&x[..9], &mut good_scratch, &mut out)
            .is_err());
        let mut bad_scratch = vec![Complex64::ZERO; plan.scratch_len() - 1];
        assert!(plan
            .forward_real_into(&x, &mut bad_scratch, &mut out)
            .is_err());
        let mut bad_out = vec![Complex64::ZERO; 9];
        assert!(plan
            .forward_real_into(&x, &mut good_scratch, &mut bad_out)
            .is_err());
    }
}
