//! Iterative radix-2 Cooley–Tukey kernel shared by [`super::Fft`],
//! [`super::RealFft`] and [`super::ArbitraryFft`].
//!
//! The kernel is organized for throughput rather than brevity:
//!
//! * **Branch-free direction.** There is no `if inverse` test inside
//!   any butterfly: the inverse conjugates each twiddle as it streams
//!   past (on the AVX2 arm, one sign-mask XOR hoisted out of the loop;
//!   on scalar, one negation).
//! * **Twiddle-free first stages.** The length-2 stage multiplies by
//!   `W⁰ = 1` only and the length-4 stage by `1` and `∓j`, so both are
//!   specialized to pure add/sub/swap butterflies and never touch the
//!   twiddle table.
//! * **Sequential twiddle access.** Twiddles are stored per stage,
//!   contiguously: stage `len` owns `W_len^k` for `k < len/2`. The
//!   inner loop walks that slice linearly instead of striding through
//!   one size-`N` table, so every stage streams its coefficients in
//!   cache order.

use crate::complex::Complex64;

/// Precomputes the stage-ordered twiddle table for size `n` (a power of
/// two): the tables for stages `len = 8, 16, …, n` concatenated, where
/// stage `len` holds `W_len^k = e^{-j2πk/len}` for `k` in `0..len/2`.
///
/// Stages 2 and 4 need no twiddles (their factors are `1` and `∓j`) and
/// have no entries, so the table is empty for `n < 8` and holds `n - 4`
/// coefficients otherwise.
pub(crate) fn make_stage_twiddles(n: usize) -> Vec<Complex64> {
    debug_assert!(n.is_power_of_two() || n == 0);
    let mut table = Vec::new();
    let mut len = 8usize;
    while len <= n {
        let half = len / 2;
        table.reserve(half);
        for k in 0..half {
            table.push(Complex64::cis(
                -2.0 * std::f64::consts::PI * k as f64 / len as f64,
            ));
        }
        len <<= 1;
    }
    table
}

/// Precomputes the bit-reversal permutation for size `n` (a power of two).
pub(crate) fn make_bit_reversal(n: usize) -> Vec<u32> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| {
            if bits == 0 {
                0
            } else {
                (i as u32).reverse_bits() >> (32 - bits)
            }
        })
        .collect()
}

/// Applies the bit-reversal permutation.
#[inline]
fn permute(buf: &mut [Complex64], bit_rev: &[u32]) {
    debug_assert_eq!(bit_rev.len(), buf.len());
    for (i, &rev) in bit_rev.iter().enumerate() {
        let j = rev as usize;
        if j > i {
            buf.swap(i, j);
        }
    }
}

/// Length-2 stage: every twiddle is `W⁰ = 1`, so each butterfly is one
/// add and one subtract.
#[inline]
fn stage_len2(buf: &mut [Complex64]) {
    for pair in buf.chunks_exact_mut(2) {
        let a = pair[0];
        let b = pair[1];
        pair[0] = a + b;
        pair[1] = a - b;
    }
}

/// Length-4 stage, forward direction: twiddles are `1` and
/// `W₄¹ = e^{-jπ/2} = -j`; multiplication by `-j` is a component swap
/// with one negation.
#[inline]
fn stage_len4_forward(buf: &mut [Complex64]) {
    for quad in buf.chunks_exact_mut(4) {
        let (a0, a1, b0, b1) = (quad[0], quad[1], quad[2], quad[3]);
        // k = 0: w = 1.
        quad[0] = a0 + b0;
        quad[2] = a0 - b0;
        // k = 1: w = -j, so b·w = (b.im, -b.re).
        let t = Complex64::new(b1.im, -b1.re);
        quad[1] = a1 + t;
        quad[3] = a1 - t;
    }
}

/// Length-4 stage, inverse direction: twiddles are `1` and `+j`.
#[inline]
fn stage_len4_inverse(buf: &mut [Complex64]) {
    for quad in buf.chunks_exact_mut(4) {
        let (a0, a1, b0, b1) = (quad[0], quad[1], quad[2], quad[3]);
        quad[0] = a0 + b0;
        quad[2] = a0 - b0;
        // k = 1: w = +j, so b·w = (-b.im, b.re).
        let t = Complex64::new(-b1.im, b1.re);
        quad[1] = a1 + t;
        quad[3] = a1 - t;
    }
}

/// The stages `len ≥ 8`: each block's half-slices go through the
/// dispatched butterfly kernel ([`crate::simd::butterfly_pairs`] — AVX2
/// processes two butterflies per register and is bit-identical to the
/// scalar loop; `conjugate` selects the inverse direction, negating
/// each twiddle's imaginary part as it streams past).
#[inline]
fn tail_stages(buf: &mut [Complex64], stage_twiddles: &[Complex64], conjugate: bool) {
    let n = buf.len();
    let mut offset = 0usize;
    let mut len = 8usize;
    while len <= n {
        let half = len / 2;
        let stage = &stage_twiddles[offset..offset + half];
        for block in buf.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            crate::simd::butterfly_pairs(lo, hi, stage, conjugate);
        }
        offset += half;
        len <<= 1;
    }
}

/// In-place forward radix-2 decimation-in-time transform (no scaling).
pub(crate) fn forward(buf: &mut [Complex64], stage_twiddles: &[Complex64], bit_rev: &[u32]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    permute(buf, bit_rev);
    if n >= 2 {
        stage_len2(buf);
    }
    if n >= 4 {
        stage_len4_forward(buf);
    }
    tail_stages(buf, stage_twiddles, false);
}

/// In-place inverse radix-2 transform (conjugated twiddles; the `1/N`
/// scale is the caller's job).
pub(crate) fn inverse(buf: &mut [Complex64], stage_twiddles: &[Complex64], bit_rev: &[u32]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    permute(buf, bit_rev);
    if n >= 2 {
        stage_len2(buf);
    }
    if n >= 4 {
        stage_len4_inverse(buf);
    }
    tail_stages(buf, stage_twiddles, true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reversal_of_eight() {
        assert_eq!(make_bit_reversal(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        for n in [2usize, 16, 64] {
            let rev = make_bit_reversal(n);
            for (i, &r) in rev.iter().enumerate() {
                assert_eq!(rev[r as usize] as usize, i);
            }
        }
    }

    #[test]
    fn stage_table_sizes() {
        assert!(make_stage_twiddles(1).is_empty());
        assert!(make_stage_twiddles(4).is_empty());
        assert_eq!(make_stage_twiddles(8).len(), 4);
        // Stages 8..=64 hold 4 + 8 + 16 + 32 coefficients.
        assert_eq!(make_stage_twiddles(64).len(), 60);
    }

    #[test]
    fn stage_twiddles_are_unit_roots() {
        let tw = make_stage_twiddles(16);
        // First stage (len 8): W₈^k for k in 0..4, then len 16.
        for (k, w) in tw[..4].iter().enumerate() {
            let expected = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / 8.0);
            assert!((*w - expected).abs() < 1e-14);
        }
        for (k, w) in tw[4..].iter().enumerate() {
            let expected = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / 16.0);
            assert!((*w - expected).abs() < 1e-14);
            assert!((w.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn size_two_butterfly() {
        let tw = make_stage_twiddles(2);
        let rev = make_bit_reversal(2);
        let mut buf = [Complex64::new(1.0, 0.0), Complex64::new(2.0, 0.0)];
        forward(&mut buf, &tw, &rev);
        assert!((buf[0] - Complex64::new(3.0, 0.0)).abs() < 1e-14);
        assert!((buf[1] - Complex64::new(-1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn forward_then_inverse_is_scaled_identity() {
        let n = 32;
        let tw = make_stage_twiddles(n);
        let rev = make_bit_reversal(n);
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j as f64 * 0.9).sin(), (j as f64 * 0.4).cos()))
            .collect();
        let mut buf = x.clone();
        forward(&mut buf, &tw, &rev);
        inverse(&mut buf, &tw, &rev);
        for (a, &b) in buf.iter().zip(&x) {
            assert!((a.scale(1.0 / n as f64) - b).abs() < 1e-12);
        }
    }
}
