//! Iterative radix-2 Cooley–Tukey kernel shared by [`super::Fft`] and
//! [`super::ArbitraryFft`].

use crate::complex::Complex64;

/// Precomputes the first `n/2` forward twiddle factors
/// `W_n^k = e^{-j2πk/n}`.
pub(crate) fn make_twiddles(n: usize) -> Vec<Complex64> {
    let half = n / 2;
    (0..half)
        .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
        .collect()
}

/// Precomputes the bit-reversal permutation for size `n` (a power of two).
pub(crate) fn make_bit_reversal(n: usize) -> Vec<u32> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| {
            if bits == 0 {
                0
            } else {
                (i as u32).reverse_bits() >> (32 - bits)
            }
        })
        .collect()
}

/// In-place radix-2 decimation-in-time transform.
///
/// `inverse` selects conjugated twiddles; scaling is the caller's job.
pub(crate) fn transform(
    buf: &mut [Complex64],
    twiddles: &[Complex64],
    bit_rev: &[u32],
    inverse: bool,
) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(bit_rev.len(), n);

    // Bit-reversal permutation.
    for (i, &rev) in bit_rev.iter().enumerate() {
        let j = rev as usize;
        if j > i {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let mut w = twiddles[k * stride];
                if inverse {
                    w = w.conj();
                }
                let a = buf[start + k];
                let b = buf[start + k + half] * w;
                buf[start + k] = a + b;
                buf[start + k + half] = a - b;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reversal_of_eight() {
        assert_eq!(make_bit_reversal(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        for n in [2usize, 16, 64] {
            let rev = make_bit_reversal(n);
            for (i, &r) in rev.iter().enumerate() {
                assert_eq!(rev[r as usize] as usize, i);
            }
        }
    }

    #[test]
    fn twiddles_are_unit_roots() {
        let tw = make_twiddles(16);
        assert_eq!(tw.len(), 8);
        for (k, w) in tw.iter().enumerate() {
            assert!((w.abs() - 1.0).abs() < 1e-14);
            let expected = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / 16.0);
            assert!((*w - expected).abs() < 1e-14);
        }
    }

    #[test]
    fn size_two_butterfly() {
        let tw = make_twiddles(2);
        let rev = make_bit_reversal(2);
        let mut buf = [Complex64::new(1.0, 0.0), Complex64::new(2.0, 0.0)];
        transform(&mut buf, &tw, &rev, false);
        assert!((buf[0] - Complex64::new(3.0, 0.0)).abs() < 1e-14);
        assert!((buf[1] - Complex64::new(-1.0, 0.0)).abs() < 1e-14);
    }
}
