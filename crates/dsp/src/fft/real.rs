//! Packed real-input FFT: `N` real samples transformed through one
//! `N/2`-point complex FFT plus an `O(N)` untangling pass.
//!
//! Every spectral estimate in this workspace starts from a *real*
//! record (and, in the 1-bit BIST, a ±1-valued one), so a full `N`-point
//! complex transform wastes half its butterflies on the imaginary lane
//! of zeros. [`RealFft`] uses the classic pack/untangle identity
//! instead: place even samples in the real lane and odd samples in the
//! imaginary lane of an `N/2` complex buffer,
//!
//! `z[m] = x[2m] + j·x[2m+1]`,
//!
//! transform once, and split the result with the conjugate symmetry of
//! real-signal spectra. Writing `Z = FFT_{N/2}(z)`, the even- and
//! odd-sample spectra are
//!
//! `E[k] = (Z[k] + Z*[M−k])/2`, `O[k] = −j·(Z[k] − Z*[M−k])/2`,
//!
//! and the one-sided output is `X[k] = E[k] + W_N^k·O[k]` for
//! `k = 0..=M` with `M = N/2` (`X[M−k] = (E[k] − W_N^k·O[k])*` comes
//! for free, which is how the untangle pass runs in place over pairs of
//! bins). The remaining `N/2−1..N` bins are the conjugate mirror and
//! are never materialized.

use crate::complex::Complex64;
use crate::fft::Fft;
use crate::DspError;

/// A planned FFT of real input with one-sided (`N/2 + 1` bin) output,
/// doing half the butterfly work of [`Fft::forward_real`].
///
/// # Examples
///
/// ```
/// use nfbist_dsp::fft::{Fft, RealFft};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let n = 64;
/// let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.31).sin()).collect();
/// let one_sided = RealFft::new(n)?.forward(&x)?;
/// let full = Fft::new(n)?.forward_real(&x)?;
/// assert_eq!(one_sided.len(), n / 2 + 1);
/// for (a, b) in one_sided.iter().zip(&full) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    size: usize,
    /// The half-size complex plan (`None` for the degenerate size 1).
    inner: Option<Fft>,
    /// Untangle twiddles `W_N^k = e^{-j2πk/N}` for `k` in `1..N/4`
    /// (`k = 0` is the DC/Nyquist special case and `k = N/4` is the
    /// self-conjugate bin, both handled without a table lookup).
    twiddles: Vec<Complex64>,
}

impl RealFft {
    /// Plans a real-input FFT of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFftSize`] unless `size` is a power of
    /// two greater than zero.
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size == 0 {
            return Err(DspError::InvalidFftSize {
                size,
                reason: "fft size must be nonzero",
            });
        }
        if !size.is_power_of_two() {
            return Err(DspError::InvalidFftSize {
                size,
                reason: "real fft size must be a power of two (use ArbitraryFft otherwise)",
            });
        }
        let inner = if size >= 2 {
            Some(Fft::new(size / 2)?)
        } else {
            None
        };
        let twiddles = (1..size / 4)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        Ok(RealFft {
            size,
            inner,
            twiddles,
        })
    }

    /// The planned (real) input length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of one-sided output bins, `size/2 + 1` (1 for size 1).
    pub fn output_len(&self) -> usize {
        self.size / 2 + 1
    }

    /// Forward transform returning the `N/2 + 1` one-sided bins
    /// (DC through Nyquist, no scaling — matching [`Fft::forward`]
    /// conventions on the retained bins).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<Complex64>, DspError> {
        let mut out = vec![Complex64::ZERO; self.output_len()];
        self.forward_into(x, &mut out)?;
        Ok(out)
    }

    /// Forward transform into a caller-owned one-sided buffer — the
    /// zero-allocation variant used by the PSD workspace hot path. The
    /// first `N/2` slots of `out` double as the packed work buffer, so
    /// no scratch is needed.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`
    /// or `out.len() != self.output_len()`.
    pub fn forward_into(&self, x: &[f64], out: &mut [Complex64]) -> Result<(), DspError> {
        if x.len() != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual: x.len(),
                context: "real fft forward_into (input)",
            });
        }
        if out.len() != self.output_len() {
            return Err(DspError::LengthMismatch {
                expected: self.output_len(),
                actual: out.len(),
                context: "real fft forward_into (output)",
            });
        }
        let Some(inner) = &self.inner else {
            // Size 1: the spectrum is the sample itself.
            out[0] = Complex64::from_real(x[0]);
            return Ok(());
        };
        let m = self.size / 2;

        // Pack: z[i] = x[2i] + j·x[2i+1] into the work prefix of `out`.
        for (z, pair) in out[..m].iter_mut().zip(x.chunks_exact(2)) {
            *z = Complex64::new(pair[0], pair[1]);
        }
        inner.forward_in_place(&mut out[..m])?;

        // Untangle in place, pairwise over (k, M−k).
        let z0 = out[0];
        for (k, &w) in (1..).zip(&self.twiddles) {
            let zk = out[k];
            let zc = out[m - k].conj();
            // E[k] = (Z[k] + Z*[M−k])/2, O[k] = −j·(Z[k] − Z*[M−k])/2.
            let e = (zk + zc).scale(0.5);
            let d = zk - zc;
            let o = Complex64::new(0.5 * d.im, -0.5 * d.re);
            let wo = w * o;
            out[k] = e + wo;
            out[m - k] = (e - wo).conj();
        }
        if m >= 2 {
            // Self-conjugate bin k = M/2: W_N^{M/2} = −j collapses the
            // untangle to a conjugation.
            out[m / 2] = out[m / 2].conj();
        }
        // DC and Nyquist, both purely real.
        out[0] = Complex64::from_real(z0.re + z0.im);
        out[m] = Complex64::from_real(z0.re - z0.im);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.47).sin() + 0.3 * (j as f64 * 1.13).cos() - 0.1)
            .collect()
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(RealFft::new(0).is_err());
        assert!(RealFft::new(3).is_err());
        assert!(RealFft::new(24).is_err());
        assert!(RealFft::new(1).is_ok());
        assert!(RealFft::new(2).is_ok());
        assert!(RealFft::new(1024).is_ok());
    }

    #[test]
    fn degenerate_sizes() {
        let x1 = [2.5];
        assert_eq!(
            RealFft::new(1).unwrap().forward(&x1).unwrap(),
            vec![Complex64::from_real(2.5)]
        );
        let x2 = [1.0, -3.0];
        let out = RealFft::new(2).unwrap().forward(&x2).unwrap();
        assert_eq!(out[0], Complex64::from_real(-2.0));
        assert_eq!(out[1], Complex64::from_real(4.0));
    }

    #[test]
    fn matches_naive_dft_one_sided() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let x = real_signal(n);
            let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
            let oracle = dft_naive(&packed);
            let fast = RealFft::new(n).unwrap().forward(&x).unwrap();
            assert_eq!(fast.len(), n / 2 + 1);
            for (k, (a, b)) in fast.iter().zip(&oracle).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-9 * n as f64,
                    "n={n} bin {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matches_complex_real_transform() {
        for n in [8usize, 32, 128, 1024] {
            let x = real_signal(n);
            let full = Fft::new(n).unwrap().forward_real(&x).unwrap();
            let half = RealFft::new(n).unwrap().forward(&x).unwrap();
            for (k, (a, b)) in half.iter().zip(&full).enumerate() {
                assert!((*a - *b).abs() < 1e-9 * n as f64, "n={n} bin {k}");
            }
        }
    }

    #[test]
    fn dc_and_nyquist_are_purely_real() {
        let n = 128;
        let x = real_signal(n);
        let out = RealFft::new(n).unwrap().forward(&x).unwrap();
        assert_eq!(out[0].im, 0.0);
        assert_eq!(out[n / 2].im, 0.0);
        let sum: f64 = x.iter().sum();
        assert!((out[0].re - sum).abs() < 1e-9);
    }

    #[test]
    fn into_variant_matches_allocating_path_bitwise() {
        let n = 256;
        let x = real_signal(n);
        let plan = RealFft::new(n).unwrap();
        let alloc = plan.forward(&x).unwrap();
        // Dirty output must not leak into the result.
        let mut out = vec![Complex64::new(9.0, -9.0); plan.output_len()];
        plan.forward_into(&x, &mut out).unwrap();
        assert_eq!(alloc, out, "into-buffer path must be bit-identical");
    }

    #[test]
    fn length_mismatches_rejected() {
        let plan = RealFft::new(16).unwrap();
        let x = [0.0; 16];
        let mut out = vec![Complex64::ZERO; plan.output_len()];
        assert!(plan.forward_into(&x[..15], &mut out).is_err());
        let mut bad = vec![Complex64::ZERO; plan.output_len() - 1];
        assert!(plan.forward_into(&x, &mut bad).is_err());
        assert!(plan.forward(&x[..3]).is_err());
    }

    #[test]
    fn parseval_energy_on_one_sided_bins() {
        let n = 512;
        let x = real_signal(n);
        let spec = RealFft::new(n).unwrap().forward(&x).unwrap();
        let time: f64 = x.iter().map(|v| v * v).sum();
        // One-sided Parseval: interior bins count twice.
        let mut freq = spec[0].norm_sqr() + spec[n / 2].norm_sqr();
        for z in &spec[1..n / 2] {
            freq += 2.0 * z.norm_sqr();
        }
        freq /= n as f64;
        assert!((time - freq).abs() < 1e-8 * (1.0 + time));
    }
}
