//! Fast Fourier transforms.
//!
//! Three engines are provided:
//!
//! * [`Fft`] — a planned, iterative radix-2 Cooley–Tukey transform for
//!   power-of-two sizes, with branch-free forward/inverse butterfly
//!   loops and twiddle-free first stages.
//! * [`RealFft`] — the real-input engine behind the PSD estimators: it
//!   packs `N` real samples into an `N/2`-point complex transform and
//!   untangles the conjugate-symmetric spectrum into the `N/2 + 1`
//!   one-sided bins, halving the butterfly work.
//! * [`ArbitraryFft`] — Bluestein's chirp-z algorithm for any size,
//!   built on top of the radix-2 kernel. Used when an experiment asks for
//!   a non-power-of-two record (the paper's prototype used a 10⁴-point
//!   FFT, which is not a power of two).
//!
//! Conventions: the forward transform computes
//! `X[k] = Σ_n x[n]·e^{-j2πkn/N}` with no scaling; the inverse applies the
//! `1/N` factor. This matches Matlab, which the paper's processing used.
//!
//! # Examples
//!
//! ```
//! use nfbist_dsp::complex::Complex64;
//! use nfbist_dsp::fft::Fft;
//!
//! # fn main() -> Result<(), nfbist_dsp::DspError> {
//! let plan = Fft::new(8)?;
//! let x = vec![Complex64::ONE; 8];
//! let spec = plan.forward(&x)?;
//! // A DC-only signal transforms to a single bin of height N.
//! assert!((spec[0].re - 8.0).abs() < 1e-12);
//! assert!(spec[1..].iter().all(|z| z.abs() < 1e-12));
//! # Ok(())
//! # }
//! ```

mod bluestein;
mod radix2;
mod real;

pub use bluestein::ArbitraryFft;
pub use real::RealFft;

use crate::complex::Complex64;
use crate::DspError;
use std::sync::OnceLock;

/// A planned radix-2 FFT of a fixed power-of-two size.
///
/// Plans precompute the stage-ordered twiddle tables and the
/// bit-reversal permutation so repeated transforms (e.g. Welch segment
/// averaging over a 10⁶-sample acquisition) do no trigonometry in the
/// hot loop, and the butterfly loops stream their twiddles in cache
/// order.
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    stage_twiddles: Vec<Complex64>,
    bit_rev: Vec<u32>,
    /// Lazily-built packed real engine backing
    /// [`Fft::forward_real_half`] (boxed: `RealFft` holds a half-size
    /// `Fft` of its own).
    real_half: OnceLock<Box<RealFft>>,
}

impl Fft {
    /// Plans an FFT of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFftSize`] unless `size` is a power of
    /// two greater than zero.
    pub fn new(size: usize) -> Result<Self, DspError> {
        if size == 0 {
            return Err(DspError::InvalidFftSize {
                size,
                reason: "fft size must be nonzero",
            });
        }
        if !size.is_power_of_two() {
            return Err(DspError::InvalidFftSize {
                size,
                reason: "fft size must be a power of two (use ArbitraryFft otherwise)",
            });
        }
        Ok(Fft {
            size,
            stage_twiddles: radix2::make_stage_twiddles(size),
            bit_rev: radix2::make_bit_reversal(size),
            real_half: OnceLock::new(),
        })
    }

    /// The planned transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Forward transform of a complex buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn forward(&self, x: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
        self.check_len(x.len(), "fft forward")?;
        let mut buf = x.to_vec();
        self.forward_in_place(&mut buf)?;
        Ok(buf)
    }

    /// Forward transform, in place.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `buf.len() != self.size()`.
    pub fn forward_in_place(&self, buf: &mut [Complex64]) -> Result<(), DspError> {
        self.check_len(buf.len(), "fft forward_in_place")?;
        radix2::forward(buf, &self.stage_twiddles, &self.bit_rev);
        Ok(())
    }

    /// Inverse transform (applies the `1/N` scale).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn inverse(&self, x: &[Complex64]) -> Result<Vec<Complex64>, DspError> {
        self.check_len(x.len(), "fft inverse")?;
        let mut buf = x.to_vec();
        self.inverse_in_place(&mut buf)?;
        Ok(buf)
    }

    /// Inverse transform in place (applies the `1/N` scale).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `buf.len() != self.size()`.
    pub fn inverse_in_place(&self, buf: &mut [Complex64]) -> Result<(), DspError> {
        self.check_len(buf.len(), "fft inverse_in_place")?;
        radix2::inverse(buf, &self.stage_twiddles, &self.bit_rev);
        let scale = 1.0 / self.size as f64;
        for z in buf.iter_mut() {
            *z = z.scale(scale);
        }
        Ok(())
    }

    /// Forward transform of a real buffer, returning the full complex
    /// spectrum (length `N`, conjugate-symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn forward_real(&self, x: &[f64]) -> Result<Vec<Complex64>, DspError> {
        self.check_len(x.len(), "fft forward_real")?;
        let mut buf: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        self.forward_in_place(&mut buf)?;
        Ok(buf)
    }

    /// Forward transform of a real buffer into a caller-owned output
    /// buffer — the zero-allocation variant of [`Fft::forward_real`]
    /// used by the PSD workspace hot path.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len()` or `out.len()`
    /// differs from `self.size()`.
    pub fn forward_real_into(&self, x: &[f64], out: &mut [Complex64]) -> Result<(), DspError> {
        self.check_len(x.len(), "fft forward_real_into (input)")?;
        self.check_len(out.len(), "fft forward_real_into (output)")?;
        for (o, &v) in out.iter_mut().zip(x) {
            *o = Complex64::from_real(v);
        }
        radix2::forward(out, &self.stage_twiddles, &self.bit_rev);
        Ok(())
    }

    /// Forward transform of a real buffer, returning only the `N/2 + 1`
    /// non-redundant (one-sided) bins.
    ///
    /// Runs through the packed [`RealFft`] engine, so only half the
    /// butterfly work of [`Fft::forward_real`] is done and the mirrored
    /// upper bins are never computed or allocated. The real engine is
    /// planned once on first use and cached inside this plan.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `x.len() != self.size()`.
    pub fn forward_real_half(&self, x: &[f64]) -> Result<Vec<Complex64>, DspError> {
        self.check_len(x.len(), "fft forward_real_half")?;
        self.real_half
            .get_or_init(|| Box::new(RealFft::new(self.size).expect("size validated by Fft::new")))
            .forward(x)
    }

    fn check_len(&self, actual: usize, context: &'static str) -> Result<(), DspError> {
        if actual != self.size {
            return Err(DspError::LengthMismatch {
                expected: self.size,
                actual,
                context,
            });
        }
        Ok(())
    }
}

/// Computes the forward DFT directly from its definition in `O(N²)`.
///
/// Exists as an oracle for testing the fast transforms and is exported so
/// downstream test suites can do the same. Do not use it for real
/// workloads.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::complex::Complex64;
/// use nfbist_dsp::fft::{dft_naive, Fft};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<Complex64> = (0..8).map(|n| Complex64::new(n as f64, 0.0)).collect();
/// let fast = Fft::new(8)?.forward(&x)?;
/// let slow = dft_naive(&x);
/// for (a, b) in fast.iter().zip(&slow) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
pub fn dft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &v) in x.iter().enumerate() {
            let theta = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += v * Complex64::cis(theta);
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(Fft::new(0).is_err());
        assert!(Fft::new(3).is_err());
        assert!(Fft::new(12).is_err());
        assert!(Fft::new(1).is_ok());
        assert!(Fft::new(1024).is_ok());
    }

    #[test]
    fn size_one_is_identity() {
        let plan = Fft::new(1).unwrap();
        let x = [Complex64::new(2.5, -1.0)];
        assert_eq!(plan.forward(&x).unwrap(), vec![x[0]]);
        assert_eq!(plan.inverse(&x).unwrap(), vec![x[0]]);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let plan = Fft::new(16).unwrap();
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        let spec = plan.forward(&x).unwrap();
        for z in spec {
            assert!((z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let plan = Fft::new(n).unwrap();
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * PI * (k0 * j) as f64 / n as f64))
            .collect();
        let spec = plan.forward(&x).unwrap();
        assert!((spec[k0].re - n as f64).abs() < 1e-9);
        for (k, z) in spec.iter().enumerate() {
            if k != k0 {
                assert!(z.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 32, 128] {
            let x: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64 * 0.7).sin() + 0.3, (j as f64 * 1.3).cos() - 0.1))
                .collect();
            let fast = Fft::new(n).unwrap().forward(&x).unwrap();
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-8 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 256;
        let plan = Fft::new(n).unwrap();
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j as f64).sin(), (j as f64 * 0.5).cos()))
            .collect();
        let back = plan.inverse(&plan.forward(&x).unwrap()).unwrap();
        assert_close(&back, &x, 1e-10);
    }

    #[test]
    fn real_transform_is_conjugate_symmetric() {
        let n = 64;
        let plan = Fft::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.31).sin() + 0.2).collect();
        let spec = plan.forward_real(&x).unwrap();
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a - b).abs() < 1e-9, "symmetry broken at bin {k}");
        }
    }

    #[test]
    fn forward_real_into_matches_allocating_path_bitwise() {
        let n = 128;
        let plan = Fft::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.47).sin() - 0.1).collect();
        let alloc = plan.forward_real(&x).unwrap();
        let mut out = vec![Complex64::new(9.0, 9.0); n];
        plan.forward_real_into(&x, &mut out).unwrap();
        assert_eq!(alloc, out, "into-buffer path must be bit-identical");
        assert!(plan.forward_real_into(&x[..n - 1], &mut out).is_err());
        assert!(plan
            .forward_real_into(&x, &mut out[..n - 1].to_vec())
            .is_err());
    }

    #[test]
    fn forward_real_half_length() {
        let plan = Fft::new(32).unwrap();
        let x = vec![0.0; 32];
        assert_eq!(plan.forward_real_half(&x).unwrap().len(), 17);
        assert!(plan.forward_real_half(&x[..31]).is_err());
    }

    #[test]
    fn forward_real_half_matches_real_fft_bitwise_and_full_numerically() {
        let n = 64;
        let plan = Fft::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.29).sin() + 0.4).collect();
        let half = plan.forward_real_half(&x).unwrap();
        assert_eq!(half, RealFft::new(n).unwrap().forward(&x).unwrap());
        let full = plan.forward_real(&x).unwrap();
        for (k, (a, b)) in half.iter().zip(&full).enumerate() {
            assert!((*a - *b).abs() < 1e-9, "bin {k}: {a} vs {b}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let plan = Fft::new(n).unwrap();
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.11).cos()).collect();
        let spec = plan.forward_real(&x).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn length_mismatch_is_reported() {
        let plan = Fft::new(8).unwrap();
        let err = plan.forward(&[Complex64::ZERO; 4]).unwrap_err();
        assert!(matches!(
            err,
            DspError::LengthMismatch {
                expected: 8,
                actual: 4,
                ..
            }
        ));
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = Fft::new(n).unwrap();
        let a: Vec<Complex64> = (0..n).map(|j| Complex64::new(j as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new(0.0, (j as f64).sin()))
            .collect();
        let lhs: Vec<Complex64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x.scale(2.0) + y.scale(-3.0))
            .collect();
        let fl = plan.forward(&lhs).unwrap();
        let fa = plan.forward(&a).unwrap();
        let fb = plan.forward(&b).unwrap();
        for k in 0..n {
            let expect = fa[k].scale(2.0) + fb[k].scale(-3.0);
            assert!((fl[k] - expect).abs() < 1e-9);
        }
    }
}
