//! Structure-of-arrays record batches.
//!
//! A [`SoaRecords`] holds `lanes` equal-length records interleaved
//! **sample-major**: element `i` of lane `l` lives at
//! `data[i·lanes + l]`, so one sample index of *all* lanes is
//! contiguous in memory. That is the layout the SIMD recurrence
//! kernels want when vectorizing *across repeated acquisitions*
//! (lanes) instead of within one record — a serial dependency chain
//! like Goertzel's `s0 = v + coeff·s1 − s2` cannot be vectorized along
//! the sample axis (each step needs the previous), but across lanes
//! every step is independent, so 4 repeats advance per instruction
//! ([`crate::simd::goertzel_soa_run`]).
//!
//! The batch fan-out uses this to run R repeated acquisitions through
//! one vectorized readout; see `nfbist_bist`'s frequency-response
//! tester for the end-to-end wiring.

use crate::simd;

/// A batch of `lanes` equal-length records in sample-major
/// (structure-of-arrays) layout.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::soa::SoaRecords;
///
/// let mut batch = SoaRecords::new(2, 3);
/// batch.set_lane(0, &[1.0, 2.0, 3.0]);
/// batch.set_lane(1, &[10.0, 20.0, 30.0]);
/// // Sample-major: sample 0 of both lanes is adjacent.
/// assert_eq!(batch.data()[..2], [1.0, 10.0]);
/// assert_eq!(batch.copy_lane(1), vec![10.0, 20.0, 30.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SoaRecords {
    data: Vec<f64>,
    lanes: usize,
    samples: usize,
}

impl SoaRecords {
    /// A zero-filled batch of `lanes` records of `samples` elements.
    pub fn new(lanes: usize, samples: usize) -> Self {
        SoaRecords {
            data: vec![0.0; lanes * samples],
            lanes,
            samples,
        }
    }

    /// Builds a batch by transposing contiguous records (all must have
    /// the length of the first; `records` must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty or the lengths differ.
    pub fn from_records(records: &[&[f64]]) -> Self {
        assert!(!records.is_empty(), "SoaRecords::from_records: no records");
        let samples = records[0].len();
        let lanes = records.len();
        let mut out = SoaRecords::new(lanes, samples);
        for (l, rec) in records.iter().enumerate() {
            out.set_lane(l, rec);
        }
        out
    }

    /// Number of lanes (records) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of samples per lane.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The raw sample-major storage (`data[i·lanes + l]`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw sample-major storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Scatters one contiguous record into lane `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ lanes` or `record.len() ≠ samples`.
    pub fn set_lane(&mut self, l: usize, record: &[f64]) {
        assert!(l < self.lanes, "SoaRecords::set_lane: lane out of range");
        assert_eq!(
            record.len(),
            self.samples,
            "SoaRecords::set_lane: record length mismatch"
        );
        for (i, &v) in record.iter().enumerate() {
            self.data[i * self.lanes + l] = v;
        }
    }

    /// Gathers lane `l` back into a contiguous record.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ lanes`.
    pub fn copy_lane(&self, l: usize) -> Vec<f64> {
        assert!(l < self.lanes, "SoaRecords::copy_lane: lane out of range");
        (0..self.samples)
            .map(|i| self.data[i * self.lanes + l])
            .collect()
    }

    /// Multiplies every lane by a per-sample coefficient vector
    /// (`lane[i] *= coeffs[i]`) — window application across the whole
    /// batch, vectorized across lanes. Bit-identical across arms.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() ≠ samples`.
    pub fn scale_by_sample(&mut self, coeffs: &[f64]) {
        assert_eq!(
            coeffs.len(),
            self.samples,
            "SoaRecords::scale_by_sample: coefficient length mismatch"
        );
        simd::scale_by_sample(&mut self.data, self.lanes, coeffs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [-1.0, -2.0, -3.0, -4.0, -5.0];
        let c = [0.5, 0.25, 0.125, 0.0625, 0.03125];
        let batch = SoaRecords::from_records(&[&a, &b, &c]);
        assert_eq!(batch.lanes(), 3);
        assert_eq!(batch.samples(), 5);
        assert_eq!(batch.copy_lane(0), a.to_vec());
        assert_eq!(batch.copy_lane(1), b.to_vec());
        assert_eq!(batch.copy_lane(2), c.to_vec());
        // Sample-major interleave.
        assert_eq!(batch.data()[..3], [1.0, -1.0, 0.5]);
    }

    #[test]
    fn scale_by_sample_matches_per_lane_scaling() {
        let a: Vec<f64> = (0..7).map(|i| i as f64 + 0.25).collect();
        let b: Vec<f64> = (0..7).map(|i| -(i as f64) * 0.5).collect();
        let coeffs: Vec<f64> = (0..7).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut batch = SoaRecords::from_records(&[&a, &b]);
        batch.scale_by_sample(&coeffs);
        for (l, rec) in [&a, &b].into_iter().enumerate() {
            let got = batch.copy_lane(l);
            for ((g, r), c) in got.iter().zip(rec).zip(&coeffs) {
                assert_eq!(g.to_bits(), (r * c).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "record length mismatch")]
    fn set_lane_rejects_wrong_length() {
        let mut batch = SoaRecords::new(2, 4);
        batch.set_lane(0, &[1.0; 3]);
    }
}
