//! Auto- and cross-correlation estimators.
//!
//! The arcsine law (paper eq. 12) relates the autocorrelation of the
//! 1-bit digitizer output to that of its Gaussian input; the core crate
//! verifies this property using these estimators.

use crate::complex::Complex64;
use crate::fft::Fft;
use crate::DspError;

/// Normalization convention for correlation estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bias {
    /// Divide every lag by `N` (biased; the spectral-factorization
    /// convention — guarantees a positive-semidefinite sequence).
    Biased,
    /// Divide lag `k` by `N-k` (unbiased but higher variance at large
    /// lags).
    Unbiased,
}

/// Autocorrelation of `x` for lags `0..=max_lag` (direct `O(N·L)` form).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty buffer and
/// [`DspError::InvalidParameter`] if `max_lag >= x.len()`.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::correlation::{autocorrelation, Bias};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x = [1.0, -1.0, 1.0, -1.0];
/// let r = autocorrelation(&x, 1, Bias::Biased)?;
/// assert_eq!(r[0], 1.0);        // lag 0: mean square
/// assert_eq!(r[1], -0.75);      // alternating signal anti-correlates
/// # Ok(())
/// # }
/// ```
pub fn autocorrelation(x: &[f64], max_lag: usize, bias: Bias) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput {
            context: "autocorrelation",
        });
    }
    if max_lag >= x.len() {
        return Err(DspError::InvalidParameter {
            name: "max_lag",
            reason: "must be smaller than the input length",
        });
    }
    let n = x.len();
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += x[i] * x[i + lag];
        }
        let denom = match bias {
            Bias::Biased => n as f64,
            Bias::Unbiased => (n - lag) as f64,
        };
        out.push(acc / denom);
    }
    Ok(out)
}

/// Cross-correlation `R_xy[k] = Σ x[i]·y[i+k]` for lags `0..=max_lag`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for empty buffers,
/// [`DspError::LengthMismatch`] if the buffers differ in length, and
/// [`DspError::InvalidParameter`] if `max_lag >= x.len()`.
pub fn cross_correlation(
    x: &[f64],
    y: &[f64],
    max_lag: usize,
    bias: Bias,
) -> Result<Vec<f64>, DspError> {
    if x.is_empty() || y.is_empty() {
        return Err(DspError::EmptyInput {
            context: "cross_correlation",
        });
    }
    if x.len() != y.len() {
        return Err(DspError::LengthMismatch {
            expected: x.len(),
            actual: y.len(),
            context: "cross_correlation",
        });
    }
    if max_lag >= x.len() {
        return Err(DspError::InvalidParameter {
            name: "max_lag",
            reason: "must be smaller than the input length",
        });
    }
    let n = x.len();
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += x[i] * y[i + lag];
        }
        let denom = match bias {
            Bias::Biased => n as f64,
            Bias::Unbiased => (n - lag) as f64,
        };
        out.push(acc / denom);
    }
    Ok(out)
}

/// FFT-based biased autocorrelation for lags `0..=max_lag` in
/// `O(N log N)`; numerically equivalent to
/// `autocorrelation(x, max_lag, Bias::Biased)`.
///
/// # Errors
///
/// Same as [`autocorrelation`].
pub fn autocorrelation_fft(x: &[f64], max_lag: usize) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput {
            context: "autocorrelation_fft",
        });
    }
    if max_lag >= x.len() {
        return Err(DspError::InvalidParameter {
            name: "max_lag",
            reason: "must be smaller than the input length",
        });
    }
    let n = x.len();
    // Zero-pad to at least 2N to make the circular convolution linear.
    let m = (2 * n).next_power_of_two();
    let fft = Fft::new(m)?;
    let mut buf: Vec<Complex64> = x
        .iter()
        .map(|&v| Complex64::from_real(v))
        .chain(std::iter::repeat(Complex64::ZERO))
        .take(m)
        .collect();
    fft.forward_in_place(&mut buf)?;
    for z in &mut buf {
        *z = Complex64::from_real(z.norm_sqr());
    }
    fft.inverse_in_place(&mut buf)?;
    Ok((0..=max_lag).map(|k| buf[k].re / n as f64).collect())
}

/// Normalized autocorrelation `ρ[k] = R[k]/R[0]` (biased, FFT-based).
///
/// This is the quantity inside the arcsine in paper eq. 12.
///
/// # Errors
///
/// Same as [`autocorrelation`], plus [`DspError::InvalidParameter`] when
/// the zero-lag power is zero.
pub fn normalized_autocorrelation(x: &[f64], max_lag: usize) -> Result<Vec<f64>, DspError> {
    let r = autocorrelation_fft(x, max_lag)?;
    let r0 = r[0];
    if r0 == 0.0 {
        return Err(DspError::InvalidParameter {
            name: "x",
            reason: "normalized autocorrelation undefined for zero-power signal",
        });
    }
    Ok(r.iter().map(|v| v / r0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn empty_and_bad_lag_rejected() {
        assert!(autocorrelation(&[], 0, Bias::Biased).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 2, Bias::Biased).is_err());
        assert!(autocorrelation_fft(&[], 0).is_err());
        assert!(autocorrelation_fft(&[1.0], 1).is_err());
        assert!(cross_correlation(&[1.0], &[], 0, Bias::Biased).is_err());
        assert!(cross_correlation(&[1.0, 2.0], &[1.0], 0, Bias::Biased).is_err());
    }

    #[test]
    fn lag_zero_is_mean_square() {
        let x = [1.0, 2.0, 3.0];
        let r = autocorrelation(&x, 0, Bias::Biased).unwrap();
        assert!((r[0] - 14.0 / 3.0).abs() < 1e-12);
        let r = autocorrelation(&x, 0, Bias::Unbiased).unwrap();
        assert!((r[0] - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unbiased_matches_hand_computation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let r = autocorrelation(&x, 2, Bias::Unbiased).unwrap();
        // lag1: (1·2+2·3+3·4)/3 = 20/3; lag2: (1·3+2·4)/2 = 5.5.
        assert!((r[1] - 20.0 / 3.0).abs() < 1e-12);
        assert!((r[2] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn fft_matches_direct() {
        let x: Vec<f64> = (0..200).map(|j| (j as f64 * 0.37).sin() + 0.1).collect();
        let direct = autocorrelation(&x, 50, Bias::Biased).unwrap();
        let fast = autocorrelation_fft(&x, 50).unwrap();
        for (a, b) in direct.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn sinusoid_autocorrelation_is_cosine() {
        // R[k] of A·sin(ωn+φ) tends to (A²/2)·cos(ωk).
        let n = 100_000;
        let omega = 2.0 * PI * 0.05;
        let x: Vec<f64> = (0..n).map(|j| 2.0 * (omega * j as f64).sin()).collect();
        let r = autocorrelation_fft(&x, 40).unwrap();
        for (k, v) in r.iter().enumerate() {
            let expect = 2.0 * (omega * k as f64).cos();
            assert!((v - expect).abs() < 0.01, "lag {k}: {v} vs {expect}");
        }
    }

    #[test]
    fn normalized_autocorrelation_bounds() {
        let x: Vec<f64> = (0..5000)
            .map(|j| (j as f64 * 1.7).sin() + 0.3 * (j as f64 * 0.9).cos())
            .collect();
        let rho = normalized_autocorrelation(&x, 100).unwrap();
        assert!((rho[0] - 1.0).abs() < 1e-12);
        for v in &rho {
            assert!(v.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn normalized_zero_power_rejected() {
        assert!(normalized_autocorrelation(&[0.0; 16], 4).is_err());
    }

    #[test]
    fn cross_correlation_detects_shift() {
        // y is x delayed by 3 → R_xy peaks at lag 3.
        let n = 2000;
        let mut state: u64 = 99;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let x: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut y = vec![0.0; n];
        y[3..n].copy_from_slice(&x[..n - 3]);
        let r = cross_correlation(&x, &y, 10, Bias::Biased).unwrap();
        let best = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3);
    }
}
