//! # nfbist-dsp — digital signal processing substrate
//!
//! This crate provides the signal-processing machinery that the DATE'05
//! paper *"Noise Figure Evaluation Using Low Cost BIST"* performed in
//! Matlab: FFTs, power spectral density estimation, window functions,
//! autocorrelation, filtering and basic statistics. Everything is
//! implemented from scratch on `f64` buffers so the reproduction has no
//! opaque numeric dependencies.
//!
//! ## Quick tour
//!
//! ```
//! use nfbist_dsp::fft::Fft;
//! use nfbist_dsp::psd::WelchConfig;
//! use nfbist_dsp::window::Window;
//!
//! # fn main() -> Result<(), nfbist_dsp::DspError> {
//! // A 1 kHz tone sampled at 16 kHz.
//! let fs = 16_000.0;
//! let x: Vec<f64> = (0..4096)
//!     .map(|n| (2.0 * std::f64::consts::PI * 1000.0 * n as f64 / fs).sin())
//!     .collect();
//!
//! // Welch PSD with a Hann window.
//! let psd = WelchConfig::new(1024)?
//!     .window(Window::Hann)
//!     .overlap(0.5)?
//!     .estimate(&x, fs)?;
//! let peak = psd.peak_in_band(500.0, 1500.0)?;
//! assert!((peak.frequency - 1000.0).abs() < psd.resolution());
//!
//! // Or a raw FFT.
//! let plan = Fft::new(1024)?;
//! let spec = plan.forward_real(&x[..1024])?;
//! assert_eq!(spec.len(), 1024);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | Module | Contents |
//! |---|---|
//! | [`complex`] | Minimal `Complex64` arithmetic used by the FFTs |
//! | [`fft`] | Radix-2 FFT plans, real-input helpers, Bluestein for arbitrary sizes |
//! | [`window`] | Window functions and their coherent/noise gains |
//! | [`psd`] | Periodogram and Welch PSD estimators producing [`spectrum::Spectrum`] |
//! | [`spectrum`] | One-sided PSD container: bin↔frequency maps, band power, peaks |
//! | [`correlation`] | Biased/unbiased auto- and cross-correlation (direct and FFT) |
//! | [`filter`] | FIR design (windowed sinc), biquads, Butterworth cascades |
//! | [`goertzel`] | Single-bin DFT for cheap reference-line tracking |
//! | [`resample`] | Decimation and zero-stuffing interpolation |
//! | [`simd`] | Runtime-dispatched SIMD kernels (AVX2/NEON/scalar) for the hot loops |
//! | [`soa`] | Structure-of-arrays record batches for vectorizing across repeats |
//! | [`stats`] | Mean, variance, RMS, mean-square, histogramming |
//! | [`db`] | Decibel conversions for power and amplitude quantities |

// Unsafe is denied crate-wide and re-allowed only inside `simd`, whose
// `std::arch` intrinsic calls are the single sanctioned exception (each
// carries a Safety comment; every other crate in the workspace stays
// `forbid(unsafe_code)`).
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod complex;
pub mod correlation;
pub mod db;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod psd;
pub mod resample;
pub mod simd;
pub mod soa;
pub mod spectrum;
pub mod stats;
pub mod window;

mod error;

pub use error::DspError;
