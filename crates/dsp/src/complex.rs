//! Minimal complex arithmetic used by the FFT implementations.
//!
//! The reproduction avoids external numeric crates, so this module provides
//! the small subset of complex operations an FFT needs: addition,
//! subtraction, multiplication, conjugation, magnitude and `e^{jθ}`
//! construction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::complex::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// let c = a * b;
/// assert_eq!(c, Complex64::new(5.0, 5.0));
/// assert!((Complex64::from_polar(2.0, 0.0).re - 2.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_dsp::complex::Complex64;
    /// assert_eq!(Complex64::from_real(2.5).im, 0.0);
    /// ```
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `e^{jθ}` — a unit phasor at angle `theta` radians.
    ///
    /// This is the twiddle-factor constructor used by the FFTs.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    ///
    /// Prefer this over [`Complex64::abs`] when only relative magnitudes
    /// matter; it avoids a square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Reciprocal `1/z`.
    ///
    /// Returns infinities when `z` is zero, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal multiply
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
        assert_eq!(Complex64::from(3.0), Complex64::new(3.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - PI / 3.0).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = 2.0 * PI * k as f64 / 16.0;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -0.5);
        let b = Complex64::new(-2.0, 4.0);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a - a, Complex64::ZERO);
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < EPS);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj().conj(), a);
        assert!((a * a.conj()).im.abs() < EPS);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < EPS);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn recip_inverts() {
        let a = Complex64::new(0.3, -0.7);
        let p = a * a.recip();
        assert!((p - Complex64::ONE).abs() < EPS);
    }

    #[test]
    fn assign_operators() {
        let mut a = Complex64::new(1.0, 1.0);
        a += Complex64::new(1.0, -1.0);
        assert_eq!(a, Complex64::new(2.0, 0.0));
        a -= Complex64::new(1.0, 0.0);
        assert_eq!(a, Complex64::ONE);
        a *= Complex64::new(0.0, 2.0);
        assert_eq!(a, Complex64::new(0.0, 2.0));
    }

    #[test]
    fn sum_over_iterator() {
        let zs = [Complex64::new(1.0, 2.0), Complex64::new(3.0, -1.0)];
        let s: Complex64 = zs.iter().copied().sum();
        assert_eq!(s, Complex64::new(4.0, 1.0));
    }

    #[test]
    fn scalar_ops() {
        let a = Complex64::new(1.0, -2.0);
        assert_eq!(a * 2.0, Complex64::new(2.0, -4.0));
        assert_eq!(a / 2.0, Complex64::new(0.5, -1.0));
        assert_eq!(-a, Complex64::new(-1.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn nan_detection() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(Complex64::new(0.0, f64::NAN).is_nan());
        assert!(!Complex64::ONE.is_nan());
    }
}
