//! The NEON arm: `core::arch::aarch64` implementations for the
//! element-wise float kernels, 2 `f64` lanes per instruction.
//!
//! NEON is part of the aarch64 baseline, so no runtime detection is
//! needed; the `unsafe` is only the intrinsic calls themselves.
//!
//! This arm is deliberately small: it covers the kernels whose NEON
//! form is a direct transliteration of the scalar loop (element-wise
//! multiply/subtract, the relaxed reduction, SoA scaling, and the
//! Goertzel recurrences, all bit-identical except [`sum_relaxed`]).
//! The bit-domain kernels (popcount, lag XOR, expansion) delegate to
//! scalar: on aarch64 `u64::count_ones` already lowers to the NEON
//! `cnt` instruction, so there is no headroom worth unverifiable
//! intrinsics — this is recorded in the ARCHITECTURE.md dispatch
//! table.
#![allow(unsafe_code)]

use core::arch::aarch64::*;

use super::scalar;
use crate::complex::Complex64;

/// Element-wise `seg[i] *= coeffs[i]`; bit-identical to scalar.
pub(super) fn apply_window(seg: &mut [f64], coeffs: &[f64]) {
    let n = seg.len().min(coeffs.len());
    let n2 = n / 2 * 2;
    let s = seg.as_mut_ptr();
    let c = coeffs.as_ptr();
    for i in (0..n2).step_by(2) {
        // Safety: i + 1 < n, and NEON is baseline on aarch64.
        unsafe {
            vst1q_f64(
                s.add(i),
                vmulq_f64(vld1q_f64(s.add(i)), vld1q_f64(c.add(i))),
            );
        }
    }
    scalar::apply_window(&mut seg[n2..n], &coeffs[n2..n]);
}

/// Element-wise `seg[i] -= c`; bit-identical to scalar.
pub(super) fn subtract_scalar(seg: &mut [f64], c: f64) {
    let n2 = seg.len() / 2 * 2;
    let p = seg.as_mut_ptr();
    // Safety: NEON is baseline on aarch64; indices stay below n2.
    unsafe {
        let cv = vdupq_n_f64(c);
        for i in (0..n2).step_by(2) {
            vst1q_f64(p.add(i), vsubq_f64(vld1q_f64(p.add(i)), cv));
        }
    }
    scalar::subtract_scalar(&mut seg[n2..], c);
}

/// Reassociated sum (two partial lanes combined low-lane-first, then
/// the scalar tail). Only reachable under `SimdPolicy::Relaxed`.
pub(super) fn sum_relaxed(x: &[f64]) -> f64 {
    let n2 = x.len() / 2 * 2;
    let p = x.as_ptr();
    // Safety: NEON is baseline on aarch64; indices stay below n2.
    let mut s = unsafe {
        let mut acc = vdupq_n_f64(0.0);
        for i in (0..n2).step_by(2) {
            acc = vaddq_f64(acc, vld1q_f64(p.add(i)));
        }
        vgetq_lane_f64::<0>(acc) + vgetq_lane_f64::<1>(acc)
    };
    for &v in &x[n2..] {
        s += v;
    }
    s
}

/// One-sided density accumulation — delegates to scalar on NEON.
pub(super) fn accumulate_one_sided(spec: &[Complex64], nfft: usize, base: f64, acc: &mut [f64]) {
    scalar::accumulate_one_sided(spec, nfft, base, acc);
}

/// Radix-2 butterfly stage — delegates to scalar on NEON (one complex
/// is already a full 128-bit register; the shuffle overhead outweighs
/// the lane win without FCMLA, which would break bit-identity).
pub(super) fn butterfly_pairs(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    twiddles: &[Complex64],
    conjugate: bool,
) {
    scalar::butterfly_pairs(lo, hi, twiddles, conjugate);
}

/// Multi-bin Goertzel recurrence, 2 bins per register; bit-identical to
/// scalar.
pub(super) fn goertzel_bank(x: &[f64], coeffs: &[f64], s1: &mut [f64], s2: &mut [f64]) {
    let lanes = coeffs.len();
    let l2 = lanes / 2 * 2;
    for l in (0..l2).step_by(2) {
        // Safety: l + 1 < l2 ≤ len of every slice (dispatch guarantees
        // equal state lengths); NEON is baseline on aarch64.
        unsafe {
            let c = vld1q_f64(coeffs.as_ptr().add(l));
            let mut v1 = vld1q_f64(s1.as_ptr().add(l));
            let mut v2 = vld1q_f64(s2.as_ptr().add(l));
            for &sample in x {
                let vx = vdupq_n_f64(sample);
                let s0 = vsubq_f64(vaddq_f64(vx, vmulq_f64(c, v1)), v2);
                v2 = v1;
                v1 = s0;
            }
            vst1q_f64(s1.as_mut_ptr().add(l), v1);
            vst1q_f64(s2.as_mut_ptr().add(l), v2);
        }
    }
    if l2 < lanes {
        scalar::goertzel_bank(x, &coeffs[l2..], &mut s1[l2..], &mut s2[l2..]);
    }
}

/// SoA Goertzel recurrence, 2 repeat-lanes per register; bit-identical
/// to scalar.
pub(super) fn goertzel_soa(data: &[f64], lanes: usize, coeff: f64, s1: &mut [f64], s2: &mut [f64]) {
    if lanes == 0 {
        return;
    }
    let rows = data.len() / lanes;
    let l2 = lanes / 2 * 2;
    let dp = data.as_ptr();
    for l in (0..l2).step_by(2) {
        // Safety: i·lanes + l + 1 < rows·lanes ≤ data.len(); NEON is
        // baseline on aarch64.
        unsafe {
            let c = vdupq_n_f64(coeff);
            let mut v1 = vld1q_f64(s1.as_ptr().add(l));
            let mut v2 = vld1q_f64(s2.as_ptr().add(l));
            for i in 0..rows {
                let vx = vld1q_f64(dp.add(i * lanes + l));
                let s0 = vsubq_f64(vaddq_f64(vx, vmulq_f64(c, v1)), v2);
                v2 = v1;
                v1 = s0;
            }
            vst1q_f64(s1.as_mut_ptr().add(l), v1);
            vst1q_f64(s2.as_mut_ptr().add(l), v2);
        }
    }
    for row in data.chunks_exact(lanes) {
        for l in l2..lanes {
            let s0 = row[l] + coeff * s1[l] - s2[l];
            s2[l] = s1[l];
            s1[l] = s0;
        }
    }
}

/// Per-sample scaling of SoA data; bit-identical to scalar.
pub(super) fn scale_by_sample(data: &mut [f64], lanes: usize, coeffs: &[f64]) {
    if lanes == 0 {
        return;
    }
    let l2 = lanes / 2 * 2;
    for (row, &cval) in data.chunks_exact_mut(lanes).zip(coeffs) {
        let rp = row.as_mut_ptr();
        // Safety: l + 1 < l2 ≤ row.len(); NEON is baseline on aarch64.
        unsafe {
            let cv = vdupq_n_f64(cval);
            for l in (0..l2).step_by(2) {
                vst1q_f64(rp.add(l), vmulq_f64(vld1q_f64(rp.add(l)), cv));
            }
        }
        for v in &mut row[l2..] {
            *v *= cval;
        }
    }
}

/// Packed-bit → ±1.0 expansion — delegates to scalar on NEON.
pub(super) fn expand_bipolar(words: &[u64], out: &mut [f64]) {
    scalar::expand_bipolar(words, out);
}

/// Total set bits — delegates to scalar on NEON (`count_ones` already
/// lowers to the NEON `cnt`+`addv` sequence on aarch64).
pub(super) fn popcount_words(words: &[u64]) -> u64 {
    scalar::popcount_words(words)
}

/// XOR + popcount at a bit lag — delegates to scalar on NEON (same
/// `cnt` rationale as [`popcount_words`]).
pub(super) fn xor_popcount_lag(words: &[u64], len_bits: usize, lag: usize) -> usize {
    if lag >= len_bits {
        return 0;
    }
    scalar::xor_popcount_lag_from(words, len_bits, lag, 0)
}
