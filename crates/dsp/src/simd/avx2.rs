//! The AVX2 arm: `std::arch::x86_64` implementations of the dispatched
//! kernels, 4 `f64` lanes (or 4 `u64` words) per instruction.
//!
//! Every public function here is **safe**: it re-checks runtime CPU
//! detection and falls back to the scalar arm when AVX2 (or POPCNT,
//! for the bit kernels) is absent, so routing to this module can never
//! execute an unsupported instruction. The `unsafe` is confined to the
//! `#[target_feature]` inner functions, each called only behind that
//! detection guard.
//!
//! ## Numerical contract
//!
//! All float kernels except [`sum_relaxed`] are **bit-identical** to
//! the scalar arm:
//!
//! - element-wise kernels ([`apply_window`], [`subtract_scalar`],
//!   [`scale_by_sample`]) perform the same single rounding per element
//!   (no FMA contraction — multiplies and adds stay separate
//!   instructions);
//! - the butterfly complex multiply evaluates
//!   `re = br·wr − bi·wi, im = bi·wr + br·wi`; the scalar `Mul` writes
//!   the imaginary part as `br·wi + bi·wr`, and IEEE-754 addition is
//!   commutative, so the results agree bit for bit;
//! - the Goertzel recurrences evaluate `(v + coeff·s1) − s2` in the
//!   scalar order, just across 4 lanes at once;
//! - [`accumulate_one_sided`] computes `(|z|²·base)·2` with the same
//!   three roundings as the scalar per-bin loop.
//!
//! [`sum_relaxed`] alone reassociates the reduction (4 partial sums);
//! it is only reachable under `SimdPolicy::Relaxed`.
#![allow(unsafe_code)]
#![allow(clippy::cast_ptr_alignment)] // all loads/stores are the unaligned variants

use core::arch::x86_64::*;

use super::{avx2_supported, scalar};
use crate::complex::Complex64;

/// Element-wise `seg[i] *= coeffs[i]`; bit-identical to scalar.
pub(super) fn apply_window(seg: &mut [f64], coeffs: &[f64]) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { apply_window_avx2(seg, coeffs) }
    } else {
        scalar::apply_window(seg, coeffs);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn apply_window_avx2(seg: &mut [f64], coeffs: &[f64]) {
    let n = seg.len().min(coeffs.len());
    let s = seg.as_mut_ptr();
    let c = coeffs.as_ptr();
    let n4 = n / 4 * 4;
    for i in (0..n4).step_by(4) {
        let v = _mm256_mul_pd(_mm256_loadu_pd(s.add(i)), _mm256_loadu_pd(c.add(i)));
        _mm256_storeu_pd(s.add(i), v);
    }
    scalar::apply_window(&mut seg[n4..n], &coeffs[n4..n]);
}

/// Element-wise `seg[i] -= c`; bit-identical to scalar.
pub(super) fn subtract_scalar(seg: &mut [f64], c: f64) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { subtract_scalar_avx2(seg, c) }
    } else {
        scalar::subtract_scalar(seg, c);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn subtract_scalar_avx2(seg: &mut [f64], c: f64) {
    let cv = _mm256_set1_pd(c);
    let p = seg.as_mut_ptr();
    let n4 = seg.len() / 4 * 4;
    for i in (0..n4).step_by(4) {
        _mm256_storeu_pd(p.add(i), _mm256_sub_pd(_mm256_loadu_pd(p.add(i)), cv));
    }
    scalar::subtract_scalar(&mut seg[n4..], c);
}

/// Reassociated sum: four running partial sums, combined as
/// `(l0 + l1) + (l2 + l3)`, then the scalar tail. Only used under
/// `SimdPolicy::Relaxed`; the error is bounded by the usual
/// `O(n·ε·Σ|x|)` recursive-summation envelope (in practice it is
/// *closer* to the true sum than the scalar left fold).
pub(super) fn sum_relaxed(x: &[f64]) -> f64 {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { sum_relaxed_avx2(x) }
    } else {
        scalar::sum_exact(x)
    }
}

#[target_feature(enable = "avx2")]
unsafe fn sum_relaxed_avx2(x: &[f64]) -> f64 {
    let p = x.as_ptr();
    let n4 = x.len() / 4 * 4;
    let mut acc = _mm256_setzero_pd();
    for i in (0..n4).step_by(4) {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(p.add(i)));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &v in &x[n4..] {
        s += v;
    }
    s
}

/// One-sided density accumulation; bit-identical to scalar. DC and the
/// Nyquist bin run scalar, interior bins 4 at a time.
pub(super) fn accumulate_one_sided(spec: &[Complex64], nfft: usize, base: f64, acc: &mut [f64]) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { accumulate_one_sided_avx2(spec, nfft, base, acc) }
    } else {
        scalar::accumulate_one_sided(spec, nfft, base, acc);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn accumulate_one_sided_avx2(spec: &[Complex64], nfft: usize, base: f64, acc: &mut [f64]) {
    let n = acc.len().min(spec.len());
    if n == 0 {
        return;
    }
    // DC bin (never doubled) runs scalar.
    acc[0] += spec[0].norm_sqr() * base;
    // Interior (always-doubled) region stops before the Nyquist bin.
    let nyquist = if nfft.is_multiple_of(2) {
        nfft / 2
    } else {
        usize::MAX
    };
    let vec_end = nyquist.min(n);
    let base_v = _mm256_set1_pd(base);
    let two_v = _mm256_set1_pd(2.0);
    let sp = spec.as_ptr() as *const f64;
    let ap = acc.as_mut_ptr();
    let mut k = 1usize;
    while k + 4 <= vec_end {
        let za = _mm256_loadu_pd(sp.add(2 * k));
        let zb = _mm256_loadu_pd(sp.add(2 * k + 4));
        // hadd lane order is [n_k, n_{k+2}, n_{k+1}, n_{k+3}]; the
        // permute restores bin order.
        let h = _mm256_hadd_pd(_mm256_mul_pd(za, za), _mm256_mul_pd(zb, zb));
        let norms = _mm256_permute4x64_pd::<0b11011000>(h);
        let d = _mm256_mul_pd(_mm256_mul_pd(norms, base_v), two_v);
        _mm256_storeu_pd(ap.add(k), _mm256_add_pd(_mm256_loadu_pd(ap.add(k)), d));
        k += 4;
    }
    // Scalar remainder: the rest of the doubled region, then the
    // Nyquist bin and anything past it (same per-bin logic as scalar).
    for (kk, (a, z)) in acc[k..n].iter_mut().zip(&spec[k..n]).enumerate() {
        let kk = kk + k;
        let mut d = z.norm_sqr() * base;
        if kk != nyquist {
            d *= 2.0;
        }
        *a += d;
    }
}

/// One radix-2 butterfly stage, 2 butterflies per iteration;
/// bit-identical to scalar (see module docs for the rounding argument).
pub(super) fn butterfly_pairs(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    twiddles: &[Complex64],
    conjugate: bool,
) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { butterfly_pairs_avx2(lo, hi, twiddles, conjugate) }
    } else {
        scalar::butterfly_pairs(lo, hi, twiddles, conjugate);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn butterfly_pairs_avx2(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    twiddles: &[Complex64],
    conjugate: bool,
) {
    let n = lo.len().min(hi.len()).min(twiddles.len());
    // Sign mask that negates the imaginary lanes — the exact-negation
    // form of conjugation (`set_pd` arguments are high lane first).
    let conj_mask = if conjugate {
        _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
    } else {
        _mm256_setzero_pd()
    };
    // Safety of the pointer walks: `Complex64` is `#[repr(C)]` (two
    // consecutive f64), so 2·i indexes the real part of element i.
    let lp = lo.as_mut_ptr() as *mut f64;
    let hp = hi.as_mut_ptr() as *mut f64;
    let tp = twiddles.as_ptr() as *const f64;
    let n2 = n / 2 * 2;
    for i in (0..n2).step_by(2) {
        let w = _mm256_xor_pd(_mm256_loadu_pd(tp.add(2 * i)), conj_mask);
        let wr = _mm256_movedup_pd(w); // [wr0, wr0, wr1, wr1]
        let wi = _mm256_permute_pd::<0b1111>(w); // [wi0, wi0, wi1, wi1]
        let b = _mm256_loadu_pd(hp.add(2 * i));
        let b_swap = _mm256_permute_pd::<0b0101>(b); // [bi0, br0, bi1, br1]
                                                     // addsub: even lanes subtract, odd lanes add →
                                                     // [br·wr − bi·wi, bi·wr + br·wi] per complex.
        let t = _mm256_addsub_pd(_mm256_mul_pd(b, wr), _mm256_mul_pd(b_swap, wi));
        let a = _mm256_loadu_pd(lp.add(2 * i));
        _mm256_storeu_pd(lp.add(2 * i), _mm256_add_pd(a, t));
        _mm256_storeu_pd(hp.add(2 * i), _mm256_sub_pd(a, t));
    }
    if n2 < n {
        scalar::butterfly_one(&mut lo[n2], &mut hi[n2], twiddles[n2], conjugate);
    }
}

/// Multi-bin Goertzel recurrence, 4 bins per register; bit-identical to
/// scalar (same `(v + coeff·s1) − s2` evaluation order per lane).
pub(super) fn goertzel_bank(x: &[f64], coeffs: &[f64], s1: &mut [f64], s2: &mut [f64]) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { goertzel_bank_avx2(x, coeffs, s1, s2) }
    } else {
        scalar::goertzel_bank(x, coeffs, s1, s2);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn goertzel_bank_avx2(x: &[f64], coeffs: &[f64], s1: &mut [f64], s2: &mut [f64]) {
    let lanes = coeffs.len();
    // Two 4-lane groups per pass over `x`: the recurrence is a serial
    // add→sub dependency chain per group, so a single group leaves the
    // FP units mostly idle waiting on latency. Interleaving a second,
    // independent group in the same sample loop overlaps the chains
    // (and halves the passes over `x`) — without it the vector bank
    // can lose to the scalar loop, whose 4+ independent chains the CPU
    // overlaps on its own.
    let l8 = lanes / 8 * 8;
    for l in (0..l8).step_by(8) {
        let ca = _mm256_loadu_pd(coeffs.as_ptr().add(l));
        let cb = _mm256_loadu_pd(coeffs.as_ptr().add(l + 4));
        let mut a1 = _mm256_loadu_pd(s1.as_ptr().add(l));
        let mut a2 = _mm256_loadu_pd(s2.as_ptr().add(l));
        let mut b1 = _mm256_loadu_pd(s1.as_ptr().add(l + 4));
        let mut b2 = _mm256_loadu_pd(s2.as_ptr().add(l + 4));
        for &sample in x {
            let vx = _mm256_set1_pd(sample);
            let sa = _mm256_sub_pd(_mm256_add_pd(vx, _mm256_mul_pd(ca, a1)), a2);
            let sb = _mm256_sub_pd(_mm256_add_pd(vx, _mm256_mul_pd(cb, b1)), b2);
            a2 = a1;
            a1 = sa;
            b2 = b1;
            b1 = sb;
        }
        _mm256_storeu_pd(s1.as_mut_ptr().add(l), a1);
        _mm256_storeu_pd(s2.as_mut_ptr().add(l), a2);
        _mm256_storeu_pd(s1.as_mut_ptr().add(l + 4), b1);
        _mm256_storeu_pd(s2.as_mut_ptr().add(l + 4), b2);
    }
    let l4 = lanes / 4 * 4;
    if l8 < l4 {
        let l = l8;
        let c = _mm256_loadu_pd(coeffs.as_ptr().add(l));
        let mut v1 = _mm256_loadu_pd(s1.as_ptr().add(l));
        let mut v2 = _mm256_loadu_pd(s2.as_ptr().add(l));
        for &sample in x {
            let vx = _mm256_set1_pd(sample);
            let s0 = _mm256_sub_pd(_mm256_add_pd(vx, _mm256_mul_pd(c, v1)), v2);
            v2 = v1;
            v1 = s0;
        }
        _mm256_storeu_pd(s1.as_mut_ptr().add(l), v1);
        _mm256_storeu_pd(s2.as_mut_ptr().add(l), v2);
    }
    if l4 < lanes {
        scalar::goertzel_bank(x, &coeffs[l4..], &mut s1[l4..], &mut s2[l4..]);
    }
}

/// SoA Goertzel recurrence, 4 repeat-lanes per register; bit-identical
/// to scalar.
pub(super) fn goertzel_soa(data: &[f64], lanes: usize, coeff: f64, s1: &mut [f64], s2: &mut [f64]) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { goertzel_soa_avx2(data, lanes, coeff, s1, s2) }
    } else {
        scalar::goertzel_soa(data, lanes, coeff, s1, s2);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn goertzel_soa_avx2(
    data: &[f64],
    lanes: usize,
    coeff: f64,
    s1: &mut [f64],
    s2: &mut [f64],
) {
    if lanes == 0 {
        return;
    }
    let rows = data.len() / lanes;
    let c = _mm256_set1_pd(coeff);
    let dp = data.as_ptr();
    // Two 4-lane groups per pass, same rationale as the bank kernel:
    // the per-group recurrence is latency-bound, so pairing two
    // independent groups in one row loop keeps the FP units busy and
    // halves the passes over the batch.
    let l8 = lanes / 8 * 8;
    for l in (0..l8).step_by(8) {
        let mut a1 = _mm256_loadu_pd(s1.as_ptr().add(l));
        let mut a2 = _mm256_loadu_pd(s2.as_ptr().add(l));
        let mut b1 = _mm256_loadu_pd(s1.as_ptr().add(l + 4));
        let mut b2 = _mm256_loadu_pd(s2.as_ptr().add(l + 4));
        for i in 0..rows {
            let xa = _mm256_loadu_pd(dp.add(i * lanes + l));
            let xb = _mm256_loadu_pd(dp.add(i * lanes + l + 4));
            let sa = _mm256_sub_pd(_mm256_add_pd(xa, _mm256_mul_pd(c, a1)), a2);
            let sb = _mm256_sub_pd(_mm256_add_pd(xb, _mm256_mul_pd(c, b1)), b2);
            a2 = a1;
            a1 = sa;
            b2 = b1;
            b1 = sb;
        }
        _mm256_storeu_pd(s1.as_mut_ptr().add(l), a1);
        _mm256_storeu_pd(s2.as_mut_ptr().add(l), a2);
        _mm256_storeu_pd(s1.as_mut_ptr().add(l + 4), b1);
        _mm256_storeu_pd(s2.as_mut_ptr().add(l + 4), b2);
    }
    let l4 = lanes / 4 * 4;
    if l8 < l4 {
        let l = l8;
        let mut v1 = _mm256_loadu_pd(s1.as_ptr().add(l));
        let mut v2 = _mm256_loadu_pd(s2.as_ptr().add(l));
        for i in 0..rows {
            let vx = _mm256_loadu_pd(dp.add(i * lanes + l));
            let s0 = _mm256_sub_pd(_mm256_add_pd(vx, _mm256_mul_pd(c, v1)), v2);
            v2 = v1;
            v1 = s0;
        }
        _mm256_storeu_pd(s1.as_mut_ptr().add(l), v1);
        _mm256_storeu_pd(s2.as_mut_ptr().add(l), v2);
    }
    for row in data.chunks_exact(lanes) {
        for l in l4..lanes {
            let s0 = row[l] + coeff * s1[l] - s2[l];
            s2[l] = s1[l];
            s1[l] = s0;
        }
    }
}

/// Per-sample scaling of SoA data (`data[i·lanes + l] *= coeffs[i]`);
/// bit-identical to scalar.
pub(super) fn scale_by_sample(data: &mut [f64], lanes: usize, coeffs: &[f64]) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { scale_by_sample_avx2(data, lanes, coeffs) }
    } else {
        scalar::scale_by_sample(data, lanes, coeffs);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn scale_by_sample_avx2(data: &mut [f64], lanes: usize, coeffs: &[f64]) {
    if lanes == 0 {
        return;
    }
    let l4 = lanes / 4 * 4;
    for (row, &cval) in data.chunks_exact_mut(lanes).zip(coeffs) {
        let cv = _mm256_set1_pd(cval);
        let rp = row.as_mut_ptr();
        for l in (0..l4).step_by(4) {
            _mm256_storeu_pd(rp.add(l), _mm256_mul_pd(_mm256_loadu_pd(rp.add(l)), cv));
        }
        for v in &mut row[l4..] {
            *v *= cval;
        }
    }
}

/// Packed-bit → ±1.0 expansion, 4 samples per blend; bit-exact (the
/// outputs are exactly ±1.0 on every arm).
pub(super) fn expand_bipolar(words: &[u64], out: &mut [f64]) {
    if avx2_supported() {
        // Safety: AVX2 confirmed by runtime detection.
        unsafe { expand_bipolar_avx2(words, out) }
    } else {
        scalar::expand_bipolar(words, out);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn expand_bipolar_avx2(words: &[u64], out: &mut [f64]) {
    let full = (out.len() / 64).min(words.len());
    let one_bit = _mm256_set1_epi64x(1);
    let pos = _mm256_set1_pd(1.0);
    let neg = _mm256_set1_pd(-1.0);
    let op = out.as_mut_ptr();
    for (w_idx, &w) in words[..full].iter().enumerate() {
        let wv = _mm256_set1_epi64x(w as i64);
        for g in 0..16 {
            let b = (4 * g) as i64;
            // `set_epi64x` arguments are high lane first.
            let counts = _mm256_set_epi64x(b + 3, b + 2, b + 1, b);
            let bits = _mm256_and_si256(_mm256_srlv_epi64(wv, counts), one_bit);
            let mask = _mm256_castsi256_pd(_mm256_cmpeq_epi64(bits, one_bit));
            let vals = _mm256_blendv_pd(neg, pos, mask);
            _mm256_storeu_pd(op.add(w_idx * 64 + 4 * g as usize), vals);
        }
    }
    scalar::expand_bipolar(&words[full..], &mut out[full * 64..]);
}

/// Nibble-LUT popcount over an `__m256i` of four words, accumulated as
/// four per-lane u64 partials via `sad_epu8`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcount_accumulate(acc: __m256i, v: __m256i) -> __m256i {
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
    let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()))
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn horizontal_sum_u64(acc: __m256i) -> u64 {
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    lanes.iter().sum()
}

/// Total set bits; exact (integer kernel). Requires AVX2; the scalar
/// tail runs with the POPCNT instruction enabled (detection covers
/// both — see [`super::avx2_supported`]).
pub(super) fn popcount_words(words: &[u64]) -> u64 {
    if avx2_supported() {
        // Safety: AVX2 + POPCNT confirmed by runtime detection.
        unsafe { popcount_words_avx2(words) }
    } else {
        scalar::popcount_words(words)
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn popcount_words_avx2(words: &[u64]) -> u64 {
    let n4 = words.len() / 4 * 4;
    let p = words.as_ptr();
    let mut acc = _mm256_setzero_si256();
    for i in (0..n4).step_by(4) {
        acc = popcount_accumulate(acc, _mm256_loadu_si256(p.add(i) as *const __m256i));
    }
    let mut total = horizontal_sum_u64(acc);
    for &w in &words[n4..] {
        total += w.count_ones() as u64;
    }
    total
}

/// XOR + popcount at a bit lag; exact (integer kernel). The vector loop
/// covers the prefix whose shifted loads are fully in bounds; the
/// scalar reference finishes from the resume word, so the result is the
/// same count the scalar arm produces.
pub(super) fn xor_popcount_lag(words: &[u64], len_bits: usize, lag: usize) -> usize {
    if lag >= len_bits {
        return 0;
    }
    if avx2_supported() {
        // Safety: AVX2 + POPCNT confirmed by runtime detection.
        unsafe { xor_popcount_lag_avx2(words, len_bits, lag) }
    } else {
        scalar::xor_popcount_lag_from(words, len_bits, lag, 0)
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn xor_popcount_lag_avx2(words: &[u64], len_bits: usize, lag: usize) -> usize {
    let compared = len_bits - lag;
    let word_shift = lag / 64;
    let bit_shift = (lag % 64) as u32;
    let full_words = compared / 64;
    // A vector iteration at word j loads words[j+ws .. j+ws+5), so the
    // last admissible start is len − ws − 5.
    let vec_limit = full_words.min(words.len().saturating_sub(word_shift + 4));
    let n4 = vec_limit / 4 * 4;
    let p = words.as_ptr();
    // Shift counts live in xmm registers; `sll` by 64 (the bit_shift==0
    // case) yields zero, which matches the scalar single-word path.
    let cnt_r = _mm_cvtsi64_si128(bit_shift as i64);
    let cnt_l = _mm_cvtsi64_si128(64 - bit_shift as i64);
    let mut acc = _mm256_setzero_si256();
    for j in (0..n4).step_by(4) {
        let cur = _mm256_loadu_si256(p.add(j) as *const __m256i);
        let lo = _mm256_loadu_si256(p.add(j + word_shift) as *const __m256i);
        let hi = _mm256_loadu_si256(p.add(j + word_shift + 1) as *const __m256i);
        let shifted = _mm256_or_si256(_mm256_srl_epi64(lo, cnt_r), _mm256_sll_epi64(hi, cnt_l));
        acc = popcount_accumulate(acc, _mm256_xor_si256(cur, shifted));
    }
    horizontal_sum_u64(acc) as usize + scalar::xor_popcount_lag_from(words, len_bits, lag, n4)
}
