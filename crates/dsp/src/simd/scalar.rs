//! The scalar arm: the portable reference implementation of every
//! dispatched kernel.
//!
//! These loops **define** the numerical semantics of the SIMD layer:
//! the vector arms must either reproduce them bit for bit (everything
//! except the relaxed-policy `sum` reduction) or stay within the
//! documented ULP envelope. They are written exactly the way the
//! pre-SIMD hot paths were, so routing a kernel through the dispatch
//! layer on the scalar arm changes nothing — not even the rounding.

use crate::complex::Complex64;

/// Element-wise in-place multiply: `seg[i] *= coeffs[i]`.
pub(super) fn apply_window(seg: &mut [f64], coeffs: &[f64]) {
    for (v, w) in seg.iter_mut().zip(coeffs) {
        *v *= w;
    }
}

/// Element-wise in-place subtraction of a constant: `seg[i] -= c`.
pub(super) fn subtract_scalar(seg: &mut [f64], c: f64) {
    for v in seg {
        *v -= c;
    }
}

/// Left-to-right sequential sum — the exact (order-preserving)
/// reduction every arm must use under `SimdPolicy::Exact`.
pub(super) fn sum_exact(x: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &v in x {
        acc += v;
    }
    acc
}

/// One-sided density accumulation: `acc[k] += |spec[k]|²·base`, doubled
/// on every bin except DC and (for even `nfft`) Nyquist.
pub(super) fn accumulate_one_sided(spec: &[Complex64], nfft: usize, base: f64, acc: &mut [f64]) {
    for (k, (a, z)) in acc.iter_mut().zip(spec).enumerate() {
        let mut d = z.norm_sqr() * base;
        let is_dc = k == 0;
        let is_nyquist = nfft.is_multiple_of(2) && k == nfft / 2;
        if !is_dc && !is_nyquist {
            d *= 2.0;
        }
        *a += d;
    }
}

/// One radix-2 butterfly with a streamed twiddle, shared by the scalar
/// stage loop and the vector arms' remainder handling.
#[inline]
pub(super) fn butterfly_one(a: &mut Complex64, b: &mut Complex64, w: Complex64, conjugate: bool) {
    let w = if conjugate { w.conj() } else { w };
    let t = *b * w;
    let x = *a;
    *a = x + t;
    *b = x - t;
}

/// One whole butterfly stage: `lo[i], hi[i]` combined through
/// `twiddles[i]` (conjugated on the inverse transform).
pub(super) fn butterfly_pairs(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    twiddles: &[Complex64],
    conjugate: bool,
) {
    for ((a, b), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(twiddles) {
        butterfly_one(a, b, w, conjugate);
    }
}

/// Multi-bin Goertzel recurrence: every sample of `x` feeds all lanes,
/// lane `l` carrying its own coefficient and `(s1, s2)` state. The
/// update is `s0 = v + coeff·s1 − s2`, evaluated as
/// `(v + (coeff·s1)) − s2` — the exact order the single-bin
/// [`crate::goertzel::Goertzel`] uses.
pub(super) fn goertzel_bank(x: &[f64], coeffs: &[f64], s1: &mut [f64], s2: &mut [f64]) {
    for &v in x {
        for l in 0..coeffs.len() {
            let s0 = v + coeffs[l] * s1[l] - s2[l];
            s2[l] = s1[l];
            s1[l] = s0;
        }
    }
}

/// Goertzel recurrence across SoA lanes: `data` is sample-major
/// (`data[i·lanes + l]` is sample `i` of lane `l`), one shared
/// coefficient, per-lane state — the "across repeats" counterpart of
/// [`goertzel_bank`]. Same update order.
pub(super) fn goertzel_soa(data: &[f64], lanes: usize, coeff: f64, s1: &mut [f64], s2: &mut [f64]) {
    for row in data.chunks_exact(lanes) {
        for (l, &v) in row.iter().enumerate() {
            let s0 = v + coeff * s1[l] - s2[l];
            s2[l] = s1[l];
            s1[l] = s0;
        }
    }
}

/// Scale sample-major SoA data by a per-sample coefficient:
/// `data[i·lanes + l] *= coeffs[i]`.
pub(super) fn scale_by_sample(data: &mut [f64], lanes: usize, coeffs: &[f64]) {
    for (row, &c) in data.chunks_exact_mut(lanes).zip(coeffs) {
        for v in row {
            *v *= c;
        }
    }
}

/// Expands packed bits to `±1.0` samples, 64 per word load
/// (`bit 1 → +1.0`). `out` may be shorter than `words.len()·64`; the
/// trailing bits are ignored.
pub(super) fn expand_bipolar(words: &[u64], out: &mut [f64]) {
    for (chunk, &w) in out.chunks_mut(64).zip(words) {
        let mut word = w;
        for o in chunk {
            *o = if word & 1 == 1 { 1.0 } else { -1.0 };
            word >>= 1;
        }
    }
}

/// Total set bits across the words.
pub(super) fn popcount_words(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

/// Word `j` of the lag-shifted stream (zeros past the end).
#[inline]
pub(super) fn shifted_word(words: &[u64], j: usize, word_shift: usize, bit_shift: u32) -> u64 {
    let lo = words.get(j + word_shift).copied().unwrap_or(0) >> bit_shift;
    if bit_shift == 0 {
        lo
    } else {
        lo | (words.get(j + word_shift + 1).copied().unwrap_or(0) << (64 - bit_shift))
    }
}

/// Whole-kernel form of [`xor_popcount_lag_from`] (starts at word 0,
/// guards the degenerate lag).
pub(super) fn xor_popcount_lag(words: &[u64], len_bits: usize, lag: usize) -> usize {
    if lag >= len_bits {
        return 0;
    }
    xor_popcount_lag_from(words, len_bits, lag, 0)
}

/// Counts positions `i < len_bits − lag` where bit `i` differs from bit
/// `i + lag`, starting the word walk at `start_word` (callers that have
/// already counted a vectorized prefix pass the resume point; whole
/// kernels pass 0). Requires `lag < len_bits`.
pub(super) fn xor_popcount_lag_from(
    words: &[u64],
    len_bits: usize,
    lag: usize,
    start_word: usize,
) -> usize {
    let compared = len_bits - lag;
    let word_shift = lag / 64;
    let bit_shift = (lag % 64) as u32;
    let full_words = compared / 64;
    let tail_bits = (compared % 64) as u32;
    let mut count = 0usize;
    for (j, &w) in words[..full_words].iter().enumerate().skip(start_word) {
        count += (w ^ shifted_word(words, j, word_shift, bit_shift)).count_ones() as usize;
    }
    if tail_bits > 0 {
        let mask = (1u64 << tail_bits) - 1;
        let w = words.get(full_words).copied().unwrap_or(0);
        count += ((w ^ shifted_word(words, full_words, word_shift, bit_shift)) & mask).count_ones()
            as usize;
    }
    count
}
