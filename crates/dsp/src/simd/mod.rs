//! Runtime-dispatched SIMD kernels for the measurement hot paths.
//!
//! Every kernel in this module has a scalar reference implementation
//! and, where the target supports it, a vectorized arm: AVX2 (+POPCNT)
//! on `x86_64`, NEON on `aarch64`. The arm is chosen **once per
//! process** by CPU detection (`is_x86_feature_detected!`) and cached;
//! `NFBIST_SIMD=off` (or `scalar`/`0`) forces the scalar arm for the
//! whole process, and [`with_forced_arm`] overrides the choice for one
//! closure on one thread (how the cross-arm identity tests and the
//! SIMD-vs-scalar benches run both arms in a single process).
//!
//! Requesting an arm the CPU does not support is safe: every vector
//! arm re-checks detection and falls back to scalar, so no code path
//! can execute an unsupported instruction.
//!
//! ## Numerical policy
//!
//! Integer kernels ([`popcount_words`], [`xor_popcount_lag`],
//! [`expand_bipolar`]) are exact — bit-identical across arms by
//! construction, and proptest-enforced.
//!
//! Float kernels come in two classes:
//!
//! - **Always bit-identical** (no policy knob): [`apply_window`],
//!   [`subtract_scalar`], [`scale_by_sample`], [`butterfly_pairs`],
//!   [`accumulate_one_sided`], [`goertzel_bank_run`],
//!   [`goertzel_soa_run`]. Their vector forms perform the same
//!   roundings in the same order as scalar (element-wise operations,
//!   or per-lane recurrences whose evaluation order is preserved; no
//!   FMA contraction anywhere).
//! - **Reduction** ([`sum`]): reassociating the sum changes the
//!   rounding, so the vectorized reduction is gated behind
//!   [`SimdPolicy::Relaxed`]. The default [`SimdPolicy::Exact`] always
//!   uses the scalar left-to-right fold — this is what keeps every
//!   downstream determinism guarantee (streaming == batch, fleet
//!   reports identical across workers *and* across machines with
//!   different SIMD support) intact by default.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

use std::cell::Cell;
use std::sync::OnceLock;

use crate::complex::Complex64;

/// A dispatch arm: which implementation family executes a kernel call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdArm {
    /// AVX2 + POPCNT on `x86_64` (4 × f64 / 4 × u64 lanes).
    Avx2,
    /// NEON on `aarch64` (2 × f64 lanes; bit kernels stay scalar).
    Neon,
    /// Portable scalar reference — always available, defines the
    /// numerical semantics every other arm must match.
    Scalar,
}

impl SimdArm {
    /// Short lowercase name (`"avx2"`, `"neon"`, `"scalar"`), used in
    /// bench JSON and logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdArm::Avx2 => "avx2",
            SimdArm::Neon => "neon",
            SimdArm::Scalar => "scalar",
        }
    }
}

impl std::fmt::Display for SimdArm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Float-reduction policy: whether kernels may reassociate reductions.
///
/// Only [`sum`] is affected today; every other float kernel is
/// bit-identical across arms regardless of policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdPolicy {
    /// Reductions use the scalar left-to-right fold on every arm —
    /// results are bit-for-bit identical across arms and machines.
    /// This is the default and what all determinism guarantees assume.
    #[default]
    Exact,
    /// Reductions may use lane-parallel partial sums (different
    /// rounding, bounded by the recursive-summation error envelope —
    /// relative error `O(n·ε)` on both arms, typically *smaller* than
    /// the scalar fold's). Opt-in per call site.
    Relaxed,
}

/// True when the AVX2 arm can actually execute (x86_64 with AVX2 and
/// POPCNT — the bit kernels' scalar tails rely on the `popcnt`
/// instruction, so both are required together).
fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the NEON arm can execute (NEON is baseline on aarch64).
fn neon_supported() -> bool {
    cfg!(target_arch = "aarch64")
}

/// The arms this process can actually execute, best first. The last
/// entry is always [`SimdArm::Scalar`].
pub fn available_arms() -> &'static [SimdArm] {
    if avx2_supported() {
        &[SimdArm::Avx2, SimdArm::Scalar]
    } else if neon_supported() {
        &[SimdArm::Neon, SimdArm::Scalar]
    } else {
        &[SimdArm::Scalar]
    }
}

fn detect_arm() -> SimdArm {
    match std::env::var("NFBIST_SIMD").ok().as_deref() {
        // The escape hatch: force the portable arm process-wide.
        Some("off") | Some("scalar") | Some("0") => SimdArm::Scalar,
        // Request a specific arm; silently degrade to scalar when the
        // CPU can't run it (the per-kernel guard would do so anyway).
        Some("avx2") => {
            if avx2_supported() {
                SimdArm::Avx2
            } else {
                SimdArm::Scalar
            }
        }
        Some("neon") => {
            if neon_supported() {
                SimdArm::Neon
            } else {
                SimdArm::Scalar
            }
        }
        // Unset or anything else ("auto", "on", …): best available.
        _ => available_arms()[0],
    }
}

static ACTIVE_ARM: OnceLock<SimdArm> = OnceLock::new();

thread_local! {
    static FORCED_ARM: Cell<Option<SimdArm>> = const { Cell::new(None) };
}

/// The arm kernel calls on this thread dispatch to right now: the
/// [`with_forced_arm`] override if one is active, otherwise the cached
/// process-wide choice (CPU detection filtered through `NFBIST_SIMD`).
pub fn active_arm() -> SimdArm {
    if let Some(arm) = FORCED_ARM.with(Cell::get) {
        return arm;
    }
    *ACTIVE_ARM.get_or_init(detect_arm)
}

/// Runs `f` with kernel dispatch on **this thread** forced to `arm`,
/// restoring the previous state afterwards (also on panic).
///
/// This is how tests and benches compare arms within one process.
/// Forcing an arm the CPU cannot run is safe — kernels fall back to
/// scalar. The override does not propagate to threads spawned inside
/// `f` (worker threads of a batch executor use the process-wide arm),
/// so cross-arm identity tests drive the sequential path.
pub fn with_forced_arm<R>(arm: SimdArm, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdArm>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_ARM.with(|c| c.set(self.0));
        }
    }
    let prev = FORCED_ARM.with(|c| c.replace(Some(arm)));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------
// Dispatched kernels. Each `foo` routes through `active_arm()`; each
// `foo_with` lets callers (tests, benches) pin the arm per call.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($arm:expr, $($call:tt)*) => {
        match $arm {
            #[cfg(target_arch = "x86_64")]
            SimdArm::Avx2 => avx2::$($call)*,
            #[cfg(target_arch = "aarch64")]
            SimdArm::Neon => neon::$($call)*,
            _ => scalar::$($call)*,
        }
    };
}

/// Element-wise window multiply: `seg[i] *= coeffs[i]` over the common
/// prefix. Bit-identical across arms.
pub fn apply_window(seg: &mut [f64], coeffs: &[f64]) {
    apply_window_with(active_arm(), seg, coeffs);
}

/// [`apply_window`] with an explicit dispatch arm.
pub fn apply_window_with(arm: SimdArm, seg: &mut [f64], coeffs: &[f64]) {
    dispatch!(arm, apply_window(seg, coeffs))
}

/// Element-wise constant subtraction: `seg[i] -= c` (the detrend
/// subtract). Bit-identical across arms.
pub fn subtract_scalar(seg: &mut [f64], c: f64) {
    subtract_scalar_with(active_arm(), seg, c);
}

/// [`subtract_scalar`] with an explicit dispatch arm.
pub fn subtract_scalar_with(arm: SimdArm, seg: &mut [f64], c: f64) {
    dispatch!(arm, subtract_scalar(seg, c))
}

/// Sum of `x`. Under [`SimdPolicy::Exact`] (the default everywhere)
/// this is the scalar left-to-right fold on every arm — bit-identical.
/// Under [`SimdPolicy::Relaxed`] the vector arms use lane-parallel
/// partial sums (different rounding, documented error envelope).
pub fn sum(x: &[f64], policy: SimdPolicy) -> f64 {
    sum_with(active_arm(), x, policy)
}

/// [`sum`] with an explicit dispatch arm.
pub fn sum_with(arm: SimdArm, x: &[f64], policy: SimdPolicy) -> f64 {
    match policy {
        SimdPolicy::Exact => scalar::sum_exact(x),
        SimdPolicy::Relaxed => match arm {
            #[cfg(target_arch = "x86_64")]
            SimdArm::Avx2 => avx2::sum_relaxed(x),
            #[cfg(target_arch = "aarch64")]
            SimdArm::Neon => neon::sum_relaxed(x),
            _ => scalar::sum_exact(x),
        },
    }
}

/// One-sided PSD density accumulation:
/// `acc[k] += |spec[k]|² · base`, doubled on every bin except DC and
/// (for even `nfft`) Nyquist. Bit-identical across arms.
pub fn accumulate_one_sided(spec: &[Complex64], nfft: usize, base: f64, acc: &mut [f64]) {
    accumulate_one_sided_with(active_arm(), spec, nfft, base, acc);
}

/// [`accumulate_one_sided`] with an explicit dispatch arm.
pub fn accumulate_one_sided_with(
    arm: SimdArm,
    spec: &[Complex64],
    nfft: usize,
    base: f64,
    acc: &mut [f64],
) {
    dispatch!(arm, accumulate_one_sided(spec, nfft, base, acc))
}

/// One radix-2 butterfly stage over parallel half-slices:
/// `(lo[i], hi[i]) ← (lo[i] + w·hi[i], lo[i] − w·hi[i])` with
/// `w = twiddles[i]` (conjugated when `conjugate` — the inverse
/// transform). Operates over the common length of the three slices.
/// Bit-identical across arms.
pub fn butterfly_pairs(
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    twiddles: &[Complex64],
    conjugate: bool,
) {
    butterfly_pairs_with(active_arm(), lo, hi, twiddles, conjugate);
}

/// [`butterfly_pairs`] with an explicit dispatch arm.
pub fn butterfly_pairs_with(
    arm: SimdArm,
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    twiddles: &[Complex64],
    conjugate: bool,
) {
    dispatch!(arm, butterfly_pairs(lo, hi, twiddles, conjugate))
}

/// Multi-bin Goertzel recurrence: feeds every sample of `x` to all
/// bins, where bin `l` has coefficient `coeffs[l]` and state
/// `(s1[l], s2[l])`, updated as `s0 = (v + coeff·s1) − s2`.
/// Bit-identical across arms.
///
/// # Panics
///
/// Panics if `s1` or `s2` is shorter than `coeffs`.
pub fn goertzel_bank_run(x: &[f64], coeffs: &[f64], s1: &mut [f64], s2: &mut [f64]) {
    goertzel_bank_run_with(active_arm(), x, coeffs, s1, s2);
}

/// [`goertzel_bank_run`] with an explicit dispatch arm.
pub fn goertzel_bank_run_with(
    arm: SimdArm,
    x: &[f64],
    coeffs: &[f64],
    s1: &mut [f64],
    s2: &mut [f64],
) {
    assert!(
        s1.len() >= coeffs.len() && s2.len() >= coeffs.len(),
        "goertzel_bank_run: state slices shorter than coeffs"
    );
    dispatch!(arm, goertzel_bank(x, coeffs, s1, s2))
}

/// Goertzel recurrence across SoA lanes: `data` is sample-major
/// (`data[i·lanes + l]` is sample `i` of lane `l`), one shared
/// coefficient, per-lane state. Trailing elements of `data` that do
/// not fill a whole row are ignored. Bit-identical across arms.
///
/// # Panics
///
/// Panics if `s1` or `s2` is shorter than `lanes`.
pub fn goertzel_soa_run(data: &[f64], lanes: usize, coeff: f64, s1: &mut [f64], s2: &mut [f64]) {
    goertzel_soa_run_with(active_arm(), data, lanes, coeff, s1, s2);
}

/// [`goertzel_soa_run`] with an explicit dispatch arm.
pub fn goertzel_soa_run_with(
    arm: SimdArm,
    data: &[f64],
    lanes: usize,
    coeff: f64,
    s1: &mut [f64],
    s2: &mut [f64],
) {
    assert!(
        s1.len() >= lanes && s2.len() >= lanes,
        "goertzel_soa_run: state slices shorter than lane count"
    );
    dispatch!(arm, goertzel_soa(data, lanes, coeff, s1, s2))
}

/// Scales sample-major SoA data by a per-sample coefficient:
/// `data[i·lanes + l] *= coeffs[i]` (window application across a batch
/// of lanes at once). Bit-identical across arms.
pub fn scale_by_sample(data: &mut [f64], lanes: usize, coeffs: &[f64]) {
    scale_by_sample_with(active_arm(), data, lanes, coeffs);
}

/// [`scale_by_sample`] with an explicit dispatch arm.
pub fn scale_by_sample_with(arm: SimdArm, data: &mut [f64], lanes: usize, coeffs: &[f64]) {
    dispatch!(arm, scale_by_sample(data, lanes, coeffs))
}

/// Expands packed bits (LSB-first within each word) to `±1.0` samples:
/// bit 1 → `+1.0`, bit 0 → `−1.0`. Writes `out.len()` samples; words
/// beyond the needed count are ignored. Exact on every arm.
pub fn expand_bipolar(words: &[u64], out: &mut [f64]) {
    expand_bipolar_with(active_arm(), words, out);
}

/// [`expand_bipolar`] with an explicit dispatch arm.
pub fn expand_bipolar_with(arm: SimdArm, words: &[u64], out: &mut [f64]) {
    dispatch!(arm, expand_bipolar(words, out))
}

/// Total set bits across `words`. Exact on every arm.
pub fn popcount_words(words: &[u64]) -> u64 {
    popcount_words_with(active_arm(), words)
}

/// [`popcount_words`] with an explicit dispatch arm.
pub fn popcount_words_with(arm: SimdArm, words: &[u64]) -> u64 {
    dispatch!(arm, popcount_words(words))
}

/// Counts bit positions `i < len_bits − lag` where bit `i` differs
/// from bit `i + lag` in the LSB-first packed stream `words` (the
/// autocorrelation lag kernel). Returns 0 when `lag ≥ len_bits`.
/// Exact on every arm.
pub fn xor_popcount_lag(words: &[u64], len_bits: usize, lag: usize) -> usize {
    xor_popcount_lag_with(active_arm(), words, len_bits, lag)
}

/// [`xor_popcount_lag`] with an explicit dispatch arm.
pub fn xor_popcount_lag_with(arm: SimdArm, words: &[u64], len_bits: usize, lag: usize) -> usize {
    if lag >= len_bits {
        return 0;
    }
    dispatch!(arm, xor_popcount_lag(words, len_bits, lag))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64) * 0.7).sin() * 3.0 + ((i as f64) * 0.11).cos())
            .collect()
    }

    fn words(n: usize) -> Vec<u64> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state ^ (state >> 29)
            })
            .collect()
    }

    #[test]
    fn arm_metadata() {
        let arms = available_arms();
        assert_eq!(arms.last(), Some(&SimdArm::Scalar));
        assert!(!active_arm().name().is_empty());
    }

    #[test]
    fn forced_arm_restores_on_exit() {
        let base = active_arm();
        let inside = with_forced_arm(SimdArm::Scalar, active_arm);
        assert_eq!(inside, SimdArm::Scalar);
        assert_eq!(active_arm(), base);
    }

    #[test]
    fn apply_window_bit_identical_across_arms() {
        for n in [0, 1, 3, 4, 7, 64, 129] {
            let coeffs: Vec<f64> = (0..n).map(|i| 0.5 + (i as f64) * 0.01).collect();
            for &arm in available_arms() {
                let mut seg = signal(n);
                let mut reference = signal(n);
                apply_window_with(arm, &mut seg, &coeffs);
                apply_window_with(SimdArm::Scalar, &mut reference, &coeffs);
                for (a, b) in seg.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "arm {arm} n {n}");
                }
            }
        }
    }

    #[test]
    fn subtract_scalar_bit_identical_across_arms() {
        for n in [0, 2, 5, 63, 64, 130] {
            for &arm in available_arms() {
                let mut seg = signal(n);
                let mut reference = signal(n);
                subtract_scalar_with(arm, &mut seg, 0.3125);
                subtract_scalar_with(SimdArm::Scalar, &mut reference, 0.3125);
                assert_eq!(seg, reference, "arm {arm} n {n}");
            }
        }
    }

    #[test]
    fn exact_sum_ignores_arm() {
        let x = signal(1003);
        let reference = sum_with(SimdArm::Scalar, &x, SimdPolicy::Exact);
        for &arm in available_arms() {
            assert_eq!(
                sum_with(arm, &x, SimdPolicy::Exact).to_bits(),
                reference.to_bits()
            );
        }
    }

    #[test]
    fn relaxed_sum_within_envelope() {
        let x = signal(1003);
        let exact = sum_with(SimdArm::Scalar, &x, SimdPolicy::Exact);
        for &arm in available_arms() {
            let relaxed = sum_with(arm, &x, SimdPolicy::Relaxed);
            let bound = 1e-12 * x.iter().map(|v| v.abs()).sum::<f64>();
            assert!(
                (relaxed - exact).abs() <= bound,
                "arm {arm}: {relaxed} vs {exact}"
            );
        }
    }

    #[test]
    fn accumulate_one_sided_bit_identical_across_arms() {
        for nfft in [8usize, 16, 17, 64, 130] {
            let half = nfft / 2 + 1;
            let spec: Vec<Complex64> = (0..half)
                .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.61).cos()))
                .collect();
            let mut reference = vec![0.125f64; half];
            accumulate_one_sided_with(SimdArm::Scalar, &spec, nfft, 1.7e-3, &mut reference);
            for &arm in available_arms() {
                let mut acc = vec![0.125f64; half];
                accumulate_one_sided_with(arm, &spec, nfft, 1.7e-3, &mut acc);
                for (k, (a, b)) in acc.iter().zip(&reference).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "arm {arm} nfft {nfft} bin {k}");
                }
            }
        }
    }

    #[test]
    fn butterfly_pairs_bit_identical_across_arms() {
        for n in [0usize, 1, 2, 3, 8, 33] {
            let tw: Vec<Complex64> = (0..n)
                .map(|i| {
                    Complex64::cis(-2.0 * std::f64::consts::PI * i as f64 / (2 * n.max(1)) as f64)
                })
                .collect();
            let lo0: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let hi0: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 1.7).cos(), (i as f64 * 0.9).sin()))
                .collect();
            for conjugate in [false, true] {
                let mut lo_ref = lo0.clone();
                let mut hi_ref = hi0.clone();
                butterfly_pairs_with(SimdArm::Scalar, &mut lo_ref, &mut hi_ref, &tw, conjugate);
                for &arm in available_arms() {
                    let mut lo = lo0.clone();
                    let mut hi = hi0.clone();
                    butterfly_pairs_with(arm, &mut lo, &mut hi, &tw, conjugate);
                    for i in 0..n {
                        assert_eq!(lo[i].re.to_bits(), lo_ref[i].re.to_bits(), "arm {arm}");
                        assert_eq!(lo[i].im.to_bits(), lo_ref[i].im.to_bits(), "arm {arm}");
                        assert_eq!(hi[i].re.to_bits(), hi_ref[i].re.to_bits(), "arm {arm}");
                        assert_eq!(hi[i].im.to_bits(), hi_ref[i].im.to_bits(), "arm {arm}");
                    }
                }
            }
        }
    }

    #[test]
    fn goertzel_bank_bit_identical_across_arms() {
        let x = signal(257);
        for bins in [1usize, 3, 4, 5, 8, 11] {
            let coeffs: Vec<f64> = (0..bins)
                .map(|b| 2.0 * (0.1 + 0.05 * b as f64).cos())
                .collect();
            let mut s1_ref = vec![0.0; bins];
            let mut s2_ref = vec![0.0; bins];
            goertzel_bank_run_with(SimdArm::Scalar, &x, &coeffs, &mut s1_ref, &mut s2_ref);
            for &arm in available_arms() {
                let mut s1 = vec![0.0; bins];
                let mut s2 = vec![0.0; bins];
                goertzel_bank_run_with(arm, &x, &coeffs, &mut s1, &mut s2);
                for l in 0..bins {
                    assert_eq!(
                        s1[l].to_bits(),
                        s1_ref[l].to_bits(),
                        "arm {arm} bins {bins}"
                    );
                    assert_eq!(
                        s2[l].to_bits(),
                        s2_ref[l].to_bits(),
                        "arm {arm} bins {bins}"
                    );
                }
            }
        }
    }

    #[test]
    fn goertzel_soa_bit_identical_across_arms() {
        for lanes in [1usize, 2, 4, 6, 9] {
            let data = signal(lanes * 123);
            let coeff = 2.0 * 0.23f64.cos();
            let mut s1_ref = vec![0.0; lanes];
            let mut s2_ref = vec![0.0; lanes];
            goertzel_soa_run_with(
                SimdArm::Scalar,
                &data,
                lanes,
                coeff,
                &mut s1_ref,
                &mut s2_ref,
            );
            for &arm in available_arms() {
                let mut s1 = vec![0.0; lanes];
                let mut s2 = vec![0.0; lanes];
                goertzel_soa_run_with(arm, &data, lanes, coeff, &mut s1, &mut s2);
                for l in 0..lanes {
                    assert_eq!(
                        s1[l].to_bits(),
                        s1_ref[l].to_bits(),
                        "arm {arm} lanes {lanes}"
                    );
                    assert_eq!(
                        s2[l].to_bits(),
                        s2_ref[l].to_bits(),
                        "arm {arm} lanes {lanes}"
                    );
                }
            }
        }
    }

    #[test]
    fn goertzel_soa_matches_per_lane_bank() {
        // Running lanes through the SoA kernel equals running each lane
        // through the single-bin recurrence independently.
        let lanes = 5;
        let n = 97;
        let records: Vec<Vec<f64>> = (0..lanes).map(|l| signal(n + l)).collect();
        let trimmed: Vec<&[f64]> = records.iter().map(|r| &r[..n]).collect();
        let coeff = 2.0 * 0.4f64.cos();
        let soa = crate::soa::SoaRecords::from_records(&trimmed);
        let mut s1 = vec![0.0; lanes];
        let mut s2 = vec![0.0; lanes];
        goertzel_soa_run(soa.data(), lanes, coeff, &mut s1, &mut s2);
        for (l, rec) in trimmed.iter().enumerate() {
            let mut r1 = vec![0.0; 1];
            let mut r2 = vec![0.0; 1];
            goertzel_bank_run_with(SimdArm::Scalar, rec, &[coeff], &mut r1, &mut r2);
            assert_eq!(s1[l].to_bits(), r1[0].to_bits());
            assert_eq!(s2[l].to_bits(), r2[0].to_bits());
        }
    }

    #[test]
    fn expand_bipolar_exact_across_arms() {
        let w = words(9);
        for len in [0usize, 1, 63, 64, 65, 200, 9 * 64] {
            let mut reference = vec![0.0; len];
            expand_bipolar_with(SimdArm::Scalar, &w, &mut reference);
            for &arm in available_arms() {
                let mut out = vec![0.0; len];
                expand_bipolar_with(arm, &w, &mut out);
                assert_eq!(out, reference, "arm {arm} len {len}");
            }
        }
    }

    #[test]
    fn popcount_exact_across_arms() {
        for n in [0usize, 1, 3, 4, 5, 31, 32, 100] {
            let w = words(n);
            let reference = popcount_words_with(SimdArm::Scalar, &w);
            for &arm in available_arms() {
                assert_eq!(popcount_words_with(arm, &w), reference, "arm {arm} n {n}");
            }
        }
    }

    #[test]
    fn xor_popcount_lag_exact_across_arms() {
        let w = words(40);
        let len_bits = 40 * 64 - 17;
        for lag in [
            0usize,
            1,
            7,
            63,
            64,
            65,
            128,
            1000,
            len_bits - 1,
            len_bits,
            len_bits + 5,
        ] {
            let reference = xor_popcount_lag_with(SimdArm::Scalar, &w, len_bits, lag);
            for &arm in available_arms() {
                assert_eq!(
                    xor_popcount_lag_with(arm, &w, len_bits, lag),
                    reference,
                    "arm {arm} lag {lag}"
                );
            }
        }
    }
}
