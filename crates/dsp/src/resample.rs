//! Sample-rate conversion: decimation with anti-alias filtering and
//! zero-stuffing interpolation.
//!
//! The BIST pipeline sometimes over-samples the comparator (the sampler
//! flip-flop can run much faster than the analysis bandwidth needs);
//! decimation brings the bitstream down to the processing rate.

use crate::filter::{BandKind, FirSpec};
use crate::window::Window;
use crate::DspError;

/// Decimates `x` by the integer `factor` after applying a windowed-sinc
/// anti-alias lowpass at 80 % of the new Nyquist rate.
///
/// Returns the filtered-and-kept samples; the output length is
/// `ceil(x.len() / factor)`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for a zero factor and
/// [`DspError::EmptyInput`] for an empty buffer.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<f64> = (0..1000).map(|n| (n as f64 * 0.01).sin()).collect();
/// let y = nfbist_dsp::resample::decimate(&x, 4, 1000.0)?;
/// assert_eq!(y.len(), 250);
/// # Ok(())
/// # }
/// ```
pub fn decimate(x: &[f64], factor: usize, sample_rate: f64) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidParameter {
            name: "factor",
            reason: "must be at least 1",
        });
    }
    if x.is_empty() {
        return Err(DspError::EmptyInput {
            context: "decimate",
        });
    }
    if factor == 1 {
        return Ok(x.to_vec());
    }
    let new_nyquist = sample_rate / (2.0 * factor as f64);
    let fir = FirSpec::new(
        BandKind::LowPass {
            cutoff: 0.8 * new_nyquist,
        },
        127,
    )?
    .window(Window::Blackman)
    .design(sample_rate)?;
    let filtered = fir.filter(x);
    Ok(filtered.iter().copied().step_by(factor).collect())
}

/// Decimates without anti-alias filtering (raw sample dropping).
///
/// Only safe when the signal is already band-limited below the new
/// Nyquist rate — which is exactly the case for the BIST noise band.
///
/// # Errors
///
/// Same as [`decimate`].
pub fn decimate_unfiltered(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidParameter {
            name: "factor",
            reason: "must be at least 1",
        });
    }
    if x.is_empty() {
        return Err(DspError::EmptyInput {
            context: "decimate_unfiltered",
        });
    }
    Ok(x.iter().copied().step_by(factor).collect())
}

/// Zero-stuffing interpolation by `factor` followed by an image-reject
/// lowpass with gain `factor` (so amplitudes are preserved).
///
/// # Errors
///
/// Same as [`decimate`].
pub fn interpolate(x: &[f64], factor: usize, sample_rate: f64) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidParameter {
            name: "factor",
            reason: "must be at least 1",
        });
    }
    if x.is_empty() {
        return Err(DspError::EmptyInput {
            context: "interpolate",
        });
    }
    if factor == 1 {
        return Ok(x.to_vec());
    }
    let new_rate = sample_rate * factor as f64;
    let mut stuffed = vec![0.0; x.len() * factor];
    for (i, &v) in x.iter().enumerate() {
        stuffed[i * factor] = v * factor as f64;
    }
    let fir = FirSpec::new(
        BandKind::LowPass {
            cutoff: 0.45 * sample_rate,
        },
        127,
    )?
    .window(Window::Blackman)
    .design(new_rate)?;
    Ok(fir.filter(&stuffed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn validation() {
        assert!(decimate(&[1.0], 0, 1000.0).is_err());
        assert!(decimate(&[], 2, 1000.0).is_err());
        assert!(decimate_unfiltered(&[], 2).is_err());
        assert!(interpolate(&[], 2, 1000.0).is_err());
        assert!(interpolate(&[1.0], 0, 1000.0).is_err());
    }

    #[test]
    fn factor_one_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(decimate(&x, 1, 100.0).unwrap(), x);
        assert_eq!(interpolate(&x, 1, 100.0).unwrap(), x);
    }

    #[test]
    fn decimated_length() {
        let x = vec![0.0; 1001];
        assert_eq!(decimate(&x, 4, 1000.0).unwrap().len(), 251);
        assert_eq!(decimate_unfiltered(&x, 10).unwrap().len(), 101);
    }

    #[test]
    fn tone_survives_decimation() {
        let fs = 16_000.0;
        let f0 = 100.0;
        let n = 8000;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * PI * f0 * j as f64 / fs).sin())
            .collect();
        let y = decimate(&x, 4, fs).unwrap();
        // Peak amplitude in steady state stays ≈ 1.
        let peak = y[200..y.len() - 200]
            .iter()
            .fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!((peak - 1.0).abs() < 0.03, "peak {peak}");
    }

    #[test]
    fn out_of_band_tone_removed_by_decimation() {
        let fs = 16_000.0;
        let f0 = 7000.0; // above the new Nyquist of 2 kHz
        let n = 8000;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * PI * f0 * j as f64 / fs).sin())
            .collect();
        let y = decimate(&x, 4, fs).unwrap();
        let peak = y[200..y.len() - 200]
            .iter()
            .fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!(peak < 0.01, "aliased peak {peak}");
    }

    #[test]
    fn interpolation_preserves_tone_amplitude() {
        let fs = 2000.0;
        let f0 = 100.0;
        let n = 2000;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * PI * f0 * j as f64 / fs).sin())
            .collect();
        let y = interpolate(&x, 4, fs).unwrap();
        assert_eq!(y.len(), n * 4);
        let peak = y[500..y.len() - 500]
            .iter()
            .fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!((peak - 1.0).abs() < 0.05, "peak {peak}");
    }
}
