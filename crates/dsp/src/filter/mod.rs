//! Digital filtering: FIR design by windowed sinc, biquad sections and
//! Butterworth cascades.
//!
//! The analog simulator uses these to band-limit synthesized noise (the
//! paper's prototype confines the measured noise to a 1 kHz bandwidth
//! while the reference tone sits at 3 kHz) and to model amplifier
//! bandwidth.

mod biquad;
mod butterworth;
mod fir;

pub use biquad::{Biquad, BiquadCoefficients};
pub use butterworth::ButterworthFilter;
pub use fir::{FirFilter, FirSpec};

use crate::DspError;

/// Band selection for filter design.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum BandKind {
    /// Pass everything below the cutoff.
    LowPass {
        /// Cutoff frequency in hertz.
        cutoff: f64,
    },
    /// Pass everything above the cutoff.
    HighPass {
        /// Cutoff frequency in hertz.
        cutoff: f64,
    },
    /// Pass the band between the two edges.
    BandPass {
        /// Lower band edge in hertz.
        low: f64,
        /// Upper band edge in hertz.
        high: f64,
    },
    /// Reject the band between the two edges.
    BandStop {
        /// Lower band edge in hertz.
        low: f64,
        /// Upper band edge in hertz.
        high: f64,
    },
}

impl BandKind {
    /// Validates the band against a sample rate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] when an edge is not in
    /// `(0, fs/2)` and [`DspError::InvalidParameter`] when band edges are
    /// out of order.
    pub fn validate(&self, sample_rate: f64) -> Result<(), DspError> {
        let nyq = sample_rate / 2.0;
        let check = |f: f64| {
            if f <= 0.0 || f >= nyq {
                Err(DspError::FrequencyOutOfRange {
                    frequency: f,
                    nyquist: nyq,
                })
            } else {
                Ok(())
            }
        };
        match *self {
            BandKind::LowPass { cutoff } | BandKind::HighPass { cutoff } => check(cutoff),
            BandKind::BandPass { low, high } | BandKind::BandStop { low, high } => {
                check(low)?;
                check(high)?;
                if low >= high {
                    return Err(DspError::InvalidParameter {
                        name: "band",
                        reason: "low edge must be below high edge",
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_validation() {
        let fs = 1000.0;
        assert!(BandKind::LowPass { cutoff: 100.0 }.validate(fs).is_ok());
        assert!(BandKind::LowPass { cutoff: 0.0 }.validate(fs).is_err());
        assert!(BandKind::LowPass { cutoff: 500.0 }.validate(fs).is_err());
        assert!(BandKind::HighPass { cutoff: 499.0 }.validate(fs).is_ok());
        assert!(BandKind::BandPass {
            low: 100.0,
            high: 200.0
        }
        .validate(fs)
        .is_ok());
        assert!(BandKind::BandPass {
            low: 200.0,
            high: 100.0
        }
        .validate(fs)
        .is_err());
        assert!(BandKind::BandStop {
            low: 100.0,
            high: 600.0
        }
        .validate(fs)
        .is_err());
    }
}
