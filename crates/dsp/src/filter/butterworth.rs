//! Butterworth filters of arbitrary even order as biquad cascades.

use crate::filter::{Biquad, BiquadCoefficients};
use crate::DspError;

/// A Butterworth lowpass/highpass of even order, realized as cascaded
/// RBJ biquads with the classic Butterworth pole-Q distribution.
///
/// The analog simulator uses these to model amplifier bandwidth (a
/// first-order dominant pole is approximated by a 2nd-order section with
/// high Q margin) and to shape band-limited noise.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::filter::ButterworthFilter;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let mut lp = ButterworthFilter::lowpass(4, 1000.0, 20_000.0)?;
/// let mut x: Vec<f64> = vec![1.0; 64];
/// lp.process_buffer(&mut x);
/// assert!(x.iter().all(|v| v.is_finite()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ButterworthFilter {
    sections: Vec<Biquad>,
    order: usize,
    cutoff: f64,
    sample_rate: f64,
}

impl ButterworthFilter {
    /// Designs an even-order lowpass.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for odd or zero order, and
    /// frequency-validation errors from the biquad designer.
    pub fn lowpass(order: usize, cutoff: f64, sample_rate: f64) -> Result<Self, DspError> {
        let qs = Self::pole_qs(order)?;
        let sections = qs
            .into_iter()
            .map(|q| BiquadCoefficients::lowpass(cutoff, q, sample_rate).map(Biquad::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ButterworthFilter {
            sections,
            order,
            cutoff,
            sample_rate,
        })
    }

    /// Designs an even-order highpass.
    ///
    /// # Errors
    ///
    /// Same as [`ButterworthFilter::lowpass`].
    pub fn highpass(order: usize, cutoff: f64, sample_rate: f64) -> Result<Self, DspError> {
        let qs = Self::pole_qs(order)?;
        let sections = qs
            .into_iter()
            .map(|q| BiquadCoefficients::highpass(cutoff, q, sample_rate).map(Biquad::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ButterworthFilter {
            sections,
            order,
            cutoff,
            sample_rate,
        })
    }

    /// Q values of the Butterworth pole pairs for an even order:
    /// `Q_k = 1 / (2·sin((2k+1)π/2N))`.
    fn pole_qs(order: usize) -> Result<Vec<f64>, DspError> {
        if order == 0 || !order.is_multiple_of(2) {
            return Err(DspError::InvalidParameter {
                name: "order",
                reason: "must be a positive even number",
            });
        }
        Ok((0..order / 2)
            .map(|k| {
                let theta = (2 * k + 1) as f64 * std::f64::consts::PI / (2.0 * order as f64);
                1.0 / (2.0 * theta.sin())
            })
            .collect())
    }

    /// Filter order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Cutoff frequency in hertz.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Processes one sample through the cascade.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        self.sections.iter_mut().fold(x, |v, s| s.process(v))
    }

    /// Processes a buffer in place.
    pub fn process_buffer(&mut self, x: &mut [f64]) {
        for v in x {
            *v = self.process(*v);
        }
    }

    /// Resets all section states.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Cascade magnitude response at `f` Hz.
    pub fn magnitude_at(&self, f: f64) -> f64 {
        self.sections
            .iter()
            .map(|s| s.coefficients().magnitude_at(f, self.sample_rate))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_validation() {
        assert!(ButterworthFilter::lowpass(0, 1e3, 48e3).is_err());
        assert!(ButterworthFilter::lowpass(3, 1e3, 48e3).is_err());
        assert!(ButterworthFilter::lowpass(2, 1e3, 48e3).is_ok());
        assert!(ButterworthFilter::lowpass(8, 1e3, 48e3).is_ok());
    }

    #[test]
    fn pole_q_of_second_order_is_butterworth() {
        let qs = ButterworthFilter::pole_qs(2).unwrap();
        assert_eq!(qs.len(), 1);
        assert!((qs[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn minus_3db_at_cutoff_for_any_order() {
        let fs = 48_000.0;
        let fc = 2000.0;
        for order in [2usize, 4, 6, 8] {
            let f = ButterworthFilter::lowpass(order, fc, fs).unwrap();
            let g = f.magnitude_at(fc);
            assert!(
                (g - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01,
                "order {order}: cutoff gain {g}"
            );
        }
    }

    #[test]
    fn rolloff_steepens_with_order() {
        let fs = 48_000.0;
        let fc = 1000.0;
        let g2 = ButterworthFilter::lowpass(2, fc, fs)
            .unwrap()
            .magnitude_at(4000.0);
        let g6 = ButterworthFilter::lowpass(6, fc, fs)
            .unwrap()
            .magnitude_at(4000.0);
        assert!(g6 < g2 / 50.0, "order-6 {g6} vs order-2 {g2}");
    }

    #[test]
    fn highpass_mirror() {
        let fs = 48_000.0;
        let f = ButterworthFilter::highpass(4, 2000.0, fs).unwrap();
        assert!(f.magnitude_at(100.0) < 1e-4);
        assert!((f.magnitude_at(10_000.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn dc_step_settles() {
        let mut f = ButterworthFilter::lowpass(4, 500.0, 20_000.0).unwrap();
        let mut y = 0.0;
        for _ in 0..40_000 {
            y = f.process(1.0);
        }
        assert!((y - 1.0).abs() < 1e-9);
        f.reset();
        assert_eq!(f.process(0.0), 0.0);
    }

    #[test]
    fn accessors() {
        let f = ButterworthFilter::lowpass(4, 500.0, 20_000.0).unwrap();
        assert_eq!(f.order(), 4);
        assert_eq!(f.cutoff(), 500.0);
    }
}
