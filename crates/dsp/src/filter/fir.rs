//! FIR filter design by the windowed-sinc method, and FIR filtering.

use crate::filter::BandKind;
use crate::window::Window;
use crate::DspError;

/// Specification for a windowed-sinc FIR design.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::filter::{BandKind, FirSpec};
/// use nfbist_dsp::window::Window;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// // A 1 kHz lowpass at fs = 20 kHz, 129 taps, Hamming window —
/// // the band limiter used for the paper's noise bandwidth.
/// let fir = FirSpec::new(BandKind::LowPass { cutoff: 1000.0 }, 129)?
///     .window(Window::Hamming)
///     .design(20_000.0)?;
/// assert_eq!(fir.taps().len(), 129);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FirSpec {
    band: BandKind,
    num_taps: usize,
    window: Window,
}

impl FirSpec {
    /// Creates a specification with the given band and tap count.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `num_taps` is odd
    /// and at least 3 (odd length keeps all band shapes realizable as
    /// type-I linear phase filters).
    pub fn new(band: BandKind, num_taps: usize) -> Result<Self, DspError> {
        if num_taps < 3 || num_taps.is_multiple_of(2) {
            return Err(DspError::InvalidParameter {
                name: "num_taps",
                reason: "must be odd and at least 3",
            });
        }
        Ok(FirSpec {
            band,
            num_taps,
            window: Window::Hamming,
        })
    }

    /// Selects the design window (default Hamming).
    pub fn window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Designs the filter for `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Propagates band-validation errors from [`BandKind::validate`].
    pub fn design(&self, sample_rate: f64) -> Result<FirFilter, DspError> {
        self.band.validate(sample_rate)?;
        let n = self.num_taps;
        let mid = (n - 1) / 2;

        let ideal_lowpass = |fc: f64, k: i64| -> f64 {
            // Normalized cutoff in cycles/sample.
            let f = fc / sample_rate;
            if k == 0 {
                2.0 * f
            } else {
                (2.0 * std::f64::consts::PI * f * k as f64).sin()
                    / (std::f64::consts::PI * k as f64)
            }
        };

        let mut taps: Vec<f64> = (0..n)
            .map(|i| {
                let k = i as i64 - mid as i64;
                match self.band {
                    BandKind::LowPass { cutoff } => ideal_lowpass(cutoff, k),
                    BandKind::HighPass { cutoff } => {
                        let delta = if k == 0 { 1.0 } else { 0.0 };
                        delta - ideal_lowpass(cutoff, k)
                    }
                    BandKind::BandPass { low, high } => {
                        ideal_lowpass(high, k) - ideal_lowpass(low, k)
                    }
                    BandKind::BandStop { low, high } => {
                        let delta = if k == 0 { 1.0 } else { 0.0 };
                        delta - (ideal_lowpass(high, k) - ideal_lowpass(low, k))
                    }
                }
            })
            .collect();

        for (t, w) in taps.iter_mut().zip(symmetric_window(self.window, n)) {
            *t *= w;
        }
        Ok(FirFilter { taps })
    }
}

/// Symmetric (filter-design) form of a window: `w[i]` over
/// `i = 0..n` with `w[i] == w[n-1-i]`.
fn symmetric_window(window: Window, n: usize) -> Vec<f64> {
    // A periodic window of length n-1 provides the first n-1 samples of
    // the symmetric length-n window (same formula, denominator n-1); the
    // final sample closes the symmetry with the value at the left edge.
    let mut w = window.coefficients(n - 1);
    let first = w[0];
    w.push(first);
    w
}

/// A designed FIR filter.
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Builds a filter directly from taps.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty tap vector.
    pub fn from_taps(taps: Vec<f64>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::EmptyInput {
                context: "fir from_taps",
            });
        }
        Ok(FirFilter { taps })
    }

    /// The filter coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (`(N-1)/2` for linear-phase designs).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() as f64 - 1.0) / 2.0
    }

    /// Filters `x`, returning an output of the same length ("same" mode:
    /// the output is aligned with the input by discarding the group
    /// delay's worth of leading transient).
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let full = self.convolve(x);
        let delay = (self.taps.len() - 1) / 2;
        full[delay..delay + x.len()].to_vec()
    }

    /// Full linear convolution (`x.len() + taps.len() - 1` samples).
    pub fn convolve(&self, x: &[f64]) -> Vec<f64> {
        let n = x.len();
        let m = self.taps.len();
        let mut out = vec![0.0; n + m - 1];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &tj) in self.taps.iter().enumerate() {
                out[i + j] += xi * tj;
            }
        }
        out
    }

    /// Magnitude response at frequency `f` for sample rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] for `f` outside
    /// `[0, fs/2]`.
    pub fn magnitude_at(&self, f: f64, sample_rate: f64) -> Result<f64, DspError> {
        let nyq = sample_rate / 2.0;
        if f < 0.0 || f > nyq {
            return Err(DspError::FrequencyOutOfRange {
                frequency: f,
                nyquist: nyq,
            });
        }
        let omega = 2.0 * std::f64::consts::PI * f / sample_rate;
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for (k, &t) in self.taps.iter().enumerate() {
            re += t * (omega * k as f64).cos();
            im -= t * (omega * k as f64).sin();
        }
        Ok(re.hypot(im))
    }

    /// Equivalent noise bandwidth of the filter in hertz:
    /// `∫|H|²df / |H|²_peak` evaluated on a fine grid.
    ///
    /// Used to convert filtered-noise power back to density.
    pub fn noise_bandwidth(&self, sample_rate: f64) -> f64 {
        let grid = 2048;
        let nyq = sample_rate / 2.0;
        let mut total = 0.0;
        let mut peak = 0.0f64;
        for i in 0..grid {
            let f = nyq * (i as f64 + 0.5) / grid as f64;
            let h2 = self.magnitude_at(f, sample_rate).unwrap_or(0.0).powi(2);
            total += h2;
            peak = peak.max(h2);
        }
        if peak == 0.0 {
            return 0.0;
        }
        total * (nyq / grid as f64) / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        let band = BandKind::LowPass { cutoff: 100.0 };
        assert!(FirSpec::new(band, 2).is_err());
        assert!(FirSpec::new(band, 4).is_err());
        assert!(FirSpec::new(band, 1).is_err());
        assert!(FirSpec::new(band, 31).is_ok());
    }

    #[test]
    fn design_rejects_bad_band() {
        let spec = FirSpec::new(BandKind::LowPass { cutoff: 600.0 }, 31).unwrap();
        assert!(spec.design(1000.0).is_err());
    }

    #[test]
    fn lowpass_response_shape() {
        let fs = 10_000.0;
        let fir = FirSpec::new(BandKind::LowPass { cutoff: 1000.0 }, 201)
            .unwrap()
            .design(fs)
            .unwrap();
        // Passband ≈ 1, stopband small, -6 dB near cutoff.
        assert!((fir.magnitude_at(100.0, fs).unwrap() - 1.0).abs() < 0.01);
        assert!((fir.magnitude_at(500.0, fs).unwrap() - 1.0).abs() < 0.01);
        assert!(fir.magnitude_at(2000.0, fs).unwrap() < 0.01);
        let edge = fir.magnitude_at(1000.0, fs).unwrap();
        assert!((edge - 0.5).abs() < 0.05, "edge gain {edge}");
    }

    #[test]
    fn highpass_blocks_dc() {
        let fs = 8000.0;
        let fir = FirSpec::new(BandKind::HighPass { cutoff: 1000.0 }, 201)
            .unwrap()
            .design(fs)
            .unwrap();
        assert!(fir.magnitude_at(0.0, fs).unwrap() < 1e-3);
        assert!((fir.magnitude_at(3000.0, fs).unwrap() - 1.0).abs() < 0.02);
    }

    #[test]
    fn bandpass_and_bandstop_are_complementary() {
        let fs = 8000.0;
        let bp = FirSpec::new(
            BandKind::BandPass {
                low: 500.0,
                high: 1500.0,
            },
            201,
        )
        .unwrap()
        .design(fs)
        .unwrap();
        let bs = FirSpec::new(
            BandKind::BandStop {
                low: 500.0,
                high: 1500.0,
            },
            201,
        )
        .unwrap()
        .design(fs)
        .unwrap();
        for f in [100.0, 1000.0, 3000.0] {
            let sum = bp.magnitude_at(f, fs).unwrap() + bs.magnitude_at(f, fs).unwrap();
            assert!((sum - 1.0).abs() < 0.05, "complementarity at {f}: {sum}");
        }
        assert!(bp.magnitude_at(1000.0, fs).unwrap() > 0.95);
        assert!(bs.magnitude_at(1000.0, fs).unwrap() < 0.05);
    }

    #[test]
    fn taps_are_symmetric_linear_phase() {
        let fir = FirSpec::new(BandKind::LowPass { cutoff: 1000.0 }, 101)
            .unwrap()
            .design(10_000.0)
            .unwrap();
        let t = fir.taps();
        for i in 0..t.len() {
            assert!(
                (t[i] - t[t.len() - 1 - i]).abs() < 1e-12,
                "asymmetry at {i}"
            );
        }
        assert_eq!(fir.group_delay(), 50.0);
    }

    #[test]
    fn filter_same_mode_preserves_length_and_tone() {
        let fs = 10_000.0;
        let fir = FirSpec::new(BandKind::LowPass { cutoff: 1000.0 }, 101)
            .unwrap()
            .design(fs)
            .unwrap();
        let n = 4000;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * 200.0 * j as f64 / fs).sin())
            .collect();
        let y = fir.filter(&x);
        assert_eq!(y.len(), n);
        // Steady-state amplitude preserved in the passband.
        let peak = y[500..3500].iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!((peak - 1.0).abs() < 0.02, "passband peak {peak}");
    }

    #[test]
    fn convolve_impulse_returns_taps() {
        let fir = FirFilter::from_taps(vec![0.25, 0.5, 0.25]).unwrap();
        let y = fir.convolve(&[1.0]);
        assert_eq!(y, vec![0.25, 0.5, 0.25]);
        assert!(FirFilter::from_taps(vec![]).is_err());
    }

    #[test]
    fn noise_bandwidth_of_lowpass_near_cutoff() {
        let fs = 20_000.0;
        let fir = FirSpec::new(BandKind::LowPass { cutoff: 1000.0 }, 401)
            .unwrap()
            .design(fs)
            .unwrap();
        let nbw = fir.noise_bandwidth(fs);
        assert!(
            (nbw - 1000.0).abs() < 50.0,
            "noise bandwidth {nbw} for 1 kHz cutoff"
        );
    }

    #[test]
    fn magnitude_out_of_range_rejected() {
        let fir = FirFilter::from_taps(vec![1.0]).unwrap();
        assert!(fir.magnitude_at(-1.0, 100.0).is_err());
        assert!(fir.magnitude_at(51.0, 100.0).is_err());
    }
}
