//! Second-order IIR sections (biquads) in direct form II transposed.

use crate::DspError;

/// Normalized biquad coefficients (`a0 == 1`).
///
/// Transfer function:
/// `H(z) = (b0 + b1·z⁻¹ + b2·z⁻²) / (1 + a1·z⁻¹ + a2·z⁻²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiquadCoefficients {
    /// Feed-forward coefficient b0.
    pub b0: f64,
    /// Feed-forward coefficient b1.
    pub b1: f64,
    /// Feed-forward coefficient b2.
    pub b2: f64,
    /// Feedback coefficient a1.
    pub a1: f64,
    /// Feedback coefficient a2.
    pub a2: f64,
}

impl BiquadCoefficients {
    /// RBJ cookbook lowpass with cutoff `fc` and quality `q` at sample
    /// rate `fs`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] unless `0 < fc < fs/2`
    /// and [`DspError::InvalidParameter`] for non-positive `q`.
    pub fn lowpass(fc: f64, q: f64, fs: f64) -> Result<Self, DspError> {
        Self::validate(fc, q, fs)?;
        let w0 = 2.0 * std::f64::consts::PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(BiquadCoefficients {
            b0: (1.0 - cw) / 2.0 / a0,
            b1: (1.0 - cw) / a0,
            b2: (1.0 - cw) / 2.0 / a0,
            a1: -2.0 * cw / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// RBJ cookbook highpass.
    ///
    /// # Errors
    ///
    /// Same as [`BiquadCoefficients::lowpass`].
    pub fn highpass(fc: f64, q: f64, fs: f64) -> Result<Self, DspError> {
        Self::validate(fc, q, fs)?;
        let w0 = 2.0 * std::f64::consts::PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(BiquadCoefficients {
            b0: (1.0 + cw) / 2.0 / a0,
            b1: -(1.0 + cw) / a0,
            b2: (1.0 + cw) / 2.0 / a0,
            a1: -2.0 * cw / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// RBJ cookbook constant-peak bandpass (peak gain = Q).
    ///
    /// # Errors
    ///
    /// Same as [`BiquadCoefficients::lowpass`].
    pub fn bandpass(fc: f64, q: f64, fs: f64) -> Result<Self, DspError> {
        Self::validate(fc, q, fs)?;
        let w0 = 2.0 * std::f64::consts::PI * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(BiquadCoefficients {
            b0: alpha / a0,
            b1: 0.0,
            b2: -alpha / a0,
            a1: -2.0 * cw / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// Identity (pass-through) section.
    pub fn identity() -> Self {
        BiquadCoefficients {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: 0.0,
            a2: 0.0,
        }
    }

    fn validate(fc: f64, q: f64, fs: f64) -> Result<(), DspError> {
        if !(fs > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "fs",
                reason: "must be positive",
            });
        }
        if fc <= 0.0 || fc >= fs / 2.0 {
            return Err(DspError::FrequencyOutOfRange {
                frequency: fc,
                nyquist: fs / 2.0,
            });
        }
        if !(q > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "q",
                reason: "must be positive",
            });
        }
        Ok(())
    }

    /// Magnitude response at `f` Hz for sample rate `fs`.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f / fs;
        let num_re = self.b0 + self.b1 * w.cos() + self.b2 * (2.0 * w).cos();
        let num_im = -self.b1 * w.sin() - self.b2 * (2.0 * w).sin();
        let den_re = 1.0 + self.a1 * w.cos() + self.a2 * (2.0 * w).cos();
        let den_im = -self.a1 * w.sin() - self.a2 * (2.0 * w).sin();
        (num_re.hypot(num_im)) / (den_re.hypot(den_im))
    }

    /// `true` if both poles are inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for a monic quadratic z² + a1·z + a2.
        self.a2 < 1.0 && (self.a1.abs() - 1.0) < self.a2
    }
}

/// A stateful biquad section (direct form II transposed).
///
/// # Examples
///
/// ```
/// use nfbist_dsp::filter::{Biquad, BiquadCoefficients};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let mut bq = Biquad::new(BiquadCoefficients::lowpass(1000.0, 0.707, 48_000.0)?);
/// let y = bq.process(1.0);
/// assert!(y.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    coeffs: BiquadCoefficients,
    s1: f64,
    s2: f64,
}

impl Biquad {
    /// Creates a section with zeroed state.
    pub fn new(coeffs: BiquadCoefficients) -> Self {
        Biquad {
            coeffs,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// The section's coefficients.
    pub fn coefficients(&self) -> &BiquadCoefficients {
        &self.coeffs
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let c = &self.coeffs;
        let y = c.b0 * x + self.s1;
        self.s1 = c.b1 * x - c.a1 * y + self.s2;
        self.s2 = c.b2 * x - c.a2 * y;
        y
    }

    /// Processes a buffer in place.
    pub fn process_buffer(&mut self, x: &mut [f64]) {
        for v in x {
            *v = self.process(*v);
        }
    }

    /// Resets the internal state to zero.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficient_validation() {
        assert!(BiquadCoefficients::lowpass(0.0, 0.7, 48e3).is_err());
        assert!(BiquadCoefficients::lowpass(24e3, 0.7, 48e3).is_err());
        assert!(BiquadCoefficients::lowpass(1e3, 0.0, 48e3).is_err());
        assert!(BiquadCoefficients::lowpass(1e3, 0.7, 0.0).is_err());
        assert!(BiquadCoefficients::lowpass(1e3, 0.7, 48e3).is_ok());
    }

    #[test]
    fn lowpass_dc_gain_is_unity() {
        let c = BiquadCoefficients::lowpass(1000.0, 0.707, 48_000.0).unwrap();
        assert!((c.magnitude_at(0.0, 48_000.0) - 1.0).abs() < 1e-9);
        assert!(c.magnitude_at(20_000.0, 48_000.0) < 0.01);
        assert!(c.is_stable());
    }

    #[test]
    fn highpass_blocks_dc() {
        let c = BiquadCoefficients::highpass(1000.0, 0.707, 48_000.0).unwrap();
        assert!(c.magnitude_at(0.0, 48_000.0) < 1e-9);
        assert!((c.magnitude_at(20_000.0, 48_000.0) - 1.0).abs() < 0.05);
    }

    #[test]
    fn bandpass_peaks_at_center() {
        let fs = 48_000.0;
        let c = BiquadCoefficients::bandpass(2000.0, 5.0, fs).unwrap();
        let peak = c.magnitude_at(2000.0, fs);
        assert!(peak > c.magnitude_at(500.0, fs));
        assert!(peak > c.magnitude_at(8000.0, fs));
    }

    #[test]
    fn butterworth_q_gives_minus_3db_at_cutoff() {
        let fs = 48_000.0;
        let fc = 3000.0;
        let c = BiquadCoefficients::lowpass(fc, std::f64::consts::FRAC_1_SQRT_2, fs).unwrap();
        let g = c.magnitude_at(fc, fs);
        assert!(
            (g - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
            "gain {g}"
        );
    }

    #[test]
    fn identity_passes_through() {
        let mut bq = Biquad::new(BiquadCoefficients::identity());
        for v in [1.0, -2.0, 0.5] {
            assert_eq!(bq.process(v), v);
        }
    }

    #[test]
    fn dc_step_settles_to_unity_for_lowpass() {
        let mut bq = Biquad::new(BiquadCoefficients::lowpass(100.0, 0.707, 10_000.0).unwrap());
        let mut y = 0.0;
        for _ in 0..10_000 {
            y = bq.process(1.0);
        }
        assert!((y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_state() {
        let mut bq = Biquad::new(BiquadCoefficients::lowpass(100.0, 0.707, 10_000.0).unwrap());
        bq.process(1.0);
        bq.reset();
        let fresh = Biquad::new(*bq.coefficients());
        assert_eq!(bq, fresh);
    }

    #[test]
    fn stability_check() {
        let unstable = BiquadCoefficients {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: 0.0,
            a2: 1.5,
        };
        assert!(!unstable.is_stable());
        assert!(BiquadCoefficients::identity().is_stable());
    }
}
