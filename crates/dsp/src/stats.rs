//! Sample statistics used throughout the reproduction.
//!
//! Table 2 of the paper compares power-ratio estimates from time-domain
//! mean-square values against spectral estimates, so mean-square and
//! friends live here with careful empty-input handling.

use crate::DspError;

/// Arithmetic mean of a sample buffer.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let m = nfbist_dsp::stats::mean(&[1.0, 2.0, 3.0])?;
/// assert_eq!(m, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput { context: "mean" });
    }
    Ok(x.iter().sum::<f64>() / x.len() as f64)
}

/// Mean-square value `⟨x²⟩` — the average **power** of the buffer.
///
/// This is the "mean square ratio" numerator/denominator in Table 2 of the
/// paper.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let p = nfbist_dsp::stats::mean_square(&[3.0, -3.0, 3.0, -3.0])?;
/// assert_eq!(p, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn mean_square(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput {
            context: "mean_square",
        });
    }
    Ok(x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64)
}

/// Root-mean-square value `√⟨x²⟩`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn rms(x: &[f64]) -> Result<f64, DspError> {
    mean_square(x).map(f64::sqrt)
}

/// Population variance `⟨(x-μ)²⟩` (divides by `n`).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn variance(x: &[f64]) -> Result<f64, DspError> {
    let mu = mean(x)?;
    Ok(x.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / x.len() as f64)
}

/// Sample variance with Bessel's correction (divides by `n-1`).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if fewer than two samples are
/// provided.
pub fn sample_variance(x: &[f64]) -> Result<f64, DspError> {
    if x.len() < 2 {
        return Err(DspError::InvalidParameter {
            name: "x",
            reason: "sample variance needs at least two samples",
        });
    }
    let mu = mean(x)?;
    Ok(x.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / (x.len() - 1) as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn std_dev(x: &[f64]) -> Result<f64, DspError> {
    variance(x).map(f64::sqrt)
}

/// Minimum and maximum of the buffer, ignoring NaNs is **not** done —
/// a NaN poisons the result like it does elsewhere in `f64` arithmetic.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn min_max(x: &[f64]) -> Result<(f64, f64), DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput { context: "min_max" });
    }
    let mut lo = x[0];
    let mut hi = x[0];
    for &v in &x[1..] {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Ok((lo, hi))
}

/// Peak absolute value of the buffer.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice.
pub fn peak(x: &[f64]) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput { context: "peak" });
    }
    Ok(x.iter().fold(0.0f64, |acc, v| acc.max(v.abs())))
}

/// Crest factor: peak amplitude divided by RMS.
///
/// Gaussian noise has an unbounded crest factor that grows slowly with
/// record length (≈4–5 for 10⁶ samples); a square wave has exactly 1.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice and
/// [`DspError::InvalidParameter`] when the RMS is zero.
pub fn crest_factor(x: &[f64]) -> Result<f64, DspError> {
    let r = rms(x)?;
    if r == 0.0 {
        return Err(DspError::InvalidParameter {
            name: "x",
            reason: "crest factor undefined for all-zero signal",
        });
    }
    Ok(peak(x)? / r)
}

/// Third standardized moment (skewness, population form).
///
/// Near zero for symmetric distributions such as the Gaussian noise the
/// BIST digitizer relies on.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice and
/// [`DspError::InvalidParameter`] for zero variance.
pub fn skewness(x: &[f64]) -> Result<f64, DspError> {
    let mu = mean(x)?;
    let var = variance(x)?;
    if var == 0.0 {
        return Err(DspError::InvalidParameter {
            name: "x",
            reason: "skewness undefined for zero variance",
        });
    }
    let m3 = x.iter().map(|v| (v - mu).powi(3)).sum::<f64>() / x.len() as f64;
    Ok(m3 / var.powf(1.5))
}

/// Excess kurtosis (population form; 0 for a Gaussian).
///
/// Useful to sanity-check synthesized noise before feeding the digitizer:
/// the arcsine law (paper eq. 12) assumes a normal process.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice and
/// [`DspError::InvalidParameter`] for zero variance.
pub fn excess_kurtosis(x: &[f64]) -> Result<f64, DspError> {
    let mu = mean(x)?;
    let var = variance(x)?;
    if var == 0.0 {
        return Err(DspError::InvalidParameter {
            name: "x",
            reason: "kurtosis undefined for zero variance",
        });
    }
    let m4 = x.iter().map(|v| (v - mu).powi(4)).sum::<f64>() / x.len() as f64;
    Ok(m4 / (var * var) - 3.0)
}

/// A fixed-bin histogram over a closed range.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// use nfbist_dsp::stats::Histogram;
///
/// let mut h = Histogram::new(-1.0, 1.0, 4)?;
/// h.extend([-0.9, -0.1, 0.1, 0.9, 2.0]);
/// assert_eq!(h.counts(), &[1, 1, 1, 1]);
/// assert_eq!(h.outliers(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi]` with `bins` equal bins.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `bins` is zero or
    /// `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, DspError> {
        if bins == 0 {
            return Err(DspError::InvalidParameter {
                name: "bins",
                reason: "must be at least 1",
            });
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(DspError::InvalidParameter {
                name: "range",
                reason: "requires finite lo < hi",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() || v < self.lo || v > self.hi {
            self.outliers += 1;
            return;
        }
        let n = self.counts.len();
        let t = (v - self.lo) / (self.hi - self.lo);
        let idx = ((t * n as f64) as usize).min(n - 1);
        self.counts[idx] += 1;
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside `[lo, hi]` (or were non-finite).
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Centre value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&x).unwrap(), 5.0);
        assert_eq!(variance(&x).unwrap(), 4.0);
        assert_eq!(std_dev(&x).unwrap(), 2.0);
        assert!((sample_variance(&x).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_square_vs_variance_for_zero_mean() {
        let x = [1.0, -1.0, 2.0, -2.0];
        assert_eq!(mean(&x).unwrap(), 0.0);
        assert_eq!(mean_square(&x).unwrap(), variance(&x).unwrap());
    }

    #[test]
    fn rms_of_square_wave() {
        let x = [1.5, -1.5, 1.5, -1.5];
        assert_eq!(rms(&x).unwrap(), 1.5);
        assert_eq!(crest_factor(&x).unwrap(), 1.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(mean_square(&[]).is_err());
        assert!(rms(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(min_max(&[]).is_err());
        assert!(peak(&[]).is_err());
    }

    #[test]
    fn sample_variance_needs_two() {
        assert!(sample_variance(&[1.0]).is_err());
        assert!(sample_variance(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn min_max_and_peak() {
        let x = [-3.0, 1.0, 2.5];
        assert_eq!(min_max(&x).unwrap(), (-3.0, 2.5));
        assert_eq!(peak(&x).unwrap(), 3.0);
    }

    #[test]
    fn gaussian_moments_are_near_nominal() {
        // Deterministic pseudo-Gaussian via sum of sinusoids is not
        // Gaussian; instead use a simple LCG + central limit sum.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<f64> = (0..20000)
            .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
            .collect();
        assert!(mean(&x).unwrap().abs() < 0.05);
        assert!((variance(&x).unwrap() - 1.0).abs() < 0.05);
        assert!(skewness(&x).unwrap().abs() < 0.08);
        assert!(excess_kurtosis(&x).unwrap().abs() < 0.15);
    }

    #[test]
    fn skewness_of_asymmetric_data_positive() {
        let x = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&x).unwrap() > 0.0);
    }

    #[test]
    fn zero_variance_rejected() {
        let x = [1.0, 1.0, 1.0];
        assert!(skewness(&x).is_err());
        assert!(excess_kurtosis(&x).is_err());
        assert!(crest_factor(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.extend([0.0, 0.49, 0.5, 1.0]);
        // Right edge lands in the last bin.
        assert_eq!(h.counts(), &[2, 2]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers(), 0);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-15);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn histogram_counts_nan_as_outlier() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.outliers(), 1);
        assert_eq!(h.total(), 0);
    }
}
