//! Welch's method: averaged modified periodograms over overlapped
//! segments.

use crate::psd::{one_sided_density_accumulate, DspWorkspace, PsdPlan};
use crate::simd::{self, SimdPolicy};
use crate::spectrum::Spectrum;
use crate::window::Window;
use crate::DspError;

/// Processes one Welch segment — detrend, window, real FFT, one-sided
/// density accumulation into `out` — through an already-built plan.
///
/// This is the single segment kernel shared by the batch estimator
/// ([`WelchConfig::estimate_into`]) and the chunked accumulator
/// ([`crate::psd::StreamingWelch`]); sharing it is what makes the two
/// paths bitwise-identical by construction.
///
/// The hot loops (detrend subtract, window multiply, FFT butterflies,
/// density accumulation) run through the [`crate::simd`] dispatch layer
/// and are bit-identical across arms; only the detrend *mean* is a
/// reduction, so `policy` decides whether it may reassociate
/// ([`SimdPolicy::Exact`], the default, keeps the scalar fold).
pub(crate) fn accumulate_segment(
    plan: &mut PsdPlan,
    detrend: bool,
    policy: SimdPolicy,
    sample_rate: f64,
    segment: &[f64],
    out: &mut [f64],
) -> Result<(), DspError> {
    let n = plan.size();
    plan.seg.copy_from_slice(segment);
    if detrend {
        let mu = simd::sum(&plan.seg, policy) / n as f64;
        simd::subtract_scalar(&mut plan.seg, mu);
    }
    simd::apply_window(&mut plan.seg, &plan.coeffs);
    plan.fft
        .forward_real_into(&plan.seg, &mut plan.scratch, &mut plan.spec)?;
    one_sided_density_accumulate(
        &plan.spec[..n / 2 + 1],
        n,
        sample_rate,
        plan.window_power,
        out,
    );
    Ok(())
}

/// Configuration for a Welch PSD estimate.
///
/// Defaults: Hann window, 50 % overlap, no detrending — matching the
/// conventional `pwelch` settings the paper's Matlab processing implies.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::psd::WelchConfig;
/// use nfbist_dsp::window::Window;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<f64> = (0..8192).map(|n| (n as f64 * 0.37).sin()).collect();
/// let psd = WelchConfig::new(1024)?
///     .window(Window::Hann)
///     .overlap(0.5)?
///     .estimate(&x, 10_000.0)?;
/// assert_eq!(psd.len(), 513);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WelchConfig {
    segment_len: usize,
    window: Window,
    overlap: f64,
    detrend: bool,
    simd: SimdPolicy,
}

impl WelchConfig {
    /// Creates a configuration with `segment_len`-point segments (this is
    /// also the FFT length; any size is accepted).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for a zero segment length.
    pub fn new(segment_len: usize) -> Result<Self, DspError> {
        if segment_len == 0 {
            return Err(DspError::InvalidParameter {
                name: "segment_len",
                reason: "must be nonzero",
            });
        }
        Ok(WelchConfig {
            segment_len,
            window: Window::Hann,
            overlap: 0.5,
            detrend: false,
            simd: SimdPolicy::Exact,
        })
    }

    /// Selects the analysis window (default Hann).
    pub fn window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Sets the fractional overlap in `[0, 1)` (default 0.5).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if outside `[0, 1)`.
    pub fn overlap(mut self, overlap: f64) -> Result<Self, DspError> {
        if !(0.0..1.0).contains(&overlap) {
            return Err(DspError::InvalidParameter {
                name: "overlap",
                reason: "must be in [0, 1)",
            });
        }
        self.overlap = overlap;
        Ok(self)
    }

    /// Enables per-segment mean removal.
    pub fn detrend(mut self, on: bool) -> Self {
        self.detrend = on;
        self
    }

    /// Selects the SIMD reduction policy (default
    /// [`SimdPolicy::Exact`], which keeps the estimate bit-for-bit
    /// identical across dispatch arms and machines; only the detrend
    /// mean is affected — see [`crate::simd`]).
    pub fn simd(mut self, policy: SimdPolicy) -> Self {
        self.simd = policy;
        self
    }

    /// Segment length (== FFT length).
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Number of segments the estimator will average for an input of
    /// `input_len` samples (zero if the input is shorter than one
    /// segment).
    pub fn segment_count(&self, input_len: usize) -> usize {
        if input_len < self.segment_len {
            return 0;
        }
        let hop = self.hop();
        1 + (input_len - self.segment_len) / hop
    }

    /// Hop between consecutive segment starts, in samples (at least 1).
    pub(crate) fn hop(&self) -> usize {
        let hop = ((1.0 - self.overlap) * self.segment_len as f64).round() as usize;
        hop.max(1)
    }

    /// The configured analysis window.
    pub fn window_kind(&self) -> Window {
        self.window
    }

    /// The configured fractional overlap.
    pub fn overlap_fraction(&self) -> f64 {
        self.overlap
    }

    /// `true` when per-segment mean removal is enabled.
    pub fn detrend_enabled(&self) -> bool {
        self.detrend
    }

    /// The configured SIMD reduction policy.
    pub fn simd_policy(&self) -> SimdPolicy {
        self.simd
    }

    /// Runs the estimator over `x` sampled at `sample_rate` Hz.
    ///
    /// Plans the FFT and allocates scratch per call; steady-state code
    /// should hold a [`DspWorkspace`] and use
    /// [`WelchConfig::estimate_with`] (or [`WelchConfig::estimate_into`]
    /// for a fully allocation-free inner loop) instead.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `x` is shorter than one
    /// segment, and [`DspError::InvalidParameter`] for a non-positive
    /// sample rate.
    pub fn estimate(&self, x: &[f64], sample_rate: f64) -> Result<Spectrum, DspError> {
        self.estimate_with(x, sample_rate, &mut DspWorkspace::new())
    }

    /// Runs the estimator reusing the plans and scratch buffers of
    /// `workspace`; only the returned [`Spectrum`]'s density vector is
    /// allocated.
    ///
    /// # Errors
    ///
    /// Same as [`WelchConfig::estimate`].
    pub fn estimate_with(
        &self,
        x: &[f64],
        sample_rate: f64,
        workspace: &mut DspWorkspace,
    ) -> Result<Spectrum, DspError> {
        let mut out = vec![0.0f64; self.segment_len / 2 + 1];
        self.estimate_into(x, sample_rate, workspace, &mut out)?;
        Spectrum::new(out, sample_rate, self.segment_len)
    }

    /// The fully allocation-free estimator: reuses `workspace` plans and
    /// scratch, and writes the one-sided densities into the caller-owned
    /// `out` (length `segment_len/2 + 1`). In the steady state — after
    /// the workspace holds this configuration's plan — a call performs
    /// no FFT planning and no heap allocation at all.
    ///
    /// # Errors
    ///
    /// Same as [`WelchConfig::estimate`], plus
    /// [`DspError::LengthMismatch`] for a wrongly sized `out`.
    pub fn estimate_into(
        &self,
        x: &[f64],
        sample_rate: f64,
        workspace: &mut DspWorkspace,
        out: &mut [f64],
    ) -> Result<(), DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        let n = self.segment_len;
        if x.len() < n {
            return Err(DspError::EmptyInput {
                context: "welch (input shorter than one segment)",
            });
        }
        if out.len() != n / 2 + 1 {
            return Err(DspError::LengthMismatch {
                expected: n / 2 + 1,
                actual: out.len(),
                context: "welch estimate_into (output)",
            });
        }
        let plan = workspace.plan(n, self.window)?;
        let hop = self.hop();

        out.fill(0.0);
        let mut segments = 0usize;
        let mut start = 0usize;
        while start + n <= x.len() {
            accumulate_segment(
                plan,
                self.detrend,
                self.simd,
                sample_rate,
                &x[start..start + n],
                out,
            )?;
            segments += 1;
            start += hop;
        }
        let inv = 1.0 / segments as f64;
        for o in out.iter_mut() {
            *o *= inv;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Deterministic uniform LCG mapped to an approximately Gaussian
    /// variable by a 12-sum central limit construction.
    fn gaussian_like(n: usize, sigma: f64, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| sigma * ((0..12).map(|_| next()).sum::<f64>() - 6.0))
            .collect()
    }

    #[test]
    fn config_validation() {
        assert!(WelchConfig::new(0).is_err());
        assert!(WelchConfig::new(64).unwrap().overlap(1.0).is_err());
        assert!(WelchConfig::new(64).unwrap().overlap(-0.1).is_err());
        assert!(WelchConfig::new(64).unwrap().overlap(0.75).is_ok());
    }

    #[test]
    fn segment_count_arithmetic() {
        let cfg = WelchConfig::new(100).unwrap().overlap(0.5).unwrap();
        assert_eq!(cfg.segment_count(99), 0);
        assert_eq!(cfg.segment_count(100), 1);
        assert_eq!(cfg.segment_count(150), 2);
        assert_eq!(cfg.segment_count(1000), 19);
    }

    #[test]
    fn input_shorter_than_segment_rejected() {
        let cfg = WelchConfig::new(256).unwrap();
        assert!(cfg.estimate(&[0.0; 255], 1000.0).is_err());
    }

    #[test]
    fn white_noise_density_is_flat_at_sigma_squared_over_half_fs() {
        let fs = 10_000.0;
        let sigma = 0.5;
        let x = gaussian_like(200_000, sigma, 42);
        let psd = WelchConfig::new(1024).unwrap().estimate(&x, fs).unwrap();
        // Expected one-sided density: σ²/(fs/2).
        let expected = sigma * sigma / (fs / 2.0);
        // Average density across interior bins.
        let d = psd.density();
        let avg: f64 = d[1..d.len() - 1].iter().sum::<f64>() / (d.len() - 2) as f64;
        assert!(
            (avg - expected).abs() / expected < 0.05,
            "avg {avg} vs expected {expected}"
        );
        // Total power recovers the variance.
        assert!((psd.total_power() - sigma * sigma).abs() / (sigma * sigma) < 0.05);
    }

    #[test]
    fn tone_power_recovered_with_enbw_correction() {
        let fs = 8192.0;
        let n = 1 << 16;
        let nseg = 1024;
        let k0 = 128; // within each segment: 128·(fs/1024) = 1024 Hz
        let f0 = k0 as f64 * fs / nseg as f64;
        let amp = 0.3;
        let x: Vec<f64> = (0..n)
            .map(|j| amp * (2.0 * PI * f0 * j as f64 / fs).sin())
            .collect();
        let psd = WelchConfig::new(nseg).unwrap().estimate(&x, fs).unwrap();
        // Main-lobe sum recovers the tone power without any window
        // correction (see the periodogram tests for the single-bin form).
        let p = psd.tone_power(k0, 3).unwrap();
        assert!(
            (p - amp * amp / 2.0).abs() / (amp * amp / 2.0) < 0.05,
            "tone power {p}"
        );
    }

    #[test]
    fn averaging_reduces_variance() {
        let fs = 1000.0;
        let x = gaussian_like(64 * 256, 1.0, 7);
        let one_seg = WelchConfig::new(4096).unwrap().estimate(&x, fs).unwrap();
        let many_seg = WelchConfig::new(256).unwrap().estimate(&x, fs).unwrap();
        let spread = |s: &Spectrum| {
            let d = s.density();
            let m = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / d.len() as f64 / (m * m)
        };
        assert!(
            spread(&many_seg) < spread(&one_seg) / 4.0,
            "averaging did not reduce relative variance"
        );
    }

    #[test]
    fn workspace_path_is_bit_identical_to_allocating_path() {
        let fs = 20_000.0;
        let x = gaussian_like(30_000, 1.0, 99);
        let mut ws = DspWorkspace::new();
        for nfft in [1_024usize, 1_000] {
            for detrend in [false, true] {
                let cfg = WelchConfig::new(nfft)
                    .unwrap()
                    .window(Window::Hann)
                    .detrend(detrend);
                let alloc = cfg.estimate(&x, fs).unwrap();
                let reused = cfg.estimate_with(&x, fs, &mut ws).unwrap();
                assert_eq!(alloc, reused, "nfft {nfft} detrend {detrend}");
                // Second pass over the now-warm workspace: still identical.
                let again = cfg.estimate_with(&x, fs, &mut ws).unwrap();
                assert_eq!(alloc, again);
            }
        }
        assert_eq!(ws.plan_count(), 2, "one plan per (size, window)");
    }

    #[test]
    fn estimate_into_validates_output_length() {
        let x = gaussian_like(4_096, 1.0, 5);
        let cfg = WelchConfig::new(512).unwrap();
        let mut ws = DspWorkspace::new();
        let mut bad = vec![0.0; 512 / 2];
        assert!(cfg.estimate_into(&x, 1_000.0, &mut ws, &mut bad).is_err());
        let mut good = vec![0.0; 512 / 2 + 1];
        cfg.estimate_into(&x, 1_000.0, &mut ws, &mut good).unwrap();
        assert_eq!(good, cfg.estimate(&x, 1_000.0).unwrap().density());
    }

    #[test]
    fn non_power_of_two_segments() {
        let x = gaussian_like(50_000, 1.0, 3);
        let psd = WelchConfig::new(10_00)
            .unwrap()
            .estimate(&x, 5000.0)
            .unwrap();
        assert_eq!(psd.len(), 501);
        assert!((psd.total_power() - 1.0).abs() < 0.1);
    }
}
