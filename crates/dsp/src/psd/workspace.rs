//! Reusable DSP scratch state for allocation-free PSD estimation.
//!
//! The paper's hot path runs the same Welch analysis (10⁴-point
//! segments over 10⁶-sample records) on every acquisition of every
//! repeat of every experiment cell. Re-planning the FFT and
//! reallocating the segment/spectrum/accumulator buffers per call is
//! pure waste, so [`DspWorkspace`] caches a [`PsdPlan`] per
//! `(fft size, window)` pair and the estimators thread one workspace
//! through all of their estimates:
//!
//! ```
//! use nfbist_dsp::psd::{DspWorkspace, WelchConfig};
//!
//! # fn main() -> Result<(), nfbist_dsp::DspError> {
//! let x: Vec<f64> = (0..8192).map(|n| (n as f64 * 0.37).sin()).collect();
//! let cfg = WelchConfig::new(1024)?;
//! let mut ws = DspWorkspace::new();
//! let first = cfg.estimate_with(&x, 10_000.0, &mut ws)?; // plans + allocates once
//! let second = cfg.estimate_with(&x, 10_000.0, &mut ws)?; // reuses everything
//! assert_eq!(first, second);
//! assert_eq!(ws.plan_count(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! For a fully allocation-free steady state use
//! [`WelchConfig::estimate_into`](crate::psd::WelchConfig::estimate_into),
//! which also writes the output densities into caller-owned scratch.

use crate::complex::Complex64;
use crate::psd::AnyFft;
use crate::window::Window;
use crate::DspError;

/// A cached, reusable analysis plan for one `(fft size, window)` pair:
/// the planned FFT, the window coefficients and their power sum, and
/// every scratch buffer the segment loop needs.
///
/// Obtained from [`DspWorkspace::plan`]; the estimation entry points
/// ([`WelchConfig::estimate_with`](crate::psd::WelchConfig::estimate_with)
/// and friends) use it internally.
#[derive(Debug)]
pub struct PsdPlan {
    pub(crate) fft: AnyFft,
    window: Window,
    /// Window coefficients, length `n`.
    pub(crate) coeffs: Vec<f64>,
    /// `U = Σw²`, the PSD normalization denominator.
    pub(crate) window_power: f64,
    /// Windowed-segment staging buffer, length `n` (densities
    /// accumulate straight into the caller's output, so no separate
    /// accumulator lives here).
    pub(crate) seg: Vec<f64>,
    /// Complex spectrum buffer: the one-sided `n/2 + 1` bins for
    /// power-of-two sizes (packed real FFT), the full `n` bins for
    /// Bluestein sizes.
    pub(crate) spec: Vec<Complex64>,
    /// FFT-internal scratch (empty for the packed real engine, the
    /// convolution length for Bluestein sizes).
    pub(crate) scratch: Vec<Complex64>,
}

impl PsdPlan {
    fn new(n: usize, window: Window) -> Result<Self, DspError> {
        let fft = AnyFft::new(n)?;
        let coeffs = window.coefficients(n);
        let window_power: f64 = coeffs.iter().map(|w| w * w).sum();
        let scratch = vec![Complex64::ZERO; fft.scratch_len()];
        let spec = vec![Complex64::ZERO; fft.spectrum_len()];
        Ok(PsdPlan {
            fft,
            window,
            coeffs,
            window_power,
            seg: vec![0.0; n],
            spec,
            scratch,
        })
    }

    /// The planned FFT / segment length.
    pub fn size(&self) -> usize {
        self.seg.len()
    }

    /// The analysis window the plan was built for.
    pub fn window(&self) -> Window {
        self.window
    }
}

/// A cache of [`PsdPlan`]s keyed by `(fft size, window)`.
///
/// Holding one workspace across repeated estimates makes the Welch /
/// periodogram steady state allocation-free: planning and buffer
/// allocation happen on the first call for a given size and are
/// amortized over every later call. The workspace is deliberately
/// `!Sync`-by-use (methods take `&mut self`); share one per thread, or
/// guard it with a mutex when a `Sync` estimator needs interior
/// mutability.
#[derive(Debug, Default)]
pub struct DspWorkspace {
    plans: Vec<PsdPlan>,
    /// Reusable real-sample staging buffer for callers that must
    /// expand a packed record (e.g. a ±1 bitstream) before estimating;
    /// moved out/in with [`DspWorkspace::take_record_buf`] /
    /// [`DspWorkspace::return_record_buf`] so its capacity survives
    /// across estimates without fighting the borrow on the plan cache.
    record_buf: Option<Vec<f64>>,
}

impl DspWorkspace {
    /// Creates an empty workspace (no plans until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the reusable record staging buffer out of the workspace
    /// (an empty vector on first use). Callers resize and fill it,
    /// run their estimates — the workspace stays borrowable because
    /// the buffer is owned, not borrowed — and hand it back with
    /// [`DspWorkspace::return_record_buf`] so the steady state
    /// allocates nothing.
    pub fn take_record_buf(&mut self) -> Vec<f64> {
        self.record_buf.take().unwrap_or_default()
    }

    /// Returns a buffer taken with [`DspWorkspace::take_record_buf`],
    /// preserving its capacity for the next estimate.
    pub fn return_record_buf(&mut self, buf: Vec<f64>) {
        self.record_buf = Some(buf);
    }

    /// Returns the cached plan for `(n, window)`, building it on first
    /// use.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFftSize`] for `n == 0`.
    pub fn plan(&mut self, n: usize, window: Window) -> Result<&mut PsdPlan, DspError> {
        // Linear scan: a workspace holds a handful of plans at most,
        // and `Window` carries an `f64` parameter (Kaiser) that rules
        // out a hash key.
        if let Some(i) = self
            .plans
            .iter()
            .position(|p| p.size() == n && p.window() == window)
        {
            return Ok(&mut self.plans[i]);
        }
        self.plans.push(PsdPlan::new(n, window)?);
        Ok(self.plans.last_mut().expect("just pushed"))
    }

    /// Number of distinct plans currently cached.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_cached_per_size_and_window() {
        let mut ws = DspWorkspace::new();
        ws.plan(256, Window::Hann).unwrap();
        ws.plan(256, Window::Hann).unwrap();
        assert_eq!(ws.plan_count(), 1);
        ws.plan(512, Window::Hann).unwrap();
        ws.plan(256, Window::Rectangular).unwrap();
        assert_eq!(ws.plan_count(), 3);
        // Kaiser windows with different β are distinct plans.
        ws.plan(256, Window::Kaiser(4.0)).unwrap();
        ws.plan(256, Window::Kaiser(4.0)).unwrap();
        ws.plan(256, Window::Kaiser(8.0)).unwrap();
        assert_eq!(ws.plan_count(), 5);
    }

    #[test]
    fn plan_buffers_match_fft_requirements() {
        let mut ws = DspWorkspace::new();
        // Power of two: no Bluestein scratch, one-sided spectrum only.
        let p = ws.plan(1024, Window::Hann).unwrap();
        assert_eq!(p.size(), 1024);
        assert_eq!(p.scratch.len(), 0);
        assert_eq!(p.spec.len(), 513);
        // The paper's 10⁴-point size goes through Bluestein, which
        // needs the full spectrum buffer.
        let p = ws.plan(10_000, Window::Hann).unwrap();
        assert!(p.scratch.len() >= 2 * 10_000 - 1);
        assert_eq!(p.spec.len(), 10_000);
        assert_eq!(p.window(), Window::Hann);
    }

    #[test]
    fn record_buf_round_trips_with_capacity() {
        let mut ws = DspWorkspace::new();
        let mut buf = ws.take_record_buf();
        assert!(buf.is_empty());
        buf.resize(4_096, 0.5);
        let cap = buf.capacity();
        ws.return_record_buf(buf);
        let again = ws.take_record_buf();
        assert_eq!(again.capacity(), cap);
        assert_eq!(again.len(), 4_096);
        ws.return_record_buf(again);
    }

    #[test]
    fn zero_size_rejected() {
        assert!(DspWorkspace::new().plan(0, Window::Hann).is_err());
    }
}
