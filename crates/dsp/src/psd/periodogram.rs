//! Single-segment (modified) periodogram.

use crate::psd::{one_sided_density_accumulate, DspWorkspace};
use crate::simd::{self, SimdPolicy};
use crate::spectrum::Spectrum;
use crate::window::Window;
use crate::DspError;

/// Configuration for a modified periodogram.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::psd::PeriodogramConfig;
/// use nfbist_dsp::window::Window;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x = vec![1.0; 256];
/// let psd = PeriodogramConfig::new()
///     .window(Window::Rectangular)
///     .estimate(&x, 1000.0)?;
/// // All power of a DC signal lands in bin 0.
/// assert!(psd.density()[0] > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PeriodogramConfig {
    window: Window,
    detrend: bool,
    simd: SimdPolicy,
}

impl PeriodogramConfig {
    /// Default configuration: rectangular window, no detrending.
    pub fn new() -> Self {
        PeriodogramConfig {
            window: Window::Rectangular,
            detrend: false,
            simd: SimdPolicy::Exact,
        }
    }

    /// Selects the analysis window.
    pub fn window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Enables mean removal before windowing. Useful when a DC offset
    /// would otherwise leak into low bins through the window skirts.
    pub fn detrend(mut self, on: bool) -> Self {
        self.detrend = on;
        self
    }

    /// Selects the SIMD reduction policy (default
    /// [`SimdPolicy::Exact`]; only the detrend mean is affected — see
    /// [`crate::simd`]).
    pub fn simd(mut self, policy: SimdPolicy) -> Self {
        self.simd = policy;
        self
    }

    /// Computes the periodogram of `x` at `sample_rate` Hz; the FFT length
    /// equals `x.len()` (any size — Bluestein handles non-powers of two).
    ///
    /// Plans the FFT per call; steady-state code should hold a
    /// [`DspWorkspace`] and use [`PeriodogramConfig::estimate_with`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty buffer and
    /// [`DspError::InvalidParameter`] for a non-positive sample rate.
    pub fn estimate(&self, x: &[f64], sample_rate: f64) -> Result<Spectrum, DspError> {
        self.estimate_with(x, sample_rate, &mut DspWorkspace::new())
    }

    /// Computes the periodogram reusing the plans and scratch buffers of
    /// `workspace`; only the returned [`Spectrum`]'s density vector is
    /// allocated. When no detrend or windowing copy is required
    /// (rectangular window, detrend off) the input is transformed
    /// directly, without staging it through the segment buffer.
    ///
    /// # Errors
    ///
    /// Same as [`PeriodogramConfig::estimate`].
    pub fn estimate_with(
        &self,
        x: &[f64],
        sample_rate: f64,
        workspace: &mut DspWorkspace,
    ) -> Result<Spectrum, DspError> {
        let n = x.len();
        let mut out = vec![0.0f64; n / 2 + 1];
        self.estimate_into(x, sample_rate, workspace, &mut out)?;
        Spectrum::new(out, sample_rate, n)
    }

    /// The fully allocation-free periodogram: writes the one-sided
    /// densities into the caller-owned `out` (length `x.len()/2 + 1`).
    ///
    /// # Errors
    ///
    /// Same as [`PeriodogramConfig::estimate`], plus
    /// [`DspError::LengthMismatch`] for a wrongly sized `out`.
    pub fn estimate_into(
        &self,
        x: &[f64],
        sample_rate: f64,
        workspace: &mut DspWorkspace,
        out: &mut [f64],
    ) -> Result<(), DspError> {
        if x.is_empty() {
            return Err(DspError::EmptyInput {
                context: "periodogram",
            });
        }
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        let n = x.len();
        if out.len() != n / 2 + 1 {
            return Err(DspError::LengthMismatch {
                expected: n / 2 + 1,
                actual: out.len(),
                context: "periodogram estimate_into (output)",
            });
        }
        let plan = workspace.plan(n, self.window)?;
        // The rectangular, no-detrend case needs no per-sample rewrite,
        // so the input feeds the FFT directly instead of being copied
        // into the segment buffer first.
        let src: &[f64] = if self.detrend || self.window != Window::Rectangular {
            plan.seg.copy_from_slice(x);
            if self.detrend {
                let mu = simd::sum(&plan.seg, self.simd) / n as f64;
                simd::subtract_scalar(&mut plan.seg, mu);
            }
            simd::apply_window(&mut plan.seg, &plan.coeffs);
            &plan.seg
        } else {
            x
        };
        plan.fft
            .forward_real_into(src, &mut plan.scratch, &mut plan.spec)?;
        out.fill(0.0);
        one_sided_density_accumulate(
            &plan.spec[..n / 2 + 1],
            n,
            sample_rate,
            plan.window_power,
            out,
        );
        Ok(())
    }
}

impl Default for PeriodogramConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience wrapper: rectangular-window periodogram of `x`.
///
/// # Errors
///
/// Same as [`PeriodogramConfig::estimate`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<f64> = (0..128).map(|n| (n as f64 * 0.3).sin()).collect();
/// let psd = nfbist_dsp::psd::periodogram(&x, 1000.0)?;
/// assert_eq!(psd.len(), 65);
/// # Ok(())
/// # }
/// ```
pub fn periodogram(x: &[f64], sample_rate: f64) -> Result<Spectrum, DspError> {
    PeriodogramConfig::new().estimate(x, sample_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn empty_and_bad_rate_rejected() {
        assert!(periodogram(&[], 1000.0).is_err());
        assert!(periodogram(&[1.0], 0.0).is_err());
        assert!(periodogram(&[1.0], -1.0).is_err());
    }

    #[test]
    fn parseval_total_power_equals_mean_square() {
        let n = 512;
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.17).sin() + 0.5).collect();
        let psd = periodogram(&x, 2000.0).unwrap();
        let ms = crate::stats::mean_square(&x).unwrap();
        assert!(
            (psd.total_power() - ms).abs() / ms < 1e-9,
            "{} vs {}",
            psd.total_power(),
            ms
        );
    }

    #[test]
    fn bin_centred_tone_power() {
        let n = 1024;
        let fs = 1024.0;
        let k0 = 100;
        let amp = 2.0;
        let x: Vec<f64> = (0..n)
            .map(|j| amp * (2.0 * PI * k0 as f64 * j as f64 / n as f64).sin())
            .collect();
        let psd = periodogram(&x, fs).unwrap();
        // Tone power = amp²/2.
        let p = psd.tone_power(k0, 1).unwrap();
        assert!((p - amp * amp / 2.0).abs() < 1e-9, "tone power {p}");
    }

    #[test]
    fn hann_window_preserves_tone_power_with_skirt() {
        let n = 1024;
        let fs = 1024.0;
        let k0 = 100;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * PI * k0 as f64 * j as f64 / n as f64).sin())
            .collect();
        let psd = PeriodogramConfig::new()
            .window(Window::Hann)
            .estimate(&x, fs)
            .unwrap();
        // Summing PSD·Δf over the tone's main lobe recovers the tone
        // power directly (the window normalization cancels).
        let p = psd.tone_power(k0, 2).unwrap();
        assert!((p - 0.5).abs() < 0.01, "main-lobe tone power {p}");
        // Reading only the single peak bin instead requires the ENBW
        // correction.
        let single = psd.tone_power(k0, 0).unwrap() * Window::Hann.enbw_bins(n);
        assert!(
            (single - 0.5).abs() < 0.01,
            "enbw-corrected single bin {single}"
        );
    }

    #[test]
    fn detrend_removes_dc() {
        let x = vec![5.0; 256];
        let psd = PeriodogramConfig::new()
            .detrend(true)
            .estimate(&x, 1000.0)
            .unwrap();
        assert!(psd.total_power() < 1e-20);
    }

    #[test]
    fn workspace_path_is_bit_identical_to_allocating_path() {
        let x: Vec<f64> = (0..600).map(|j| (j as f64 * 0.13).sin() + 0.2).collect();
        let mut ws = DspWorkspace::new();
        for window in [Window::Rectangular, Window::Hann] {
            for detrend in [false, true] {
                let cfg = PeriodogramConfig::new().window(window).detrend(detrend);
                let alloc = cfg.estimate(&x, 1_200.0).unwrap();
                let reused = cfg.estimate_with(&x, 1_200.0, &mut ws).unwrap();
                assert_eq!(alloc, reused, "window {window:?} detrend {detrend}");
            }
        }
        assert_eq!(ws.plan_count(), 2);
        // Wrongly sized output buffer rejected.
        let mut bad = vec![0.0; 600 / 2];
        assert!(PeriodogramConfig::new()
            .estimate_into(&x, 1_200.0, &mut ws, &mut bad)
            .is_err());
    }

    #[test]
    fn non_power_of_two_length() {
        let n = 300;
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.21).cos()).collect();
        let psd = periodogram(&x, 600.0).unwrap();
        assert_eq!(psd.len(), 151);
        let ms = crate::stats::mean_square(&x).unwrap();
        assert!((psd.total_power() - ms).abs() / ms < 1e-8);
    }
}
