//! Power spectral density estimation.
//!
//! [`periodogram`] computes a single modified periodogram; [`WelchConfig`]
//! implements Welch's method of averaged, overlapped, windowed segments —
//! the estimator the paper's Matlab processing corresponds to (10⁶-sample
//! acquisitions split into 10⁴-point FFTs).
//!
//! Scaling follows the usual one-sided density convention: for a window
//! `w` with `U = Σw²`, the one-sided PSD is `|X[k]|²/(fs·U)` doubled on
//! all bins except DC and Nyquist. White noise of variance σ² then shows a
//! flat density of `σ²/(fs/2)`, and `Spectrum::total_power` recovers σ².

mod periodogram;
mod streaming;
mod welch;
mod workspace;

pub use periodogram::{periodogram, PeriodogramConfig};
pub use streaming::{ForgettingWelch, SlidingWelch, StreamingWelch};
pub use welch::WelchConfig;
pub use workspace::{DspWorkspace, PsdPlan};

use crate::complex::Complex64;
use crate::fft::{ArbitraryFft, RealFft};
use crate::DspError;

/// Internal dispatch between the packed real-FFT and Bluestein
/// engines, so PSD code accepts any FFT length (the paper uses 10⁴).
///
/// Power-of-two sizes run through [`RealFft`] — half the butterfly
/// work and only the `N/2 + 1` one-sided bins ever materialized; other
/// sizes fall back to Bluestein's full complex spectrum, of which the
/// density pass reads the non-redundant half.
#[derive(Debug, Clone)]
pub(crate) enum AnyFft {
    Pow2(RealFft),
    Arbitrary(ArbitraryFft),
}

impl AnyFft {
    pub(crate) fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::InvalidFftSize {
                size: n,
                reason: "fft size must be nonzero",
            });
        }
        if n.is_power_of_two() {
            Ok(AnyFft::Pow2(RealFft::new(n)?))
        } else {
            Ok(AnyFft::Arbitrary(ArbitraryFft::new(n)?))
        }
    }

    #[cfg(test)]
    pub(crate) fn size(&self) -> usize {
        match self {
            AnyFft::Pow2(f) => f.size(),
            AnyFft::Arbitrary(f) => f.size(),
        }
    }

    /// Scratch length the `_into` transform needs (0 for the packed
    /// real engine, the convolution length for Bluestein).
    pub(crate) fn scratch_len(&self) -> usize {
        match self {
            AnyFft::Pow2(_) => 0,
            AnyFft::Arbitrary(f) => f.scratch_len(),
        }
    }

    /// Length of the spectrum buffer this engine writes: the one-sided
    /// `n/2 + 1` bins for the real engine, the full `n` bins for
    /// Bluestein.
    pub(crate) fn spectrum_len(&self) -> usize {
        match self {
            AnyFft::Pow2(f) => f.output_len(),
            AnyFft::Arbitrary(f) => f.size(),
        }
    }

    /// Transforms a real buffer into `out` (length
    /// [`AnyFft::spectrum_len`]) without allocating; `scratch` must be
    /// [`AnyFft::scratch_len`] elements long. In both cases
    /// `out[..n/2 + 1]` holds the one-sided bins afterwards.
    pub(crate) fn forward_real_into(
        &self,
        x: &[f64],
        scratch: &mut [Complex64],
        out: &mut [Complex64],
    ) -> Result<(), DspError> {
        match self {
            AnyFft::Pow2(f) => f.forward_into(x, out),
            AnyFft::Arbitrary(f) => f.forward_real_into(x, scratch, out),
        }
    }
}

/// Converts a full complex spectrum of a real signal into one-sided PSD
/// densities with the scaling described in the module docs (test-only
/// wrapper over [`one_sided_density_accumulate`], which the estimators
/// use directly).
#[cfg(test)]
pub(crate) fn one_sided_density(
    spec: &[Complex64],
    sample_rate: f64,
    window_power: f64,
) -> Vec<f64> {
    let n = spec.len();
    let mut out = vec![0.0; n / 2 + 1];
    one_sided_density_accumulate(&spec[..n / 2 + 1], n, sample_rate, window_power, &mut out);
    out
}

/// Adds the one-sided densities of the `nfft/2 + 1` non-redundant bins
/// in `spec` onto `acc` (the Welch segment-averaging inner loop,
/// allocation-free). `spec` and `acc` must both hold `nfft/2 + 1`
/// entries — for the packed real engine that is the whole spectrum
/// buffer, for Bluestein the caller passes the lower half of the full
/// spectrum.
pub(crate) fn one_sided_density_accumulate(
    spec: &[Complex64],
    nfft: usize,
    sample_rate: f64,
    window_power: f64,
    acc: &mut [f64],
) {
    let half = nfft / 2 + 1;
    debug_assert_eq!(spec.len(), half);
    debug_assert_eq!(acc.len(), half);
    let base = 1.0 / (sample_rate * window_power);
    // Dispatched kernel: bit-identical across arms (DC/Nyquist handled
    // scalar inside; interior bins run 4 per register on AVX2).
    crate::simd::accumulate_one_sided(spec, nfft, base, acc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_fft_dispatch() {
        assert!(matches!(AnyFft::new(1024).unwrap(), AnyFft::Pow2(_)));
        assert!(matches!(AnyFft::new(10_000).unwrap(), AnyFft::Arbitrary(_)));
        assert!(AnyFft::new(0).is_err());
        assert_eq!(AnyFft::new(10_000).unwrap().size(), 10_000);
    }

    #[test]
    fn one_sided_density_doubles_interior_bins() {
        // Spectrum of all-ones magnitude, N=8.
        let spec = vec![Complex64::ONE; 8];
        let d = one_sided_density(&spec, 1.0, 1.0);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], 1.0); // DC not doubled
        assert_eq!(d[4], 1.0); // Nyquist not doubled
        for &v in &d[1..4] {
            assert_eq!(v, 2.0);
        }
    }

    #[test]
    fn one_sided_density_odd_length_has_no_nyquist() {
        let spec = vec![Complex64::ONE; 7];
        let d = one_sided_density(&spec, 1.0, 1.0);
        assert_eq!(d.len(), 4);
        assert_eq!(d[0], 1.0);
        for &v in &d[1..4] {
            assert_eq!(v, 2.0);
        }
    }
}
