//! Power spectral density estimation.
//!
//! [`periodogram`] computes a single modified periodogram; [`WelchConfig`]
//! implements Welch's method of averaged, overlapped, windowed segments —
//! the estimator the paper's Matlab processing corresponds to (10⁶-sample
//! acquisitions split into 10⁴-point FFTs).
//!
//! Scaling follows the usual one-sided density convention: for a window
//! `w` with `U = Σw²`, the one-sided PSD is `|X[k]|²/(fs·U)` doubled on
//! all bins except DC and Nyquist. White noise of variance σ² then shows a
//! flat density of `σ²/(fs/2)`, and `Spectrum::total_power` recovers σ².

mod periodogram;
mod welch;

pub use periodogram::{periodogram, PeriodogramConfig};
pub use welch::WelchConfig;

use crate::complex::Complex64;
use crate::fft::{ArbitraryFft, Fft};
use crate::DspError;

/// Internal dispatch between the radix-2 and Bluestein engines, so PSD
/// code accepts any FFT length (the paper uses 10⁴).
#[derive(Debug, Clone)]
pub(crate) enum AnyFft {
    Pow2(Fft),
    Arbitrary(ArbitraryFft),
}

impl AnyFft {
    pub(crate) fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::InvalidFftSize {
                size: n,
                reason: "fft size must be nonzero",
            });
        }
        if n.is_power_of_two() {
            Ok(AnyFft::Pow2(Fft::new(n)?))
        } else {
            Ok(AnyFft::Arbitrary(ArbitraryFft::new(n)?))
        }
    }

    #[cfg(test)]
    pub(crate) fn size(&self) -> usize {
        match self {
            AnyFft::Pow2(f) => f.size(),
            AnyFft::Arbitrary(f) => f.size(),
        }
    }

    pub(crate) fn forward_real(&self, x: &[f64]) -> Result<Vec<Complex64>, DspError> {
        match self {
            AnyFft::Pow2(f) => f.forward_real(x),
            AnyFft::Arbitrary(f) => f.forward_real(x),
        }
    }
}

/// Converts a full complex spectrum of a real signal into one-sided PSD
/// densities with the scaling described in the module docs.
pub(crate) fn one_sided_density(
    spec: &[Complex64],
    sample_rate: f64,
    window_power: f64,
) -> Vec<f64> {
    let n = spec.len();
    let half = n / 2 + 1;
    let base = 1.0 / (sample_rate * window_power);
    let mut out = Vec::with_capacity(half);
    for (k, z) in spec.iter().take(half).enumerate() {
        let mut d = z.norm_sqr() * base;
        let is_dc = k == 0;
        let is_nyquist = n.is_multiple_of(2) && k == n / 2;
        if !is_dc && !is_nyquist {
            d *= 2.0;
        }
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_fft_dispatch() {
        assert!(matches!(AnyFft::new(1024).unwrap(), AnyFft::Pow2(_)));
        assert!(matches!(AnyFft::new(10_000).unwrap(), AnyFft::Arbitrary(_)));
        assert!(AnyFft::new(0).is_err());
        assert_eq!(AnyFft::new(10_000).unwrap().size(), 10_000);
    }

    #[test]
    fn one_sided_density_doubles_interior_bins() {
        // Spectrum of all-ones magnitude, N=8.
        let spec = vec![Complex64::ONE; 8];
        let d = one_sided_density(&spec, 1.0, 1.0);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], 1.0); // DC not doubled
        assert_eq!(d[4], 1.0); // Nyquist not doubled
        for &v in &d[1..4] {
            assert_eq!(v, 2.0);
        }
    }

    #[test]
    fn one_sided_density_odd_length_has_no_nyquist() {
        let spec = vec![Complex64::ONE; 7];
        let d = one_sided_density(&spec, 1.0, 1.0);
        assert_eq!(d.len(), 4);
        assert_eq!(d[0], 1.0);
        for &v in &d[1..4] {
            assert_eq!(v, 2.0);
        }
    }
}
