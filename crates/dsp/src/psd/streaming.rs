//! Chunked Welch estimation with bounded memory.
//!
//! The batch estimator ([`WelchConfig::estimate`]) needs the whole
//! record in RAM, which caps acquisition length at memory. In the real
//! hardware the correlator integrates on the fly — record length is a
//! *time* cost, not a *memory* cost — and [`StreamingWelch`] restores
//! that property to the simulation: samples arrive in chunks of any
//! size, segments straddling chunk boundaries are reassembled through a
//! carry buffer, and the finalized [`Spectrum`] is **bitwise identical**
//! to the batch estimator run over the concatenated record (both paths
//! run the same segment kernel, in the same order, with one final
//! scaling — there is no numerical reordering to drift on).
//!
//! Steady-state memory is `O(segment)`: the carry buffer never exceeds
//! one segment, the accumulator holds the one-sided bin count, and the
//! FFT plan is the same one the batch path caches. After the first few
//! pushes have grown the buffers, pushing further chunks performs no
//! heap allocation at all (enforced by `crates/dsp/tests/alloc_free.rs`).

use crate::psd::welch::accumulate_segment;
use crate::psd::{DspWorkspace, WelchConfig};
use crate::spectrum::Spectrum;
use crate::DspError;

/// A push-based Welch accumulator over a conceptually unbounded record.
///
/// Feed chunks with [`StreamingWelch::push`]; read the running estimate
/// at any point with [`StreamingWelch::finalize`] (non-destructive, so
/// a monitor can poll a live estimate mid-acquisition).
///
/// # Examples
///
/// ```
/// use nfbist_dsp::psd::{StreamingWelch, WelchConfig};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<f64> = (0..8192).map(|n| (n as f64 * 0.37).sin()).collect();
/// let cfg = WelchConfig::new(1024)?;
///
/// // Batch reference.
/// let batch = cfg.estimate(&x, 10_000.0)?;
///
/// // Same record pushed in odd-sized chunks: bitwise identical.
/// let mut sw = StreamingWelch::new(cfg, 10_000.0)?;
/// for chunk in x.chunks(777) {
///     sw.push(chunk)?;
/// }
/// assert_eq!(sw.finalize()?, batch);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingWelch {
    config: WelchConfig,
    sample_rate: f64,
    workspace: DspWorkspace,
    /// Samples waiting for enough successors to complete a segment
    /// (global positions `[consumed, consumed + carry.len())`). Never
    /// grows beyond one segment length.
    carry: Vec<f64>,
    /// Un-normalized density accumulator (`segment_len/2 + 1` bins).
    accum: Vec<f64>,
    segments: usize,
    pushed: usize,
}

impl StreamingWelch {
    /// Creates an accumulator for `config` at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for a non-positive sample
    /// rate.
    pub fn new(config: WelchConfig, sample_rate: f64) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        let n = config.segment_len();
        Ok(StreamingWelch {
            config,
            sample_rate,
            workspace: DspWorkspace::new(),
            carry: Vec::with_capacity(n),
            accum: vec![0.0; n / 2 + 1],
            segments: 0,
            pushed: 0,
        })
    }

    /// The Welch configuration being accumulated.
    pub fn config(&self) -> &WelchConfig {
        &self.config
    }

    /// The sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Total samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Segments averaged so far.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Appends a chunk of samples (any length, including empty).
    ///
    /// Every segment completed by the chunk is processed immediately —
    /// the chunk itself is never retained beyond the at-most-one-segment
    /// carry.
    ///
    /// # Errors
    ///
    /// Propagates FFT/plan errors (which cannot occur for a validated
    /// configuration, but the signature stays honest).
    pub fn push(&mut self, chunk: &[f64]) -> Result<(), DspError> {
        let n = self.config.segment_len();
        let hop = self.config.hop();
        let detrend = self.config.detrend_enabled();
        let policy = self.config.simd_policy();
        let plan = self.workspace.plan(n, self.config.window_kind())?;
        let mut rest = chunk;
        loop {
            // Top the carry up to exactly one segment.
            let need = n - self.carry.len();
            let take = need.min(rest.len());
            self.carry.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.carry.len() < n {
                break;
            }
            accumulate_segment(
                plan,
                detrend,
                policy,
                self.sample_rate,
                &self.carry,
                &mut self.accum,
            )?;
            self.segments += 1;
            // Advance by one hop; the overlap tail stays for the next
            // segment. `drain` shifts in place — no allocation.
            self.carry.drain(..hop.min(self.carry.len()));
        }
        self.pushed += chunk.len();
        Ok(())
    }

    /// The running estimate: mean of the accumulated segment densities,
    /// exactly as the batch estimator would scale them.
    ///
    /// Non-destructive — more chunks may be pushed afterwards and the
    /// estimate re-read.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] before the first complete
    /// segment (mirroring the batch estimator's "input shorter than one
    /// segment").
    pub fn finalize(&self) -> Result<Spectrum, DspError> {
        let mut out = vec![0.0f64; self.accum.len()];
        self.finalize_into(&mut out)?;
        Spectrum::new(out, self.sample_rate, self.config.segment_len())
    }

    /// [`StreamingWelch::finalize`] into a caller-owned buffer of
    /// `segment_len/2 + 1` densities (no allocation).
    ///
    /// # Errors
    ///
    /// Same as [`StreamingWelch::finalize`], plus
    /// [`DspError::LengthMismatch`] for a wrongly sized `out`.
    pub fn finalize_into(&self, out: &mut [f64]) -> Result<(), DspError> {
        if out.len() != self.accum.len() {
            return Err(DspError::LengthMismatch {
                expected: self.accum.len(),
                actual: out.len(),
                context: "streaming welch finalize (output)",
            });
        }
        if self.segments == 0 {
            return Err(DspError::EmptyInput {
                context: "streaming welch (input shorter than one segment)",
            });
        }
        let inv = 1.0 / self.segments as f64;
        for (o, a) in out.iter_mut().zip(&self.accum) {
            *o = a * inv;
        }
        Ok(())
    }

    /// Clears the accumulated state (carry, densities, counters) so the
    /// instance — and its cached FFT plan — can accumulate a fresh
    /// record.
    pub fn reset(&mut self) {
        self.carry.clear();
        self.accum.fill(0.0);
        self.segments = 0;
        self.pushed = 0;
    }
}

/// A sliding-window Welch estimator: only the last `window_segments`
/// completed segments contribute to the estimate, older segments are
/// retired as new ones arrive.
///
/// Each completed segment's one-sided density is written into its own
/// ring slot (all slots allocated at construction, so steady-state
/// pushes and finalizations allocate nothing). [`SlidingWelch::finalize`]
/// sums the retained slots oldest-to-newest and scales by the count —
/// the same left-fold the batch estimator performs — so the result is
/// **bitwise identical** to [`WelchConfig::estimate`] run over exactly
/// the retained samples (see [`SlidingWelch::retained_range`]).
///
/// # Examples
///
/// ```
/// use nfbist_dsp::psd::{SlidingWelch, WelchConfig};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<f64> = (0..8192).map(|n| (n as f64 * 0.37).sin()).collect();
/// let cfg = WelchConfig::new(1024)?;
///
/// let mut sw = SlidingWelch::new(cfg.clone(), 10_000.0, 4)?;
/// for chunk in x.chunks(777) {
///     sw.push(chunk)?;
/// }
/// // The window holds the last 4 segments; a batch estimate over the
/// // retained samples is bit-for-bit the same spectrum.
/// let (start, end) = sw.retained_range().unwrap();
/// assert_eq!(sw.finalize()?, cfg.estimate(&x[start..end], 10_000.0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SlidingWelch {
    config: WelchConfig,
    sample_rate: f64,
    workspace: DspWorkspace,
    carry: Vec<f64>,
    /// One density buffer (`segment_len/2 + 1` bins) per window slot.
    ring: Vec<Vec<f64>>,
    /// Next ring slot to overwrite; when the ring is full this is also
    /// the oldest retained segment.
    head: usize,
    /// Retained segment count, `min(seen, ring.len())`.
    filled: usize,
    /// Segments completed over the whole stream (not just retained).
    seen: usize,
    pushed: usize,
}

impl SlidingWelch {
    /// Creates a sliding estimator retaining the last `window_segments`
    /// segments.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for a non-positive sample
    /// rate or a zero-length window.
    pub fn new(
        config: WelchConfig,
        sample_rate: f64,
        window_segments: usize,
    ) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if window_segments == 0 {
            return Err(DspError::InvalidParameter {
                name: "window_segments",
                reason: "sliding window must retain at least one segment",
            });
        }
        let n = config.segment_len();
        Ok(SlidingWelch {
            config,
            sample_rate,
            workspace: DspWorkspace::new(),
            carry: Vec::with_capacity(n),
            ring: vec![vec![0.0; n / 2 + 1]; window_segments],
            head: 0,
            filled: 0,
            seen: 0,
            pushed: 0,
        })
    }

    /// The Welch configuration being accumulated.
    pub fn config(&self) -> &WelchConfig {
        &self.config
    }

    /// The sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The window capacity in segments.
    pub fn window_segments(&self) -> usize {
        self.ring.len()
    }

    /// Total samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Segments currently retained in the window.
    pub fn segments_retained(&self) -> usize {
        self.filled
    }

    /// Segments completed over the whole stream, including retired ones.
    pub fn segments_seen(&self) -> usize {
        self.seen
    }

    /// Absolute sample positions `[start, end)` of the samples the
    /// retained segments cover, or `None` before the first complete
    /// segment. A batch estimate over exactly this span of the pushed
    /// stream reproduces [`SlidingWelch::finalize`] bit for bit.
    pub fn retained_range(&self) -> Option<(usize, usize)> {
        if self.filled == 0 {
            return None;
        }
        let n = self.config.segment_len();
        let hop = self.config.hop();
        let last_start = (self.seen - 1) * hop;
        let first_start = (self.seen - self.filled) * hop;
        Some((first_start, last_start + n))
    }

    /// Appends a chunk of samples; every segment the chunk completes
    /// overwrites the oldest ring slot.
    ///
    /// # Errors
    ///
    /// Propagates FFT/plan errors (which cannot occur for a validated
    /// configuration, but the signature stays honest).
    pub fn push(&mut self, chunk: &[f64]) -> Result<(), DspError> {
        let n = self.config.segment_len();
        let hop = self.config.hop();
        let detrend = self.config.detrend_enabled();
        let policy = self.config.simd_policy();
        let plan = self.workspace.plan(n, self.config.window_kind())?;
        let mut rest = chunk;
        loop {
            let need = n - self.carry.len();
            let take = need.min(rest.len());
            self.carry.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.carry.len() < n {
                break;
            }
            let slot = &mut self.ring[self.head];
            slot.fill(0.0);
            accumulate_segment(plan, detrend, policy, self.sample_rate, &self.carry, slot)?;
            self.head = (self.head + 1) % self.ring.len();
            self.filled = (self.filled + 1).min(self.ring.len());
            self.seen += 1;
            self.carry.drain(..hop.min(self.carry.len()));
        }
        self.pushed += chunk.len();
        Ok(())
    }

    /// The windowed estimate: mean of the retained segment densities,
    /// summed oldest-to-newest exactly as the batch estimator folds its
    /// segments. Non-destructive.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] before the first complete
    /// segment.
    pub fn finalize(&self) -> Result<Spectrum, DspError> {
        let mut out = vec![0.0f64; self.config.segment_len() / 2 + 1];
        self.finalize_into(&mut out)?;
        Spectrum::new(out, self.sample_rate, self.config.segment_len())
    }

    /// [`SlidingWelch::finalize`] into a caller-owned buffer of
    /// `segment_len/2 + 1` densities (no allocation).
    ///
    /// # Errors
    ///
    /// Same as [`SlidingWelch::finalize`], plus
    /// [`DspError::LengthMismatch`] for a wrongly sized `out`.
    pub fn finalize_into(&self, out: &mut [f64]) -> Result<(), DspError> {
        let half = self.config.segment_len() / 2 + 1;
        if out.len() != half {
            return Err(DspError::LengthMismatch {
                expected: half,
                actual: out.len(),
                context: "sliding welch finalize (output)",
            });
        }
        if self.filled == 0 {
            return Err(DspError::EmptyInput {
                context: "sliding welch (input shorter than one segment)",
            });
        }
        // Oldest slot: once the ring has wrapped, `head` points at it.
        let start = if self.filled < self.ring.len() {
            0
        } else {
            self.head
        };
        out.fill(0.0);
        for k in 0..self.filled {
            let slot = &self.ring[(start + k) % self.ring.len()];
            for (o, s) in out.iter_mut().zip(slot) {
                *o += s;
            }
        }
        let inv = 1.0 / self.filled as f64;
        for o in out.iter_mut() {
            *o *= inv;
        }
        Ok(())
    }

    /// Clears the window (carry, ring, counters) keeping the cached FFT
    /// plan and the ring allocation.
    pub fn reset(&mut self) {
        self.carry.clear();
        self.head = 0;
        self.filled = 0;
        self.seen = 0;
        self.pushed = 0;
    }
}

/// An exponentially-forgetting Welch estimator: each completed segment
/// decays the running density by `lambda` before adding its own, so the
/// estimate tracks the recent past with an effective depth of about
/// `(1 + lambda) / (1 - lambda)` segments.
///
/// Segment completions happen at absolute stream positions that do not
/// depend on how the stream was chunked, so the estimate — like every
/// other streaming path in this workspace — is a pure function of the
/// pushed samples: **bit-identical across chunk sizes**.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::psd::{ForgettingWelch, WelchConfig};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<f64> = (0..8192).map(|n| (n as f64 * 0.37).sin()).collect();
/// let cfg = WelchConfig::new(1024)?;
/// let mut a = ForgettingWelch::new(cfg.clone(), 10_000.0, 0.8)?;
/// let mut b = ForgettingWelch::new(cfg, 10_000.0, 0.8)?;
/// for chunk in x.chunks(777) {
///     a.push(chunk)?;
/// }
/// b.push(&x)?;
/// assert_eq!(a.finalize()?, b.finalize()?); // chunking is invisible
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ForgettingWelch {
    config: WelchConfig,
    sample_rate: f64,
    lambda: f64,
    workspace: DspWorkspace,
    carry: Vec<f64>,
    /// Decayed density accumulator (`segment_len/2 + 1` bins).
    accum: Vec<f64>,
    /// Fresh segment density scratch, zeroed and refilled per segment.
    scratch: Vec<f64>,
    /// `Σ λ^k` over completed segments (the normalization weight).
    weight: f64,
    /// `Σ λ^{2k}`, tracked so the effective window depth is exact.
    weight_sq: f64,
    seen: usize,
    pushed: usize,
}

impl ForgettingWelch {
    /// Creates a forgetting estimator with decay factor `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for a non-positive sample
    /// rate or a `lambda` outside the open interval `(0, 1)` (at 1 the
    /// estimator degenerates to [`StreamingWelch`]).
    pub fn new(config: WelchConfig, sample_rate: f64, lambda: f64) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(DspError::InvalidParameter {
                name: "lambda",
                reason: "forgetting factor must lie in (0, 1)",
            });
        }
        let n = config.segment_len();
        Ok(ForgettingWelch {
            config,
            sample_rate,
            lambda,
            workspace: DspWorkspace::new(),
            carry: Vec::with_capacity(n),
            accum: vec![0.0; n / 2 + 1],
            scratch: vec![0.0; n / 2 + 1],
            weight: 0.0,
            weight_sq: 0.0,
            seen: 0,
            pushed: 0,
        })
    }

    /// The Welch configuration being accumulated.
    pub fn config(&self) -> &WelchConfig {
        &self.config
    }

    /// The sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The per-segment decay factor.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Total samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Segments completed over the whole stream.
    pub fn segments_seen(&self) -> usize {
        self.seen
    }

    /// The equivalent number of equally-weighted segments,
    /// `(Σλ^k)² / Σλ^{2k}` — the depth to feed a `1/√n` variance model.
    /// Grows from 1 toward `(1 + λ) / (1 - λ)` and is 0 before the
    /// first segment.
    pub fn effective_segments(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        self.weight * self.weight / self.weight_sq
    }

    /// Appends a chunk of samples; every segment the chunk completes
    /// decays the accumulator and adds its density.
    ///
    /// # Errors
    ///
    /// Propagates FFT/plan errors (which cannot occur for a validated
    /// configuration, but the signature stays honest).
    pub fn push(&mut self, chunk: &[f64]) -> Result<(), DspError> {
        let n = self.config.segment_len();
        let hop = self.config.hop();
        let detrend = self.config.detrend_enabled();
        let policy = self.config.simd_policy();
        let plan = self.workspace.plan(n, self.config.window_kind())?;
        let mut rest = chunk;
        loop {
            let need = n - self.carry.len();
            let take = need.min(rest.len());
            self.carry.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.carry.len() < n {
                break;
            }
            self.scratch.fill(0.0);
            accumulate_segment(
                plan,
                detrend,
                policy,
                self.sample_rate,
                &self.carry,
                &mut self.scratch,
            )?;
            for (a, s) in self.accum.iter_mut().zip(&self.scratch) {
                *a = self.lambda * *a + s;
            }
            self.weight = self.lambda * self.weight + 1.0;
            self.weight_sq = self.lambda * self.lambda * self.weight_sq + 1.0;
            self.seen += 1;
            self.carry.drain(..hop.min(self.carry.len()));
        }
        self.pushed += chunk.len();
        Ok(())
    }

    /// The forgetting estimate: decayed density sum over the decayed
    /// weight sum. Non-destructive.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] before the first complete
    /// segment.
    pub fn finalize(&self) -> Result<Spectrum, DspError> {
        let mut out = vec![0.0f64; self.accum.len()];
        self.finalize_into(&mut out)?;
        Spectrum::new(out, self.sample_rate, self.config.segment_len())
    }

    /// [`ForgettingWelch::finalize`] into a caller-owned buffer of
    /// `segment_len/2 + 1` densities (no allocation).
    ///
    /// # Errors
    ///
    /// Same as [`ForgettingWelch::finalize`], plus
    /// [`DspError::LengthMismatch`] for a wrongly sized `out`.
    pub fn finalize_into(&self, out: &mut [f64]) -> Result<(), DspError> {
        if out.len() != self.accum.len() {
            return Err(DspError::LengthMismatch {
                expected: self.accum.len(),
                actual: out.len(),
                context: "forgetting welch finalize (output)",
            });
        }
        if self.seen == 0 {
            return Err(DspError::EmptyInput {
                context: "forgetting welch (input shorter than one segment)",
            });
        }
        let inv = 1.0 / self.weight;
        for (o, a) in out.iter_mut().zip(&self.accum) {
            *o = a * inv;
        }
        Ok(())
    }

    /// Clears the accumulated state keeping the cached FFT plan.
    pub fn reset(&mut self) {
        self.carry.clear();
        self.accum.fill(0.0);
        self.scratch.fill(0.0);
        self.weight = 0.0;
        self.weight_sq = 0.0;
        self.seen = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Window;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn construction_validation() {
        let cfg = WelchConfig::new(64).unwrap();
        assert!(StreamingWelch::new(cfg.clone(), 0.0).is_err());
        assert!(StreamingWelch::new(cfg, 1_000.0).is_ok());
    }

    #[test]
    fn matches_batch_bitwise_for_many_chunkings() {
        let fs = 20_000.0;
        let x = noise(10_240, 7);
        for nfft in [512usize, 500] {
            for detrend in [false, true] {
                let cfg = WelchConfig::new(nfft)
                    .unwrap()
                    .window(Window::Hann)
                    .detrend(detrend);
                let batch = cfg.estimate(&x, fs).unwrap();
                for chunk in [1usize, 63, nfft / 2, nfft, nfft + 1, 3 * nfft, x.len()] {
                    let mut sw = StreamingWelch::new(cfg.clone(), fs).unwrap();
                    for c in x.chunks(chunk) {
                        sw.push(c).unwrap();
                    }
                    assert_eq!(sw.samples_pushed(), x.len());
                    assert_eq!(sw.segments(), cfg.segment_count(x.len()));
                    let streamed = sw.finalize().unwrap();
                    assert_eq!(
                        streamed, batch,
                        "nfft {nfft} detrend {detrend} chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_and_rectangular_window_also_match() {
        let fs = 8_000.0;
        let x = noise(6_000, 3);
        let cfg = WelchConfig::new(256)
            .unwrap()
            .window(Window::Rectangular)
            .overlap(0.75)
            .unwrap();
        let batch = cfg.estimate(&x, fs).unwrap();
        let mut sw = StreamingWelch::new(cfg, fs).unwrap();
        for c in x.chunks(97) {
            sw.push(c).unwrap();
        }
        assert_eq!(sw.finalize().unwrap(), batch);
    }

    #[test]
    fn finalize_is_nondestructive_and_progressive() {
        let fs = 1_000.0;
        let x = noise(4_096, 11);
        let cfg = WelchConfig::new(256).unwrap();
        let mut sw = StreamingWelch::new(cfg.clone(), fs).unwrap();
        sw.push(&x[..2_048]).unwrap();
        let mid = sw.finalize().unwrap();
        assert_eq!(mid, cfg.estimate(&x[..2_048], fs).unwrap());
        sw.push(&x[2_048..]).unwrap();
        let full = sw.finalize().unwrap();
        assert_eq!(full, cfg.estimate(&x, fs).unwrap());
    }

    #[test]
    fn empty_and_short_inputs_error_like_batch() {
        let cfg = WelchConfig::new(256).unwrap();
        let sw = StreamingWelch::new(cfg.clone(), 1_000.0).unwrap();
        assert!(sw.finalize().is_err(), "no segment yet");
        let mut sw = StreamingWelch::new(cfg, 1_000.0).unwrap();
        sw.push(&[]).unwrap();
        sw.push(&noise(255, 1)).unwrap();
        assert_eq!(sw.segments(), 0);
        assert!(sw.finalize().is_err());
        let mut out = vec![0.0; 5];
        assert!(sw.finalize_into(&mut out).is_err(), "wrong output length");
    }

    #[test]
    fn carry_stays_bounded_by_one_segment() {
        let cfg = WelchConfig::new(128).unwrap();
        let mut sw = StreamingWelch::new(cfg, 1_000.0).unwrap();
        for c in noise(10_000, 5).chunks(1_000) {
            sw.push(c).unwrap();
            assert!(sw.carry.len() < 128, "carry {}", sw.carry.len());
            assert!(sw.carry.capacity() <= 128, "capacity grew");
        }
    }

    #[test]
    fn sliding_matches_batch_over_retained_window_bitwise() {
        let fs = 20_000.0;
        let x = noise(9_000, 17);
        for nfft in [512usize, 500] {
            for window in [1usize, 3, 8] {
                let cfg = WelchConfig::new(nfft).unwrap().window(Window::Hann);
                for chunk in [1usize, 63, nfft / 2, nfft, nfft + 1, x.len()] {
                    let mut sw = SlidingWelch::new(cfg.clone(), fs, window).unwrap();
                    for c in x.chunks(chunk) {
                        sw.push(c).unwrap();
                    }
                    assert_eq!(sw.segments_seen(), cfg.segment_count(x.len()));
                    assert_eq!(
                        sw.segments_retained(),
                        window.min(cfg.segment_count(x.len()))
                    );
                    let (start, end) = sw.retained_range().unwrap();
                    let batch = cfg.estimate(&x[start..end], fs).unwrap();
                    assert_eq!(
                        sw.finalize().unwrap(),
                        batch,
                        "nfft {nfft} window {window} chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliding_window_with_overlap_matches_batch() {
        let fs = 8_000.0;
        let x = noise(6_000, 29);
        let cfg = WelchConfig::new(256)
            .unwrap()
            .window(Window::Rectangular)
            .overlap(0.75)
            .unwrap();
        let mut sw = SlidingWelch::new(cfg.clone(), fs, 5).unwrap();
        for c in x.chunks(97) {
            sw.push(c).unwrap();
        }
        let (start, end) = sw.retained_range().unwrap();
        assert_eq!(
            sw.finalize().unwrap(),
            cfg.estimate(&x[start..end], fs).unwrap()
        );
    }

    #[test]
    fn sliding_validation_and_empty_state() {
        let cfg = WelchConfig::new(128).unwrap();
        assert!(SlidingWelch::new(cfg.clone(), 0.0, 4).is_err());
        assert!(SlidingWelch::new(cfg.clone(), 1_000.0, 0).is_err());
        let sw = SlidingWelch::new(cfg, 1_000.0, 4).unwrap();
        assert!(sw.retained_range().is_none());
        assert!(sw.finalize().is_err());
        assert_eq!(sw.window_segments(), 4);
    }

    #[test]
    fn sliding_reset_reuses_the_ring() {
        let fs = 2_000.0;
        let a = noise(2_048, 31);
        let b = noise(2_048, 32);
        let cfg = WelchConfig::new(512).unwrap();
        let mut sw = SlidingWelch::new(cfg.clone(), fs, 2).unwrap();
        sw.push(&a).unwrap();
        sw.reset();
        assert_eq!(sw.segments_seen(), 0);
        for c in b.chunks(300) {
            sw.push(c).unwrap();
        }
        let (start, end) = sw.retained_range().unwrap();
        assert_eq!(
            sw.finalize().unwrap(),
            cfg.estimate(&b[start..end], fs).unwrap()
        );
    }

    #[test]
    fn forgetting_is_chunk_invariant_bitwise() {
        let fs = 20_000.0;
        let x = noise(9_000, 23);
        for nfft in [512usize, 500] {
            let cfg = WelchConfig::new(nfft).unwrap().window(Window::Hann);
            let mut reference = ForgettingWelch::new(cfg.clone(), fs, 0.7).unwrap();
            reference.push(&x).unwrap();
            let want = reference.finalize().unwrap();
            for chunk in [1usize, 63, nfft / 2, nfft, nfft + 1] {
                let mut fw = ForgettingWelch::new(cfg.clone(), fs, 0.7).unwrap();
                for c in x.chunks(chunk) {
                    fw.push(c).unwrap();
                }
                assert_eq!(fw.segments_seen(), reference.segments_seen());
                assert_eq!(fw.finalize().unwrap(), want, "nfft {nfft} chunk {chunk}");
            }
        }
    }

    #[test]
    fn forgetting_weights_and_effective_depth() {
        let fs = 1_000.0;
        let cfg = WelchConfig::new(128).unwrap();
        let lambda = 0.5f64;
        let mut fw = ForgettingWelch::new(cfg, fs, lambda).unwrap();
        assert_eq!(fw.effective_segments(), 0.0);
        fw.push(&noise(128, 1)).unwrap();
        assert_eq!(fw.segments_seen(), 1);
        assert_eq!(fw.effective_segments(), 1.0);
        // Enough segments to approach the asymptotic depth (1+λ)/(1−λ).
        fw.push(&noise(128 * 64, 2)).unwrap();
        let depth = fw.effective_segments();
        let asymptote = (1.0 + lambda) / (1.0 - lambda);
        assert!(depth > 1.0 && depth <= asymptote + 1e-9, "depth {depth}");
        assert!((depth - asymptote).abs() < 1e-6, "depth {depth}");
    }

    #[test]
    fn forgetting_tracks_a_level_shift_faster_than_cumulative() {
        // Feed quiet noise then 16x louder noise: the forgetting
        // estimator's band power must sit far closer to the loud level
        // than the cumulative average does.
        let fs = 10_000.0;
        let cfg = WelchConfig::new(256).unwrap();
        let quiet = noise(256 * 32, 5);
        let loud: Vec<f64> = noise(256 * 32, 6).iter().map(|v| v * 4.0).collect();
        let mut fw = ForgettingWelch::new(cfg.clone(), fs, 0.5).unwrap();
        let mut cumulative = StreamingWelch::new(cfg, fs).unwrap();
        for x in [&quiet, &loud] {
            fw.push(x).unwrap();
            cumulative.push(x).unwrap();
        }
        let f = fw.finalize().unwrap().total_power();
        let c = cumulative.finalize().unwrap().total_power();
        let loud_power = 16.0 / 12.0; // uniform(-2,2) variance
        assert!(
            (f - loud_power).abs() < (c - loud_power).abs() / 4.0,
            "forgetting {f} cumulative {c}"
        );
    }

    #[test]
    fn forgetting_validation() {
        let cfg = WelchConfig::new(128).unwrap();
        assert!(ForgettingWelch::new(cfg.clone(), 0.0, 0.5).is_err());
        assert!(ForgettingWelch::new(cfg.clone(), 1_000.0, 0.0).is_err());
        assert!(ForgettingWelch::new(cfg.clone(), 1_000.0, 1.0).is_err());
        assert!(ForgettingWelch::new(cfg, 1_000.0, 0.99).is_ok());
    }

    #[test]
    fn reset_reuses_the_plan_for_a_fresh_record() {
        let fs = 2_000.0;
        let a = noise(2_048, 21);
        let b = noise(2_048, 22);
        let cfg = WelchConfig::new(512).unwrap();
        let mut sw = StreamingWelch::new(cfg.clone(), fs).unwrap();
        sw.push(&a).unwrap();
        let _ = sw.finalize().unwrap();
        sw.reset();
        assert_eq!(sw.segments(), 0);
        assert_eq!(sw.samples_pushed(), 0);
        for c in b.chunks(300) {
            sw.push(c).unwrap();
        }
        assert_eq!(sw.finalize().unwrap(), cfg.estimate(&b, fs).unwrap());
        assert_eq!(sw.config().segment_len(), 512);
        assert_eq!(sw.sample_rate(), fs);
    }
}
