//! Chunked Welch estimation with bounded memory.
//!
//! The batch estimator ([`WelchConfig::estimate`]) needs the whole
//! record in RAM, which caps acquisition length at memory. In the real
//! hardware the correlator integrates on the fly — record length is a
//! *time* cost, not a *memory* cost — and [`StreamingWelch`] restores
//! that property to the simulation: samples arrive in chunks of any
//! size, segments straddling chunk boundaries are reassembled through a
//! carry buffer, and the finalized [`Spectrum`] is **bitwise identical**
//! to the batch estimator run over the concatenated record (both paths
//! run the same segment kernel, in the same order, with one final
//! scaling — there is no numerical reordering to drift on).
//!
//! Steady-state memory is `O(segment)`: the carry buffer never exceeds
//! one segment, the accumulator holds the one-sided bin count, and the
//! FFT plan is the same one the batch path caches. After the first few
//! pushes have grown the buffers, pushing further chunks performs no
//! heap allocation at all (enforced by `crates/dsp/tests/alloc_free.rs`).

use crate::psd::welch::accumulate_segment;
use crate::psd::{DspWorkspace, WelchConfig};
use crate::spectrum::Spectrum;
use crate::DspError;

/// A push-based Welch accumulator over a conceptually unbounded record.
///
/// Feed chunks with [`StreamingWelch::push`]; read the running estimate
/// at any point with [`StreamingWelch::finalize`] (non-destructive, so
/// a monitor can poll a live estimate mid-acquisition).
///
/// # Examples
///
/// ```
/// use nfbist_dsp::psd::{StreamingWelch, WelchConfig};
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// let x: Vec<f64> = (0..8192).map(|n| (n as f64 * 0.37).sin()).collect();
/// let cfg = WelchConfig::new(1024)?;
///
/// // Batch reference.
/// let batch = cfg.estimate(&x, 10_000.0)?;
///
/// // Same record pushed in odd-sized chunks: bitwise identical.
/// let mut sw = StreamingWelch::new(cfg, 10_000.0)?;
/// for chunk in x.chunks(777) {
///     sw.push(chunk)?;
/// }
/// assert_eq!(sw.finalize()?, batch);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingWelch {
    config: WelchConfig,
    sample_rate: f64,
    workspace: DspWorkspace,
    /// Samples waiting for enough successors to complete a segment
    /// (global positions `[consumed, consumed + carry.len())`). Never
    /// grows beyond one segment length.
    carry: Vec<f64>,
    /// Un-normalized density accumulator (`segment_len/2 + 1` bins).
    accum: Vec<f64>,
    segments: usize,
    pushed: usize,
}

impl StreamingWelch {
    /// Creates an accumulator for `config` at `sample_rate` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for a non-positive sample
    /// rate.
    pub fn new(config: WelchConfig, sample_rate: f64) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        let n = config.segment_len();
        Ok(StreamingWelch {
            config,
            sample_rate,
            workspace: DspWorkspace::new(),
            carry: Vec::with_capacity(n),
            accum: vec![0.0; n / 2 + 1],
            segments: 0,
            pushed: 0,
        })
    }

    /// The Welch configuration being accumulated.
    pub fn config(&self) -> &WelchConfig {
        &self.config
    }

    /// The sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Total samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Segments averaged so far.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Appends a chunk of samples (any length, including empty).
    ///
    /// Every segment completed by the chunk is processed immediately —
    /// the chunk itself is never retained beyond the at-most-one-segment
    /// carry.
    ///
    /// # Errors
    ///
    /// Propagates FFT/plan errors (which cannot occur for a validated
    /// configuration, but the signature stays honest).
    pub fn push(&mut self, chunk: &[f64]) -> Result<(), DspError> {
        let n = self.config.segment_len();
        let hop = self.config.hop();
        let detrend = self.config.detrend_enabled();
        let policy = self.config.simd_policy();
        let plan = self.workspace.plan(n, self.config.window_kind())?;
        let mut rest = chunk;
        loop {
            // Top the carry up to exactly one segment.
            let need = n - self.carry.len();
            let take = need.min(rest.len());
            self.carry.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.carry.len() < n {
                break;
            }
            accumulate_segment(
                plan,
                detrend,
                policy,
                self.sample_rate,
                &self.carry,
                &mut self.accum,
            )?;
            self.segments += 1;
            // Advance by one hop; the overlap tail stays for the next
            // segment. `drain` shifts in place — no allocation.
            self.carry.drain(..hop.min(self.carry.len()));
        }
        self.pushed += chunk.len();
        Ok(())
    }

    /// The running estimate: mean of the accumulated segment densities,
    /// exactly as the batch estimator would scale them.
    ///
    /// Non-destructive — more chunks may be pushed afterwards and the
    /// estimate re-read.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] before the first complete
    /// segment (mirroring the batch estimator's "input shorter than one
    /// segment").
    pub fn finalize(&self) -> Result<Spectrum, DspError> {
        let mut out = vec![0.0f64; self.accum.len()];
        self.finalize_into(&mut out)?;
        Spectrum::new(out, self.sample_rate, self.config.segment_len())
    }

    /// [`StreamingWelch::finalize`] into a caller-owned buffer of
    /// `segment_len/2 + 1` densities (no allocation).
    ///
    /// # Errors
    ///
    /// Same as [`StreamingWelch::finalize`], plus
    /// [`DspError::LengthMismatch`] for a wrongly sized `out`.
    pub fn finalize_into(&self, out: &mut [f64]) -> Result<(), DspError> {
        if out.len() != self.accum.len() {
            return Err(DspError::LengthMismatch {
                expected: self.accum.len(),
                actual: out.len(),
                context: "streaming welch finalize (output)",
            });
        }
        if self.segments == 0 {
            return Err(DspError::EmptyInput {
                context: "streaming welch (input shorter than one segment)",
            });
        }
        let inv = 1.0 / self.segments as f64;
        for (o, a) in out.iter_mut().zip(&self.accum) {
            *o = a * inv;
        }
        Ok(())
    }

    /// Clears the accumulated state (carry, densities, counters) so the
    /// instance — and its cached FFT plan — can accumulate a fresh
    /// record.
    pub fn reset(&mut self) {
        self.carry.clear();
        self.accum.fill(0.0);
        self.segments = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::Window;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn construction_validation() {
        let cfg = WelchConfig::new(64).unwrap();
        assert!(StreamingWelch::new(cfg.clone(), 0.0).is_err());
        assert!(StreamingWelch::new(cfg, 1_000.0).is_ok());
    }

    #[test]
    fn matches_batch_bitwise_for_many_chunkings() {
        let fs = 20_000.0;
        let x = noise(10_240, 7);
        for nfft in [512usize, 500] {
            for detrend in [false, true] {
                let cfg = WelchConfig::new(nfft)
                    .unwrap()
                    .window(Window::Hann)
                    .detrend(detrend);
                let batch = cfg.estimate(&x, fs).unwrap();
                for chunk in [1usize, 63, nfft / 2, nfft, nfft + 1, 3 * nfft, x.len()] {
                    let mut sw = StreamingWelch::new(cfg.clone(), fs).unwrap();
                    for c in x.chunks(chunk) {
                        sw.push(c).unwrap();
                    }
                    assert_eq!(sw.samples_pushed(), x.len());
                    assert_eq!(sw.segments(), cfg.segment_count(x.len()));
                    let streamed = sw.finalize().unwrap();
                    assert_eq!(
                        streamed, batch,
                        "nfft {nfft} detrend {detrend} chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_and_rectangular_window_also_match() {
        let fs = 8_000.0;
        let x = noise(6_000, 3);
        let cfg = WelchConfig::new(256)
            .unwrap()
            .window(Window::Rectangular)
            .overlap(0.75)
            .unwrap();
        let batch = cfg.estimate(&x, fs).unwrap();
        let mut sw = StreamingWelch::new(cfg, fs).unwrap();
        for c in x.chunks(97) {
            sw.push(c).unwrap();
        }
        assert_eq!(sw.finalize().unwrap(), batch);
    }

    #[test]
    fn finalize_is_nondestructive_and_progressive() {
        let fs = 1_000.0;
        let x = noise(4_096, 11);
        let cfg = WelchConfig::new(256).unwrap();
        let mut sw = StreamingWelch::new(cfg.clone(), fs).unwrap();
        sw.push(&x[..2_048]).unwrap();
        let mid = sw.finalize().unwrap();
        assert_eq!(mid, cfg.estimate(&x[..2_048], fs).unwrap());
        sw.push(&x[2_048..]).unwrap();
        let full = sw.finalize().unwrap();
        assert_eq!(full, cfg.estimate(&x, fs).unwrap());
    }

    #[test]
    fn empty_and_short_inputs_error_like_batch() {
        let cfg = WelchConfig::new(256).unwrap();
        let sw = StreamingWelch::new(cfg.clone(), 1_000.0).unwrap();
        assert!(sw.finalize().is_err(), "no segment yet");
        let mut sw = StreamingWelch::new(cfg, 1_000.0).unwrap();
        sw.push(&[]).unwrap();
        sw.push(&noise(255, 1)).unwrap();
        assert_eq!(sw.segments(), 0);
        assert!(sw.finalize().is_err());
        let mut out = vec![0.0; 5];
        assert!(sw.finalize_into(&mut out).is_err(), "wrong output length");
    }

    #[test]
    fn carry_stays_bounded_by_one_segment() {
        let cfg = WelchConfig::new(128).unwrap();
        let mut sw = StreamingWelch::new(cfg, 1_000.0).unwrap();
        for c in noise(10_000, 5).chunks(1_000) {
            sw.push(c).unwrap();
            assert!(sw.carry.len() < 128, "carry {}", sw.carry.len());
            assert!(sw.carry.capacity() <= 128, "capacity grew");
        }
    }

    #[test]
    fn reset_reuses_the_plan_for_a_fresh_record() {
        let fs = 2_000.0;
        let a = noise(2_048, 21);
        let b = noise(2_048, 22);
        let cfg = WelchConfig::new(512).unwrap();
        let mut sw = StreamingWelch::new(cfg.clone(), fs).unwrap();
        sw.push(&a).unwrap();
        let _ = sw.finalize().unwrap();
        sw.reset();
        assert_eq!(sw.segments(), 0);
        assert_eq!(sw.samples_pushed(), 0);
        for c in b.chunks(300) {
            sw.push(c).unwrap();
        }
        assert_eq!(sw.finalize().unwrap(), cfg.estimate(&b, fs).unwrap());
        assert_eq!(sw.config().segment_len(), 512);
        assert_eq!(sw.sample_rate(), fs);
    }
}
