//! Window functions for spectral estimation.
//!
//! The reference-normalization step of the paper reads the amplitude of a
//! known tone out of a PSD, so the *coherent gain* and *equivalent noise
//! bandwidth* of the analysis window matter: both are provided for every
//! window so PSD estimates can be calibrated exactly.

use crate::DspError;

/// The supported window shapes.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::window::Window;
///
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// // Hann is zero at the edges (periodic form: only the left edge).
/// assert!(w[0].abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Window {
    /// Rectangular (no tapering). Best resolution, worst leakage.
    Rectangular,
    /// Hann (raised cosine). The default for Welch estimates here, as in
    /// most Matlab `pwelch` workflows.
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (3-term).
    Blackman,
    /// Blackman–Harris (4-term, very low sidelobes).
    BlackmanHarris,
    /// Flat-top (5-term); near-unity scalloping loss, ideal for reading
    /// tone amplitudes such as the BIST reference line.
    FlatTop,
    /// Kaiser window with shape parameter β.
    Kaiser(f64),
}

impl Window {
    /// Generates the window coefficients in **periodic** form (suitable
    /// for spectral averaging), length `n`.
    ///
    /// Returns an empty vector for `n == 0` and `[1.0]` for `n == 1`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let nn = n as f64;
        let tau = std::f64::consts::TAU;
        match self {
            Window::Rectangular => vec![1.0; n],
            Window::Hann => (0..n)
                .map(|i| 0.5 - 0.5 * (tau * i as f64 / nn).cos())
                .collect(),
            Window::Hamming => (0..n)
                .map(|i| 0.54 - 0.46 * (tau * i as f64 / nn).cos())
                .collect(),
            Window::Blackman => (0..n)
                .map(|i| {
                    let t = tau * i as f64 / nn;
                    0.42 - 0.5 * t.cos() + 0.08 * (2.0 * t).cos()
                })
                .collect(),
            Window::BlackmanHarris => (0..n)
                .map(|i| {
                    let t = tau * i as f64 / nn;
                    0.35875 - 0.48829 * t.cos() + 0.14128 * (2.0 * t).cos()
                        - 0.01168 * (3.0 * t).cos()
                })
                .collect(),
            Window::FlatTop => (0..n)
                .map(|i| {
                    let t = tau * i as f64 / nn;
                    0.21557895 - 0.41663158 * t.cos() + 0.277263158 * (2.0 * t).cos()
                        - 0.083578947 * (3.0 * t).cos()
                        + 0.006947368 * (4.0 * t).cos()
                })
                .collect(),
            Window::Kaiser(beta) => {
                let denom = bessel_i0(beta);
                (0..n)
                    .map(|i| {
                        let x = 2.0 * i as f64 / nn - 1.0;
                        bessel_i0(beta * (1.0 - x * x).max(0.0).sqrt()) / denom
                    })
                    .collect()
            }
        }
    }

    /// Coherent gain: the mean of the window coefficients.
    ///
    /// A tone's spectral line amplitude is attenuated by exactly this
    /// factor; the normalization module divides it back out.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        if w.is_empty() {
            return 0.0;
        }
        w.iter().sum::<f64>() / n as f64
    }

    /// Sum of squared coefficients, the denominator of the PSD
    /// normalization (`U = Σw²`).
    pub fn power_gain(self, n: usize) -> f64 {
        self.coefficients(n).iter().map(|v| v * v).sum()
    }

    /// Equivalent noise bandwidth in **bins**:
    /// `ENBW = N·Σw² / (Σw)²`.
    ///
    /// 1.0 for rectangular, 1.5 for Hann, ≈3.77 for flat-top.
    pub fn enbw_bins(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        let sum: f64 = w.iter().sum();
        let sq: f64 = w.iter().map(|v| v * v).sum();
        n as f64 * sq / (sum * sum)
    }

    /// Multiplies `x` by the window, in place.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if the buffer length differs
    /// from the provided window length `n`.
    pub fn apply(self, x: &mut [f64], n: usize) -> Result<(), DspError> {
        if x.len() != n {
            return Err(DspError::LengthMismatch {
                expected: n,
                actual: x.len(),
                context: "window apply",
            });
        }
        for (v, w) in x.iter_mut().zip(self.coefficients(n)) {
            *v *= w;
        }
        Ok(())
    }
}

/// Modified Bessel function of the first kind, order zero, via its power
/// series. Accurate to ~1e-15 for the argument range used by Kaiser
/// windows (β ≤ 20).
fn bessel_i0(x: f64) -> f64 {
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    let half_x = x / 2.0;
    for k in 1..64 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn rectangular_properties() {
        let n = 64;
        assert!((Window::Rectangular.coherent_gain(n) - 1.0).abs() < 1e-15);
        assert!((Window::Rectangular.enbw_bins(n) - 1.0).abs() < 1e-15);
        assert!((Window::Rectangular.power_gain(n) - n as f64).abs() < 1e-12);
    }

    #[test]
    fn hann_properties() {
        let n = 1024;
        // Periodic Hann: coherent gain exactly 0.5, ENBW exactly 1.5.
        assert!((Window::Hann.coherent_gain(n) - 0.5).abs() < 1e-12);
        assert!((Window::Hann.enbw_bins(n) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn hamming_coherent_gain() {
        let n = 1024;
        assert!((Window::Hamming.coherent_gain(n) - 0.54).abs() < 1e-12);
    }

    #[test]
    fn flattop_enbw_is_large() {
        let n = 4096;
        let enbw = Window::FlatTop.enbw_bins(n);
        assert!(enbw > 3.5 && enbw < 4.0, "flat-top enbw {enbw}");
    }

    #[test]
    fn blackman_harris_sidelobe_window_is_positive() {
        for w in Window::BlackmanHarris.coefficients(256) {
            assert!(w >= -1e-12);
        }
    }

    #[test]
    fn kaiser_zero_beta_is_rectangular() {
        let w = Window::Kaiser(0.0).coefficients(32);
        for v in w {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kaiser_large_beta_tapers() {
        let w = Window::Kaiser(10.0).coefficients(64);
        assert!(w[0] < 0.01);
        let mid = w[32];
        assert!((mid - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bessel_i0_reference_values() {
        // I0(0)=1, I0(1)≈1.2660658, I0(5)≈27.239871.
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn windows_are_symmetric_about_center() {
        // Periodic windows satisfy w[i] == w[n-i] for i in 1..n.
        for win in [
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
            Window::FlatTop,
        ] {
            let n = 128;
            let w = win.coefficients(n);
            for i in 1..n {
                assert!((w[i] - w[n - i]).abs() < 1e-12, "{win:?} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn apply_windows_in_place() {
        let mut x = vec![1.0; 16];
        Window::Hann.apply(&mut x, 16).unwrap();
        assert!((x[0]).abs() < 1e-15);
        assert!(Window::Hann.apply(&mut x, 8).is_err());
    }

    #[test]
    fn enbw_at_least_one() {
        for win in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::BlackmanHarris,
            Window::FlatTop,
            Window::Kaiser(8.0),
        ] {
            assert!(win.enbw_bins(256) >= 1.0 - 1e-12, "{win:?}");
        }
    }
}
