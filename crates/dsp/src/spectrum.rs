//! One-sided power-spectral-density container and band arithmetic.
//!
//! The paper's method lives in this representation: PSDs of the digitizer
//! bitstream are normalized against a reference line, the reference bins
//! are excluded, and noise power is integrated over the measurement band.
//! [`Spectrum`] provides exactly those verbs.

use crate::DspError;

/// A located spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Bin index into the spectrum.
    pub bin: usize,
    /// Bin centre frequency in hertz.
    pub frequency: f64,
    /// PSD value at the peak (power per hertz).
    pub density: f64,
}

/// A one-sided power spectral density.
///
/// Values are power densities (e.g. V²/Hz) at uniformly spaced bin
/// centres `k·Δf` for `k = 0..len`, where `Δf = fs / nfft`.
///
/// # Examples
///
/// ```
/// use nfbist_dsp::spectrum::Spectrum;
///
/// # fn main() -> Result<(), nfbist_dsp::DspError> {
/// // A flat density of 1e-3 V²/Hz over 0..=500 Hz (fs = 1 kHz, nfft = 8).
/// let s = Spectrum::new(vec![1e-3; 5], 1000.0, 8)?;
/// // All five bins (Δf = 125 Hz each) fall in the band.
/// let p = s.band_power(0.0, 500.0)?;
/// assert!((p - 5.0 * 1e-3 * 125.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    density: Vec<f64>,
    sample_rate: f64,
    nfft: usize,
}

impl Spectrum {
    /// Builds a spectrum from one-sided densities.
    ///
    /// `density.len()` must equal `nfft/2 + 1` (the one-sided bin count).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for a non-positive sample
    /// rate or zero `nfft`, and [`DspError::LengthMismatch`] when the
    /// density length is not `nfft/2 + 1`.
    pub fn new(density: Vec<f64>, sample_rate: f64, nfft: usize) -> Result<Self, DspError> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if nfft == 0 {
            return Err(DspError::InvalidParameter {
                name: "nfft",
                reason: "must be nonzero",
            });
        }
        let expected = nfft / 2 + 1;
        if density.len() != expected {
            return Err(DspError::LengthMismatch {
                expected,
                actual: density.len(),
                context: "spectrum construction",
            });
        }
        Ok(Spectrum {
            density,
            sample_rate,
            nfft,
        })
    }

    /// Number of one-sided bins.
    pub fn len(&self) -> usize {
        self.density.len()
    }

    /// `true` if the spectrum has no bins (cannot happen for a valid
    /// construction, but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.density.is_empty()
    }

    /// Sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// FFT length the spectrum was computed with.
    pub fn nfft(&self) -> usize {
        self.nfft
    }

    /// Frequency resolution `Δf = fs / nfft` in hertz.
    pub fn resolution(&self) -> f64 {
        self.sample_rate / self.nfft as f64
    }

    /// Nyquist frequency in hertz.
    pub fn nyquist(&self) -> f64 {
        self.sample_rate / 2.0
    }

    /// The density values.
    pub fn density(&self) -> &[f64] {
        &self.density
    }

    /// Centre frequency of bin `k`.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.resolution()
    }

    /// Nearest bin index for frequency `f`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] if `f` is negative or
    /// above Nyquist.
    pub fn bin_of(&self, f: f64) -> Result<usize, DspError> {
        if f < 0.0 || f > self.nyquist() {
            return Err(DspError::FrequencyOutOfRange {
                frequency: f,
                nyquist: self.nyquist(),
            });
        }
        Ok(((f / self.resolution()).round() as usize).min(self.density.len() - 1))
    }

    /// Integrated power in `[f_lo, f_hi]` (inclusive of the bins whose
    /// centres fall in the range): `Σ density[k] · Δf`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `f_lo > f_hi` and
    /// [`DspError::FrequencyOutOfRange`] if either bound is outside
    /// `[0, nyquist]`.
    pub fn band_power(&self, f_lo: f64, f_hi: f64) -> Result<f64, DspError> {
        self.band_power_excluding(f_lo, f_hi, &[])
    }

    /// Integrated band power with a set of bins excluded.
    ///
    /// This is the paper's "the reference waveform must be excluded from
    /// the power ratio evaluation" (Section 5.2): pass the bins occupied
    /// by the reference line.
    ///
    /// # Errors
    ///
    /// Same as [`Spectrum::band_power`].
    pub fn band_power_excluding(
        &self,
        f_lo: f64,
        f_hi: f64,
        excluded_bins: &[usize],
    ) -> Result<f64, DspError> {
        if f_lo > f_hi {
            return Err(DspError::InvalidParameter {
                name: "band",
                reason: "f_lo must not exceed f_hi",
            });
        }
        let lo = self.bin_of(f_lo)?;
        let hi = self.bin_of(f_hi)?;
        let df = self.resolution();
        let mut acc = 0.0;
        for k in lo..=hi {
            if excluded_bins.contains(&k) {
                continue;
            }
            acc += self.density[k] * df;
        }
        Ok(acc)
    }

    /// Total power across the whole one-sided spectrum.
    pub fn total_power(&self) -> f64 {
        self.density.iter().sum::<f64>() * self.resolution()
    }

    /// Largest-density bin in `[f_lo, f_hi]`.
    ///
    /// # Errors
    ///
    /// Same as [`Spectrum::band_power`], plus [`DspError::EmptyInput`] if
    /// the band contains no bins.
    pub fn peak_in_band(&self, f_lo: f64, f_hi: f64) -> Result<Peak, DspError> {
        if f_lo > f_hi {
            return Err(DspError::InvalidParameter {
                name: "band",
                reason: "f_lo must not exceed f_hi",
            });
        }
        let lo = self.bin_of(f_lo)?;
        let hi = self.bin_of(f_hi)?;
        let mut best: Option<Peak> = None;
        for k in lo..=hi {
            if best.is_none_or(|p| self.density[k] > p.density) {
                best = Some(Peak {
                    bin: k,
                    frequency: self.bin_frequency(k),
                    density: self.density[k],
                });
            }
        }
        best.ok_or(DspError::EmptyInput {
            context: "peak_in_band",
        })
    }

    /// Global peak.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty spectrum.
    pub fn peak(&self) -> Result<Peak, DspError> {
        self.peak_in_band(0.0, self.nyquist())
    }

    /// Multiplies every density by `k` (power-scale normalization).
    ///
    /// Used by the reference-normalization procedure: after measuring the
    /// reference line in two spectra, one spectrum is rescaled so the
    /// lines coincide.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.density {
            *v *= k;
        }
    }

    /// Returns a copy scaled by `k`.
    pub fn scaled(&self, k: f64) -> Spectrum {
        let mut s = self.clone();
        s.scale(k);
        s
    }

    /// Interpolated tone power around bin `k0`, summing `±half_width`
    /// bins to capture leakage skirts. Returns **power** (density × Δf
    /// summed), not density.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `k0` is out of bounds.
    pub fn tone_power(&self, k0: usize, half_width: usize) -> Result<f64, DspError> {
        if k0 >= self.density.len() {
            return Err(DspError::InvalidParameter {
                name: "k0",
                reason: "bin index out of bounds",
            });
        }
        let lo = k0.saturating_sub(half_width);
        let hi = (k0 + half_width).min(self.density.len() - 1);
        Ok(self.density[lo..=hi].iter().sum::<f64>() * self.resolution())
    }

    /// The bins within `±half_width` of the nearest bin to `f`, for use
    /// with [`Spectrum::band_power_excluding`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::FrequencyOutOfRange`] if `f` is out of range.
    pub fn bins_around(&self, f: f64, half_width: usize) -> Result<Vec<usize>, DspError> {
        let k0 = self.bin_of(f)?;
        let lo = k0.saturating_sub(half_width);
        let hi = (k0 + half_width).min(self.density.len() - 1);
        Ok((lo..=hi).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(density: f64, bins: usize, fs: f64) -> Spectrum {
        Spectrum::new(vec![density; bins], fs, (bins - 1) * 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Spectrum::new(vec![1.0; 5], 0.0, 8).is_err());
        assert!(Spectrum::new(vec![1.0; 5], 1000.0, 0).is_err());
        assert!(Spectrum::new(vec![1.0; 4], 1000.0, 8).is_err());
        assert!(Spectrum::new(vec![1.0; 5], 1000.0, 8).is_ok());
    }

    #[test]
    fn geometry() {
        let s = flat(1.0, 9, 1600.0); // nfft 16, Δf = 100
        assert_eq!(s.len(), 9);
        assert!(!s.is_empty());
        assert_eq!(s.resolution(), 100.0);
        assert_eq!(s.nyquist(), 800.0);
        assert_eq!(s.bin_frequency(3), 300.0);
        assert_eq!(s.bin_of(249.0).unwrap(), 2);
        assert_eq!(s.bin_of(251.0).unwrap(), 3);
        assert!(s.bin_of(-1.0).is_err());
        assert!(s.bin_of(801.0).is_err());
    }

    #[test]
    fn band_power_flat_density() {
        let s = flat(2.0, 9, 1600.0); // Δf=100, 9 bins 0..800
                                      // Bins 0..=8, each contributes 200.
        assert!((s.total_power() - 9.0 * 200.0).abs() < 1e-9);
        assert!((s.band_power(100.0, 300.0).unwrap() - 3.0 * 200.0).abs() < 1e-9);
    }

    #[test]
    fn band_power_excluding_bins() {
        let s = flat(1.0, 9, 1600.0);
        let all = s.band_power(0.0, 800.0).unwrap();
        let missing_two = s.band_power_excluding(0.0, 800.0, &[2, 5]).unwrap();
        assert!((all - missing_two - 200.0).abs() < 1e-9);
    }

    #[test]
    fn band_validation() {
        let s = flat(1.0, 9, 1600.0);
        assert!(s.band_power(300.0, 100.0).is_err());
        assert!(s.band_power(0.0, 900.0).is_err());
    }

    #[test]
    fn peak_detection() {
        let mut d = vec![1.0; 9];
        d[4] = 10.0;
        let s = Spectrum::new(d, 1600.0, 16).unwrap();
        let p = s.peak().unwrap();
        assert_eq!(p.bin, 4);
        assert_eq!(p.frequency, 400.0);
        assert_eq!(p.density, 10.0);
        // Band-restricted search misses it.
        let p2 = s.peak_in_band(0.0, 300.0).unwrap();
        assert_eq!(p2.density, 1.0);
    }

    #[test]
    fn scaling() {
        let s = flat(1.0, 9, 1600.0);
        let s2 = s.scaled(2.5);
        assert!((s2.total_power() - 2.5 * s.total_power()).abs() < 1e-9);
    }

    #[test]
    fn tone_power_window() {
        let mut d = vec![0.0; 9];
        d[3] = 4.0;
        d[4] = 8.0;
        d[5] = 4.0;
        let s = Spectrum::new(d, 1600.0, 16).unwrap();
        // Δf = 100: power of the skirted tone = (4+8+4)*100.
        assert!((s.tone_power(4, 1).unwrap() - 1600.0).abs() < 1e-9);
        assert!((s.tone_power(4, 0).unwrap() - 800.0).abs() < 1e-9);
        assert!(s.tone_power(99, 1).is_err());
    }

    #[test]
    fn bins_around_clamps_at_edges() {
        let s = flat(1.0, 9, 1600.0);
        assert_eq!(s.bins_around(0.0, 2).unwrap(), vec![0, 1, 2]);
        assert_eq!(s.bins_around(800.0, 2).unwrap(), vec![6, 7, 8]);
        assert_eq!(s.bins_around(400.0, 1).unwrap(), vec![3, 4, 5]);
    }
}
