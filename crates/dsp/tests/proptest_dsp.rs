//! Property-based tests for the DSP substrate: transform identities,
//! window invariants and spectrum arithmetic that must hold for *any*
//! input, not just the unit-test vectors.

use nfbist_dsp::complex::Complex64;
use nfbist_dsp::correlation::{autocorrelation, autocorrelation_fft, Bias};
use nfbist_dsp::db::{db_to_power_ratio, power_ratio_to_db};
use nfbist_dsp::fft::{dft_naive, ArbitraryFft, Fft, RealFft};
use nfbist_dsp::filter::{BandKind, FirSpec};
use nfbist_dsp::psd::periodogram;
use nfbist_dsp::spectrum::Spectrum;
use nfbist_dsp::stats;
use nfbist_dsp::window::Window;
use proptest::prelude::*;

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

fn pow2_len() -> impl Strategy<Value = usize> {
    (1u32..9).prop_map(|k| 1usize << k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_is_identity(signal in finite_signal(256), seed_len in pow2_len()) {
        let n = seed_len;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(signal[i % signal.len()], signal[(i * 7 + 3) % signal.len()]))
            .collect();
        let plan = Fft::new(n).unwrap();
        let back = plan.inverse(&plan.forward(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn fft_preserves_energy(signal in finite_signal(128)) {
        let n = signal.len().next_power_of_two();
        let mut x = signal.clone();
        x.resize(n, 0.0);
        let spec = Fft::new(n).unwrap().forward_real(&x).unwrap();
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() <= 1e-6 * (1.0 + time));
    }

    #[test]
    fn real_fft_matches_naive_oracle(signal in finite_signal(128), k in 0u32..9) {
        let n = 1usize << k;
        let x: Vec<f64> = (0..n).map(|i| signal[i % signal.len()]).collect();
        let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        let oracle = dft_naive(&packed);
        let fast = RealFft::new(n).unwrap().forward(&x).unwrap();
        prop_assert_eq!(fast.len(), n / 2 + 1);
        for (k, (a, b)) in fast.iter().zip(&oracle).enumerate() {
            prop_assert!(
                (*a - *b).abs() < 1e-7 * n as f64 * 1e3,
                "n {} bin {}: {} vs {}", n, k, a, b
            );
        }
    }

    #[test]
    fn real_fft_agrees_with_complex_engine(signal in finite_signal(256), k in 1u32..10) {
        let n = 1usize << k;
        let x: Vec<f64> = (0..n).map(|i| signal[(i * 5 + 1) % signal.len()]).collect();
        let plan = Fft::new(n).unwrap();
        let full = plan.forward_real(&x).unwrap();
        let real_plan = RealFft::new(n).unwrap();
        let half = real_plan.forward(&x).unwrap();
        for (a, b) in half.iter().zip(&full) {
            prop_assert!((*a - *b).abs() < 1e-7 * n as f64 * 1e3);
        }
        // The planned one-sided convenience is the same engine — exact.
        prop_assert_eq!(&plan.forward_real_half(&x).unwrap(), &half);
        // And the zero-allocation entry point is bitwise-identical.
        let mut out = vec![Complex64::new(3.0, -3.0); real_plan.output_len()];
        real_plan.forward_into(&x, &mut out).unwrap();
        prop_assert_eq!(&out, &half);
    }

    #[test]
    fn one_sided_psd_matches_naive_for_any_engine(signal in finite_signal(48), n in 2usize..48) {
        // Exercises the one-sided density path through both FFT
        // engines: power-of-two `n` takes the packed real FFT, other
        // sizes take Bluestein's full spectrum.
        let fs = 1_000.0;
        let x: Vec<f64> = (0..n).map(|i| signal[i % signal.len()]).collect();
        let psd = periodogram(&x, fs).unwrap();
        let packed: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
        let oracle = dft_naive(&packed);
        let scale = 1.0 / (fs * n as f64);
        for (k, d) in psd.density().iter().enumerate() {
            let mut expect = oracle[k].norm_sqr() * scale;
            if k != 0 && !(n % 2 == 0 && k == n / 2) {
                expect *= 2.0;
            }
            prop_assert!(
                (d - expect).abs() <= 1e-6 * (1.0 + expect),
                "n {} bin {}: {} vs {}", n, k, d, expect
            );
        }
    }

    #[test]
    fn bluestein_matches_naive(len in 2usize..40, phase in 0.0f64..6.25) {
        let x: Vec<Complex64> = (0..len)
            .map(|i| Complex64::cis(phase * i as f64) * (1.0 + i as f64 * 0.1))
            .collect();
        let fast = ArbitraryFft::new(len).unwrap().forward(&x).unwrap();
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-6 * len as f64);
        }
    }

    #[test]
    fn parseval_for_periodogram(signal in finite_signal(200)) {
        let psd = periodogram(&signal, 1_000.0).unwrap();
        let ms = stats::mean_square(&signal).unwrap();
        prop_assert!((psd.total_power() - ms).abs() <= 1e-6 * (1.0 + ms));
    }

    #[test]
    fn windows_are_bounded_and_symmetric(n in 4usize..512) {
        for w in [Window::Hann, Window::Hamming, Window::Blackman, Window::FlatTop] {
            let c = w.coefficients(n);
            prop_assert_eq!(c.len(), n);
            for i in 1..n {
                prop_assert!((c[i] - c[n - i]).abs() < 1e-9);
            }
            // Cosine-sum windows stay within [-0.1, 1.1] (flat-top dips
            // slightly negative by design).
            prop_assert!(c.iter().all(|v| (-0.2..=1.2).contains(v)));
        }
    }

    #[test]
    fn enbw_is_at_least_one(n in 8usize..1024) {
        for w in [Window::Rectangular, Window::Hann, Window::Hamming, Window::Kaiser(6.0)] {
            prop_assert!(w.enbw_bins(n) >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn db_roundtrip(ratio in 1e-6f64..1e6) {
        let back = db_to_power_ratio(power_ratio_to_db(ratio));
        prop_assert!((back - ratio).abs() / ratio < 1e-9);
    }

    #[test]
    fn autocorrelation_peak_at_zero_lag(signal in finite_signal(200)) {
        let max_lag = (signal.len() - 1).min(20);
        let r = autocorrelation(&signal, max_lag, Bias::Biased).unwrap();
        for v in &r[1..] {
            prop_assert!(v.abs() <= r[0] + 1e-9);
        }
    }

    #[test]
    fn fft_autocorrelation_matches_direct(signal in finite_signal(150)) {
        let max_lag = (signal.len() - 1).min(16);
        let direct = autocorrelation(&signal, max_lag, Bias::Biased).unwrap();
        let fast = autocorrelation_fft(&signal, max_lag).unwrap();
        for (a, b) in direct.iter().zip(&fast) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn spectrum_band_power_is_monotone_in_band(
        density in prop::collection::vec(0.0f64..10.0, 9),
        hi_bin in 1usize..8,
    ) {
        let s = Spectrum::new(density, 1_600.0, 16).unwrap();
        let f_hi = s.bin_frequency(hi_bin);
        let narrow = s.band_power(0.0, f_hi).unwrap();
        let wide = s.band_power(0.0, s.nyquist()).unwrap();
        prop_assert!(narrow <= wide + 1e-12);
    }

    #[test]
    fn spectrum_exclusion_never_increases_power(
        density in prop::collection::vec(0.0f64..10.0, 9),
        excluded in prop::collection::vec(0usize..9, 0..5),
    ) {
        let s = Spectrum::new(density, 1_600.0, 16).unwrap();
        let all = s.band_power(0.0, s.nyquist()).unwrap();
        let some = s.band_power_excluding(0.0, s.nyquist(), &excluded).unwrap();
        prop_assert!(some <= all + 1e-12);
    }

    #[test]
    fn fir_filter_is_linear(
        a in finite_signal(64),
        k in -5.0f64..5.0,
    ) {
        let fir = FirSpec::new(BandKind::LowPass { cutoff: 100.0 }, 21)
            .unwrap()
            .design(1_000.0)
            .unwrap();
        let scaled_in: Vec<f64> = a.iter().map(|v| v * k).collect();
        let y1: Vec<f64> = fir.filter(&a).iter().map(|v| v * k).collect();
        let y2 = fir.filter(&scaled_in);
        for (p, q) in y1.iter().zip(&y2) {
            prop_assert!((p - q).abs() < 1e-6 * (1.0 + p.abs()));
        }
    }

    #[test]
    fn stats_variance_is_shift_invariant(signal in finite_signal(100), shift in -100.0f64..100.0) {
        let shifted: Vec<f64> = signal.iter().map(|v| v + shift).collect();
        let v1 = stats::variance(&signal).unwrap();
        let v2 = stats::variance(&shifted).unwrap();
        prop_assert!((v1 - v2).abs() < 1e-6 * (1.0 + v1.abs()));
    }

    #[test]
    fn mean_square_scales_quadratically(signal in finite_signal(100), k in 0.1f64..10.0) {
        let scaled: Vec<f64> = signal.iter().map(|v| v * k).collect();
        let p1 = stats::mean_square(&signal).unwrap();
        let p2 = stats::mean_square(&scaled).unwrap();
        prop_assert!((p2 - k * k * p1).abs() <= 1e-9 * (1.0 + p2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chunked Welch accumulator must agree with the batch
    /// estimator to the last bit, for chunk sizes smaller than, equal
    /// to, and non-divisors of the segment length (and across pow2 /
    /// Bluestein segment sizes, windows, and detrending).
    #[test]
    fn streaming_welch_is_bitwise_equal_to_batch(
        signal in finite_signal(96),
        seg_pow in 5u32..9,
        bluestein in any::<bool>(),
        detrend in any::<bool>(),
        chunk_class in 0usize..3,
        jitter in 1usize..31,
    ) {
        use nfbist_dsp::psd::{StreamingWelch, WelchConfig};

        let nfft = if bluestein {
            (1usize << seg_pow) - 7 // odd size -> Bluestein engine
        } else {
            1usize << seg_pow
        };
        let total = nfft * 5 + jitter; // several segments + ragged tail
        let x: Vec<f64> = (0..total).map(|i| signal[i % signal.len()]).collect();
        let chunk = match chunk_class {
            0 => jitter,                       // smaller than a segment
            1 => nfft,                         // exactly one segment
            _ => nfft + jitter,                // non-divisor straddler
        };

        let cfg = WelchConfig::new(nfft).unwrap().detrend(detrend);
        let batch = cfg.estimate(&x, 10_000.0).unwrap();
        let mut sw = StreamingWelch::new(cfg, 10_000.0).unwrap();
        for c in x.chunks(chunk) {
            sw.push(c).unwrap();
        }
        let streamed = sw.finalize().unwrap();
        prop_assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.density().iter().zip(batch.density()) {
            prop_assert_eq!(s.to_bits(), b.to_bits());
        }
    }

    /// The sliding-window estimator's contract: at any point in the
    /// stream, its estimate equals a batch Welch run over **exactly the
    /// retained samples** to the last bit — for partially filled and
    /// wrapped windows, every chunking (smaller than, equal to, and a
    /// non-divisor of the segment), pow2 and Bluestein segment sizes,
    /// and every overlap class.
    #[test]
    fn sliding_welch_is_bitwise_batch_over_retained_samples(
        signal in finite_signal(96),
        seg_pow in 5u32..9,
        bluestein in any::<bool>(),
        overlap_class in 0usize..4,
        window_segments in 1usize..6,
        total_mult in 1usize..6,
        chunk_class in 0usize..3,
        jitter in 1usize..31,
    ) {
        use nfbist_dsp::psd::{SlidingWelch, WelchConfig};

        let nfft = if bluestein {
            (1usize << seg_pow) - 7 // odd size -> Bluestein engine
        } else {
            1usize << seg_pow
        };
        // Enough for 1..=5 whole segments plus a ragged tail, so the
        // window is exercised both before it fills and after it wraps.
        let total = nfft * total_mult + jitter;
        let x: Vec<f64> = (0..total).map(|i| signal[i % signal.len()]).collect();
        let chunk = match chunk_class {
            0 => jitter,        // smaller than a segment
            1 => nfft,          // exactly one segment
            _ => nfft + jitter, // non-divisor straddler
        };
        let overlap = [0.0, 0.25, 0.5, 0.75][overlap_class];

        let cfg = WelchConfig::new(nfft).unwrap().overlap(overlap).unwrap();
        let mut sw = SlidingWelch::new(cfg.clone(), 10_000.0, window_segments).unwrap();
        for c in x.chunks(chunk) {
            sw.push(c).unwrap();
        }
        prop_assert!(sw.segments_seen() >= 1);
        prop_assert_eq!(
            sw.segments_retained(),
            sw.segments_seen().min(window_segments)
        );
        let (start, end) = sw.retained_range().unwrap();
        prop_assert!(end <= total);
        let batch = cfg.estimate(&x[start..end], 10_000.0).unwrap();
        let windowed = sw.finalize().unwrap();
        prop_assert_eq!(windowed.len(), batch.len());
        for (w, b) in windowed.density().iter().zip(batch.density()) {
            prop_assert_eq!(w.to_bits(), b.to_bits());
        }
    }

    /// The forgetting estimator is a pure function of the pushed
    /// samples — chunking is invisible to the last bit — its first
    /// segment reproduces the batch estimate exactly (weight 1), and
    /// its effective depth stays within `[1, (1+λ)/(1-λ)]`.
    #[test]
    fn forgetting_welch_is_chunk_invariant_and_starts_at_batch(
        signal in finite_signal(96),
        seg_pow in 5u32..9,
        bluestein in any::<bool>(),
        lambda in 0.05f64..0.95,
        total_mult in 1usize..6,
        chunk_class in 0usize..3,
        jitter in 1usize..31,
    ) {
        use nfbist_dsp::psd::{ForgettingWelch, WelchConfig};

        let nfft = if bluestein {
            (1usize << seg_pow) - 7
        } else {
            1usize << seg_pow
        };
        let total = nfft * total_mult + jitter;
        let x: Vec<f64> = (0..total).map(|i| signal[i % signal.len()]).collect();
        let chunk = match chunk_class {
            0 => jitter,
            1 => nfft,
            _ => nfft + jitter,
        };

        let cfg = WelchConfig::new(nfft).unwrap();
        let mut chunked = ForgettingWelch::new(cfg.clone(), 10_000.0, lambda).unwrap();
        for c in x.chunks(chunk) {
            chunked.push(c).unwrap();
        }
        let mut whole = ForgettingWelch::new(cfg.clone(), 10_000.0, lambda).unwrap();
        whole.push(&x).unwrap();
        let a = chunked.finalize().unwrap();
        let b = whole.finalize().unwrap();
        for (p, q) in a.density().iter().zip(b.density()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }

        // Effective depth: one equally weighted segment at the start,
        // saturating at the geometric-series limit.
        let limit = (1.0 + lambda) / (1.0 - lambda);
        prop_assert!(chunked.effective_segments() >= 1.0 - 1e-12);
        prop_assert!(chunked.effective_segments() <= limit + 1e-9);

        // With exactly one completed segment the decayed fold
        // degenerates to the plain batch estimate, bit for bit.
        let mut first = ForgettingWelch::new(cfg.clone(), 10_000.0, lambda).unwrap();
        first.push(&x[..nfft]).unwrap();
        prop_assert_eq!(first.segments_seen(), 1);
        let single = first.finalize().unwrap();
        let batch = cfg.estimate(&x[..nfft], 10_000.0).unwrap();
        for (s, r) in single.density().iter().zip(batch.density()) {
            prop_assert_eq!(s.to_bits(), r.to_bits());
        }
    }
}
