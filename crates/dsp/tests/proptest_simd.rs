//! Property-based cross-arm contracts for the runtime-dispatched SIMD
//! kernels (`nfbist_dsp::simd`).
//!
//! Two classes of guarantee, exercised over every arm the host CPU
//! offers (`available_arms()` always ends in `Scalar`, so on any
//! machine at least the scalar arm runs and on AVX2/NEON hosts every
//! assertion really compares vector output against scalar output):
//!
//! * **Integer/bit kernels** (popcount, XOR-lag, ±1 expansion) are
//!   bit-identical on every arm for *any* input — including
//!   non-word-aligned lengths, odd lags and lags far past the end.
//! * **Float kernels** are bit-identical across arms as used by the
//!   estimators under the default [`SimdPolicy::Exact`]; only the
//!   `Relaxed` sum is allowed to differ, and then only within a small
//!   relative envelope of the exactly-rounded reference.
//!
//! On top of the raw kernels, whole estimators (Welch, the real FFT)
//! are run with the dispatch forced to each arm and must agree
//! bit-for-bit — the end-to-end form of the determinism contract that
//! `fleet_determinism` relies on.

use nfbist_dsp::complex::Complex64;
use nfbist_dsp::fft::RealFft;
use nfbist_dsp::psd::WelchConfig;
use nfbist_dsp::simd::{self, SimdPolicy};
use nfbist_dsp::window::Window;
use proptest::prelude::*;

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

fn words(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..max_len)
}

/// Exact 2-sum reference for the relaxed-sum envelope: Kahan
/// compensated summation, good to ~1 ulp of the true sum.
fn kahan_sum(x: &[f64]) -> f64 {
    let (mut s, mut c) = (0.0f64, 0.0f64);
    for &v in x {
        let y = v - c;
        let t = s + y;
        c = (t - s) - y;
        s = t;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn popcount_is_bit_identical_across_arms(w in words(70)) {
        let reference: u64 = w.iter().map(|v| v.count_ones() as u64).sum();
        for &arm in simd::available_arms() {
            prop_assert_eq!(simd::popcount_words_with(arm, &w), reference);
        }
    }

    #[test]
    fn xor_lag_is_bit_identical_across_arms(
        w in words(40),
        // Deliberately ragged: len_bits anywhere inside (or at) the
        // packed capacity, lags word-aligned, odd, and out of range.
        len_off in 0usize..64,
        lag in 0usize..2_700,
    ) {
        let len_bits = (w.len() * 64).saturating_sub(len_off);
        // Mask stray bits past len_bits so the reference below can walk
        // bits naively.
        let mut w = w;
        if len_bits % 64 != 0 {
            if let Some(last) = w.last_mut() {
                *last &= (1u64 << (len_bits % 64)) - 1;
            }
        }
        let bit = |i: usize| w[i / 64] >> (i % 64) & 1;
        let reference: usize = if lag >= len_bits {
            0
        } else {
            (0..len_bits - lag).filter(|&i| bit(i) != bit(i + lag)).count()
        };
        for &arm in simd::available_arms() {
            prop_assert_eq!(simd::xor_popcount_lag_with(arm, &w, len_bits, lag), reference);
        }
    }

    #[test]
    fn expand_bipolar_is_bit_identical_across_arms(
        w in words(20),
        tail in 0usize..64,
    ) {
        // Non-word-multiple output lengths exercise the ragged tail.
        let len = (w.len() * 64).saturating_sub(tail);
        let mut reference = vec![0.0f64; len];
        for (i, r) in reference.iter_mut().enumerate() {
            *r = if w[i / 64] >> (i % 64) & 1 == 1 { 1.0 } else { -1.0 };
        }
        for &arm in simd::available_arms() {
            let mut out = vec![f64::NAN; len];
            simd::expand_bipolar_with(arm, &w, &mut out);
            for (a, b) in out.iter().zip(&reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn window_and_detrend_kernels_are_bit_identical_across_arms(
        seg in finite_signal(257),
        mu in -1e3f64..1e3,
    ) {
        let coeffs: Vec<f64> = (0..seg.len()).map(|i| (i as f64 * 0.37).cos()).collect();
        let arms = simd::available_arms();
        let mut outputs = Vec::new();
        for &arm in arms {
            let mut s = seg.clone();
            simd::subtract_scalar_with(arm, &mut s, mu);
            simd::apply_window_with(arm, &mut s, &coeffs);
            outputs.push(s);
        }
        let reference = outputs.last().unwrap(); // scalar is always last
        for o in &outputs {
            for (a, b) in o.iter().zip(reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn exact_sum_is_bit_identical_and_relaxed_sum_is_close(x in finite_signal(300)) {
        let reference = simd::sum_with(simd::SimdArm::Scalar, &x, SimdPolicy::Exact);
        let true_sum = kahan_sum(&x);
        let magnitude: f64 = x.iter().map(|v| v.abs()).sum();
        for &arm in simd::available_arms() {
            let exact = simd::sum_with(arm, &x, SimdPolicy::Exact);
            prop_assert_eq!(exact.to_bits(), reference.to_bits());
            // The relaxed reduction reassociates: bound its error by a
            // generous multiple of the condition-scaled epsilon.
            let relaxed = simd::sum_with(arm, &x, SimdPolicy::Relaxed);
            let bound = 1e-12 * magnitude.max(1.0);
            prop_assert!(
                (relaxed - true_sum).abs() <= bound,
                "{}: relaxed {} vs {} (bound {})", arm, relaxed, true_sum, bound
            );
        }
    }

    #[test]
    fn density_accumulate_is_bit_identical_across_arms(
        re in finite_signal(130),
        nfft_is_even in any::<bool>(),
    ) {
        let half = re.len();
        let nfft = if nfft_is_even { (half - 1) * 2 } else { half * 2 - 1 }.max(1);
        let spec: Vec<Complex64> = re
            .iter()
            .enumerate()
            .map(|(i, &r)| Complex64::new(r, r * 0.5 - i as f64))
            .collect();
        let mut reference = vec![0.1f64; half];
        simd::accumulate_one_sided_with(simd::SimdArm::Scalar, &spec, nfft, 1.25e-4, &mut reference);
        for &arm in simd::available_arms() {
            let mut acc = vec![0.1f64; half];
            simd::accumulate_one_sided_with(arm, &spec, nfft, 1.25e-4, &mut acc);
            for (a, b) in acc.iter().zip(&reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn butterfly_pairs_are_bit_identical_across_arms(
        re in finite_signal(97),
        conjugate in any::<bool>(),
    ) {
        let n = re.len();
        let lo: Vec<Complex64> = re.iter().map(|&r| Complex64::new(r, 1.0 - r)).collect();
        let hi: Vec<Complex64> = re.iter().map(|&r| Complex64::new(0.5 * r, r + 2.0)).collect();
        let tw: Vec<Complex64> = (0..n)
            .map(|i| {
                let th = i as f64 * 0.13;
                Complex64::new(th.cos(), -th.sin())
            })
            .collect();
        let (mut rlo, mut rhi) = (lo.clone(), hi.clone());
        simd::butterfly_pairs_with(simd::SimdArm::Scalar, &mut rlo, &mut rhi, &tw, conjugate);
        for &arm in simd::available_arms() {
            let (mut alo, mut ahi) = (lo.clone(), hi.clone());
            simd::butterfly_pairs_with(arm, &mut alo, &mut ahi, &tw, conjugate);
            for (a, b) in alo.iter().zip(&rlo).chain(ahi.iter().zip(&rhi)) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn goertzel_kernels_are_bit_identical_across_arms(
        x in finite_signal(200),
        lanes in 1usize..9,
    ) {
        // Bank form: one chain per bin, shared input samples.
        let coeffs: Vec<f64> = (0..lanes).map(|l| 1.9 - 0.1 * l as f64).collect();
        let mut ref_s1 = vec![0.0; lanes];
        let mut ref_s2 = vec![0.0; lanes];
        simd::goertzel_bank_run_with(
            simd::SimdArm::Scalar, &x, &coeffs, &mut ref_s1, &mut ref_s2,
        );
        for &arm in simd::available_arms() {
            let mut s1 = vec![0.0; lanes];
            let mut s2 = vec![0.0; lanes];
            simd::goertzel_bank_run_with(arm, &x, &coeffs, &mut s1, &mut s2);
            for (a, b) in s1.iter().zip(&ref_s1).chain(s2.iter().zip(&ref_s2)) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // SoA form: one chain per lane, sample-major interleaved data.
        let samples = x.len() / lanes;
        prop_assume!(samples > 0);
        let data = &x[..samples * lanes];
        let mut ref_s1 = vec![0.0; lanes];
        let mut ref_s2 = vec![0.0; lanes];
        simd::goertzel_soa_run_with(
            simd::SimdArm::Scalar, data, lanes, 1.7, &mut ref_s1, &mut ref_s2,
        );
        for &arm in simd::available_arms() {
            let mut s1 = vec![0.0; lanes];
            let mut s2 = vec![0.0; lanes];
            simd::goertzel_soa_run_with(arm, data, lanes, 1.7, &mut s1, &mut s2);
            for (a, b) in s1.iter().zip(&ref_s1).chain(s2.iter().zip(&ref_s2)) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn welch_estimate_is_bit_identical_across_forced_arms(
        x in prop::collection::vec(-10.0f64..10.0, 300..1200),
        detrend in any::<bool>(),
    ) {
        let cfg = WelchConfig::new(128).unwrap().window(Window::Hann).detrend(detrend);
        let mut spectra = Vec::new();
        for &arm in simd::available_arms() {
            let psd = simd::with_forced_arm(arm, || cfg.estimate(&x, 1_000.0).unwrap());
            spectra.push(psd);
        }
        let reference = spectra.last().unwrap(); // scalar arm
        for s in &spectra {
            for (a, b) in s.density().iter().zip(reference.density()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn real_fft_is_bit_identical_across_forced_arms(
        re in finite_signal(256),
        k in 3u32..9,
    ) {
        let n = 1usize << k;
        let x: Vec<f64> = (0..n).map(|i| re[i % re.len()]).collect();
        let plan = RealFft::new(n).unwrap();
        let mut spectra = Vec::new();
        for &arm in simd::available_arms() {
            spectra.push(simd::with_forced_arm(arm, || plan.forward(&x).unwrap()));
        }
        let reference = spectra.last().unwrap();
        for s in &spectra {
            for (a, b) in s.iter().zip(reference) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }
}
