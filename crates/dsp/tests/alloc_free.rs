//! Proof that the steady-state workspace PSD path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up call populates the [`DspWorkspace`] plan cache, repeated
//! `estimate_into` calls must perform **zero** heap allocations — no
//! FFT re-planning, no segment/spectrum/accumulator buffers. This is
//! the acceptance criterion of the batch-execution redesign: the Welch
//! hot loop runs at memory-bandwidth speed with nothing for the
//! allocator to do.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use nfbist_dsp::psd::{DspWorkspace, PeriodogramConfig, WelchConfig};
use nfbist_dsp::window::Window;

/// The allocation counter is process-global while libtest runs tests
/// on concurrent threads, so every test body in this binary holds this
/// lock: otherwise another test's setup allocations could land inside
/// a measured window and fail the `count == 0` assertion spuriously.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize_test() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY-FREE NOTE: the allocator merely delegates to `System` and
// bumps a counter; `unsafe` is confined to the required trait impl.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

fn noise(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

#[test]
fn steady_state_welch_estimate_is_allocation_free() {
    let _serial = serialize_test();
    // Radix-2 and Bluestein (the paper's 10⁴-point size, scaled down
    // to keep the test quick) both have to hold the property.
    for nfft in [1_024usize, 1_000] {
        let x = noise(20_000, 42);
        let cfg = WelchConfig::new(nfft).unwrap().window(Window::Hann);
        let mut ws = DspWorkspace::new();
        let mut out = vec![0.0f64; nfft / 2 + 1];

        // Warm-up: plans the FFT and allocates every scratch buffer.
        cfg.estimate_into(&x, 20_000.0, &mut ws, &mut out).unwrap();
        let warm = out.clone();

        let (count, result) = allocations(|| cfg.estimate_into(&x, 20_000.0, &mut ws, &mut out));
        result.unwrap();
        assert_eq!(
            count, 0,
            "steady-state welch (nfft {nfft}) must not allocate"
        );
        assert_eq!(out, warm, "reused buffers must not change the result");
    }
}

#[test]
fn steady_state_detrended_welch_is_allocation_free() {
    let _serial = serialize_test();
    let x = noise(10_000, 7);
    let cfg = WelchConfig::new(512).unwrap().detrend(true);
    let mut ws = DspWorkspace::new();
    let mut out = vec![0.0f64; 257];
    cfg.estimate_into(&x, 8_000.0, &mut ws, &mut out).unwrap();
    let (count, result) = allocations(|| cfg.estimate_into(&x, 8_000.0, &mut ws, &mut out));
    result.unwrap();
    assert_eq!(count, 0, "detrend path must not allocate either");
}

#[test]
fn steady_state_periodogram_is_allocation_free() {
    let _serial = serialize_test();
    let x = noise(2_048, 3);
    let cfg = PeriodogramConfig::new().window(Window::Hann);
    let mut ws = DspWorkspace::new();
    let mut out = vec![0.0f64; 1_025];
    cfg.estimate_into(&x, 4_000.0, &mut ws, &mut out).unwrap();
    let (count, result) = allocations(|| cfg.estimate_into(&x, 4_000.0, &mut ws, &mut out));
    result.unwrap();
    assert_eq!(count, 0, "steady-state periodogram must not allocate");
}

#[test]
fn allocating_entry_point_still_allocates_but_matches() {
    let _serial = serialize_test();
    // Sanity check on the counter itself, and on result equivalence
    // between the two entry points.
    let x = noise(8_192, 11);
    let cfg = WelchConfig::new(1_024).unwrap();
    let mut ws = DspWorkspace::new();
    let reused = cfg.estimate_with(&x, 10_000.0, &mut ws).unwrap();
    let (count, alloc) = allocations(|| cfg.estimate(&x, 10_000.0).unwrap());
    assert!(count > 0, "the per-call path does allocate");
    assert_eq!(alloc, reused);
}

#[test]
fn steady_state_streaming_welch_push_is_allocation_free() {
    let _serial = serialize_test();
    use nfbist_dsp::psd::StreamingWelch;
    // O(segment) memory means: once the carry, accumulator and plan
    // exist, pushing more chunks of a long record allocates nothing —
    // record length is a pure time cost.
    for nfft in [1_024usize, 1_000] {
        let chunk = noise(1_777, 13);
        let cfg = WelchConfig::new(nfft).unwrap().window(Window::Hann);
        let mut sw = StreamingWelch::new(cfg, 20_000.0).unwrap();
        // Warm-up: plans the FFT, grows the carry to one segment.
        sw.push(&chunk).unwrap();
        sw.push(&chunk).unwrap();
        let (count, result) = allocations(|| {
            for _ in 0..32 {
                sw.push(&chunk)?;
            }
            Ok::<(), nfbist_dsp::DspError>(())
        });
        result.unwrap();
        assert_eq!(
            count, 0,
            "steady-state streaming push (nfft {nfft}) must not allocate"
        );
        assert!(sw.segments() > 0);
    }
    // And the no-allocation finalize writes into caller scratch.
    let chunk = noise(4_096, 14);
    let mut sw = StreamingWelch::new(WelchConfig::new(512).unwrap(), 8_000.0).unwrap();
    sw.push(&chunk).unwrap();
    let mut out = vec![0.0f64; 257];
    sw.finalize_into(&mut out).unwrap();
    let (count, result) = allocations(|| sw.finalize_into(&mut out));
    result.unwrap();
    assert_eq!(count, 0, "finalize_into must not allocate");
}

#[test]
fn steady_state_sliding_welch_is_allocation_free() {
    let _serial = serialize_test();
    use nfbist_dsp::psd::SlidingWelch;
    // The monitoring loop's hot path: the window ring is allocated up
    // front, so pushing chunks and emitting windowed estimates — long
    // after the ring has wrapped — costs the allocator nothing.
    for nfft in [1_024usize, 1_000] {
        let chunk = noise(1_777, 17);
        let cfg = WelchConfig::new(nfft).unwrap().window(Window::Hann);
        let mut sw = SlidingWelch::new(cfg, 20_000.0, 6).unwrap();
        let mut out = vec![0.0f64; nfft / 2 + 1];
        // Warm-up: plans the FFT, fills carry and ring slots.
        sw.push(&chunk).unwrap();
        sw.push(&chunk).unwrap();
        sw.finalize_into(&mut out).unwrap();
        let (count, result) = allocations(|| {
            for _ in 0..32 {
                sw.push(&chunk)?;
                sw.finalize_into(&mut out)?;
            }
            Ok::<(), nfbist_dsp::DspError>(())
        });
        result.unwrap();
        assert_eq!(
            count, 0,
            "steady-state sliding push/emit (nfft {nfft}) must not allocate"
        );
        assert!(sw.segments_seen() > sw.window_segments(), "ring wrapped");
    }
}

#[test]
fn steady_state_forgetting_welch_is_allocation_free() {
    let _serial = serialize_test();
    use nfbist_dsp::psd::ForgettingWelch;
    for nfft in [1_024usize, 1_000] {
        let chunk = noise(1_777, 19);
        let cfg = WelchConfig::new(nfft).unwrap().window(Window::Hann);
        let mut fw = ForgettingWelch::new(cfg, 20_000.0, 0.9).unwrap();
        let mut out = vec![0.0f64; nfft / 2 + 1];
        fw.push(&chunk).unwrap();
        fw.push(&chunk).unwrap();
        fw.finalize_into(&mut out).unwrap();
        let (count, result) = allocations(|| {
            for _ in 0..32 {
                fw.push(&chunk)?;
                fw.finalize_into(&mut out)?;
            }
            Ok::<(), nfbist_dsp::DspError>(())
        });
        result.unwrap();
        assert_eq!(
            count, 0,
            "steady-state forgetting push/emit (nfft {nfft}) must not allocate"
        );
        assert!(fw.segments_seen() > 0);
    }
}
