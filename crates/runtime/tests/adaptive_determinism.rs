//! The adaptive (sequential early-stopping) fleet contract: a lot
//! screen running the checkpointed stop rule produces a `LotReport` —
//! wafer map included, every rolling statistic to the last bit — that
//! is identical across worker counts, global memory budgets, and
//! streaming chunk sizes. The stopping decision is a pure function of
//! `(lot seed, die index)`, so no scheduling freedom may leak into it.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
use nfbist_runtime::fleet::FleetPlan;
use nfbist_soc::coverage::FaultUniverse;
use nfbist_soc::fleet::{LotReport, LotScreen};
use nfbist_soc::screening::{Screen, SequentialScreen};
use nfbist_soc::setup::BistSetup;
use proptest::prelude::*;

/// An adaptive lot exercising every stopping mode: healthy dies
/// confirm an early Pass, 8x-noise defects gross-reject on two
/// unmeasurable checkpoints, 2x defects and guard-band process
/// variation ride to the cap and take the fixed-schedule verdict.
/// The operating point (limit +2.5 dB over expectation, 2-sigma
/// guard) leaves the sequential rule room to resolve before the cap.
fn adaptive_screening(lot_seed: u64, grid: usize, chunk: Option<usize>) -> LotScreen {
    let lot = Lot::new(
        WaferMap::disc(grid).unwrap(),
        ProcessVariation::default(),
        DefectModel::new()
            .background(0.10)
            .unwrap()
            .edge_gradient(0.25)
            .unwrap()
            .cluster(0.3, 0.3, 0.35, 0.8)
            .unwrap(),
        lot_seed,
    )
    .unwrap();
    let mut setup = BistSetup::quick(0); // seed overridden by the lot
    setup.samples = 1 << 14;
    setup.nfft = 1_024;
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .unwrap()
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
    let screen = Screen::new(expected + 2.5, 2.0).unwrap();
    let seq = SequentialScreen::new(screen, 0.05, 0.05)
        .unwrap()
        .min_samples(1 << 12);
    let mut screening = LotScreen::new(
        lot,
        setup,
        screen,
        FaultUniverse::new().excess_noise(&[2.0, 8.0]).unwrap(),
    )
    .unwrap()
    .adaptive(seq);
    if let Some(samples) = chunk {
        screening = screening.streaming_chunk(samples);
    }
    screening
}

/// Bitwise equality of everything a `LotReport` exposes — every
/// rolling statistic through `f64::to_bits`, every per-die outcome,
/// and the rendered wafer map. (Mirrors `fleet_determinism.rs`; the
/// adaptive suite keeps its own copy so each file stays standalone.)
fn assert_report_bits_identical(a: &LotReport, b: &LotReport, wafer: &WaferMap, label: &str) {
    assert_eq!(a.dies(), b.dies(), "{label}: die count");
    assert_eq!(
        a.yield_fraction().to_bits(),
        b.yield_fraction().to_bits(),
        "{label}: yield"
    );
    assert_eq!(
        a.retest_rate().to_bits(),
        b.retest_rate().to_bits(),
        "{label}: retest rate"
    );
    assert_eq!(
        a.mean_nf_db().to_bits(),
        b.mean_nf_db().to_bits(),
        "{label}: mean NF"
    );
    assert_eq!(
        a.mean_test_samples().to_bits(),
        b.mean_test_samples().to_bits(),
        "{label}: mean test samples"
    );
    assert_eq!(
        a.detection_rate().map(f64::to_bits),
        b.detection_rate().map(f64::to_bits),
        "{label}: detection rate"
    );
    assert_eq!(
        a.escape_rate().map(f64::to_bits),
        b.escape_rate().map(f64::to_bits),
        "{label}: escape rate"
    );
    assert_eq!(a.test_samples(), b.test_samples(), "{label}: test samples");
    for (i, (ya, yb)) in a.rolling_yield().iter().zip(b.rolling_yield()).enumerate() {
        assert_eq!(
            ya.to_bits(),
            yb.to_bits(),
            "{label}: rolling yield at die {i}"
        );
    }
    for (oa, ob) in a.outcomes().zip(b.outcomes()) {
        assert_eq!(oa.die, ob.die, "{label}: outcome order");
        assert_eq!(oa.defect, ob.defect, "{label}: die {} defect", oa.die);
        assert_eq!(oa.verdict, ob.verdict, "{label}: die {} verdict", oa.die);
        assert_eq!(oa.retests, ob.retests, "{label}: die {} retests", oa.die);
        assert_eq!(
            oa.nf_db.to_bits(),
            ob.nf_db.to_bits(),
            "{label}: die {} NF bits",
            oa.die
        );
        assert_eq!(
            oa.test_samples, ob.test_samples,
            "{label}: die {} test samples",
            oa.die
        );
    }
    assert_eq!(
        a.render_on(wafer).unwrap(),
        b.render_on(wafer).unwrap(),
        "{label}: wafer map"
    );
    assert_eq!(a, b, "{label}: reports differ");
}

/// The headline acceptance test: one adaptive lot, screened under
/// every combination of worker count and memory budget, reproduces
/// the sequential report bit for bit — per-die samples consumed (the
/// stopping points) included.
#[test]
fn adaptive_report_is_bit_identical_across_workers_and_budgets() {
    let screening = adaptive_screening(20_050_307, 6, None);
    let reference = screening.run().unwrap();

    // The lot must exercise the adaptive stopping modes the contract
    // talks about: early stops (samples below the fixed bill), gross
    // rejects, and zero retests (the schedule replaces escalation).
    let fixed_bill = screening.fixed_die_samples();
    assert!(
        reference.outcomes().any(|o| o.test_samples < fixed_bill),
        "some die must stop early: {reference}"
    );
    assert!(
        reference.gross() > 0,
        "the 8x-noise defects must produce gross rejects: {reference}"
    );
    assert_eq!(reference.retest_rate(), 0.0, "{reference}");

    let die_cost = screening.die_cost_bytes();
    for workers in [1usize, 2, 8] {
        for budget in [None, Some(die_cost), Some(3 * die_cost)] {
            let mut plan = FleetPlan::workers(workers);
            if let Some(bytes) = budget {
                plan = plan.memory_budget(bytes);
            }
            let report = plan.screen_lot(&screening).unwrap();
            assert_report_bits_identical(
                &reference,
                &report,
                screening.lot().wafer(),
                &format!("workers={workers} budget={budget:?}"),
            );
        }
    }
}

/// Streaming chunk size is pure plumbing: re-chunking the sequential
/// acquisition between checkpoints must not move a single stopping
/// point or flip a single bit of the report.
#[test]
fn adaptive_report_is_invariant_under_streaming_chunk_size() {
    let reference = adaptive_screening(20_050_307, 6, None).run().unwrap();
    for chunk in [1usize << 11, 1 << 12] {
        let screening = adaptive_screening(20_050_307, 6, Some(chunk));
        let report = FleetPlan::workers(2).screen_lot(&screening).unwrap();
        assert_report_bits_identical(
            &reference,
            &report,
            screening.lot().wafer(),
            &format!("chunk={chunk}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Schedule-independence over random adaptive lots: any seed, any
    /// worker count, any budget, any chunk size — same bits.
    #[test]
    fn any_adaptive_schedule_reproduces_the_sequential_report(
        lot_seed in 0u64..u64::MAX / 2,
        workers in 2usize..9,
        budget_dies in 1usize..4,
        chunk_pow in 11u32..13,
    ) {
        let screening = adaptive_screening(lot_seed, 4, Some(1 << chunk_pow));
        let reference = adaptive_screening(lot_seed, 4, None).run().unwrap();
        let report = FleetPlan::workers(workers)
            .memory_budget(budget_dies * screening.die_cost_bytes())
            .screen_lot(&screening)
            .unwrap();
        assert_report_bits_identical(
            &reference,
            &report,
            screening.lot().wafer(),
            &format!("seed={lot_seed} workers={workers} budget_dies={budget_dies} chunk=2^{chunk_pow}"),
        );
    }
}
