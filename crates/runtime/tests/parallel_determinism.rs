//! The batch engine's core contract: parallel execution is
//! **bit-for-bit identical** to sequential execution for the same
//! seeds — over the whole (trials × repeats × workers) grid, for both
//! the fast scale-preserving path and the full 1-bit estimator.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::AdcDigitizer;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_core::power_ratio::MeanSquareEstimator;
use nfbist_runtime::batch::{derive_seed, BatchPlan};
use nfbist_soc::multipoint::MultipointBist;
use nfbist_soc::session::{Measurement, MeasurementSession};
use nfbist_soc::setup::BistSetup;
use nfbist_soc::SocError;
use proptest::prelude::*;

/// A reduced setup that keeps the grid sweep fast: short records, tiny
/// FFT.
fn tiny_setup(seed: u64) -> BistSetup {
    BistSetup {
        samples: 1 << 12,
        nfft: 512,
        seed,
        ..BistSetup::paper_prototype(seed)
    }
}

/// A fast session: ADC front-end (scale-preserving) + time-domain
/// mean-square estimator, so a 4096-sample repeat costs microseconds.
fn fast_session(seed: u64, repeats: usize) -> Result<MeasurementSession, SocError> {
    let dut =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut");
    Ok(MeasurementSession::new(tiny_setup(seed))?
        .dut(dut)
        .digitizer(AdcDigitizer::new(12)?)
        .estimator(MeanSquareEstimator)
        .repeats(repeats))
}

/// Bitwise equality of everything a `Measurement` reports: Y, F, NF,
/// spread, reference amplitude, per-repeat ratios and band powers.
fn assert_bit_identical(a: &Measurement, b: &Measurement) {
    assert_eq!(a.nf.y.to_bits(), b.nf.y.to_bits(), "mean Y differs");
    assert_eq!(
        a.nf.factor.value().to_bits(),
        b.nf.factor.value().to_bits(),
        "noise factor differs"
    );
    assert_eq!(
        a.nf.figure.db().to_bits(),
        b.nf.figure.db().to_bits(),
        "NF differs"
    );
    assert_eq!(
        a.nf_spread_db.to_bits(),
        b.nf_spread_db.to_bits(),
        "spread differs"
    );
    assert_eq!(
        a.reference_amplitude.to_bits(),
        b.reference_amplitude.to_bits()
    );
    assert_eq!(a.usage, b.usage);
    assert_eq!(a.repeats.len(), b.repeats.len());
    for (ra, rb) in a.repeats.iter().zip(&b.repeats) {
        assert_eq!(
            ra.ratio.ratio.to_bits(),
            rb.ratio.ratio.to_bits(),
            "per-repeat ratio differs"
        );
        assert_eq!(ra.ratio.hot_power.to_bits(), rb.ratio.hot_power.to_bits());
        assert_eq!(ra.ratio.cold_power.to_bits(), rb.ratio.cold_power.to_bits());
        assert_eq!(
            ra.nf.map(|nf| nf.figure.db().to_bits()),
            rb.nf.map(|nf| nf.figure.db().to_bits())
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The trials × repeats grid: a parallel Monte Carlo batch must be
    /// bit-for-bit identical to the sequential batch for any worker
    /// count and any seed.
    #[test]
    fn parallel_session_batch_is_bit_identical_to_sequential(
        seed in 0u64..u64::MAX / 2,
        trials in 1usize..4,
        repeats in 1usize..4,
        workers in 2usize..5,
    ) {
        let build = |t: usize| fast_session(derive_seed(seed, t as u64), repeats);
        let sequential = BatchPlan::sequential()
            .run_monte_carlo(trials, build)
            .unwrap();
        let parallel = BatchPlan::new()
            .workers(workers)
            .run_monte_carlo(trials, build)
            .unwrap();
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential
            .measurements()
            .iter()
            .zip(parallel.measurements())
        {
            assert_bit_identical(s, p);
        }
    }

    /// Repeat fan-out: `BatchPlan::run_session` must reproduce
    /// `MeasurementSession::run` exactly for any worker count.
    #[test]
    fn parallel_repeats_match_sequential_run(
        seed in 0u64..u64::MAX / 2,
        repeats in 1usize..6,
        workers in 1usize..5,
    ) {
        let session = fast_session(seed, repeats).unwrap();
        let sequential = session.run().unwrap();
        let parallel = BatchPlan::new().workers(workers).run_session(&session).unwrap();
        assert_bit_identical(&sequential, &parallel);
    }
}

/// The full 1-bit estimator path (Welch PSDs, reference normalization,
/// workspace reuse inside the estimator) through the parallel repeat
/// fan-out: one heavier case, still bit-identical.
#[test]
fn one_bit_session_parallel_repeats_are_bit_identical() {
    let mut setup = BistSetup::quick(17);
    setup.samples = 1 << 15;
    setup.nfft = 1_024;
    let build = || {
        let dut =
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .expect("dut");
        MeasurementSession::new(setup.clone())
            .expect("session")
            .dut(dut)
            .repeats(4)
    };
    // Separate session instances so estimator workspaces are not
    // shared between the two runs.
    let sequential = build().run().expect("sequential run");
    let parallel = BatchPlan::new()
        .workers(4)
        .run_session(&build())
        .expect("parallel run");
    assert_bit_identical(&sequential, &parallel);
}

/// Multipoint fan-out (the §4.3 simultaneous-observation scenario):
/// parallel per-point estimation matches `measure_all`.
#[test]
fn multipoint_parallel_points_match_sequential() {
    let stage = |m: OpampModel| {
        Box::new(NonInvertingAmplifier::new(m, Ohms::new(1_000.0), Ohms::new(1_000.0)).unwrap())
            as Box<dyn nfbist_analog::dut::Dut>
    };
    let mut setup = BistSetup::quick(5);
    setup.samples = 1 << 15;
    setup.nfft = 1_024;
    let bist = MultipointBist::new(
        setup,
        vec![
            stage(OpampModel::op27()),
            stage(OpampModel::tl081()),
            stage(OpampModel::ca3140()),
        ],
    )
    .unwrap();
    let sequential = bist.measure_all().unwrap();
    let parallel = BatchPlan::new().workers(3).run_multipoint(&bist).unwrap();
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.stage, p.stage);
        assert_eq!(s.nf.y.to_bits(), p.nf.y.to_bits());
        assert_eq!(s.nf.figure.db().to_bits(), p.nf.figure.db().to_bits());
        assert_eq!(s.expected_nf_db.to_bits(), p.expected_nf_db.to_bits());
    }
}

/// Coverage-campaign fan-out: the parallel report must be bit-identical
/// to the sequential `CoverageCampaign::run` for any worker count —
/// including gross-reject cells (±∞ sentinels) and retest escalation.
#[test]
fn coverage_campaign_parallel_report_matches_sequential() {
    use nfbist_soc::coverage::{CoverageCampaign, FaultUniverse};
    use nfbist_soc::screening::{RetestPolicy, Screen};

    let mut setup = BistSetup::quick(23);
    setup.samples = 1 << 13;
    setup.nfft = 1_024;
    let universe = FaultUniverse::new()
        .input_attenuation(&[2.0])
        .unwrap()
        .gain_deviation(&[0.5])
        .unwrap()
        .interference(&[(500.0, 50.0)]) // gross: degenerates on purpose
        .unwrap();
    // Limit at the TL081's healthy expectation + margin (the campaign
    // default DUT).
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .unwrap()
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
    let campaign =
        CoverageCampaign::new(setup, Screen::new(expected + 1.2, 3.0).unwrap(), universe)
            .unwrap()
            .trials(3)
            .retest(RetestPolicy::new(2, 2).unwrap());
    let sequential = campaign.run().unwrap();
    for workers in [1usize, 2, 4] {
        let parallel = BatchPlan::new()
            .workers(workers)
            .run_coverage(&campaign)
            .unwrap();
        assert_eq!(
            sequential, parallel,
            "coverage report differs at {workers} workers"
        );
    }
    // And the cells really exercised the interesting outcomes: gross
    // rejects in the swamped class, no detections in the NF-blind one
    // (marginal cells may exhaust the round budget, but never Fail).
    assert!(sequential.class("interference").unwrap().gross > 0);
    assert_eq!(sequential.class("gain_deviation").unwrap().detected, 0);
}

#[test]
fn streaming_session_is_bit_identical_across_worker_counts() {
    // A streaming-mode session (memory budget far below the record)
    // fanned across 1 and 3 workers must recombine to the same bits —
    // and to the sequential streaming run.
    let mut setup = BistSetup::quick(17);
    setup.samples = 1 << 14;
    setup.nfft = 1_024;
    let session = MeasurementSession::new(setup)
        .expect("session")
        .dut(
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .expect("dut"),
        )
        .repeats(4)
        .memory_budget(32 * 1024);
    assert!(session.streaming_active());
    let sequential = session.run().expect("sequential run");
    for workers in [1usize, 3] {
        let fanned = BatchPlan::new()
            .workers(workers)
            .run_session(&session)
            .expect("fanned run");
        assert_eq!(fanned.nf.y.to_bits(), sequential.nf.y.to_bits());
        assert_eq!(
            fanned.nf_spread_db.to_bits(),
            sequential.nf_spread_db.to_bits()
        );
        for (a, b) in fanned.repeats.iter().zip(&sequential.repeats) {
            assert_eq!(a.ratio.ratio.to_bits(), b.ratio.ratio.to_bits());
        }
    }
}

#[test]
fn freqresp_parallel_points_match_sequential() {
    // Sweep points fan out across workers while each point's repeats
    // run as SoA Goertzel lanes; the assembled measurement must be
    // bit-identical to the sequential sweep for any worker count.
    use nfbist_analog::component::Amplifier;
    use nfbist_soc::freqresp::FrequencyResponseTester;

    let tester = FrequencyResponseTester::new(
        20_000.0,
        6_000,
        0.25,
        1.0,
        vec![400.0, 1_000.0, 2_500.0, 5_000.0],
        13,
    )
    .expect("tester")
    .repeats(3);
    let dut = Amplifier::ideal(4.0)
        .expect("dut")
        .with_bandwidth(2_000.0, 20_000.0)
        .expect("bandwidth");
    let sequential = tester.measure(&dut).expect("sequential sweep");
    for workers in [1usize, 2, 4] {
        let fanned = BatchPlan::new()
            .workers(workers)
            .run_freqresp(&tester, &dut)
            .expect("fanned sweep");
        assert_eq!(fanned.response.len(), sequential.response.len());
        for ((fa, ga), (fb, gb)) in fanned.response.iter().zip(&sequential.response) {
            assert_eq!(fa.to_bits(), fb.to_bits(), "frequency at {workers} workers");
            assert_eq!(ga.to_bits(), gb.to_bits(), "gain at {workers} workers");
        }
        assert_eq!(
            fanned.corner_hz.map(f64::to_bits),
            sequential.corner_hz.map(f64::to_bits),
            "{workers} workers"
        );
    }
}
