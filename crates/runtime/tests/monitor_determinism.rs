//! The monitoring subsystem's core contract: a mission's alarm
//! timeline — event kinds, absolute sample indices, NF estimates to
//! the last bit — is a pure function of `(seed, drift profile, window
//! config)`, identical across streaming chunk sizes, fleet worker
//! counts, and memory budgets; and runtime faults quarantine exactly
//! the monitor they hit without perturbing any other timeline.

use nfbist_analog::converter::AdcDigitizer;
use nfbist_analog::fault::{AnalogFault, DriftSchedule, DriftingDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_core::power_ratio::PsdRatioEstimator;
use nfbist_core::streaming::EstimatorWindow;
use nfbist_runtime::batch::derive_seed;
use nfbist_runtime::chaos::{install_quiet_panic_hook, ChaosConfig};
use nfbist_runtime::monitor::{MonitorFleetReport, MonitorPlan};
use nfbist_soc::monitor::{AlarmKind, MonitorSession};
use nfbist_soc::setup::BistSetup;
use nfbist_soc::SocError;

const FLEET: usize = 4;
const BASE_SEED: u64 = 20_050_307;

fn amp() -> nfbist_analog::circuits::NonInvertingAmplifier {
    nfbist_analog::circuits::NonInvertingAmplifier::new(
        OpampModel::op27(),
        Ohms::new(10_000.0),
        Ohms::new(100.0),
    )
    .unwrap()
}

/// One fleet monitor's mission: PSD estimator over an 8-segment
/// sliding window; odd-indexed monitors age through an 8x excess-noise
/// step mid-mission, even-indexed monitors stay healthy. `chunk`
/// overrides the streaming chunk length, `budget` the session memory
/// budget — the two knobs the timeline must be independent of.
fn mission(
    index: usize,
    chunk: Option<usize>,
    budget: Option<usize>,
) -> Result<MonitorSession, SocError> {
    let mut setup = BistSetup::quick(derive_seed(BASE_SEED, index as u64));
    setup.samples = 1 << 14;
    setup.nfft = 1_024;
    let estimator = PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band)?;
    let mut monitor = MonitorSession::new(setup)?
        .digitizer(AdcDigitizer::new(12)?)
        .estimator(estimator)
        .window(EstimatorWindow::Sliding { segments: 8 })
        .warmup(4)
        .nf_limit_db(20.0);
    monitor = if index % 2 == 1 {
        monitor.dut(
            DriftingDut::new(amp(), DriftSchedule::Step { at: 6_000 })?
                .with_fault(AnalogFault::ExcessNoise { factor: 8.0 })?,
        )
    } else {
        monitor.dut(amp())
    };
    if let Some(samples) = chunk {
        monitor = monitor.streaming_chunk_len(samples);
    }
    if let Some(bytes) = budget {
        monitor = monitor.memory_budget(bytes);
    }
    Ok(monitor)
}

fn assert_fleet_bits_identical(a: &MonitorFleetReport, b: &MonitorFleetReport, label: &str) {
    assert_eq!(a.monitors(), b.monitors(), "{label}: fleet size");
    assert_eq!(a.faulted(), 0, "{label}: clean runs must not fault");
    assert_eq!(b.faulted(), 0, "{label}: clean runs must not fault");
    for ((i, ra), (_, rb)) in a.reports().zip(b.reports()) {
        assert_eq!(
            ra.alarm_signature(),
            rb.alarm_signature(),
            "{label}: monitor {i} alarm timeline"
        );
        assert_eq!(
            ra.series_signature(),
            rb.series_signature(),
            "{label}: monitor {i} NF series"
        );
        assert_eq!(
            ra.baseline_db().map(f64::to_bits),
            rb.baseline_db().map(f64::to_bits),
            "{label}: monitor {i} baseline"
        );
        assert_eq!(
            ra.skipped_emissions(),
            rb.skipped_emissions(),
            "{label}: monitor {i} skipped emissions"
        );
    }
}

/// The headline acceptance test: the same fleet run under every
/// combination of streaming chunk size (divisor, larger, non-divisor
/// of the segment length), worker count, and memory budget must
/// reproduce the reference timelines bit for bit.
#[test]
fn timelines_are_bit_identical_across_chunks_workers_and_budgets() {
    let reference = MonitorPlan::sequential().run_fleet(FLEET, 1 << 16, |i| mission(i, None, None));

    // The fleet must actually contain both timeline shapes: drifting
    // monitors alarm (and only after their defect activates), healthy
    // monitors stay quiet.
    let drifted = reference.monitors_with(AlarmKind::DriftAlarm);
    assert_eq!(drifted, vec![1, 3], "odd monitors must raise drift alarms");
    for (i, report) in reference.reports() {
        if i % 2 == 1 {
            let alarm = report.first_event(AlarmKind::DriftAlarm).unwrap();
            assert!(
                alarm.sample_index > 6_000,
                "monitor {i} alarmed at {} before its defect at 6000",
                alarm.sample_index
            );
        } else {
            assert!(report.first_event(AlarmKind::LimitViolation).is_none());
        }
        assert!(report.first_event(AlarmKind::WarmupComplete).is_some());
    }

    for chunk in [Some(1_024), Some(4_096), Some(1_000), None] {
        for workers in [1usize, 2, 8] {
            for budget in [None, Some(1usize << 16)] {
                let plan = match budget {
                    Some(bytes) => MonitorPlan::workers(workers).memory_budget(bytes),
                    None => MonitorPlan::workers(workers),
                };
                let fleet = plan.run_fleet(FLEET, 1 << 16, |i| mission(i, chunk, budget));
                assert_fleet_bits_identical(
                    &reference,
                    &fleet,
                    &format!("chunk={chunk:?} workers={workers} budget={budget:?}"),
                );
            }
        }
    }
}

/// Fault isolation: a seeded panic injected into one monitor's mission
/// quarantines exactly that monitor; every surviving monitor's
/// timeline carries the clean run's exact bits.
#[test]
fn injected_panic_quarantines_one_monitor_without_perturbing_the_rest() {
    install_quiet_panic_hook();
    let clean = MonitorPlan::sequential().run_fleet(FLEET, 1 << 16, |i| mission(i, None, None));
    let chaos = ChaosConfig::new(1)
        .panic_rate_per_mille(250)
        .stall_rate_per_mille(0)
        .alloc_rate_per_mille(0)
        .faulty_attempts(1);
    let marked: Vec<usize> = chaos
        .scheduled_faults(FLEET)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    assert_eq!(marked.len(), 1, "seed 1 must mark exactly one monitor");

    let fleet = MonitorPlan::workers(2)
        .chaos(chaos)
        .run_fleet(FLEET, 1 << 16, |i| mission(i, None, None));
    assert!(fleet.degraded());
    let faulted: Vec<usize> = fleet.faults().map(|f| f.monitor).collect();
    assert_eq!(faulted, marked, "exactly the marked monitor must fault");
    assert_eq!(fleet.completed(), FLEET - 1);
    for (i, report) in fleet.reports() {
        let reference = clean.outcomes()[i].report().unwrap();
        assert_eq!(
            report.alarm_signature(),
            reference.alarm_signature(),
            "surviving monitor {i} timeline perturbed by the quarantine"
        );
        assert_eq!(
            report.series_signature(),
            reference.series_signature(),
            "surviving monitor {i} NF series perturbed by the quarantine"
        );
    }

    // A retry budget recovers the marked monitor completely.
    let recovered = MonitorPlan::workers(2)
        .task_policy(nfbist_runtime::supervisor::TaskPolicy::new().attempts(2))
        .chaos(chaos)
        .run_fleet(FLEET, 1 << 16, |i| mission(i, None, None));
    assert!(!recovered.degraded());
    assert_eq!(recovered, clean, "recovered fleet must be bit-identical");
}
