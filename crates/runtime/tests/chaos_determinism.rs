//! The fault-tolerance contract under seeded chaos: injected runtime
//! faults (worker panics, allocation failures, stalls) never change
//! the bits of any *surviving* die's outcome, for any worker count or
//! memory budget — and the set of degraded dies matches the injected
//! schedule exactly.
//!
//! `NFBIST_CHAOS=<seed>` re-seeds the whole suite (CI runs it once
//! under a fixed seed on top of the default run).

use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
use nfbist_runtime::chaos::{install_quiet_panic_hook, ChaosConfig, InjectedFault};
use nfbist_runtime::fleet::FleetPlan;
use nfbist_runtime::supervisor::{Backoff, TaskPolicy};
use nfbist_soc::coverage::FaultUniverse;
use nfbist_soc::fleet::{DieFaultKind, LotScreen, LotStatus};
use nfbist_soc::screening::{Screen, SequentialScreen};
use nfbist_soc::setup::BistSetup;
use proptest::prelude::*;
use std::time::Duration;

fn chaos_seed_base() -> u64 {
    ChaosConfig::from_env().map_or(20_050_307, |c| c.seed())
}

fn small_screening(lot_seed: u64) -> LotScreen {
    let lot = Lot::new(
        WaferMap::disc(4).unwrap(),
        ProcessVariation::default(),
        DefectModel::new().background(0.2).unwrap(),
        lot_seed,
    )
    .unwrap();
    let mut setup = BistSetup::quick(0);
    setup.samples = 1 << 13;
    setup.nfft = 1_024;
    LotScreen::new(
        lot,
        setup,
        Screen::new(12.0, 3.0).unwrap(),
        FaultUniverse::new().excess_noise(&[2.0, 8.0]).unwrap(),
    )
    .unwrap()
}

/// The same small lot in adaptive (sequential early-stopping) mode:
/// for these lots the runtime injects panic and stall chaos *inside*
/// the first checkpoint probe — mid-acquisition, with partial chunks
/// already sitting in the streaming accumulators — instead of before
/// the task starts.
fn adaptive_small_screening(lot_seed: u64) -> LotScreen {
    let screening = small_screening(lot_seed);
    let seq = SequentialScreen::new(*screening.screen(), 0.05, 0.05)
        .unwrap()
        .min_samples(1 << 12);
    screening.adaptive(seq)
}

/// Panic + allocation-failure chaos (no stalls: those need wall-clock
/// deadlines and belong in the dedicated test below) at rates high
/// enough to mark dies in a small lot.
fn fast_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig::new(seed)
        .panic_rate_per_mille(200)
        .stall_rate_per_mille(0)
        .alloc_rate_per_mille(150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// For any chaos seed, worker count and budget: the degraded die
    /// set equals the injected schedule exactly, and every surviving
    /// die is bit-identical to the clean sequential run.
    #[test]
    fn chaos_degrades_exactly_the_scheduled_dies(
        seed_offset in 0u64..1_000,
        budget_dies in 1usize..4,
    ) {
        install_quiet_panic_hook();
        let screening = small_screening(77);
        let clean = screening.run().unwrap();
        let chaos = fast_chaos(chaos_seed_base().wrapping_add(seed_offset));
        let marked: Vec<(usize, InjectedFault)> =
            chaos.scheduled_faults(screening.dies());

        let mut reports = Vec::new();
        for workers in [1usize, 2, 8] {
            let report = FleetPlan::workers(workers)
                .memory_budget(budget_dies * screening.die_cost_bytes())
                .chaos(chaos)
                .screen_lot(&screening)
                .unwrap();
            prop_assert_eq!(report.dies(), screening.dies());
            prop_assert_eq!(report.faulted(), marked.len());
            prop_assert_eq!(report.degraded(), !marked.is_empty());
            // The degraded die set is exactly the injected schedule,
            // kind for kind.
            let faulted: Vec<usize> = report.faults().map(|f| f.die).collect();
            let scheduled: Vec<usize> = marked.iter().map(|(i, _)| *i).collect();
            prop_assert_eq!(faulted, scheduled);
            for (fault, (_, injected)) in report.faults().zip(marked.iter()) {
                match injected {
                    InjectedFault::Panic => prop_assert!(
                        matches!(fault.kind, DieFaultKind::Panicked { .. })
                    ),
                    InjectedFault::AllocFailure => prop_assert_eq!(
                        &fault.kind,
                        &DieFaultKind::AllocationFailed
                    ),
                    InjectedFault::Stall => prop_assert!(false, "stall rate is zero"),
                    _ => prop_assert!(false, "unknown injected fault"),
                }
            }
            // Survivors carry the clean run's exact bits.
            for record in report.records() {
                if let Some(outcome) = record.outcome() {
                    let reference = clean
                        .outcomes()
                        .find(|o| o.die == outcome.die)
                        .expect("clean run screens every die");
                    prop_assert_eq!(outcome.nf_db.to_bits(), reference.nf_db.to_bits());
                    prop_assert_eq!(outcome, reference);
                }
            }
            reports.push((workers, report));
        }
        // And the whole degraded report is schedule-independent.
        let (_, first) = &reports[0];
        for (_workers, report) in &reports[1..] {
            prop_assert_eq!(report, first);
        }
    }
}

/// Retry recovery is deterministic: with faults clearing after one
/// attempt and a two-attempt policy, every die recovers and the report
/// is bit-identical to the clean run — the chaos run leaves no trace.
#[test]
fn retry_recovery_leaves_no_trace() {
    install_quiet_panic_hook();
    let screening = small_screening(5);
    let clean = screening.run().unwrap();
    let chaos = fast_chaos(chaos_seed_base()).faulty_attempts(1);
    assert!(
        !chaos.scheduled_faults(screening.dies()).is_empty(),
        "seed must mark at least one die for the test to mean anything"
    );
    for workers in [1usize, 2, 8] {
        let report = FleetPlan::workers(workers)
            .task_policy(
                TaskPolicy::new()
                    .attempts(2)
                    .backoff(Backoff::fixed(Duration::from_millis(1))),
            )
            .chaos(chaos)
            .screen_lot(&screening)
            .unwrap();
        assert_eq!(report.status(), LotStatus::Complete, "workers={workers}");
        assert_eq!(report, clean, "workers={workers}");
    }
}

/// Stall injection under a deadline: the stalled dies (and only they)
/// are discarded as deadline faults, deterministically, on every
/// worker count.
#[test]
fn stalls_blow_deadlines_deterministically() {
    install_quiet_panic_hook();
    let screening = small_screening(9);
    let chaos = ChaosConfig::new(chaos_seed_base() ^ 0xABCD)
        .panic_rate_per_mille(0)
        .stall_rate_per_mille(150)
        .alloc_rate_per_mille(0)
        .stall_extra(Duration::from_millis(25));
    let stalled: Vec<usize> = chaos
        .scheduled_faults(screening.dies())
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    assert!(!stalled.is_empty(), "seed must stall at least one die");
    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let report = FleetPlan::workers(workers)
            .task_policy(TaskPolicy::new().deadline(Duration::from_millis(1200)))
            .chaos(chaos)
            .screen_lot(&screening)
            .unwrap();
        assert_eq!(report.status(), LotStatus::Degraded, "workers={workers}");
        let faulted: Vec<usize> = report.faults().map(|f| f.die).collect();
        assert_eq!(faulted, stalled, "workers={workers}");
        for fault in report.faults() {
            assert_eq!(fault.kind, DieFaultKind::DeadlineExceeded);
        }
        reports.push(report);
    }
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "degraded reports must be identical across worker counts"
    );
}

/// Adaptive lots take the mid-acquisition chaos path: a die marked
/// for panic dies *inside* its first checkpoint probe, with partial
/// chunks already in the streaming accumulators. It must land as a
/// plain `Faulted` record — no outcome, no half-folded floats — and
/// every surviving die must carry the clean adaptive run's exact
/// bits, on any worker count.
#[test]
fn adaptive_chaos_quarantines_mid_acquisition_dies() {
    install_quiet_panic_hook();
    let screening = adaptive_small_screening(77);
    let clean = screening.run().unwrap();
    let chaos = fast_chaos(chaos_seed_base());
    let marked: Vec<(usize, InjectedFault)> = chaos.scheduled_faults(screening.dies());
    assert!(!marked.is_empty(), "seed must mark at least one die");

    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        let report = FleetPlan::workers(workers)
            .chaos(chaos)
            .screen_lot(&screening)
            .unwrap();
        assert_eq!(report.status(), LotStatus::Degraded, "workers={workers}");
        let faulted: Vec<usize> = report.faults().map(|f| f.die).collect();
        let scheduled: Vec<usize> = marked.iter().map(|(i, _)| *i).collect();
        assert_eq!(faulted, scheduled, "workers={workers}");
        for (fault, (_, injected)) in report.faults().zip(marked.iter()) {
            match injected {
                InjectedFault::Panic => {
                    assert!(matches!(fault.kind, DieFaultKind::Panicked { .. }))
                }
                InjectedFault::AllocFailure => {
                    assert_eq!(fault.kind, DieFaultKind::AllocationFailed)
                }
                other => panic!("unexpected scheduled fault {other:?}"),
            }
        }
        // Survivors carry the clean adaptive run's exact bits —
        // stopping points (test_samples) included.
        for record in report.records() {
            if let Some(outcome) = record.outcome() {
                let reference = clean
                    .outcomes()
                    .find(|o| o.die == outcome.die)
                    .expect("clean run screens every die");
                assert_eq!(outcome.nf_db.to_bits(), reference.nf_db.to_bits());
                assert_eq!(outcome, reference);
            }
        }
        reports.push(report);
    }
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "degraded adaptive reports must be identical across worker counts"
    );
}

/// A die killed mid-acquisition and retried must reproduce the clean
/// adaptive report bit for bit: the aborted attempt's partial chunks
/// leave no trace in any accumulator.
#[test]
fn adaptive_retry_recovery_leaves_no_trace() {
    install_quiet_panic_hook();
    let screening = adaptive_small_screening(5);
    let clean = screening.run().unwrap();
    let chaos = fast_chaos(chaos_seed_base()).faulty_attempts(1);
    assert!(
        !chaos.scheduled_faults(screening.dies()).is_empty(),
        "seed must mark at least one die for the test to mean anything"
    );
    for workers in [1usize, 2, 8] {
        let report = FleetPlan::workers(workers)
            .task_policy(
                TaskPolicy::new()
                    .attempts(2)
                    .backoff(Backoff::fixed(Duration::from_millis(1))),
            )
            .chaos(chaos)
            .screen_lot(&screening)
            .unwrap();
        assert_eq!(report.status(), LotStatus::Complete, "workers={workers}");
        assert_eq!(report, clean, "workers={workers}");
    }
}

/// Stalls injected mid-acquisition (inside the checkpoint probe) blow
/// the task deadline exactly like pre-task stalls: the stalled dies,
/// and only they, are discarded as deadline faults on every worker
/// count.
#[test]
fn adaptive_stalls_blow_deadlines_mid_acquisition() {
    install_quiet_panic_hook();
    let screening = adaptive_small_screening(9);
    let chaos = ChaosConfig::new(chaos_seed_base() ^ 0xABCD)
        .panic_rate_per_mille(0)
        .stall_rate_per_mille(150)
        .alloc_rate_per_mille(0)
        .stall_extra(Duration::from_millis(25));
    let stalled: Vec<usize> = chaos
        .scheduled_faults(screening.dies())
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    assert!(!stalled.is_empty(), "seed must stall at least one die");
    let mut reports = Vec::new();
    for workers in [1usize, 2, 8] {
        // A generous deadline: the stall still sleeps past it by
        // construction, while clean dies — paying real acquisition
        // work before any mid-stream stall could fire — never get
        // close even on a contended debug build.
        let report = FleetPlan::workers(workers)
            .task_policy(TaskPolicy::new().deadline(Duration::from_millis(4000)))
            .chaos(chaos)
            .screen_lot(&screening)
            .unwrap();
        assert_eq!(report.status(), LotStatus::Degraded, "workers={workers}");
        let faulted: Vec<usize> = report.faults().map(|f| f.die).collect();
        assert_eq!(faulted, stalled, "workers={workers}");
        for fault in report.faults() {
            assert_eq!(fault.kind, DieFaultKind::DeadlineExceeded);
        }
        reports.push(report);
    }
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "degraded adaptive reports must be identical across worker counts"
    );
}
