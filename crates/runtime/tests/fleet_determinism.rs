//! The fleet engine's core contract: a lot screen's `LotReport` —
//! wafer map included, every rolling statistic to the last bit — is
//! identical across worker counts, global memory budgets, and the
//! admission/backpressure orderings they induce, for lots containing
//! gross-reject and retest-escalation dies.

use nfbist_analog::wafer::{die_seed, DefectModel, Lot, ProcessVariation, WaferMap};
use nfbist_runtime::batch::derive_seed;
use nfbist_runtime::fleet::FleetPlan;
use nfbist_soc::coverage::FaultUniverse;
use nfbist_soc::fleet::{LotReport, LotScreen};
use nfbist_soc::screening::{RetestPolicy, Screen};
use nfbist_soc::setup::BistSetup;
use proptest::prelude::*;

/// The analog layer's `die_seed` is documented to be the same
/// function as the SoC layer's `derive_seed` (the analog crate sits
/// below the SoC crate and restates it). Pin the two implementations
/// together bit for bit so they can never drift apart silently.
#[test]
fn die_seed_is_derive_seed() {
    for (base, index) in [
        (0u64, 0u64),
        (42, 7),
        (u64::MAX, u64::MAX),
        (0xDEAD_BEEF, 1_000),
    ] {
        assert_eq!(die_seed(base, index), derive_seed(base, index));
    }
    for index in 0..4_096u64 {
        assert_eq!(die_seed(20_050_307, index), derive_seed(20_050_307, index));
    }
}

/// A die's measurement seed is exactly `derive_seed(lot_seed, index)`
/// — the one value its whole screening outcome is a function of.
#[test]
fn die_measurement_seeds_walk_from_the_lot_seed() {
    let lot = Lot::new(
        WaferMap::disc(6).unwrap(),
        ProcessVariation::default(),
        DefectModel::new().background(0.2).unwrap(),
        99,
    )
    .unwrap();
    for i in 0..lot.dies() {
        assert_eq!(lot.die(i).unwrap().seed, derive_seed(99, i as u64));
    }
}

/// A lot screen exercising every interesting outcome: a calibrated
/// screen with retest escalation (marginal dies retest), moderate
/// defects (finite-NF fails) and gross defects (unmeasurable Y —
/// `nf_db = ∞` sentinels through the fold), over clustered +
/// edge-gradient spatial defects.
fn eventful_screening(lot_seed: u64, grid: usize) -> LotScreen {
    let lot = Lot::new(
        WaferMap::disc(grid).unwrap(),
        ProcessVariation::default(),
        DefectModel::new()
            .background(0.10)
            .unwrap()
            .edge_gradient(0.25)
            .unwrap()
            .cluster(0.3, 0.3, 0.35, 0.8)
            .unwrap(),
        lot_seed,
    )
    .unwrap();
    let mut setup = BistSetup::quick(0); // seed overridden by the lot
    setup.samples = 1 << 13;
    setup.nfft = 1_024;
    // Limit 1.2 dB over the TL081 default DUT's expectation: healthy
    // dies pass, 2x noise defects fail with finite NF, 8x defects go
    // gross, and process variation parks some dies in the guard band.
    let expected = nfbist_analog::circuits::NonInvertingAmplifier::new(
        nfbist_analog::opamp::OpampModel::tl081(),
        nfbist_analog::units::Ohms::new(10_000.0),
        nfbist_analog::units::Ohms::new(100.0),
    )
    .unwrap()
    .expected_noise_figure_db(nfbist_analog::units::Ohms::new(2_000.0), 100.0, 1_000.0)
    .unwrap();
    LotScreen::new(
        lot,
        setup,
        Screen::new(expected + 1.2, 3.0).unwrap(),
        FaultUniverse::new().excess_noise(&[2.0, 8.0]).unwrap(),
    )
    .unwrap()
    .retest(RetestPolicy::new(2, 2).unwrap())
}

/// Bitwise equality of everything a `LotReport` exposes — every
/// rolling statistic through `f64::to_bits`, every per-die outcome,
/// and the rendered wafer map.
fn assert_report_bits_identical(a: &LotReport, b: &LotReport, wafer: &WaferMap, label: &str) {
    assert_eq!(a.dies(), b.dies(), "{label}: die count");
    assert_eq!(
        a.yield_fraction().to_bits(),
        b.yield_fraction().to_bits(),
        "{label}: yield"
    );
    assert_eq!(
        a.retest_rate().to_bits(),
        b.retest_rate().to_bits(),
        "{label}: retest rate"
    );
    assert_eq!(
        a.mean_nf_db().to_bits(),
        b.mean_nf_db().to_bits(),
        "{label}: mean NF"
    );
    assert_eq!(
        a.mean_test_samples().to_bits(),
        b.mean_test_samples().to_bits(),
        "{label}: mean test samples"
    );
    assert_eq!(
        a.detection_rate().map(f64::to_bits),
        b.detection_rate().map(f64::to_bits),
        "{label}: detection rate"
    );
    assert_eq!(
        a.escape_rate().map(f64::to_bits),
        b.escape_rate().map(f64::to_bits),
        "{label}: escape rate"
    );
    assert_eq!(a.test_samples(), b.test_samples(), "{label}: test samples");
    assert_eq!(
        a.rolling_yield().len(),
        b.rolling_yield().len(),
        "{label}: rolling series length"
    );
    for (i, (ya, yb)) in a.rolling_yield().iter().zip(b.rolling_yield()).enumerate() {
        assert_eq!(
            ya.to_bits(),
            yb.to_bits(),
            "{label}: rolling yield at die {i}"
        );
    }
    for (oa, ob) in a.outcomes().zip(b.outcomes()) {
        assert_eq!(oa.die, ob.die, "{label}: outcome order");
        assert_eq!(oa.defect, ob.defect, "{label}: die {} defect", oa.die);
        assert_eq!(oa.verdict, ob.verdict, "{label}: die {} verdict", oa.die);
        assert_eq!(oa.retests, ob.retests, "{label}: die {} retests", oa.die);
        assert_eq!(
            oa.nf_db.to_bits(),
            ob.nf_db.to_bits(),
            "{label}: die {} NF bits",
            oa.die
        );
        assert_eq!(
            oa.test_samples, ob.test_samples,
            "{label}: die {} test samples",
            oa.die
        );
    }
    assert_eq!(
        a.render_on(wafer).unwrap(),
        b.render_on(wafer).unwrap(),
        "{label}: wafer map"
    );
    // And the wholesale comparison agrees with the field-by-field one.
    assert_eq!(a, b, "{label}: reports differ");
}

/// The headline acceptance test: one eventful lot, screened under
/// every combination of worker count and memory budget — including a
/// budget that fully serializes admission — must reproduce the
/// sequential report bit for bit.
#[test]
fn lot_report_is_bit_identical_across_workers_and_budgets() {
    let screening = eventful_screening(20_050_307, 6);
    let reference = screening.run().unwrap();

    // The lot must actually contain the hard cases the contract talks
    // about: gross rejects and retest escalations.
    assert!(
        reference.gross() > 0,
        "the 8x-noise defects must produce gross rejects: {reference}"
    );
    assert!(
        reference.retested() > 0,
        "marginal dies must escalate at least once: {reference}"
    );
    assert!(reference.defective() > 0 && reference.passed() > 0);

    let die_cost = screening.die_cost_bytes();
    for workers in [1usize, 2, 8] {
        for budget in [None, Some(die_cost), Some(3 * die_cost)] {
            let mut plan = FleetPlan::workers(workers);
            if let Some(bytes) = budget {
                plan = plan.memory_budget(bytes);
            }
            let report = plan.screen_lot(&screening).unwrap();
            assert_report_bits_identical(
                &reference,
                &report,
                screening.lot().wafer(),
                &format!("workers={workers} budget={budget:?}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Schedule-independence over random lots: any seed, any worker
    /// count, any (serializing or relaxed) budget — same bits.
    #[test]
    fn any_schedule_reproduces_the_sequential_report(
        lot_seed in 0u64..u64::MAX / 2,
        workers in 2usize..9,
        budget_dies in 1usize..4,
    ) {
        let screening = eventful_screening(lot_seed, 4);
        let reference = screening.run().unwrap();
        let report = FleetPlan::workers(workers)
            .memory_budget(budget_dies * screening.die_cost_bytes())
            .screen_lot(&screening)
            .unwrap();
        assert_report_bits_identical(
            &reference,
            &report,
            screening.lot().wafer(),
            &format!("seed={lot_seed} workers={workers} budget_dies={budget_dies}"),
        );
    }
}
