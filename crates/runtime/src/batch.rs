//! Batch plans over measurement sessions: deterministic parallel
//! fan-out of repeats, Monte Carlo trials, sweep cells and multipoint
//! slots.
//!
//! Determinism is the design constraint: a batch run with `N` workers
//! must produce **bit-identical** output to the same batch run with 1
//! worker (or the plain sequential API). Two properties deliver that:
//!
//! 1. Every task is self-contained and fully determined by its index —
//!    per-repeat seeds come from the session's own
//!    `(setup seed, repeat index)` derivation, per-trial seeds from
//!    [`derive_seed`].
//! 2. The executor is slot-indexed (task `i`'s result lands at index
//!    `i`), so reduction order never depends on scheduling.

use crate::executor::BatchExecutor;
use nfbist_analog::component::Amplifier;
use nfbist_analog::noise::NoiseSourceState;
use nfbist_soc::coverage::{CellOutcome, CoverageCampaign, CoverageReport};
use nfbist_soc::freqresp::{FrequencyResponseMeasurement, FrequencyResponseTester};
use nfbist_soc::multipoint::{MultipointBist, PointMeasurement};
use nfbist_soc::session::{Measurement, MeasurementSession, RepeatMeasurement};
use nfbist_soc::SocError;

/// The golden-ratio increment seeding the derivation walk —
/// re-exported from the session itself
/// ([`nfbist_soc::session::REPEAT_SEED_STRIDE`]) so the two layers
/// share one constant.
pub const SEED_STRIDE: u64 = nfbist_soc::session::REPEAT_SEED_STRIDE;

/// Deterministic per-index seed derivation (golden-ratio walk +
/// SplitMix64 finalizer), re-exported from
/// [`nfbist_soc::session::derive_seed`] — the one canonical scheme
/// shared by trial fan-out here and the coverage campaign's cells.
pub use nfbist_soc::session::derive_seed;

/// How a batch is executed: the worker count, and the executor built
/// from it.
///
/// # Examples
///
/// Fanning a session's repeats across workers, bit-identical to
/// `session.run()`:
///
/// ```no_run
/// use nfbist_runtime::batch::BatchPlan;
/// use nfbist_soc::session::MeasurementSession;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let session = MeasurementSession::new(BistSetup::quick(7))?.repeats(8);
/// let parallel = BatchPlan::new().run_session(&session)?;
/// let sequential = session.run()?;
/// assert_eq!(parallel.nf.y, sequential.nf.y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlan {
    workers: usize,
}

impl BatchPlan {
    /// A plan sized to the machine's available parallelism.
    pub fn new() -> Self {
        BatchPlan {
            workers: BatchExecutor::with_available_parallelism().workers(),
        }
    }

    /// A single-worker plan: every batch degenerates to the sequential
    /// path (useful as the determinism baseline).
    pub fn sequential() -> Self {
        BatchPlan { workers: 1 }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// The effective worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The executor this plan drives.
    pub fn executor(&self) -> BatchExecutor {
        BatchExecutor::new(self.workers)
    }

    /// Runs one session with its repeats fanned out across workers.
    ///
    /// The run-invariant conditioning (front-end gain, reference
    /// waveform) is computed once and shared by reference; each repeat
    /// is then an independent task seeded by its index, and the
    /// outcomes are recombined with the session's own
    /// [`MeasurementSession::combine`] — making the result
    /// bit-identical to [`MeasurementSession::run`] for any worker
    /// count.
    ///
    /// A session in streaming mode
    /// ([`MeasurementSession::streaming_active`]) fans out
    /// [`MeasurementSession::measure_repeat_streaming`] cells instead:
    /// each worker runs its repeats chunk by chunk under the memory
    /// budget (no materialized reference waveform either), and the
    /// recombined measurement is *still* bit-identical to the
    /// sequential run for any worker count — the streaming repeat is a
    /// pure function of `(setup seed, repeat index)` exactly like the
    /// batch one.
    ///
    /// # Errors
    ///
    /// Propagates acquisition, estimation and combination errors (the
    /// first failing repeat wins, in repeat order).
    pub fn run_session(&self, session: &MeasurementSession) -> Result<Measurement, SocError> {
        let outcomes = if session.streaming_active() {
            let gain = session.frontend_gain()?;
            let tasks: Vec<_> = (0..session.repeat_count())
                .map(|r| move || session.measure_repeat_streaming(r, gain))
                .collect();
            self.executor().run(tasks)
        } else {
            let (gain, reference) = session.conditioning()?;
            let reference = &reference;
            let tasks: Vec<_> = (0..session.repeat_count())
                .map(|r| move || session.measure_repeat_conditioned(r, gain, reference))
                .collect();
            self.executor().run(tasks)
        };
        let mut repeats: Vec<RepeatMeasurement> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            repeats.push(outcome?);
        }
        session.combine(repeats)
    }

    /// Runs `trials` independent sessions — a Monte Carlo batch — with
    /// whole trials fanned out across workers. `build` receives the
    /// trial index and constructs that trial's session (typically from
    /// a seed derived via [`derive_seed`]); each task then builds *and*
    /// runs its session so per-trial state (estimator workspaces, DSP
    /// plans) never crosses a thread.
    ///
    /// # Errors
    ///
    /// Propagates the first failing trial, in trial order.
    pub fn run_monte_carlo<B>(&self, trials: usize, build: B) -> Result<SessionBatch, SocError>
    where
        B: Fn(usize) -> Result<MeasurementSession, SocError> + Sync,
    {
        let build = &build;
        let tasks: Vec<_> = (0..trials)
            .map(|t| move || build(t).and_then(|session| session.run()))
            .collect();
        let outcomes = self.executor().run(tasks);
        let mut measurements = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            measurements.push(outcome?);
        }
        Ok(SessionBatch { measurements })
    }

    /// Fans arbitrary independent cells (table sweep rows, ablation
    /// arms, estimator comparisons) across workers, preserving cell
    /// order in the output.
    pub fn run_cells<T, F>(&self, cells: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        self.executor().run(cells)
    }

    /// Runs a defect-coverage campaign with every cell (fault variant
    /// × Monte Carlo trial) fanned out across workers, then reduces
    /// the slot-ordered outcomes with the campaign's own
    /// [`CoverageCampaign::assemble`] — so the [`CoverageReport`] is
    /// **bit-identical** to the sequential [`CoverageCampaign::run`]
    /// for any worker count.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use nfbist_runtime::batch::BatchPlan;
    /// use nfbist_soc::coverage::{CoverageCampaign, FaultUniverse};
    /// use nfbist_soc::screening::Screen;
    /// use nfbist_soc::setup::BistSetup;
    ///
    /// # fn main() -> Result<(), nfbist_soc::SocError> {
    /// let campaign = CoverageCampaign::new(
    ///     BistSetup::quick(42),
    ///     Screen::new(11.0, 3.0)?,
    ///     FaultUniverse::paper_grid()?,
    /// )?
    /// .trials(8);
    /// let parallel = BatchPlan::new().run_coverage(&campaign)?;
    /// assert_eq!(parallel, campaign.run()?); // any worker count
    /// println!("{parallel}");
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first failing cell, in cell order.
    pub fn run_coverage(&self, campaign: &CoverageCampaign) -> Result<CoverageReport, SocError> {
        let tasks: Vec<_> = (0..campaign.cell_count())
            .map(|c| move || campaign.run_cell(c))
            .collect();
        let outcomes = self.executor().run(tasks);
        let mut cells: Vec<CellOutcome> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            cells.push(outcome?);
        }
        campaign.assemble(cells)
    }

    /// Runs a frequency-response sweep with every sweep point fanned
    /// out across workers: each point is a pure function of
    /// `(tester, dut, index)` (repeat seeds derive from the tester's
    /// seed via [`derive_seed`]), so the slot-ordered points reassemble
    /// through [`FrequencyResponseTester::assemble`] into a measurement
    /// **bit-identical** to the sequential
    /// [`FrequencyResponseTester::measure`] for any worker count.
    ///
    /// Within each point the tester's configured repeats already run as
    /// SIMD lanes of one SoA Goertzel batch, so the two fan-out axes
    /// compose: points across workers, repeats across vector lanes.
    ///
    /// # Errors
    ///
    /// Propagates the first failing point, in sweep order.
    pub fn run_freqresp(
        &self,
        tester: &FrequencyResponseTester,
        dut: &Amplifier,
    ) -> Result<FrequencyResponseMeasurement, SocError> {
        let tasks: Vec<_> = (0..tester.frequencies().len())
            .map(|i| move || tester.measure_point(dut, i))
            .collect();
        let outcomes = self.executor().run(tasks);
        let mut points = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            points.push(outcome?);
        }
        tester.assemble(points)
    }

    /// Runs a multipoint BIST with the hot and cold cascade
    /// acquisitions performed concurrently and every test point's
    /// estimation fanned out across workers. Output is identical to
    /// [`MultipointBist::measure_all`].
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors (acquisition
    /// first; then the first failing point, in point order).
    pub fn run_multipoint(&self, bist: &MultipointBist) -> Result<Vec<PointMeasurement>, SocError> {
        type AcquireTask<'a> = Box<
            dyn FnOnce() -> Result<Vec<nfbist_analog::bitstream::Bitstream>, SocError> + Send + 'a,
        >;
        let acquisitions: Vec<AcquireTask> = vec![
            Box::new(|| bist.acquire_all(NoiseSourceState::Hot)),
            Box::new(|| bist.acquire_all(NoiseSourceState::Cold)),
        ];
        let mut acquired = self.executor().run(acquisitions).into_iter();
        // The executor returns exactly one slot per task; a missing
        // slot here is unreachable, but surface it as an error rather
        // than panicking.
        let missing = SocError::InvalidParameter {
            name: "acquisition slot",
            reason: "executor returned fewer results than tasks",
        };
        let hot = acquired.next().ok_or_else(|| missing.clone())??;
        let cold = acquired.next().ok_or(missing)??;

        // One estimator *clone* per point task: concurrent workers each
        // need their own FFT plan anyway (a shared cache would either
        // serialize them or thrash its try_lock fallback), and the
        // single planning cost per task amortizes over that task's full
        // hot+cold Welch run. The sequential `measure_all` keeps one
        // shared instance and hits its cache on every point.
        let base_estimator = bist.estimator()?;
        let estimators: Vec<_> = (0..hot.len()).map(|_| base_estimator.clone()).collect();
        let tasks: Vec<_> = hot
            .iter()
            .zip(&cold)
            .zip(&estimators)
            .enumerate()
            .map(|(i, ((h, c), est))| move || bist.measure_point(est, i, h, c))
            .collect();
        let outcomes = self.executor().run(tasks);
        let mut points = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            points.push(outcome?);
        }
        Ok(points)
    }
}

impl Default for BatchPlan {
    fn default() -> Self {
        Self::new()
    }
}

/// The ordered results of a Monte Carlo batch, with the summary
/// statistics the repeatability experiments read off it.
#[derive(Debug, Clone)]
pub struct SessionBatch {
    measurements: Vec<Measurement>,
}

impl SessionBatch {
    /// The per-trial measurements, in trial order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Consumes the batch, returning the measurements.
    pub fn into_measurements(self) -> Vec<Measurement> {
        self.measurements
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Mean measured noise figure across trials, in dB.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an empty batch.
    pub fn mean_nf_db(&self) -> Result<f64, SocError> {
        if self.measurements.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "batch",
                reason: "statistics need at least one trial",
            });
        }
        let sum: f64 = self.measurements.iter().map(|m| m.nf.figure.db()).sum();
        Ok(sum / self.measurements.len() as f64)
    }

    /// Sample standard deviation of the measured NF across trials, in
    /// dB (0 for a single trial).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an empty batch.
    pub fn nf_std_db(&self) -> Result<f64, SocError> {
        if self.measurements.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "batch",
                reason: "statistics need at least one trial",
            });
        }
        if self.measurements.len() == 1 {
            return Ok(0.0);
        }
        let dbs: Vec<f64> = self.measurements.iter().map(|m| m.nf.figure.db()).collect();
        Ok(nfbist_dsp::stats::std_dev(&dbs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic_and_distinct() {
        assert_eq!(derive_seed(1234, 0), derive_seed(1234, 0));
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(1234, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "derived seeds must not collide");
        // Wrapping arithmetic keeps extreme bases valid.
        let _ = derive_seed(u64::MAX, u64::MAX);
    }

    #[test]
    fn trial_seeds_do_not_alias_the_repeat_walk() {
        // A session derives repeat seeds as `trial_seed + r·φ⁶⁴`. With
        // a plain arithmetic trial walk, trial t2's repeat 0 would
        // equal trial t1's repeat (t2−t1) — identical noise records.
        // The hashed derivation must keep every (trial, repeat) seed
        // distinct across a realistic grid.
        let base = 42u64;
        let mut all: Vec<u64> = Vec::new();
        for t in 0..32u64 {
            let trial_seed = derive_seed(base, t);
            for r in 0..32u64 {
                all.push(trial_seed.wrapping_add(r.wrapping_mul(SEED_STRIDE)));
            }
        }
        let count = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(count, all.len(), "(trial, repeat) seed grid collided");
    }

    #[test]
    fn plan_worker_configuration() {
        assert_eq!(BatchPlan::sequential().worker_count(), 1);
        assert_eq!(BatchPlan::new().workers(0).worker_count(), 1);
        assert_eq!(BatchPlan::new().workers(6).worker_count(), 6);
        assert_eq!(BatchPlan::new().workers(6).executor().workers(), 6);
    }

    #[test]
    fn cells_preserve_order() {
        let plan = BatchPlan::new().workers(3);
        let out = plan.run_cells((0..10).map(|i| move || i + 100).collect::<Vec<_>>());
        assert_eq!(out, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_statistics_are_rejected() {
        let batch = SessionBatch {
            measurements: Vec::new(),
        };
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.mean_nf_db().is_err());
        assert!(batch.nf_std_db().is_err());
    }
}
