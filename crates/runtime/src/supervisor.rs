//! Per-task supervision: deadlines, bounded retry with deterministic
//! backoff, and quarantine — the policy layer that turns a runtime
//! fault into a recorded outcome instead of a crashed batch.
//!
//! Three pieces compose:
//!
//! * [`TaskPolicy`] declares what one task is allowed to cost: an
//!   optional per-attempt deadline, a retry budget, and a
//!   [`Backoff`] schedule between attempts. The schedule is a pure
//!   function of the attempt number — no clocks, no jitter — so a
//!   retried schedule replays identically.
//! * [`Watchdog`] is a single monitor thread waiting on a `Condvar`
//!   with `wait_timeout`: workers *arm* a [`WatchGuard`] before an
//!   attempt, the watchdog flags any guard whose deadline passes, and
//!   the worker observes the flag when the attempt returns. The flag
//!   is advisory-early (a stalled die shows up in health telemetry the
//!   moment it blows its deadline); the *authoritative* deadline
//!   verdict compares the attempt's own elapsed time against the
//!   policy, which is what keeps chaos schedules deterministic.
//! * [`TaskPolicy::supervise`] runs an attempt closure under
//!   `catch_unwind` (panic isolation), converts panics / timeouts /
//!   errors into [`RuntimeError`] faults, retries per the policy, and
//!   quarantines the task after the final failure.
//!
//! The invariant the whole module preserves: supervision never touches
//! a task's *inputs*. A surviving attempt returns exactly the bits an
//! unsupervised call would have returned.

use crate::error::{panic_message, RuntimeError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A deterministic retry-delay schedule: `delay(k)` for the pause
/// before retry `k+1` (after failed attempt `k`), a pure function of
/// `k`.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::supervisor::Backoff;
/// use std::time::Duration;
///
/// let b = Backoff::exponential(Duration::from_millis(2), Duration::from_millis(5));
/// assert_eq!(b.delay(0), Duration::from_millis(2));
/// assert_eq!(b.delay(1), Duration::from_millis(4));
/// assert_eq!(b.delay(2), Duration::from_millis(5)); // capped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    exponential: bool,
}

impl Backoff {
    /// No pause between attempts (the default).
    pub const fn none() -> Self {
        Backoff {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            exponential: false,
        }
    }

    /// The same fixed pause before every retry.
    pub const fn fixed(delay: Duration) -> Self {
        Backoff {
            base: delay,
            cap: delay,
            exponential: false,
        }
    }

    /// Doubling from `base`, capped at `cap`.
    pub const fn exponential(base: Duration, cap: Duration) -> Self {
        Backoff {
            base,
            cap,
            exponential: true,
        }
    }

    /// The pause after failed attempt `attempt` (0-based). Purely a
    /// function of the attempt number — deterministic by construction.
    pub fn delay(&self, attempt: usize) -> Duration {
        if !self.exponential {
            return self.base;
        }
        let factor = 1u32 << attempt.min(20) as u32;
        self.base.saturating_mul(factor).min(self.cap)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::none()
    }
}

/// What one supervised task is allowed to cost: per-attempt deadline,
/// retry budget, backoff schedule.
///
/// The default policy is the pre-fault-tolerance behavior with panic
/// isolation added: one attempt, no deadline, no backoff — a panic or
/// error becomes a quarantine record instead of a crashed batch.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::supervisor::{Backoff, TaskPolicy};
/// use std::time::Duration;
///
/// let policy = TaskPolicy::new()
///     .deadline(Duration::from_secs(2))
///     .attempts(3)
///     .backoff(Backoff::fixed(Duration::from_millis(1)));
/// assert_eq!(policy.max_attempts(), 3);
/// assert_eq!(policy.deadline_duration(), Some(Duration::from_secs(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskPolicy {
    deadline: Option<Duration>,
    max_attempts: usize,
    backoff: Backoff,
}

impl TaskPolicy {
    /// One attempt, no deadline, no backoff.
    pub const fn new() -> Self {
        TaskPolicy {
            deadline: None,
            max_attempts: 1,
            backoff: Backoff::none(),
        }
    }

    /// Sets the per-attempt deadline (covers admission wait plus the
    /// task body). An attempt running past it is discarded and counts
    /// as a failure.
    pub const fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the total attempt budget (clamped to ≥ 1). A task failing
    /// every attempt is quarantined.
    pub fn attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the backoff schedule between attempts.
    pub const fn backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// The per-attempt deadline, if any.
    pub const fn deadline_duration(&self) -> Option<Duration> {
        self.deadline
    }

    /// The attempt budget.
    pub const fn max_attempts(&self) -> usize {
        self.max_attempts
    }

    /// The backoff schedule.
    pub const fn backoff_schedule(&self) -> Backoff {
        self.backoff
    }

    /// Runs `attempt(k)` for `k = 0, 1, …` under panic isolation and
    /// the policy's deadline until one attempt succeeds or the budget
    /// is spent; the terminal failure is a
    /// [`RuntimeError::Quarantined`] carrying the last fault.
    ///
    /// Each attempt is wrapped in `catch_unwind` (with
    /// `AssertUnwindSafe`: attempts over shared measurement state are
    /// pure readers, and a failed attempt's partial writes never
    /// escape the attempt). When a [`Watchdog`] is supplied and the
    /// policy has a deadline, a [`WatchGuard`] is armed around the
    /// attempt so a stall is flagged the moment it blows the deadline;
    /// the authoritative timeout check compares the attempt's own
    /// elapsed time so the verdict does not depend on monitor-thread
    /// scheduling.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Quarantined`] after `max_attempts` failures
    /// (panic, deadline, or task error).
    pub fn supervise<T>(
        &self,
        index: usize,
        watchdog: Option<&Watchdog>,
        mut attempt: impl FnMut(usize) -> Result<T, RuntimeError>,
    ) -> Result<T, RuntimeError> {
        let mut last: Option<RuntimeError> = None;
        for k in 0..self.max_attempts {
            if k > 0 {
                let pause = self.backoff.delay(k - 1);
                if pause > Duration::ZERO {
                    thread::sleep(pause);
                }
            }
            let guard = match (self.deadline, watchdog) {
                (Some(deadline), Some(dog)) => Some(dog.arm(deadline)),
                _ => None,
            };
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| attempt(k)));
            let elapsed = started.elapsed();
            let flagged = guard.as_ref().is_some_and(WatchGuard::expired);
            drop(guard);
            let fault = match outcome {
                Ok(Ok(value)) => {
                    // The elapsed-time comparison is authoritative; the
                    // watchdog flag only ever fires earlier, never
                    // differently.
                    match self.deadline {
                        Some(deadline) if flagged || elapsed > deadline => {
                            RuntimeError::DeadlineExceeded { index, deadline }
                        }
                        _ => return Ok(value),
                    }
                }
                Ok(Err(e)) => match (self.deadline, &e) {
                    // An admission timeout under a deadline is the
                    // deadline expiring in the gate's waiting room.
                    (Some(deadline), RuntimeError::AdmissionTimeout { .. }) => {
                        RuntimeError::DeadlineExceeded { index, deadline }
                    }
                    _ => e,
                },
                Err(payload) => RuntimeError::TaskPanicked {
                    index,
                    message: panic_message(payload.as_ref()),
                },
            };
            last = Some(fault);
        }
        Err(RuntimeError::Quarantined {
            index,
            attempts: self.max_attempts,
            last: Box::new(last.unwrap_or(RuntimeError::ResultMissing { index })),
        })
    }
}

impl Default for TaskPolicy {
    fn default() -> Self {
        Self::new()
    }
}

struct WatchEntry {
    id: u64,
    deadline: Instant,
    expired: Arc<AtomicBool>,
}

struct WatchState {
    entries: Vec<WatchEntry>,
    next_id: u64,
    shutdown: bool,
}

struct WatchShared {
    state: Mutex<WatchState>,
    changed: Condvar,
    expirations: AtomicU64,
}

impl WatchShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, WatchState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The deadline monitor: one thread waiting on a `Condvar` with
/// `wait_timeout` for the earliest armed deadline, flagging stalled
/// tasks the moment they run over.
///
/// Dropping the watchdog shuts the monitor thread down and joins it.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::supervisor::Watchdog;
/// use std::time::Duration;
///
/// let dog = Watchdog::new();
/// let guard = dog.arm(Duration::from_secs(60));
/// assert!(!guard.expired()); // nowhere near the deadline
/// drop(guard); // disarmed without expiring
/// assert_eq!(dog.expirations(), 0);
/// ```
#[derive(Debug)]
pub struct Watchdog {
    shared: Arc<WatchShared>,
    monitor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for WatchShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchShared")
            .field("expirations", &self.expirations.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Watchdog {
    /// Starts the monitor thread.
    pub fn new() -> Self {
        let shared = Arc::new(WatchShared {
            state: Mutex::new(WatchState {
                entries: Vec::new(),
                next_id: 0,
                shutdown: false,
            }),
            changed: Condvar::new(),
            expirations: AtomicU64::new(0),
        });
        let monitor_shared = Arc::clone(&shared);
        let monitor = thread::Builder::new()
            .name("nfbist-watchdog".to_string())
            .spawn(move || Self::monitor_loop(&monitor_shared))
            .ok();
        Watchdog { shared, monitor }
    }

    fn monitor_loop(shared: &WatchShared) {
        let mut state = shared.lock();
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            // Flag and drop everything already over its deadline.
            let mut expired = 0u64;
            state.entries.retain(|entry| {
                if entry.deadline <= now {
                    entry.expired.store(true, Ordering::Release);
                    expired += 1;
                    false
                } else {
                    true
                }
            });
            if expired > 0 {
                shared.expirations.fetch_add(expired, Ordering::Relaxed);
            }
            // Sleep until the earliest pending deadline (or until a
            // new arm/disarm/shutdown pokes the condvar).
            let next = state.entries.iter().map(|e| e.deadline).min();
            state = match next {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(now);
                    shared
                        .changed
                        .wait_timeout(state, wait)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                None => shared
                    .changed
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
            };
        }
    }

    /// Arms a deadline `timeout` from now; the returned guard's flag
    /// is set by the monitor if the deadline passes before the guard
    /// is dropped.
    pub fn arm(&self, timeout: Duration) -> WatchGuard {
        let expired = Arc::new(AtomicBool::new(false));
        let mut state = self.shared.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.entries.push(WatchEntry {
            id,
            deadline: Instant::now() + timeout,
            expired: Arc::clone(&expired),
        });
        drop(state);
        self.shared.changed.notify_all();
        WatchGuard {
            shared: Arc::clone(&self.shared),
            id,
            expired,
        }
    }

    /// Total deadlines the monitor has flagged over the watchdog's
    /// lifetime — health telemetry, not a correctness input.
    pub fn expirations(&self) -> u64 {
        self.shared.expirations.load(Ordering::Relaxed)
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.changed.notify_all();
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
    }
}

/// One armed deadline; dropping it disarms the watchdog entry (if it
/// has not already expired).
#[derive(Debug)]
pub struct WatchGuard {
    shared: Arc<WatchShared>,
    id: u64,
    expired: Arc<AtomicBool>,
}

impl WatchGuard {
    /// `true` once the monitor has flagged this deadline as blown.
    pub fn expired(&self) -> bool {
        self.expired.load(Ordering::Acquire)
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.entries.retain(|e| e.id != self.id);
        drop(state);
        self.shared.changed.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedules_are_deterministic() {
        assert_eq!(Backoff::none().delay(0), Duration::ZERO);
        assert_eq!(Backoff::none().delay(7), Duration::ZERO);
        assert_eq!(Backoff::default(), Backoff::none());
        let fixed = Backoff::fixed(Duration::from_millis(3));
        assert_eq!(fixed.delay(0), fixed.delay(9));
        let exp = Backoff::exponential(Duration::from_millis(1), Duration::from_millis(6));
        assert_eq!(
            (0..4).map(|k| exp.delay(k)).collect::<Vec<_>>(),
            vec![
                Duration::from_millis(1),
                Duration::from_millis(2),
                Duration::from_millis(4),
                Duration::from_millis(6), // capped
            ]
        );
        // Huge attempt numbers neither overflow nor exceed the cap.
        assert_eq!(exp.delay(usize::MAX), Duration::from_millis(6));
    }

    #[test]
    fn policy_defaults_and_builders() {
        let p = TaskPolicy::new();
        assert_eq!(p, TaskPolicy::default());
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.deadline_duration(), None);
        assert_eq!(p.backoff_schedule(), Backoff::none());
        assert_eq!(TaskPolicy::new().attempts(0).max_attempts(), 1);
    }

    #[test]
    fn success_passes_through_untouched() {
        let out = TaskPolicy::new()
            .supervise(0, None, |_| Ok::<_, RuntimeError>(41 + 1))
            .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn panic_is_isolated_and_quarantined() {
        let err = TaskPolicy::new()
            .supervise::<()>(3, None, |_| panic!("boom {}", 7))
            .unwrap_err();
        match err {
            RuntimeError::Quarantined {
                index,
                attempts,
                last,
            } => {
                assert_eq!((index, attempts), (3, 1));
                assert_eq!(
                    *last,
                    RuntimeError::TaskPanicked {
                        index: 3,
                        message: "boom 7".into()
                    }
                );
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn retry_recovers_a_transient_fault() {
        let mut calls = 0usize;
        let out = TaskPolicy::new()
            .attempts(3)
            .backoff(Backoff::fixed(Duration::from_millis(1)))
            .supervise(5, None, |attempt| {
                calls += 1;
                if attempt == 0 {
                    panic!("transient");
                }
                Ok::<_, RuntimeError>(attempt)
            })
            .unwrap();
        assert_eq!(out, 1, "second attempt must win");
        assert_eq!(calls, 2, "no attempts after the first success");
    }

    #[test]
    fn errors_count_against_the_attempt_budget() {
        let mut calls = 0usize;
        let err = TaskPolicy::new()
            .attempts(2)
            .supervise::<()>(1, None, |_| {
                calls += 1;
                Err(RuntimeError::AllocationFailed {
                    index: 1,
                    bytes: 64,
                })
            })
            .unwrap_err();
        assert_eq!(calls, 2);
        assert_eq!(
            err,
            RuntimeError::Quarantined {
                index: 1,
                attempts: 2,
                last: Box::new(RuntimeError::AllocationFailed {
                    index: 1,
                    bytes: 64
                }),
            }
        );
    }

    #[test]
    fn deadline_discards_a_late_result() {
        let dog = Watchdog::new();
        let policy = TaskPolicy::new().deadline(Duration::from_millis(20));
        let err = policy
            .supervise(2, Some(&dog), |_| {
                thread::sleep(Duration::from_millis(60));
                Ok::<_, RuntimeError>(99)
            })
            .unwrap_err();
        match err {
            RuntimeError::Quarantined { last, .. } => assert_eq!(
                *last,
                RuntimeError::DeadlineExceeded {
                    index: 2,
                    deadline: Duration::from_millis(20)
                }
            ),
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The monitor should have flagged the stall (health telemetry).
        assert!(dog.expirations() >= 1);
        // A fast attempt under the same policy is untouched.
        assert_eq!(
            policy.supervise(2, Some(&dog), |_| Ok::<_, RuntimeError>(7)),
            Ok(7)
        );
    }

    #[test]
    fn deadline_verdict_holds_without_a_watchdog() {
        // Elapsed-time comparison alone must catch the overrun.
        let err = TaskPolicy::new()
            .deadline(Duration::from_millis(10))
            .supervise(0, None, |_| {
                thread::sleep(Duration::from_millis(40));
                Ok::<_, RuntimeError>(())
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Quarantined { .. }));
    }

    #[test]
    fn admission_timeout_is_reported_as_a_deadline_fault() {
        let deadline = Duration::from_millis(15);
        let err = TaskPolicy::new()
            .deadline(deadline)
            .supervise::<()>(4, None, |_| {
                Err(RuntimeError::AdmissionTimeout {
                    requested: 10,
                    capacity: 5,
                    waited: deadline,
                })
            })
            .unwrap_err();
        match err {
            RuntimeError::Quarantined { last, .. } => {
                assert_eq!(*last, RuntimeError::DeadlineExceeded { index: 4, deadline });
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_guards_disarm_cleanly() {
        let dog = Watchdog::new();
        for _ in 0..16 {
            let g = dog.arm(Duration::from_secs(30));
            assert!(!g.expired());
        }
        assert_eq!(dog.expirations(), 0);
        // Entries with passed deadlines get flagged even when armed in
        // a burst.
        let guards: Vec<_> = (0..4).map(|_| dog.arm(Duration::from_millis(5))).collect();
        thread::sleep(Duration::from_millis(60));
        assert!(guards.iter().all(WatchGuard::expired));
        assert_eq!(dog.expirations(), 4);
    }
}
