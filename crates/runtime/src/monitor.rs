//! Fleet-scale continuous monitoring: many concurrent
//! [`MonitorSession`] missions under one supervised, budgeted,
//! chaos-hardened runtime — the monitoring twin of
//! [`crate::fleet::FleetPlan`] / [`crate::service::FleetService`].
//!
//! A fielded product is not one monitored part but a population:
//! every unit runs its own unbounded acquisition → windowed-estimator
//! → CUSUM pipeline, and the maintenance backend wants the resulting
//! alarm timelines without one wedged unit taking the collector down.
//! [`MonitorPlan::run_fleet`] fans `n` missions across a
//! [`WorkQueue`], admits each through a global [`MemoryGate`], runs it
//! under the plan's [`TaskPolicy`] (panic isolation, deadline, retry,
//! quarantine) with optional seeded [`ChaosConfig`] faults in front of
//! the mission body, and returns slot-indexed
//! [`MonitorOutcome`]s.
//!
//! Determinism is inherited, not negotiated: a mission's timeline is a
//! pure function of its [`MonitorSession`] configuration (the builder
//! closure gets only the monitor index), results are slot-indexed, and
//! supervision changes *whether* a timeline is kept, never its bits —
//! so every monitor that survives a chaos run returns exactly the
//! clean run's timeline, for any worker count and budget.
//!
//! [`MonitorService`] is the long-running form: monitor fleets
//! submitted over time to a dedicated service thread, graceful drain
//! on shutdown, health snapshots mid-flight — the same contract as
//! [`crate::service::FleetService`], with fleets of missions instead
//! of lots of dies.

use crate::chaos::ChaosConfig;
use crate::error::{panic_message, RuntimeError};
use crate::queue::{MemoryGate, WorkQueue};
use crate::supervisor::{TaskPolicy, Watchdog};
use nfbist_soc::fleet::DieFaultKind;
use nfbist_soc::monitor::{AlarmKind, MonitorReport, MonitorSession};
use nfbist_soc::SocError;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};

/// Builds the mission for one monitor index — the only input a fleet
/// monitor gets, so the whole fleet is a pure function of the closure.
pub type MonitorBuilder = dyn Fn(usize) -> Result<MonitorSession, SocError> + Send + Sync;

/// A monitor whose every supervised attempt failed, quarantined with
/// its terminal fault (the [`DieFaultKind`] taxonomy is shared with
/// lot screening — the faults are the same runtime faults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorFault {
    /// The monitor's fleet index.
    pub monitor: usize,
    /// Attempts consumed before quarantine.
    pub attempts: usize,
    /// The terminal fault.
    pub kind: DieFaultKind,
}

/// One fleet slot's outcome: the mission's full report, or the fault
/// that quarantined it.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorOutcome {
    /// The mission completed; the report carries the same bits a solo
    /// run of the same [`MonitorSession`] produces.
    Completed(MonitorReport),
    /// Every attempt faulted; no timeline was kept.
    Faulted(MonitorFault),
}

impl MonitorOutcome {
    /// The completed report, if the mission survived.
    pub fn report(&self) -> Option<&MonitorReport> {
        match self {
            MonitorOutcome::Completed(report) => Some(report),
            MonitorOutcome::Faulted(_) => None,
        }
    }

    /// The quarantine record, if the mission faulted.
    pub fn fault(&self) -> Option<&MonitorFault> {
        match self {
            MonitorOutcome::Completed(_) => None,
            MonitorOutcome::Faulted(fault) => Some(fault),
        }
    }
}

/// The slot-indexed outcome of one monitor fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorFleetReport {
    outcomes: Vec<MonitorOutcome>,
}

impl MonitorFleetReport {
    /// All outcomes, indexed by monitor.
    pub fn outcomes(&self) -> &[MonitorOutcome] {
        &self.outcomes
    }

    /// The fleet size.
    pub fn monitors(&self) -> usize {
        self.outcomes.len()
    }

    /// Monitors whose mission completed.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.report().is_some())
            .count()
    }

    /// Monitors lost to runtime faults.
    pub fn faulted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fault().is_some()).count()
    }

    /// `true` when at least one monitor was quarantined.
    pub fn degraded(&self) -> bool {
        self.faulted() > 0
    }

    /// Completed reports with their monitor indices, in fleet order.
    pub fn reports(&self) -> impl Iterator<Item = (usize, &MonitorReport)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.report().map(|r| (i, r)))
    }

    /// Quarantine records, in fleet order.
    pub fn faults(&self) -> impl Iterator<Item = &MonitorFault> {
        self.outcomes.iter().filter_map(MonitorOutcome::fault)
    }

    /// Monitors whose timeline contains at least one event of `kind`.
    pub fn monitors_with(&self, kind: AlarmKind) -> Vec<usize> {
        self.reports()
            .filter(|(_, r)| r.first_event(kind).is_some())
            .map(|(i, _)| i)
            .collect()
    }
}

/// A monitoring-fleet execution plan: worker count, optional global
/// memory budget for admission control, per-mission supervision
/// policy, optional seeded fault injection.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::monitor::MonitorPlan;
/// use nfbist_soc::monitor::MonitorSession;
/// use nfbist_soc::session::derive_seed;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 4 independent missions over 2 workers; per-monitor seeds are
/// // derived inside the builder, so the fleet reproduces exactly.
/// let fleet = MonitorPlan::workers(2).run_fleet(4, 1 << 16, |i| {
///     let mut setup = BistSetup::quick(derive_seed(7, i as u64));
///     setup.samples = 1 << 14;
///     setup.nfft = 1_024;
///     MonitorSession::new(setup)
/// });
/// assert_eq!(fleet.completed(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorPlan {
    workers: usize,
    budget: Option<usize>,
    policy: TaskPolicy,
    chaos: Option<ChaosConfig>,
}

impl MonitorPlan {
    /// A plan sized to the machine, unbudgeted, with the default
    /// one-attempt policy and no fault injection.
    pub fn new() -> Self {
        MonitorPlan {
            workers: WorkQueue::with_available_parallelism().workers(),
            budget: None,
            policy: TaskPolicy::new(),
            chaos: None,
        }
    }

    /// A single-worker plan: missions run inline on the calling
    /// thread, in monitor order — the reference schedule.
    pub fn sequential() -> Self {
        Self::workers(1)
    }

    /// A plan with an explicit worker count (clamped to ≥ 1).
    pub fn workers(n: usize) -> Self {
        MonitorPlan {
            workers: n.max(1),
            budget: None,
            policy: TaskPolicy::new(),
            chaos: None,
        }
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Sets the global memory budget in bytes: at most this much
    /// admitted mission cost in flight at once, enforced by a
    /// [`MemoryGate`] with backpressure.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// The global memory budget, if set.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Sets the per-mission supervision policy: deadline, retry
    /// budget, backoff.
    pub const fn task_policy(mut self, policy: TaskPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The per-mission supervision policy in force.
    pub const fn policy(&self) -> TaskPolicy {
        self.policy
    }

    /// Arms seeded runtime fault injection in front of each mission
    /// body (see [`ChaosConfig`]).
    pub const fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The armed chaos schedule, if any.
    pub const fn chaos_config(&self) -> Option<ChaosConfig> {
        self.chaos
    }

    /// Runs `monitors` missions across the plan's workers. `build`
    /// receives each monitor's fleet index and constructs its mission;
    /// `cost_bytes` is one mission's worst-case transient memory, the
    /// unit the admission gate charges (a mission's streaming working
    /// set — chunk buffers plus the Welch plan — is a good value;
    /// see `MeasurementSession::memory_budget`).
    ///
    /// A mission whose every attempt fails (panic, deadline,
    /// allocation failure, pipeline error) becomes a
    /// [`MonitorOutcome::Faulted`] slot; every other slot carries a
    /// report bit-identical to a solo run of the same mission — for
    /// any worker count, budget, and chaos schedule.
    pub fn run_fleet<F>(&self, monitors: usize, cost_bytes: usize, build: F) -> MonitorFleetReport
    where
        F: Fn(usize) -> Result<MonitorSession, SocError> + Sync,
    {
        let gate = match self.budget {
            Some(bytes) => MemoryGate::new(bytes),
            None => MemoryGate::unbounded(),
        };
        let deadline = self.policy.deadline_duration();
        let watchdog = deadline.map(|_| Watchdog::new());
        let results = WorkQueue::new(self.workers).run_isolated(monitors, |i| {
            self.policy.supervise(i, watchdog.as_ref(), |attempt| {
                // Admission before construction: a mission's buffers
                // only come to life once its cost fits under the
                // global budget. The guard is held for the mission.
                let _in_flight = match deadline {
                    Some(limit) => gate.admit_within(cost_bytes, limit)?,
                    None => gate.admit(cost_bytes),
                };
                if let Some(chaos) = &self.chaos {
                    chaos.inject(i, attempt, deadline, cost_bytes)?;
                }
                build(i)
                    .and_then(|mission| mission.run())
                    .map_err(RuntimeError::from)
            })
        });
        let outcomes = results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.and_then(|inner| inner) {
                Ok(report) => MonitorOutcome::Completed(report),
                Err(fault) => MonitorOutcome::Faulted(monitor_fault(i, fault)),
            })
            .collect();
        MonitorFleetReport { outcomes }
    }
}

impl Default for MonitorPlan {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a runtime fault into a quarantine record; quarantines
/// unwrap to their terminal fault, anything else was a single-attempt
/// loss.
fn monitor_fault(monitor: usize, fault: RuntimeError) -> MonitorFault {
    match fault {
        RuntimeError::Quarantined { attempts, last, .. } => MonitorFault {
            monitor,
            attempts,
            kind: terminal_kind(*last),
        },
        other => MonitorFault {
            monitor,
            attempts: 1,
            kind: terminal_kind(other),
        },
    }
}

fn terminal_kind(fault: RuntimeError) -> DieFaultKind {
    match fault {
        RuntimeError::TaskPanicked { message, .. } => DieFaultKind::Panicked { message },
        RuntimeError::DeadlineExceeded { .. } => DieFaultKind::DeadlineExceeded,
        RuntimeError::AllocationFailed { .. } => DieFaultKind::AllocationFailed,
        other => DieFaultKind::Error {
            message: other.to_string(),
        },
    }
}

/// A claim on one submitted monitor fleet's eventual report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FleetTicket {
    id: u64,
}

impl FleetTicket {
    /// The service-assigned fleet id (submission order, starting at 0).
    pub const fn id(&self) -> u64 {
        self.id
    }
}

/// A point-in-time view of the monitoring service's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorHealth {
    /// Fleets submitted but not yet started.
    pub queued: usize,
    /// Whether a fleet is running right now.
    pub running: bool,
    /// Fleets finished over the service lifetime.
    pub completed_fleets: u64,
    /// Missions completed to a timeline across all finished fleets.
    pub completed_monitors: u64,
    /// Missions lost to runtime faults across all finished fleets.
    pub faulted_monitors: u64,
    /// Whether the service is draining (no new submissions).
    pub draining: bool,
}

struct FleetJob {
    monitors: usize,
    cost_bytes: usize,
    build: Box<MonitorBuilder>,
}

struct MonitorServiceState {
    queue: VecDeque<(u64, FleetJob)>,
    results: HashMap<u64, Result<MonitorFleetReport, RuntimeError>>,
    running: Option<u64>,
    next_id: u64,
    draining: bool,
    completed_fleets: u64,
    completed_monitors: u64,
    faulted_monitors: u64,
}

struct MonitorShared {
    state: Mutex<MonitorServiceState>,
    submitted: Condvar,
    finished: Condvar,
}

impl MonitorShared {
    fn lock(&self) -> MutexGuard<'_, MonitorServiceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The long-running monitoring service: monitor fleets submitted over
/// time to a dedicated supervised service thread, graceful drain on
/// shutdown, health snapshots mid-flight — the monitoring sibling of
/// [`crate::service::FleetService`].
///
/// # Examples
///
/// ```
/// use nfbist_runtime::monitor::{MonitorPlan, MonitorService};
/// use nfbist_soc::monitor::MonitorSession;
/// use nfbist_soc::session::derive_seed;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut service = MonitorService::start(MonitorPlan::workers(2));
/// let ticket = service.submit(3, 1 << 16, |i| {
///     let mut setup = BistSetup::quick(derive_seed(5, i as u64));
///     setup.samples = 1 << 14;
///     setup.nfft = 1_024;
///     MonitorSession::new(setup)
/// })?;
/// let fleet = service.wait(ticket)?;
/// assert_eq!(fleet.completed(), 3);
/// service.shutdown(); // graceful drain
/// # Ok(())
/// # }
/// ```
pub struct MonitorService {
    shared: Arc<MonitorShared>,
    plan: MonitorPlan,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MonitorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorService")
            .field("plan", &self.plan)
            .field("health", &self.health())
            .finish()
    }
}

impl MonitorService {
    /// Starts the service thread; every submitted fleet runs under
    /// `plan`.
    pub fn start(plan: MonitorPlan) -> Self {
        let shared = Arc::new(MonitorShared {
            state: Mutex::new(MonitorServiceState {
                queue: VecDeque::new(),
                results: HashMap::new(),
                running: None,
                next_id: 0,
                draining: false,
                completed_fleets: 0,
                completed_monitors: 0,
                faulted_monitors: 0,
            }),
            submitted: Condvar::new(),
            finished: Condvar::new(),
        });
        let loop_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("nfbist-monitor-service".to_string())
            .spawn(move || Self::service_loop(&loop_shared, plan))
            .ok();
        MonitorService {
            shared,
            plan,
            worker,
        }
    }

    fn service_loop(shared: &MonitorShared, plan: MonitorPlan) {
        loop {
            let (id, job) = {
                let mut state = shared.lock();
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        state.running = Some(job.0);
                        break job;
                    }
                    if state.draining {
                        return;
                    }
                    state = shared
                        .submitted
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Per-mission isolation lives in run_fleet; this unwind
            // guard keeps an engine-level panic from killing the loop.
            let result = catch_unwind(AssertUnwindSafe(|| {
                plan.run_fleet(job.monitors, job.cost_bytes, &*job.build)
            }))
            .map_err(|payload| RuntimeError::TaskPanicked {
                index: 0,
                message: format!(
                    "monitor fleet panicked: {}",
                    panic_message(payload.as_ref())
                ),
            });
            let mut state = shared.lock();
            state.completed_fleets += 1;
            if let Ok(fleet) = &result {
                state.completed_monitors += fleet.completed() as u64;
                state.faulted_monitors += fleet.faulted() as u64;
            }
            state.results.insert(id, result);
            state.running = None;
            drop(state);
            shared.finished.notify_all();
        }
    }

    /// The plan every fleet runs under.
    pub const fn plan(&self) -> MonitorPlan {
        self.plan
    }

    /// Submits a fleet of `monitors` missions and returns the ticket
    /// its report will be filed under; `build` and `cost_bytes` are
    /// [`MonitorPlan::run_fleet`]'s parameters.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ServiceShutdown`] once the service is draining.
    pub fn submit<F>(
        &self,
        monitors: usize,
        cost_bytes: usize,
        build: F,
    ) -> Result<FleetTicket, RuntimeError>
    where
        F: Fn(usize) -> Result<MonitorSession, SocError> + Send + Sync + 'static,
    {
        let mut state = self.shared.lock();
        if state.draining {
            return Err(RuntimeError::ServiceShutdown);
        }
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back((
            id,
            FleetJob {
                monitors,
                cost_bytes,
                build: Box::new(build),
            },
        ));
        drop(state);
        self.shared.submitted.notify_all();
        Ok(FleetTicket { id })
    }

    /// Takes the ticket's fleet report if it is ready, without
    /// blocking. `Ok(None)` means the fleet is still queued or running.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a ticket never issued or
    /// already taken; the fleet's own fault when it failed outright.
    pub fn try_take(
        &self,
        ticket: FleetTicket,
    ) -> Result<Option<MonitorFleetReport>, RuntimeError> {
        let mut state = self.shared.lock();
        match state.results.remove(&ticket.id) {
            Some(result) => result.map(Some),
            None if Self::pending(&state, ticket.id) => Ok(None),
            None => Err(RuntimeError::UnknownTicket { id: ticket.id }),
        }
    }

    /// Blocks until the ticket's fleet has finished and returns its
    /// report (each ticket's report can be taken once).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a ticket never issued,
    /// already taken, or abandoned by a drain before the fleet
    /// started; the fleet's own fault when it failed outright.
    pub fn wait(&self, ticket: FleetTicket) -> Result<MonitorFleetReport, RuntimeError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(result) = state.results.remove(&ticket.id) {
                return result;
            }
            if !Self::pending(&state, ticket.id) {
                return Err(RuntimeError::UnknownTicket { id: ticket.id });
            }
            state = self
                .shared
                .finished
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn pending(state: &MonitorServiceState, id: u64) -> bool {
        state.running == Some(id) || state.queue.iter().any(|(qid, _)| *qid == id)
    }

    /// A point-in-time health snapshot.
    pub fn health(&self) -> MonitorHealth {
        let state = self.shared.lock();
        MonitorHealth {
            queued: state.queue.len(),
            running: state.running.is_some(),
            completed_fleets: state.completed_fleets,
            completed_monitors: state.completed_monitors,
            faulted_monitors: state.faulted_monitors,
            draining: state.draining,
        }
    }

    /// Gracefully drains the service: refuses new submissions,
    /// finishes every queued fleet, joins the service thread. Results
    /// of drained fleets remain collectable. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.lock();
            state.draining = true;
        }
        self.shared.submitted.notify_all();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        self.shared.finished.notify_all();
    }
}

impl Drop for MonitorService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use nfbist_soc::session::derive_seed;
    use nfbist_soc::setup::BistSetup;

    fn mission(seed: u64) -> Result<MonitorSession, SocError> {
        let mut setup = BistSetup::quick(seed);
        setup.samples = 1 << 14;
        setup.nfft = 1_024;
        Ok(MonitorSession::new(setup)?
            .estimator(
                nfbist_core::power_ratio::PsdRatioEstimator::new(20_000.0, 1_024, (100.0, 1_000.0))
                    .unwrap(),
            )
            .digitizer(nfbist_analog::converter::AdcDigitizer::new(12).unwrap())
            .warmup(4))
    }

    fn build(i: usize) -> Result<MonitorSession, SocError> {
        mission(derive_seed(31, i as u64))
    }

    #[test]
    fn plan_construction() {
        assert_eq!(MonitorPlan::sequential().worker_count(), 1);
        assert_eq!(MonitorPlan::workers(0).worker_count(), 1);
        assert_eq!(MonitorPlan::default(), MonitorPlan::new());
        let plan = MonitorPlan::workers(2)
            .memory_budget(1 << 20)
            .task_policy(TaskPolicy::new().attempts(3))
            .chaos(ChaosConfig::new(9));
        assert_eq!(plan.memory_budget_bytes(), Some(1 << 20));
        assert_eq!(plan.policy().max_attempts(), 3);
        assert_eq!(plan.chaos_config().map(|c| c.seed()), Some(9));
    }

    #[test]
    fn fleet_is_bitwise_identical_across_schedules() {
        let reference = MonitorPlan::sequential().run_fleet(4, 1 << 16, build);
        assert_eq!(reference.completed(), 4);
        assert!(!reference.degraded());
        for plan in [
            MonitorPlan::workers(3),
            MonitorPlan::workers(4).memory_budget(1 << 16),
        ] {
            let fleet = plan.run_fleet(4, 1 << 16, build);
            assert_eq!(fleet, reference, "schedule {plan:?} changed a timeline");
        }
        // And each slot matches a solo run of the same mission.
        for (i, report) in reference.reports() {
            let solo = build(i).unwrap().run().unwrap();
            assert_eq!(report.alarm_signature(), solo.alarm_signature());
            assert_eq!(report.series_signature(), solo.series_signature());
        }
    }

    #[test]
    fn chaos_quarantines_marked_monitors_and_spares_the_rest() {
        crate::chaos::install_quiet_panic_hook();
        let chaos = ChaosConfig::new(7)
            .panic_rate_per_mille(250)
            .stall_rate_per_mille(0)
            .alloc_rate_per_mille(0)
            .faulty_attempts(1);
        let marked: Vec<usize> = chaos
            .scheduled_faults(6)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert!(!marked.is_empty(), "seed must mark some monitors");
        let clean = MonitorPlan::sequential().run_fleet(6, 1 << 16, build);
        let fleet = MonitorPlan::workers(3)
            .chaos(chaos)
            .run_fleet(6, 1 << 16, build);
        assert!(fleet.degraded());
        let faulted: Vec<usize> = fleet.faults().map(|f| f.monitor).collect();
        assert_eq!(faulted, marked, "exactly the marked monitors must fault");
        for fault in fleet.faults() {
            assert!(matches!(fault.kind, DieFaultKind::Panicked { .. }));
        }
        // Survivors carry the clean fleet's exact bits.
        for (i, report) in fleet.reports() {
            assert_eq!(
                report.alarm_signature(),
                clean.outcomes()[i].report().unwrap().alarm_signature()
            );
        }
    }

    #[test]
    fn retry_recovers_single_attempt_faults() {
        crate::chaos::install_quiet_panic_hook();
        let clean = MonitorPlan::sequential().run_fleet(4, 1 << 16, build);
        let fleet = MonitorPlan::workers(2)
            .task_policy(TaskPolicy::new().attempts(2))
            .chaos(
                ChaosConfig::new(19)
                    .panic_rate_per_mille(300)
                    .stall_rate_per_mille(0)
                    .alloc_rate_per_mille(100)
                    .faulty_attempts(1),
            )
            .run_fleet(4, 1 << 16, build);
        assert!(!fleet.degraded());
        assert_eq!(fleet, clean, "recovered fleet must be bit-identical");
    }

    #[test]
    fn service_streams_fleets_and_drains_gracefully() {
        let mut service = MonitorService::start(MonitorPlan::workers(2));
        let a = service.submit(2, 1 << 16, build).unwrap();
        let b = service.submit(2, 1 << 16, build).unwrap();
        assert_eq!((a.id(), b.id()), (0, 1));
        let direct = MonitorPlan::workers(2).run_fleet(2, 1 << 16, build);
        let fleet = service.wait(a).unwrap();
        assert_eq!(fleet, direct, "service fleet must match direct run");
        assert_eq!(
            service.wait(a),
            Err(RuntimeError::UnknownTicket { id: 0 }),
            "a ticket's report can be taken once"
        );
        service.shutdown();
        assert!(service.wait(b).is_ok(), "drain must finish queued fleets");
        let health = service.health();
        assert_eq!(health.completed_fleets, 2);
        assert_eq!(health.completed_monitors, 4);
        assert_eq!(health.faulted_monitors, 0);
        assert!(health.draining);
        assert_eq!(
            service.submit(1, 1 << 16, build).unwrap_err(),
            RuntimeError::ServiceShutdown
        );
        service.shutdown(); // idempotent
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let service = MonitorService::start(MonitorPlan::workers(2));
        let ticket = service.submit(1, 1 << 16, build).unwrap();
        loop {
            match service.try_take(ticket) {
                Ok(None) => thread::yield_now(),
                Ok(Some(fleet)) => {
                    assert_eq!(fleet.completed(), 1);
                    break;
                }
                Err(e) => panic!("live ticket must not error: {e}"),
            }
        }
        assert!(matches!(
            service.try_take(FleetTicket { id: 404 }),
            Err(RuntimeError::UnknownTicket { id: 404 })
        ));
    }
}
