//! The typed runtime-fault taxonomy: every way the execution engine
//! itself — not the measurement — can fail, as one enum.
//!
//! Before this module the runtime's failure story was ad hoc: a
//! panicking task aborted the whole scope, a missing result slot was
//! an `expect`, a full [`crate::queue::MemoryGate`] waited forever.
//! [`RuntimeError`] names each of those conditions so callers can
//! isolate them per task (a faulted die instead of a crashed lot),
//! retry them under a [`crate::supervisor::TaskPolicy`], or surface
//! them in a degraded `LotReport` — partial results as first-class
//! values.

use nfbist_soc::SocError;
use std::fmt;
use std::time::Duration;

/// A fault raised by the runtime layer while executing a task, as
/// opposed to a domain error raised by the measurement itself (those
/// arrive wrapped in [`RuntimeError::Soc`]).
///
/// # Examples
///
/// ```
/// use nfbist_runtime::error::RuntimeError;
///
/// let fault = RuntimeError::TaskPanicked {
///     index: 7,
///     message: "chaos: injected worker panic".to_string(),
/// };
/// assert!(fault.to_string().contains("task 7"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The task body panicked; the unwind was caught at the task
    /// boundary and the payload rendered into `message`.
    TaskPanicked {
        /// Task (die) index.
        index: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The task ran past its per-task deadline; its (late) result was
    /// discarded deterministically.
    DeadlineExceeded {
        /// Task (die) index.
        index: usize,
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// A result slot came back unfilled — the scheduling invariant
    /// ("every index claimed exactly once") was violated, most likely
    /// by a worker dying mid-claim.
    ResultMissing {
        /// Slot index that held no result.
        index: usize,
    },
    /// A one-shot task slot was already consumed when a worker claimed
    /// it — the twin of [`RuntimeError::ResultMissing`] on the input
    /// side.
    TaskMissing {
        /// Task index whose closure was gone.
        index: usize,
    },
    /// A memory-gate admission timed out: the requested cost never fit
    /// under the capacity within the wait bound.
    AdmissionTimeout {
        /// Bytes requested.
        requested: usize,
        /// Gate capacity in bytes.
        capacity: usize,
        /// How long the admission was allowed to wait.
        waited: Duration,
    },
    /// A simulated allocation failure (chaos injection): the task's
    /// transient buffers could not be obtained.
    AllocationFailed {
        /// Task (die) index.
        index: usize,
        /// Bytes the simulated allocation asked for.
        bytes: usize,
    },
    /// The task failed on every allowed attempt and was quarantined;
    /// `last` is the fault of the final attempt.
    Quarantined {
        /// Task (die) index.
        index: usize,
        /// Attempts made before giving up.
        attempts: usize,
        /// The final attempt's fault.
        last: Box<RuntimeError>,
    },
    /// A submission was rejected because the service is draining (or
    /// already stopped).
    ServiceShutdown,
    /// A ticket referenced a lot the service has never seen.
    UnknownTicket {
        /// The unknown ticket id.
        id: u64,
    },
    /// A measurement-stack error, carried through the runtime
    /// unchanged.
    Soc(SocError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TaskPanicked { index, message } => {
                write!(f, "task {index} panicked: {message}")
            }
            RuntimeError::DeadlineExceeded { index, deadline } => {
                write!(f, "task {index} exceeded its {deadline:?} deadline")
            }
            RuntimeError::ResultMissing { index } => {
                write!(f, "result slot {index} was never filled")
            }
            RuntimeError::TaskMissing { index } => {
                write!(f, "task slot {index} was already consumed")
            }
            RuntimeError::AdmissionTimeout {
                requested,
                capacity,
                waited,
            } => write!(
                f,
                "memory-gate admission of {requested} bytes (capacity {capacity}) timed out after {waited:?}"
            ),
            RuntimeError::AllocationFailed { index, bytes } => {
                write!(f, "task {index}: simulated allocation of {bytes} bytes failed")
            }
            RuntimeError::Quarantined {
                index,
                attempts,
                last,
            } => write!(
                f,
                "task {index} quarantined after {attempts} failed attempt(s); last fault: {last}"
            ),
            RuntimeError::ServiceShutdown => {
                write!(f, "the fleet service is draining and accepts no new lots")
            }
            RuntimeError::UnknownTicket { id } => {
                write!(f, "no lot with ticket id {id} was ever submitted")
            }
            RuntimeError::Soc(e) => write!(f, "measurement error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Soc(e) => Some(e),
            RuntimeError::Quarantined { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<SocError> for RuntimeError {
    fn from(e: SocError) -> Self {
        RuntimeError::Soc(e)
    }
}

/// Renders a caught panic payload into a human-readable message
/// (`&str` and `String` payloads verbatim, anything else a
/// placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(RuntimeError, &str)> = vec![
            (
                RuntimeError::TaskPanicked {
                    index: 3,
                    message: "boom".into(),
                },
                "task 3 panicked",
            ),
            (
                RuntimeError::DeadlineExceeded {
                    index: 1,
                    deadline: Duration::from_millis(250),
                },
                "deadline",
            ),
            (RuntimeError::ResultMissing { index: 9 }, "slot 9"),
            (RuntimeError::TaskMissing { index: 2 }, "task slot 2"),
            (
                RuntimeError::AdmissionTimeout {
                    requested: 64,
                    capacity: 32,
                    waited: Duration::from_millis(5),
                },
                "timed out",
            ),
            (
                RuntimeError::AllocationFailed {
                    index: 4,
                    bytes: 1024,
                },
                "allocation",
            ),
            (RuntimeError::ServiceShutdown, "draining"),
            (RuntimeError::UnknownTicket { id: 12 }, "ticket id 12"),
            (
                RuntimeError::Soc(SocError::InvalidParameter {
                    name: "x",
                    reason: "y",
                }),
                "measurement error",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err:?} must mention {needle:?}"
            );
        }
    }

    #[test]
    fn quarantine_chains_its_source() {
        let last = RuntimeError::TaskPanicked {
            index: 5,
            message: "boom".into(),
        };
        let q = RuntimeError::Quarantined {
            index: 5,
            attempts: 3,
            last: Box::new(last.clone()),
        };
        assert!(q.to_string().contains("after 3 failed"));
        assert_eq!(q.source().map(|s| s.to_string()), Some(last.to_string()));
        let soc = RuntimeError::from(SocError::InvalidParameter {
            name: "a",
            reason: "b",
        });
        assert!(soc.source().is_some());
        assert!(RuntimeError::ServiceShutdown.source().is_none());
    }

    #[test]
    fn panic_messages_render() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new("owned".to_string());
        assert_eq!(panic_message(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(s.as_ref()), "non-string panic payload");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
