//! # nfbist-runtime — parallel batch execution for the DATE'05 reproduction
//!
//! The paper's headline numbers come from *many* independent
//! acquisitions: Monte Carlo repeatability trials, `repeats(n)`
//! Y-averaging, the four-op-amp Table 3 sweep, per-point multipoint
//! estimates. Every one of those batches is embarrassingly parallel —
//! and, because the whole simulation is seeded, every one of them can
//! be parallel **without changing a single bit of output**.
//!
//! This crate is the seam that delivers it:
//!
//! * [`queue::WorkQueue`] — the scheduling substrate: a sharded
//!   work-stealing index queue over scoped threads, plus
//!   [`queue::MemoryGate`], the global memory-budget admission gate
//!   whose backpressure bounds peak RSS independent of batch size.
//! * [`executor::BatchExecutor`] — a scoped-thread worker pool
//!   (std-only, no external runtime) returning slot-indexed results,
//!   so reduction order never depends on scheduling. One worker runs
//!   tasks inline on the calling thread.
//! * [`batch::BatchPlan`] — batch entry points over the measurement
//!   stack: [`batch::BatchPlan::run_session`] fans a session's repeats
//!   out (bit-identical to `MeasurementSession::run`),
//!   [`batch::BatchPlan::run_monte_carlo`] fans whole trials,
//!   [`batch::BatchPlan::run_cells`] fans arbitrary sweep cells,
//!   [`batch::BatchPlan::run_multipoint`] fans a multipoint BIST's
//!   acquisitions and per-point estimates, and
//!   [`batch::BatchPlan::run_coverage`] fans a defect-coverage
//!   campaign's variant × trial cells.
//! * [`batch::SessionBatch`] — ordered Monte Carlo results with the
//!   summary statistics the repeatability experiments need.
//! * [`batch::derive_seed`] — deterministic per-index seed derivation
//!   (golden-ratio walk + SplitMix64 finalizer), hashed so trial-level
//!   seeds never alias the session's arithmetic per-repeat walk.
//! * [`fleet::FleetPlan`] — fleet-scale lot screening: thousands of
//!   die jobs fanned over the work queue, each admitted through the
//!   memory gate, folded into a `LotReport` that is bit-identical
//!   across worker counts, budgets and admission orderings.
//! * [`error::RuntimeError`] — the typed runtime-fault taxonomy
//!   (panic, deadline, admission timeout, quarantine, …) that turned
//!   the engine's ad-hoc panics and `expect`s into recoverable
//!   values.
//! * [`supervisor`] — per-task fault tolerance: `catch_unwind` panic
//!   isolation, per-die deadlines enforced by a `Condvar`
//!   `wait_timeout` watchdog thread, bounded retry with deterministic
//!   backoff, quarantine after the attempt budget.
//! * [`chaos`] — the seeded runtime fault-injection harness:
//!   scheduled worker panics, slow-die stalls and allocation-failure
//!   simulation, reproducible bit for bit from one seed
//!   (`NFBIST_CHAOS` opts a whole test run in).
//! * [`service::FleetService`] — the long-running screening service:
//!   lots submitted over time to a supervised worker loop, graceful
//!   drain on shutdown, health snapshots mid-flight.
//! * [`monitor::MonitorPlan`] / [`monitor::MonitorService`] — the
//!   continuous-monitoring twins: fleets of in-field
//!   `MonitorSession` missions fanned out, admitted, supervised and
//!   chaos-hardened exactly like lot screening, with every surviving
//!   alarm timeline bit-identical to its solo run.
//!
//! ## Example
//!
//! ```no_run
//! use nfbist_runtime::batch::{derive_seed, BatchPlan};
//! use nfbist_soc::session::MeasurementSession;
//! use nfbist_soc::setup::BistSetup;
//!
//! # fn main() -> Result<(), nfbist_soc::SocError> {
//! // 12 Monte Carlo trials across all cores; per-trial seeds derived
//! // deterministically, so the batch reproduces exactly on any
//! // machine and any worker count.
//! let batch = BatchPlan::new().run_monte_carlo(12, |trial| {
//!     MeasurementSession::new(BistSetup::quick(derive_seed(42, trial as u64)))
//! })?;
//! println!("NF spread over 12 trials: {:.3} dB", batch.nf_std_db()?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Library code must propagate faults through `RuntimeError`, never
// swallow them into a panic; the test modules opt back out locally.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod batch;
pub mod chaos;
pub mod error;
pub mod executor;
pub mod fleet;
pub mod monitor;
pub mod queue;
pub mod service;
pub mod supervisor;

pub use batch::{derive_seed, BatchPlan, SessionBatch};
pub use chaos::ChaosConfig;
pub use error::RuntimeError;
pub use executor::BatchExecutor;
pub use fleet::FleetPlan;
pub use monitor::{MonitorPlan, MonitorService};
pub use queue::{MemoryGate, WorkQueue};
pub use service::{FleetService, HealthSnapshot, LotTicket};
pub use supervisor::{Backoff, TaskPolicy, Watchdog};
