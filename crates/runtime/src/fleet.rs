//! Fleet-scale lot screening under a global memory budget: the
//! parallel, backpressured, **fault-tolerant** twin of
//! `nfbist_soc::fleet::LotScreen::run`.
//!
//! A lot is thousands of die-screening jobs, each a pure function of
//! its die index. [`FleetPlan::screen_lot`] fans them across a
//! [`WorkQueue`] (sharded claiming + work stealing) with every job
//! first *admitted* through a [`MemoryGate`]: the job's worst-case
//! transient memory (`LotScreen::die_cost_bytes`) must fit under the
//! global budget before it may run, and blocked workers simply wait —
//! backpressure. Peak RSS is therefore set by
//! `min(workers, budget / die_cost)` concurrent jobs, **independent of
//! lot size**.
//!
//! Every die runs under the plan's [`TaskPolicy`]: panics are caught
//! at the die boundary, attempts past the per-die deadline are
//! discarded, failed dies retry with deterministic backoff, and a die
//! that exhausts its budget is quarantined into a
//! [`DieFault`] record — so one bad die
//! degrades the [`LotReport`] instead of crashing the lot. An optional
//! [`ChaosConfig`] injects seeded runtime faults (worker panics,
//! stalls, allocation failures) in front of the die body, never into
//! its inputs.
//!
//! Determinism is unconditional: die outcomes depend only on
//! `derive_seed(lot_seed, die_index)`, results are slot-indexed, and
//! `LotScreen::assemble_records` folds them in die order — so the
//! report is bit-identical across worker counts, budgets, and
//! admission orderings, and every die that *survives* a chaos run
//! returns exactly the bits of the clean run. The gate and the policy
//! can change *when* and *whether* a die's result is kept, never *what*
//! it measures.

use crate::chaos::{ChaosConfig, InjectedFault};
use crate::error::RuntimeError;
use crate::queue::{MemoryGate, WorkQueue};
use crate::supervisor::{TaskPolicy, Watchdog};
use nfbist_soc::fleet::{DieFault, DieFaultKind, DieRecord, LotReport, LotScreen};

/// A fleet execution plan: worker count, optional global memory budget
/// for admission control, per-die supervision policy, and optional
/// seeded fault injection.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
/// use nfbist_runtime::fleet::FleetPlan;
/// use nfbist_soc::coverage::FaultUniverse;
/// use nfbist_soc::fleet::LotScreen;
/// use nfbist_soc::screening::Screen;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lot = Lot::new(
///     WaferMap::disc(5)?,
///     ProcessVariation::default(),
///     DefectModel::new().background(0.2)?,
///     11,
/// )?;
/// let mut setup = BistSetup::quick(0);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let screening = LotScreen::new(
///     lot,
///     setup,
///     Screen::new(12.0, 3.0)?,
///     FaultUniverse::new().excess_noise(&[8.0])?,
/// )?;
/// // 2 workers, ~2 concurrent dies' worth of global budget: the
/// // report is bit-identical to `screening.run()`.
/// let report = FleetPlan::workers(2)
///     .memory_budget(2 * screening.die_cost_bytes())
///     .screen_lot(&screening)?;
/// assert_eq!(report, screening.run()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPlan {
    workers: usize,
    budget: Option<usize>,
    policy: TaskPolicy,
    chaos: Option<ChaosConfig>,
}

impl FleetPlan {
    /// A plan sized to the machine
    /// (`std::thread::available_parallelism`), unbudgeted, with the
    /// default one-attempt policy and no fault injection.
    pub fn new() -> Self {
        FleetPlan {
            workers: WorkQueue::with_available_parallelism().workers(),
            budget: None,
            policy: TaskPolicy::new(),
            chaos: None,
        }
    }

    /// A single-worker plan: dies run inline on the calling thread, in
    /// die order — the reference schedule.
    pub fn sequential() -> Self {
        Self::workers(1)
    }

    /// A plan with an explicit worker count (clamped to ≥ 1).
    pub fn workers(n: usize) -> Self {
        FleetPlan {
            workers: n.max(1),
            budget: None,
            policy: TaskPolicy::new(),
            chaos: None,
        }
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Sets the global memory budget in bytes: at most this much
    /// admitted die-job cost in flight at once, enforced by a
    /// [`MemoryGate`] with backpressure. Unset means unbounded (the
    /// worker count alone caps concurrency).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// The global memory budget, if set.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Sets the per-die supervision policy: deadline, retry budget,
    /// backoff. The default is one attempt, no deadline — panic
    /// isolation alone.
    pub const fn task_policy(mut self, policy: TaskPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The per-die supervision policy in force.
    pub const fn policy(&self) -> TaskPolicy {
        self.policy
    }

    /// Arms seeded runtime fault injection: each die's jobs consult the
    /// schedule before running (see [`ChaosConfig`]).
    pub const fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The armed chaos schedule, if any.
    pub const fn chaos_config(&self) -> Option<ChaosConfig> {
        self.chaos
    }

    /// Screens every die of the lot across the plan's workers, each
    /// die admitted through the global memory gate and supervised under
    /// the plan's [`TaskPolicy`], and folds the records into the lot
    /// report.
    ///
    /// A die whose every attempt fails (panic, deadline, allocation
    /// failure, screening error) becomes a
    /// [`DieRecord::Faulted`] entry and the report comes back
    /// *degraded* — surviving dies are still bit-identical to
    /// [`LotScreen::run`] for every worker count, budget, and chaos
    /// schedule.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] only for a malformed assembly (an
    /// impossible record set) — per-die faults are folded into the
    /// report, not returned.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
    /// use nfbist_runtime::chaos::ChaosConfig;
    /// use nfbist_runtime::fleet::FleetPlan;
    /// use nfbist_runtime::supervisor::TaskPolicy;
    /// use nfbist_soc::coverage::FaultUniverse;
    /// use nfbist_soc::fleet::LotScreen;
    /// use nfbist_soc::screening::Screen;
    /// use nfbist_soc::setup::BistSetup;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let lot = Lot::new(
    ///     WaferMap::disc(6)?,
    ///     ProcessVariation::default(),
    ///     DefectModel::new().background(0.2)?,
    ///     3,
    /// )?;
    /// let screening = LotScreen::new(
    ///     lot,
    ///     BistSetup::quick(0),
    ///     Screen::new(12.0, 3.0)?,
    ///     FaultUniverse::new().excess_noise(&[8.0])?,
    /// )?;
    /// // Inject seeded worker panics; quarantined dies degrade the
    /// // report instead of crashing the lot.
    /// let report = FleetPlan::workers(4)
    ///     .task_policy(TaskPolicy::new().attempts(2))
    ///     .chaos(ChaosConfig::new(99).faulty_attempts(2))
    ///     .screen_lot(&screening)?;
    /// println!("status: {:?}, faulted: {}", report.status(), report.faulted());
    /// # Ok(())
    /// # }
    /// ```
    pub fn screen_lot(&self, screening: &LotScreen) -> Result<LotReport, RuntimeError> {
        let gate = match self.budget {
            Some(bytes) => MemoryGate::new(bytes),
            None => MemoryGate::unbounded(),
        };
        let cost = screening.die_cost_bytes();
        let deadline = self.policy.deadline_duration();
        // One monitor thread for the whole lot; only spun up when a
        // deadline can actually expire.
        let watchdog = deadline.map(|_| Watchdog::new());
        let results = WorkQueue::new(self.workers).run_isolated(screening.dies(), |i| {
            self.policy.supervise(i, watchdog.as_ref(), |attempt| {
                // Admission before acquisition: the die's transient
                // buffers are only allocated once its cost fits under
                // the global budget. The guard is held for the whole
                // screen. Under a deadline the wait itself is bounded.
                let _in_flight = match deadline {
                    Some(limit) => gate.admit_within(cost, limit)?,
                    None => gate.admit(cost),
                };
                if let Some(chaos) = &self.chaos {
                    // On an adaptive lot, panics and stalls are
                    // deferred into the first sequential checkpoint so
                    // the fault lands *mid-acquisition* — after the
                    // streaming chains hold partial chunks — proving a
                    // quarantined die never leaks partial data into the
                    // report's float folds. Allocation failures model a
                    // failed *admission* and stay in front of the die
                    // body (the probe cannot return an error anyway).
                    let defer = screening.adaptive_screen().is_some()
                        && !matches!(chaos.fault_for(i), None | Some(InjectedFault::AllocFailure));
                    if defer {
                        let probe = move |checkpoint: usize| {
                            if checkpoint == 0 {
                                // Only Panic/Stall reach here; neither
                                // returns an error.
                                let _ = chaos.inject(i, attempt, deadline, cost);
                            }
                        };
                        return screening
                            .screen_die_probed(i, &probe)
                            .map_err(RuntimeError::from);
                    }
                    chaos.inject(i, attempt, deadline, cost)?;
                }
                screening.screen_die(i).map_err(RuntimeError::from)
            })
        });
        let records = results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.and_then(|inner| inner) {
                Ok(outcome) => DieRecord::Screened(outcome),
                Err(fault) => DieRecord::Faulted(die_fault(i, fault)),
            })
            .collect();
        screening
            .assemble_records(records)
            .map_err(RuntimeError::from)
    }
}

impl Default for FleetPlan {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a runtime fault into the soc-layer die-fault record the
/// report folds. Quarantines unwrap to their terminal fault; anything
/// else was a single-attempt loss.
fn die_fault(die: usize, fault: RuntimeError) -> DieFault {
    match fault {
        RuntimeError::Quarantined { attempts, last, .. } => DieFault {
            die,
            attempts,
            kind: fault_kind(*last),
        },
        other => DieFault {
            die,
            attempts: 1,
            kind: fault_kind(other),
        },
    }
}

fn fault_kind(fault: RuntimeError) -> DieFaultKind {
    match fault {
        RuntimeError::TaskPanicked { message, .. } => DieFaultKind::Panicked { message },
        RuntimeError::DeadlineExceeded { .. } => DieFaultKind::DeadlineExceeded,
        RuntimeError::AllocationFailed { .. } => DieFaultKind::AllocationFailed,
        other => DieFaultKind::Error {
            message: other.to_string(),
        },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::chaos::InjectedFault;
    use crate::supervisor::Backoff;
    use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
    use nfbist_soc::coverage::FaultUniverse;
    use nfbist_soc::fleet::LotStatus;
    use nfbist_soc::screening::{RetestPolicy, Screen};
    use nfbist_soc::setup::BistSetup;
    use std::time::Duration;

    fn small_screening(seed: u64) -> LotScreen {
        let lot = Lot::new(
            WaferMap::disc(5).unwrap(),
            ProcessVariation::default(),
            DefectModel::new().background(0.3).unwrap(),
            seed,
        )
        .unwrap();
        let mut setup = BistSetup::quick(0);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        LotScreen::new(
            lot,
            setup,
            Screen::new(12.0, 3.0).unwrap(),
            FaultUniverse::new().excess_noise(&[2.0, 8.0]).unwrap(),
        )
        .unwrap()
        .retest(RetestPolicy::new(2, 2).unwrap())
    }

    #[test]
    fn plan_construction() {
        assert_eq!(FleetPlan::sequential().worker_count(), 1);
        assert_eq!(FleetPlan::workers(0).worker_count(), 1);
        assert!(FleetPlan::new().worker_count() >= 1);
        assert_eq!(FleetPlan::default(), FleetPlan::new());
        assert_eq!(FleetPlan::new().memory_budget_bytes(), None);
        assert_eq!(
            FleetPlan::workers(2)
                .memory_budget(1 << 20)
                .memory_budget_bytes(),
            Some(1 << 20)
        );
        assert_eq!(FleetPlan::new().policy(), TaskPolicy::new());
        assert_eq!(FleetPlan::new().chaos_config(), None);
        let plan = FleetPlan::workers(2)
            .task_policy(TaskPolicy::new().attempts(3))
            .chaos(ChaosConfig::new(9));
        assert_eq!(plan.policy().max_attempts(), 3);
        assert_eq!(plan.chaos_config().map(|c| c.seed()), Some(9));
    }

    #[test]
    fn parallel_budgeted_screening_is_bitwise_sequential() {
        let screening = small_screening(77);
        let reference = screening.run().unwrap();
        for plan in [
            FleetPlan::sequential(),
            FleetPlan::workers(3),
            // Budget for a single in-flight die: full serialization
            // through the gate, still identical.
            FleetPlan::workers(4).memory_budget(screening.die_cost_bytes()),
            // Supervision without faults must be invisible.
            FleetPlan::workers(3).task_policy(
                TaskPolicy::new()
                    .attempts(3)
                    .deadline(Duration::from_secs(120))
                    .backoff(Backoff::fixed(Duration::from_millis(1))),
            ),
        ] {
            assert_eq!(
                plan.screen_lot(&screening).unwrap(),
                reference,
                "schedule {plan:?} must not change the report"
            );
        }
    }

    #[test]
    fn chaos_quarantines_marked_dies_and_spares_the_rest() {
        crate::chaos::install_quiet_panic_hook();
        let screening = small_screening(42);
        let reference = screening.run().unwrap();
        // Every marked die faults on all attempts: it must be
        // quarantined; unmarked dies must be bit-identical to the
        // clean run.
        let chaos = ChaosConfig::new(13)
            .panic_rate_per_mille(150)
            .stall_rate_per_mille(0)
            .alloc_rate_per_mille(150)
            .faulty_attempts(2);
        let plan = FleetPlan::workers(4)
            .task_policy(TaskPolicy::new().attempts(2))
            .chaos(chaos);
        let report = plan.screen_lot(&screening).unwrap();
        let marked: Vec<usize> = chaos
            .scheduled_faults(screening.dies())
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert!(!marked.is_empty(), "seed must mark some dies");
        assert_eq!(report.status(), LotStatus::Degraded);
        assert_eq!(report.faulted(), marked.len());
        let faulted: Vec<usize> = report.faults().map(|f| f.die).collect();
        assert_eq!(faulted, marked, "exactly the marked dies must fault");
        for fault in report.faults() {
            assert_eq!(fault.attempts, 2);
            match chaos.fault_for(fault.die).unwrap() {
                InjectedFault::Panic => {
                    assert!(matches!(fault.kind, DieFaultKind::Panicked { .. }))
                }
                InjectedFault::AllocFailure => {
                    assert_eq!(fault.kind, DieFaultKind::AllocationFailed)
                }
                InjectedFault::Stall => unreachable!("stall rate is zero"),
            }
        }
        // Surviving dies carry the clean run's exact bits.
        for (record, clean) in report.records().iter().zip(reference.outcomes()) {
            if let Some(outcome) = record.outcome() {
                assert_eq!(outcome.die, clean.die);
                assert_eq!(outcome.nf_db.to_bits(), clean.nf_db.to_bits());
            }
        }
    }

    #[test]
    fn retry_recovers_chaos_faults_into_a_complete_report() {
        crate::chaos::install_quiet_panic_hook();
        let screening = small_screening(77);
        let reference = screening.run().unwrap();
        // Faults clear after the first attempt; a 2-attempt policy must
        // recover every die and reproduce the clean report bit for bit.
        let report = FleetPlan::workers(3)
            .task_policy(TaskPolicy::new().attempts(2))
            .chaos(
                ChaosConfig::new(21)
                    .panic_rate_per_mille(200)
                    .stall_rate_per_mille(0)
                    .alloc_rate_per_mille(100)
                    .faulty_attempts(1),
            )
            .screen_lot(&screening)
            .unwrap();
        assert_eq!(report.status(), LotStatus::Complete);
        assert_eq!(report, reference, "recovered lot must be bit-identical");
    }

    #[test]
    fn stalled_dies_blow_the_deadline_and_degrade_the_lot() {
        crate::chaos::install_quiet_panic_hook();
        let screening = small_screening(8);
        let chaos = ChaosConfig::new(5)
            .panic_rate_per_mille(0)
            .stall_rate_per_mille(120)
            .alloc_rate_per_mille(0)
            .stall_extra(Duration::from_millis(30))
            .faulty_attempts(1);
        let stalled: Vec<usize> = chaos
            .scheduled_faults(screening.dies())
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert!(!stalled.is_empty(), "seed must stall some dies");
        // The stall sleeps deadline + extra, so a short deadline keeps
        // the test fast while guaranteeing every stalled die blows it.
        let report = FleetPlan::workers(2)
            .task_policy(TaskPolicy::new().deadline(Duration::from_millis(1500)))
            .chaos(chaos)
            .screen_lot(&screening)
            .unwrap();
        assert_eq!(report.status(), LotStatus::Degraded);
        let faulted: Vec<usize> = report.faults().map(|f| f.die).collect();
        assert_eq!(faulted, stalled);
        for fault in report.faults() {
            assert_eq!(fault.kind, DieFaultKind::DeadlineExceeded);
        }
    }
}
