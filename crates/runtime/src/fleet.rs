//! Fleet-scale lot screening under a global memory budget: the
//! parallel, backpressured twin of `nfbist_soc::fleet::LotScreen::run`.
//!
//! A lot is thousands of die-screening jobs, each a pure function of
//! its die index. [`FleetPlan::screen_lot`] fans them across a
//! [`WorkQueue`] (sharded claiming + work stealing) with every job
//! first *admitted* through a [`MemoryGate`]: the job's worst-case
//! transient memory (`LotScreen::die_cost_bytes`) must fit under the
//! global budget before it may run, and blocked workers simply wait —
//! backpressure. Peak RSS is therefore set by
//! `min(workers, budget / die_cost)` concurrent jobs, **independent of
//! lot size**.
//!
//! Determinism is unconditional: die outcomes depend only on
//! `derive_seed(lot_seed, die_index)`, results are slot-indexed, and
//! `LotScreen::assemble` folds them in die order — so the report is
//! bit-identical across worker counts, budgets, and admission
//! orderings. The gate can change *when* a die runs, never *what* it
//! measures.

use crate::queue::{MemoryGate, WorkQueue};
use nfbist_soc::fleet::{LotReport, LotScreen};
use nfbist_soc::SocError;

/// A fleet execution plan: worker count plus an optional global
/// memory budget for admission control.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
/// use nfbist_runtime::fleet::FleetPlan;
/// use nfbist_soc::coverage::FaultUniverse;
/// use nfbist_soc::fleet::LotScreen;
/// use nfbist_soc::screening::Screen;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let lot = Lot::new(
///     WaferMap::disc(5)?,
///     ProcessVariation::default(),
///     DefectModel::new().background(0.2)?,
///     11,
/// )?;
/// let mut setup = BistSetup::quick(0);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let screening = LotScreen::new(
///     lot,
///     setup,
///     Screen::new(12.0, 3.0)?,
///     FaultUniverse::new().excess_noise(&[8.0])?,
/// )?;
/// // 2 workers, ~2 concurrent dies' worth of global budget: the
/// // report is bit-identical to `screening.run()`.
/// let report = FleetPlan::workers(2)
///     .memory_budget(2 * screening.die_cost_bytes())
///     .screen_lot(&screening)?;
/// assert_eq!(report, screening.run()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPlan {
    workers: usize,
    budget: Option<usize>,
}

impl FleetPlan {
    /// A plan sized to the machine
    /// (`std::thread::available_parallelism`), unbudgeted.
    pub fn new() -> Self {
        FleetPlan {
            workers: WorkQueue::with_available_parallelism().workers(),
            budget: None,
        }
    }

    /// A single-worker plan: dies run inline on the calling thread, in
    /// die order — the reference schedule.
    pub fn sequential() -> Self {
        Self::workers(1)
    }

    /// A plan with an explicit worker count (clamped to ≥ 1).
    pub fn workers(n: usize) -> Self {
        FleetPlan {
            workers: n.max(1),
            budget: None,
        }
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Sets the global memory budget in bytes: at most this much
    /// admitted die-job cost in flight at once, enforced by a
    /// [`MemoryGate`] with backpressure. Unset means unbounded (the
    /// worker count alone caps concurrency).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// The global memory budget, if set.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Screens every die of the lot across the plan's workers, each
    /// die admitted through the global memory gate, and folds the
    /// outcomes into the lot report — bit-identical to
    /// [`LotScreen::run`] for every worker count and budget.
    ///
    /// # Errors
    ///
    /// Propagates the first failing die, in die order (an
    /// *unmeasurable* die is a gross-reject verdict, not an error).
    pub fn screen_lot(&self, screening: &LotScreen) -> Result<LotReport, SocError> {
        let gate = match self.budget {
            Some(bytes) => MemoryGate::new(bytes),
            None => MemoryGate::unbounded(),
        };
        let cost = screening.die_cost_bytes();
        let outcomes = WorkQueue::new(self.workers).run(screening.dies(), |i| {
            // Admission before acquisition: the die's transient
            // buffers are only allocated once its cost fits under the
            // global budget. The guard is held for the whole screen.
            let _in_flight = gate.admit(cost);
            screening.screen_die(i)
        });
        screening.assemble(outcomes.into_iter().collect::<Result<Vec<_>, _>>()?)
    }
}

impl Default for FleetPlan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
    use nfbist_soc::coverage::FaultUniverse;
    use nfbist_soc::screening::{RetestPolicy, Screen};
    use nfbist_soc::setup::BistSetup;

    fn small_screening(seed: u64) -> LotScreen {
        let lot = Lot::new(
            WaferMap::disc(5).unwrap(),
            ProcessVariation::default(),
            DefectModel::new().background(0.3).unwrap(),
            seed,
        )
        .unwrap();
        let mut setup = BistSetup::quick(0);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        LotScreen::new(
            lot,
            setup,
            Screen::new(12.0, 3.0).unwrap(),
            FaultUniverse::new().excess_noise(&[2.0, 8.0]).unwrap(),
        )
        .unwrap()
        .retest(RetestPolicy::new(2, 2).unwrap())
    }

    #[test]
    fn plan_construction() {
        assert_eq!(FleetPlan::sequential().worker_count(), 1);
        assert_eq!(FleetPlan::workers(0).worker_count(), 1);
        assert!(FleetPlan::new().worker_count() >= 1);
        assert_eq!(FleetPlan::default(), FleetPlan::new());
        assert_eq!(FleetPlan::new().memory_budget_bytes(), None);
        assert_eq!(
            FleetPlan::workers(2)
                .memory_budget(1 << 20)
                .memory_budget_bytes(),
            Some(1 << 20)
        );
    }

    #[test]
    fn parallel_budgeted_screening_is_bitwise_sequential() {
        let screening = small_screening(77);
        let reference = screening.run().unwrap();
        for plan in [
            FleetPlan::sequential(),
            FleetPlan::workers(3),
            // Budget for a single in-flight die: full serialization
            // through the gate, still identical.
            FleetPlan::workers(4).memory_budget(screening.die_cost_bytes()),
        ] {
            assert_eq!(
                plan.screen_lot(&screening).unwrap(),
                reference,
                "schedule {plan:?} must not change the report"
            );
        }
    }
}
