//! The long-running fleet screening service: lots submitted over time
//! to a supervised worker loop, graceful drain on shutdown, health
//! snapshots mid-flight.
//!
//! [`FleetPlan::screen_lot`] is one lot, one call. A production line
//! is a *stream* of lots arriving while earlier ones are still on the
//! tester. [`FleetService`] owns that stream: a dedicated service
//! thread pops submitted lots off a queue and screens each under the
//! service's [`FleetPlan`] — panic isolation, deadlines, retries and
//! chaos injection included — while callers hold a [`LotTicket`] they
//! can block on ([`FleetService::wait`]) or poll
//! ([`FleetService::try_take`]).
//!
//! Shutdown is a **graceful drain**: [`FleetService::shutdown`] stops
//! accepting new lots, finishes everything already queued, then joins
//! the service thread. Results of drained lots stay collectable
//! afterwards. Dropping the service performs the same drain.
//!
//! The whole-lot screen runs under its own `catch_unwind`, so even a
//! fault that escapes per-die isolation (a scheduler invariant
//! violation, say) is recorded against that lot's ticket instead of
//! killing the service loop.

use crate::error::{panic_message, RuntimeError};
use crate::fleet::FleetPlan;
use nfbist_soc::fleet::{LotReport, LotScreen};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};

/// A claim on one submitted lot's eventual report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LotTicket {
    id: u64,
}

impl LotTicket {
    /// The service-assigned lot id (submission order, starting at 0).
    pub const fn id(&self) -> u64 {
        self.id
    }
}

/// A point-in-time view of the service's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Lots submitted but not yet started.
    pub queued: usize,
    /// Whether a lot is being screened right now.
    pub screening: bool,
    /// Lots finished (successfully or not) over the service lifetime.
    pub completed_lots: u64,
    /// Dies screened to a verdict across all finished lots.
    pub screened_dies: u64,
    /// Dies lost to runtime faults across all finished lots.
    pub faulted_dies: u64,
    /// Whether the service is draining (no new submissions).
    pub draining: bool,
}

struct ServiceState {
    queue: VecDeque<(u64, LotScreen)>,
    results: HashMap<u64, Result<LotReport, RuntimeError>>,
    screening: Option<u64>,
    next_id: u64,
    draining: bool,
    completed_lots: u64,
    screened_dies: u64,
    faulted_dies: u64,
}

struct ServiceShared {
    state: Mutex<ServiceState>,
    submitted: Condvar,
    finished: Condvar,
}

impl ServiceShared {
    fn lock(&self) -> MutexGuard<'_, ServiceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The long-running screening service; see the module docs.
///
/// # Examples
///
/// ```
/// use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
/// use nfbist_runtime::fleet::FleetPlan;
/// use nfbist_runtime::service::FleetService;
/// use nfbist_soc::coverage::FaultUniverse;
/// use nfbist_soc::fleet::LotScreen;
/// use nfbist_soc::screening::Screen;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut service = FleetService::start(FleetPlan::workers(2));
/// let lot = Lot::new(
///     WaferMap::disc(4)?,
///     ProcessVariation::default(),
///     DefectModel::new().background(0.2)?,
///     5,
/// )?;
/// let mut setup = BistSetup::quick(0);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let screening = LotScreen::new(
///     lot,
///     setup,
///     Screen::new(12.0, 3.0)?,
///     FaultUniverse::new().excess_noise(&[8.0])?,
/// )?;
/// let ticket = service.submit(screening)?;
/// let report = service.wait(ticket)?;
/// assert!(report.dies() > 0);
/// service.shutdown(); // graceful drain
/// # Ok(())
/// # }
/// ```
pub struct FleetService {
    shared: Arc<ServiceShared>,
    plan: FleetPlan,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FleetService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetService")
            .field("plan", &self.plan)
            .field("health", &self.health())
            .finish()
    }
}

impl FleetService {
    /// Starts the service thread; every submitted lot is screened
    /// under `plan`.
    pub fn start(plan: FleetPlan) -> Self {
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                queue: VecDeque::new(),
                results: HashMap::new(),
                screening: None,
                next_id: 0,
                draining: false,
                completed_lots: 0,
                screened_dies: 0,
                faulted_dies: 0,
            }),
            submitted: Condvar::new(),
            finished: Condvar::new(),
        });
        let loop_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("nfbist-fleet-service".to_string())
            .spawn(move || Self::service_loop(&loop_shared, plan))
            .ok();
        FleetService {
            shared,
            plan,
            worker,
        }
    }

    fn service_loop(shared: &ServiceShared, plan: FleetPlan) {
        loop {
            let (id, screening) = {
                let mut state = shared.lock();
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        state.screening = Some(job.0);
                        break job;
                    }
                    if state.draining {
                        return;
                    }
                    state = shared
                        .submitted
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Belt and braces: per-die isolation lives in screen_lot;
            // this unwind guard keeps even an engine-level panic from
            // killing the service loop.
            let result = catch_unwind(AssertUnwindSafe(|| plan.screen_lot(&screening)))
                .unwrap_or_else(|payload| {
                    Err(RuntimeError::TaskPanicked {
                        index: 0,
                        message: format!(
                            "lot screen panicked: {}",
                            panic_message(payload.as_ref())
                        ),
                    })
                });
            let mut state = shared.lock();
            state.completed_lots += 1;
            if let Ok(report) = &result {
                state.faulted_dies += report.faulted() as u64;
                state.screened_dies += (report.dies() - report.faulted()) as u64;
            }
            state.results.insert(id, result);
            state.screening = None;
            drop(state);
            shared.finished.notify_all();
        }
    }

    /// The plan every lot is screened under.
    pub const fn plan(&self) -> FleetPlan {
        self.plan
    }

    /// Submits a lot for screening and returns the ticket its report
    /// will be filed under.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ServiceShutdown`] once the service is draining.
    pub fn submit(&self, screening: LotScreen) -> Result<LotTicket, RuntimeError> {
        let mut state = self.shared.lock();
        if state.draining {
            return Err(RuntimeError::ServiceShutdown);
        }
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back((id, screening));
        drop(state);
        self.shared.submitted.notify_all();
        Ok(LotTicket { id })
    }

    /// Takes the ticket's report if it is ready, without blocking.
    /// `Ok(None)` means the lot is still queued or on the tester.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a ticket that was never
    /// issued or whose result was already taken; the lot's own
    /// screening fault when the lot failed outright.
    pub fn try_take(&self, ticket: LotTicket) -> Result<Option<LotReport>, RuntimeError> {
        let mut state = self.shared.lock();
        match state.results.remove(&ticket.id) {
            Some(result) => result.map(Some),
            None if Self::pending(&state, ticket.id) => Ok(None),
            None => Err(RuntimeError::UnknownTicket { id: ticket.id }),
        }
    }

    /// Blocks until the ticket's lot has been screened and returns its
    /// report (each ticket's report can be taken once).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownTicket`] for a ticket that was never
    /// issued, was already taken, or was abandoned by a drain before
    /// the lot started; the lot's own screening fault when the lot
    /// failed outright.
    pub fn wait(&self, ticket: LotTicket) -> Result<LotReport, RuntimeError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(result) = state.results.remove(&ticket.id) {
                return result;
            }
            if !Self::pending(&state, ticket.id) {
                return Err(RuntimeError::UnknownTicket { id: ticket.id });
            }
            state = self
                .shared
                .finished
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn pending(state: &ServiceState, id: u64) -> bool {
        let live = state.screening == Some(id) || state.queue.iter().any(|(qid, _)| *qid == id);
        // A drained-away service thread finishes nothing further, but a
        // queued job survives the drain (graceful), so `live` is the
        // whole answer as long as the worker exists; once the worker is
        // gone the queue is empty anyway.
        live
    }

    /// A point-in-time health snapshot: queue depth, in-flight state,
    /// lifetime lot/die counters, drain flag.
    pub fn health(&self) -> HealthSnapshot {
        let state = self.shared.lock();
        HealthSnapshot {
            queued: state.queue.len(),
            screening: state.screening.is_some(),
            completed_lots: state.completed_lots,
            screened_dies: state.screened_dies,
            faulted_dies: state.faulted_dies,
            draining: state.draining,
        }
    }

    /// Gracefully drains the service: refuses new submissions, finishes
    /// every queued lot, joins the service thread. Results of drained
    /// lots remain collectable through [`FleetService::wait`] /
    /// [`FleetService::try_take`]. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.lock();
            state.draining = true;
        }
        self.shared.submitted.notify_all();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        // Wake anyone blocked in wait() on a lot that will never run.
        self.shared.finished.notify_all();
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::supervisor::TaskPolicy;
    use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
    use nfbist_soc::coverage::FaultUniverse;
    use nfbist_soc::fleet::LotStatus;
    use nfbist_soc::screening::Screen;
    use nfbist_soc::setup::BistSetup;

    fn tiny_screening(seed: u64) -> LotScreen {
        let lot = Lot::new(
            WaferMap::disc(4).unwrap(),
            ProcessVariation::default(),
            DefectModel::new().background(0.2).unwrap(),
            seed,
        )
        .unwrap();
        let mut setup = BistSetup::quick(0);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        LotScreen::new(
            lot,
            setup,
            Screen::new(12.0, 3.0).unwrap(),
            FaultUniverse::new().excess_noise(&[8.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn lots_stream_through_and_reports_match_direct_screening() {
        let service = FleetService::start(FleetPlan::workers(2));
        let tickets: Vec<LotTicket> = (0..3)
            .map(|k| service.submit(tiny_screening(10 + k)).unwrap())
            .collect();
        assert_eq!(
            tickets.iter().map(LotTicket::id).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        for (k, ticket) in tickets.into_iter().enumerate() {
            let report = service.wait(ticket).unwrap();
            let direct = tiny_screening(10 + k as u64).run().unwrap();
            assert_eq!(report, direct, "service lot {k} must match direct run");
            // A ticket's report can only be taken once.
            assert_eq!(
                service.wait(ticket),
                Err(RuntimeError::UnknownTicket { id: ticket.id() })
            );
        }
        let health = service.health();
        assert_eq!(health.completed_lots, 3);
        assert_eq!(health.queued, 0);
        assert!(!health.draining);
        assert_eq!(health.faulted_dies, 0);
        assert!(health.screened_dies > 0);
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let service = FleetService::start(FleetPlan::workers(2));
        let ticket = service.submit(tiny_screening(3)).unwrap();
        // Either still pending (Ok(None)) or already done — never an
        // error while the lot is live.
        loop {
            match service.try_take(ticket) {
                Ok(None) => thread::yield_now(),
                Ok(Some(report)) => {
                    assert_eq!(report.status(), LotStatus::Complete);
                    break;
                }
                Err(e) => panic!("live ticket must not error: {e}"),
            }
        }
        assert!(matches!(
            service.try_take(ticket),
            Err(RuntimeError::UnknownTicket { .. })
        ));
        assert!(matches!(
            service.try_take(LotTicket { id: 999 }),
            Err(RuntimeError::UnknownTicket { id: 999 })
        ));
    }

    #[test]
    fn shutdown_drains_queued_lots_and_refuses_new_ones() {
        let mut service = FleetService::start(FleetPlan::workers(2));
        let a = service.submit(tiny_screening(1)).unwrap();
        let b = service.submit(tiny_screening(2)).unwrap();
        service.shutdown();
        // Graceful drain: both queued lots finished.
        assert!(service.wait(a).is_ok());
        assert!(service.wait(b).is_ok());
        let health = service.health();
        assert_eq!(health.completed_lots, 2);
        assert!(health.draining);
        // And no new work is accepted.
        assert_eq!(
            service.submit(tiny_screening(3)).unwrap_err(),
            RuntimeError::ServiceShutdown
        );
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn chaos_lots_come_back_degraded_not_crashed() {
        crate::chaos::install_quiet_panic_hook();
        let plan = FleetPlan::workers(2)
            .task_policy(TaskPolicy::new().attempts(1))
            .chaos(
                ChaosConfig::new(17)
                    .panic_rate_per_mille(300)
                    .stall_rate_per_mille(0)
                    .alloc_rate_per_mille(200),
            );
        let service = FleetService::start(plan);
        let ticket = service.submit(tiny_screening(6)).unwrap();
        let report = service.wait(ticket).unwrap();
        assert_eq!(report.status(), LotStatus::Degraded);
        assert!(report.faulted() > 0);
        let health = service.health();
        assert_eq!(health.faulted_dies, report.faulted() as u64);
        assert_eq!(
            health.screened_dies,
            (report.dies() - report.faulted()) as u64
        );
        // The service loop survived the injected panics.
        let clean = service.submit(tiny_screening(7));
        assert!(clean.is_ok());
    }
}
