//! The sharded task queue and the global memory-admission gate — the
//! scheduling substrate of fleet-scale screening.
//!
//! [`WorkQueue`] generalizes the slot executor's single shared index
//! into per-worker **shards with work stealing**: each worker owns a
//! contiguous index range and claims from it with one atomic
//! increment; a worker whose shard runs dry steals from its
//! neighbours' shards. Contiguous shards keep each worker walking
//! adjacent task indices (cache- and seed-walk-friendly) while
//! stealing keeps the pool busy when shard costs are skewed — a lot's
//! retest-heavy dies cluster spatially, so uniform pre-splitting alone
//! would idle half the pool. Results are **slot-indexed**: task `i`'s
//! output lands at index `i` no matter which worker ran it, which is
//! what keeps parallel schedules bit-identical to sequential ones.
//!
//! [`MemoryGate`] bounds how many bytes of task transient memory are
//! in flight at once. Workers *admit* a job's worst-case cost before
//! running it and release on drop; when the gate is full they block —
//! backpressure — so peak RSS is set by `min(workers, capacity/cost)`
//! jobs, **independent of how many tasks the queue holds**. Admission
//! order can never change results: tasks are pure functions of their
//! index, and the gate only delays starts.

use crate::error::{panic_message, RuntimeError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// A sharded work-stealing queue running `n` index-addressed tasks
/// across a fixed worker pool.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::queue::WorkQueue;
///
/// let squares = WorkQueue::new(4).run(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkQueue {
    workers: usize,
}

impl WorkQueue {
    /// Creates a queue with `workers` worker threads (values below 1
    /// are clamped to 1; a single worker runs every task inline on the
    /// calling thread).
    pub fn new(workers: usize) -> Self {
        WorkQueue {
            workers: workers.max(1),
        }
    }

    /// Creates a queue sized to the machine
    /// (`std::thread::available_parallelism`, falling back to 1).
    pub fn with_available_parallelism() -> Self {
        Self::new(thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `task(i)` for every `i in 0..n` and returns the outputs in
    /// index order.
    ///
    /// Indices are pre-split into one contiguous shard per worker;
    /// worker `w` drains shard `w`, then steals from shards
    /// `w+1, w+2, …` (wrapping). With one worker (or at most one task)
    /// the queue degenerates to a plain sequential loop on the calling
    /// thread — no threads are spawned at all.
    ///
    /// A panicking task propagates the panic to the caller once the
    /// scope joins; for per-task isolation use
    /// [`WorkQueue::run_isolated`] instead. A violated scheduling
    /// invariant (a result slot left unfilled) panics with the
    /// [`RuntimeError::ResultMissing`] message — callers that want the
    /// typed error use [`WorkQueue::try_run`].
    pub fn run<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run(n, task) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible twin of [`WorkQueue::run`]: missing or poisoned
    /// result slots come back as [`RuntimeError::ResultMissing`]
    /// instead of panicking the collection pass.
    ///
    /// Task panics still unwind through the scope join (the queue
    /// itself has no opinion on them); [`WorkQueue::run_isolated`] is
    /// the level that catches those.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ResultMissing`] for the first (lowest-index)
    /// slot no worker filled — only possible when the scheduling
    /// invariant is violated.
    pub fn try_run<T, F>(&self, n: usize, task: F) -> Result<Vec<T>, RuntimeError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || n <= 1 {
            return Ok((0..n).map(task).collect());
        }
        let results = self.run_slots(n, &task);
        results
            .into_iter()
            .enumerate()
            .map(|(index, slot)| slot.ok_or(RuntimeError::ResultMissing { index }))
            .collect()
    }

    /// Runs `task(i)` for every `i in 0..n` with **per-task panic
    /// isolation**: each task executes under `catch_unwind`, so one
    /// panicking task yields an `Err` in its own slot while every
    /// other task runs to completion — no worker dies, no scope
    /// unwinds, no process abort.
    ///
    /// `AssertUnwindSafe` is sound here because a faulted task's
    /// result is *discarded wholesale* — the only state crossing the
    /// unwind boundary is the returned `Result`, never a partially
    /// mutated value.
    ///
    /// Slot `i` holds, in order of precedence:
    /// [`RuntimeError::TaskPanicked`] when task `i` panicked,
    /// [`RuntimeError::ResultMissing`] when its slot was never filled,
    /// otherwise `Ok` with the task's output.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_runtime::queue::WorkQueue;
    ///
    /// let out = WorkQueue::new(2).run_isolated(4, |i| {
    ///     assert!(i != 2, "task 2 is a bad die");
    ///     i * 10
    /// });
    /// assert_eq!(out[0], Ok(0));
    /// assert_eq!(out[1], Ok(10));
    /// assert!(out[2].is_err(), "the panic is isolated to slot 2");
    /// assert_eq!(out[3], Ok(30));
    /// ```
    pub fn run_isolated<T, F>(&self, n: usize, task: F) -> Vec<Result<T, RuntimeError>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let isolated = |i: usize| {
            catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| {
                RuntimeError::TaskPanicked {
                    index: i,
                    message: panic_message(payload.as_ref()),
                }
            })
        };
        if self.workers == 1 || n <= 1 {
            return (0..n).map(isolated).collect();
        }
        self.run_slots(n, &isolated)
            .into_iter()
            .enumerate()
            .map(|(index, slot)| slot.unwrap_or(Err(RuntimeError::ResultMissing { index })))
            .collect()
    }

    /// The shared scheduling core: sharded claiming with round-robin
    /// stealing, each output parked in its task's slot. Returns the
    /// raw slots; the callers decide how to treat holes.
    fn run_slots<T, F>(&self, n: usize, task: &F) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let shards = self.workers.min(n);
        // Shard s covers [s·n/shards, (s+1)·n/shards): contiguous,
        // near-equal, exhaustive.
        let cursors: Vec<AtomicUsize> = (0..shards)
            .map(|s| AtomicUsize::new(s * n / shards))
            .collect();
        let ends: Vec<usize> = (0..shards).map(|s| (s + 1) * n / shards).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for w in 0..shards {
                let cursors = &cursors;
                let ends = &ends;
                let results = &results;
                scope.spawn(move || {
                    // Own shard first, then steal round-robin.
                    for k in 0..shards {
                        let s = (w + k) % shards;
                        loop {
                            let i = cursors[s].fetch_add(1, Ordering::Relaxed);
                            if i >= ends[s] {
                                break;
                            }
                            let out = task(i);
                            *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                        }
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }
}

impl Default for WorkQueue {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// A global memory-budget admission gate: at most `capacity` bytes of
/// admitted cost in flight at once; excess admissions block until
/// running jobs release theirs (backpressure).
///
/// A single job whose cost exceeds the whole capacity is **clamped to
/// the capacity** rather than deadlocked: it admits alone, runs, and
/// releases — the gate bounds concurrency, it does not reject work.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::queue::MemoryGate;
///
/// let gate = MemoryGate::new(1 << 20); // 1 MiB in flight, max
/// {
///     let _job = gate.admit(512 * 1024);
///     assert_eq!(gate.in_flight(), 512 * 1024);
/// } // guard dropped: bytes released
/// assert_eq!(gate.in_flight(), 0);
/// ```
#[derive(Debug)]
pub struct MemoryGate {
    capacity: Option<usize>,
    in_flight: Mutex<usize>,
    released: Condvar,
}

impl MemoryGate {
    /// A gate admitting at most `capacity` bytes at once (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> Self {
        MemoryGate {
            capacity: Some(capacity.max(1)),
            in_flight: Mutex::new(0),
            released: Condvar::new(),
        }
    }

    /// A gate that never blocks (no global budget).
    pub fn unbounded() -> Self {
        MemoryGate {
            capacity: None,
            in_flight: Mutex::new(0),
            released: Condvar::new(),
        }
    }

    /// The byte capacity, or `None` for an unbounded gate.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Admitted bytes currently in flight.
    pub fn in_flight(&self) -> usize {
        *self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until `cost` bytes fit under the capacity, admits them,
    /// and returns the guard that releases them on drop. On an
    /// unbounded gate this never blocks; on a bounded gate a cost
    /// beyond the whole capacity is clamped to it (see the type docs).
    pub fn admit(&self, cost: usize) -> GateGuard<'_> {
        let Some(capacity) = self.capacity else {
            return GateGuard {
                gate: self,
                cost: 0,
            };
        };
        let cost = cost.min(capacity);
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *in_flight + cost > capacity {
            in_flight = self
                .released
                .wait(in_flight)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *in_flight += cost;
        GateGuard { gate: self, cost }
    }

    /// Like [`MemoryGate::admit`], but waits at most `timeout` — the
    /// `Condvar` wait is bounded (`wait_timeout`), so a gate starved
    /// by stalled holders can no longer park an admission forever.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::AdmissionTimeout`] when the cost still does not
    /// fit once `timeout` has elapsed.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_runtime::queue::MemoryGate;
    /// use std::time::Duration;
    ///
    /// let gate = MemoryGate::new(100);
    /// let held = gate.admit(100); // gate full
    /// assert!(gate
    ///     .admit_within(1, Duration::from_millis(10))
    ///     .is_err());
    /// drop(held);
    /// assert!(gate.admit_within(1, Duration::from_millis(10)).is_ok());
    /// ```
    pub fn admit_within(
        &self,
        cost: usize,
        timeout: Duration,
    ) -> Result<GateGuard<'_>, RuntimeError> {
        let Some(capacity) = self.capacity else {
            return Ok(GateGuard {
                gate: self,
                cost: 0,
            });
        };
        let clamped = cost.min(capacity);
        let deadline = Instant::now() + timeout;
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *in_flight + clamped > capacity {
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::AdmissionTimeout {
                    requested: cost,
                    capacity,
                    waited: timeout,
                });
            }
            in_flight = self
                .released
                .wait_timeout(in_flight, deadline.saturating_duration_since(now))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        *in_flight += clamped;
        Ok(GateGuard {
            gate: self,
            cost: clamped,
        })
    }
}

/// The in-flight reservation of one admitted job; dropping it releases
/// the bytes and wakes blocked admissions.
#[derive(Debug)]
pub struct GateGuard<'a> {
    gate: &'a MemoryGate,
    cost: usize,
}

impl GateGuard<'_> {
    /// The admitted (possibly clamped) cost in bytes.
    pub fn cost(&self) -> usize {
        self.cost
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut in_flight = self
            .gate
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *in_flight = in_flight.saturating_sub(self.cost);
        drop(in_flight);
        self.gate.released.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(WorkQueue::new(0).workers(), 1);
        assert_eq!(WorkQueue::new(5).workers(), 5);
        assert!(WorkQueue::with_available_parallelism().workers() >= 1);
        assert_eq!(
            WorkQueue::default(),
            WorkQueue::with_available_parallelism()
        );
    }

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1usize, 2, 3, 4, 9, 64] {
            for n in [0usize, 1, 2, 7, 23, 100] {
                let out = WorkQueue::new(workers).run(n, |i| i * 10);
                assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        WorkQueue::new(7).run(97, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_runs_inline_on_the_calling_thread() {
        let caller = thread::current().id();
        let out = WorkQueue::new(1).run(4, |_| thread::current().id() == caller);
        assert!(out.into_iter().all(|b| b));
        // A single task avoids thread spawn even with many workers.
        let out = WorkQueue::new(8).run(1, |_| thread::current().id() == caller);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn stealing_drains_a_skewed_shard() {
        // One pathological task at index 0 (shard 0); the other shard's
        // worker must finish its own range and steal the rest of shard
        // 0's work while worker 0 is stuck.
        let blocked = AtomicBool::new(true);
        let done = AtomicUsize::new(0);
        let out = WorkQueue::new(2).run(16, |i| {
            if i == 0 {
                // Wait until every other task has completed — only
                // possible if stealing works.
                while done.load(Ordering::Acquire) < 15 {
                    thread::yield_now();
                }
                blocked.store(false, Ordering::Release);
            } else {
                done.fetch_add(1, Ordering::AcqRel);
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert!(!blocked.load(Ordering::Acquire));
    }

    #[test]
    fn tasks_may_borrow_caller_data() {
        let data: Vec<u64> = (0..100).collect();
        let sums = WorkQueue::new(3).run(10, |i| data[i * 10..(i + 1) * 10].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn isolated_run_contains_panics_to_their_slot() {
        crate::chaos::install_quiet_panic_hook();
        for workers in [1usize, 2, 4, 8] {
            let out = WorkQueue::new(workers).run_isolated(16, |i| {
                if i % 5 == 0 {
                    panic!("bad die {i}");
                }
                i * 3
            });
            for (i, slot) in out.iter().enumerate() {
                if i % 5 == 0 {
                    assert_eq!(
                        slot,
                        &Err(RuntimeError::TaskPanicked {
                            index: i,
                            message: format!("bad die {i}"),
                        }),
                        "workers={workers}"
                    );
                } else {
                    assert_eq!(slot, &Ok(i * 3), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn isolated_run_with_no_panics_matches_run() {
        for workers in [1usize, 3, 7] {
            let plain = WorkQueue::new(workers).run(23, |i| i * i);
            let isolated: Vec<usize> = WorkQueue::new(workers)
                .run_isolated(23, |i| i * i)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(plain, isolated);
        }
    }

    #[test]
    fn try_run_returns_results_in_order() {
        for workers in [1usize, 2, 5] {
            let out = WorkQueue::new(workers).try_run(9, |i| i + 1).unwrap();
            assert_eq!(out, (1..=9).collect::<Vec<_>>());
        }
        let empty: Vec<u32> = WorkQueue::new(4).try_run(0, |_| 1u32).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn gate_bounded_wait_times_out_instead_of_hanging() {
        let gate = MemoryGate::new(64);
        let held = gate.admit(64);
        let before = std::time::Instant::now();
        let err = gate
            .admit_within(16, Duration::from_millis(30))
            .expect_err("full gate must time the admission out");
        assert!(before.elapsed() >= Duration::from_millis(30));
        assert_eq!(
            err,
            RuntimeError::AdmissionTimeout {
                requested: 16,
                capacity: 64,
                waited: Duration::from_millis(30),
            }
        );
        drop(held);
        // With room available the bounded admission behaves like admit,
        // including the oversized-cost clamp.
        let guard = gate
            .admit_within(1 << 30, Duration::from_millis(10))
            .unwrap();
        assert_eq!(guard.cost(), 64);
        drop(guard);
        // Unbounded gates never time out.
        let unbounded = MemoryGate::unbounded();
        assert_eq!(
            unbounded
                .admit_within(usize::MAX, Duration::ZERO)
                .unwrap()
                .cost(),
            0
        );
    }

    #[test]
    fn gate_admits_within_capacity_without_blocking() {
        let gate = MemoryGate::new(100);
        assert_eq!(gate.capacity(), Some(100));
        let a = gate.admit(40);
        let b = gate.admit(60);
        assert_eq!(gate.in_flight(), 100);
        assert_eq!(a.cost(), 40);
        drop(a);
        assert_eq!(gate.in_flight(), 60);
        drop(b);
        assert_eq!(gate.in_flight(), 0);
        // Zero capacity clamps to 1 rather than deadlocking.
        assert_eq!(MemoryGate::new(0).capacity(), Some(1));
    }

    #[test]
    fn oversized_job_is_clamped_not_deadlocked() {
        let gate = MemoryGate::new(10);
        let guard = gate.admit(1_000_000);
        assert_eq!(guard.cost(), 10);
        assert_eq!(gate.in_flight(), 10);
    }

    #[test]
    fn unbounded_gate_never_blocks() {
        let gate = MemoryGate::unbounded();
        assert_eq!(gate.capacity(), None);
        let _a = gate.admit(usize::MAX);
        let _b = gate.admit(usize::MAX);
        assert_eq!(gate.in_flight(), 0, "unbounded admissions carry no cost");
    }

    #[test]
    fn backpressure_bounds_concurrency() {
        // Capacity for exactly 2 unit-cost jobs: across 4 workers and
        // 32 tasks, no more than 2 may ever be inside the gate at once.
        let gate = MemoryGate::new(2);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        WorkQueue::new(4).run(32, |i| {
            let _slot = gate.admit(1);
            let now = running.fetch_add(1, Ordering::AcqRel) + 1;
            peak.fetch_max(now, Ordering::AcqRel);
            thread::yield_now();
            running.fetch_sub(1, Ordering::AcqRel);
            i
        });
        assert_eq!(gate.in_flight(), 0);
        assert!(
            peak.load(Ordering::Acquire) <= 2,
            "gate must cap concurrent admissions at capacity/cost (saw {})",
            peak.load(Ordering::Acquire)
        );
    }
}
