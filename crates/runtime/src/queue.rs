//! The sharded task queue and the global memory-admission gate — the
//! scheduling substrate of fleet-scale screening.
//!
//! [`WorkQueue`] generalizes the slot executor's single shared index
//! into per-worker **shards with work stealing**: each worker owns a
//! contiguous index range and claims from it with one atomic
//! increment; a worker whose shard runs dry steals from its
//! neighbours' shards. Contiguous shards keep each worker walking
//! adjacent task indices (cache- and seed-walk-friendly) while
//! stealing keeps the pool busy when shard costs are skewed — a lot's
//! retest-heavy dies cluster spatially, so uniform pre-splitting alone
//! would idle half the pool. Results are **slot-indexed**: task `i`'s
//! output lands at index `i` no matter which worker ran it, which is
//! what keeps parallel schedules bit-identical to sequential ones.
//!
//! [`MemoryGate`] bounds how many bytes of task transient memory are
//! in flight at once. Workers *admit* a job's worst-case cost before
//! running it and release on drop; when the gate is full they block —
//! backpressure — so peak RSS is set by `min(workers, capacity/cost)`
//! jobs, **independent of how many tasks the queue holds**. Admission
//! order can never change results: tasks are pure functions of their
//! index, and the gate only delays starts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;

/// A sharded work-stealing queue running `n` index-addressed tasks
/// across a fixed worker pool.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::queue::WorkQueue;
///
/// let squares = WorkQueue::new(4).run(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkQueue {
    workers: usize,
}

impl WorkQueue {
    /// Creates a queue with `workers` worker threads (values below 1
    /// are clamped to 1; a single worker runs every task inline on the
    /// calling thread).
    pub fn new(workers: usize) -> Self {
        WorkQueue {
            workers: workers.max(1),
        }
    }

    /// Creates a queue sized to the machine
    /// (`std::thread::available_parallelism`, falling back to 1).
    pub fn with_available_parallelism() -> Self {
        Self::new(thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `task(i)` for every `i in 0..n` and returns the outputs in
    /// index order.
    ///
    /// Indices are pre-split into one contiguous shard per worker;
    /// worker `w` drains shard `w`, then steals from shards
    /// `w+1, w+2, …` (wrapping). With one worker (or at most one task)
    /// the queue degenerates to a plain sequential loop on the calling
    /// thread — no threads are spawned at all.
    ///
    /// A panicking task propagates the panic to the caller once the
    /// scope joins.
    pub fn run<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || n <= 1 {
            return (0..n).map(task).collect();
        }
        let shards = self.workers.min(n);
        // Shard s covers [s·n/shards, (s+1)·n/shards): contiguous,
        // near-equal, exhaustive.
        let cursors: Vec<AtomicUsize> = (0..shards)
            .map(|s| AtomicUsize::new(s * n / shards))
            .collect();
        let ends: Vec<usize> = (0..shards).map(|s| (s + 1) * n / shards).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for w in 0..shards {
                let cursors = &cursors;
                let ends = &ends;
                let results = &results;
                let task = &task;
                scope.spawn(move || {
                    // Own shard first, then steal round-robin.
                    for k in 0..shards {
                        let s = (w + k) % shards;
                        loop {
                            let i = cursors[s].fetch_add(1, Ordering::Relaxed);
                            if i >= ends[s] {
                                break;
                            }
                            let out = task(i);
                            *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                        }
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every index of every shard is claimed exactly once")
            })
            .collect()
    }
}

impl Default for WorkQueue {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// A global memory-budget admission gate: at most `capacity` bytes of
/// admitted cost in flight at once; excess admissions block until
/// running jobs release theirs (backpressure).
///
/// A single job whose cost exceeds the whole capacity is **clamped to
/// the capacity** rather than deadlocked: it admits alone, runs, and
/// releases — the gate bounds concurrency, it does not reject work.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::queue::MemoryGate;
///
/// let gate = MemoryGate::new(1 << 20); // 1 MiB in flight, max
/// {
///     let _job = gate.admit(512 * 1024);
///     assert_eq!(gate.in_flight(), 512 * 1024);
/// } // guard dropped: bytes released
/// assert_eq!(gate.in_flight(), 0);
/// ```
#[derive(Debug)]
pub struct MemoryGate {
    capacity: Option<usize>,
    in_flight: Mutex<usize>,
    released: Condvar,
}

impl MemoryGate {
    /// A gate admitting at most `capacity` bytes at once (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> Self {
        MemoryGate {
            capacity: Some(capacity.max(1)),
            in_flight: Mutex::new(0),
            released: Condvar::new(),
        }
    }

    /// A gate that never blocks (no global budget).
    pub fn unbounded() -> Self {
        MemoryGate {
            capacity: None,
            in_flight: Mutex::new(0),
            released: Condvar::new(),
        }
    }

    /// The byte capacity, or `None` for an unbounded gate.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Admitted bytes currently in flight.
    pub fn in_flight(&self) -> usize {
        *self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until `cost` bytes fit under the capacity, admits them,
    /// and returns the guard that releases them on drop. On an
    /// unbounded gate this never blocks; on a bounded gate a cost
    /// beyond the whole capacity is clamped to it (see the type docs).
    pub fn admit(&self, cost: usize) -> GateGuard<'_> {
        let Some(capacity) = self.capacity else {
            return GateGuard {
                gate: self,
                cost: 0,
            };
        };
        let cost = cost.min(capacity);
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *in_flight + cost > capacity {
            in_flight = self
                .released
                .wait(in_flight)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *in_flight += cost;
        GateGuard { gate: self, cost }
    }
}

/// The in-flight reservation of one admitted job; dropping it releases
/// the bytes and wakes blocked admissions.
#[derive(Debug)]
pub struct GateGuard<'a> {
    gate: &'a MemoryGate,
    cost: usize,
}

impl GateGuard<'_> {
    /// The admitted (possibly clamped) cost in bytes.
    pub fn cost(&self) -> usize {
        self.cost
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut in_flight = self
            .gate
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *in_flight = in_flight.saturating_sub(self.cost);
        drop(in_flight);
        self.gate.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(WorkQueue::new(0).workers(), 1);
        assert_eq!(WorkQueue::new(5).workers(), 5);
        assert!(WorkQueue::with_available_parallelism().workers() >= 1);
        assert_eq!(
            WorkQueue::default(),
            WorkQueue::with_available_parallelism()
        );
    }

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1usize, 2, 3, 4, 9, 64] {
            for n in [0usize, 1, 2, 7, 23, 100] {
                let out = WorkQueue::new(workers).run(n, |i| i * 10);
                assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        WorkQueue::new(7).run(97, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_worker_runs_inline_on_the_calling_thread() {
        let caller = thread::current().id();
        let out = WorkQueue::new(1).run(4, |_| thread::current().id() == caller);
        assert!(out.into_iter().all(|b| b));
        // A single task avoids thread spawn even with many workers.
        let out = WorkQueue::new(8).run(1, |_| thread::current().id() == caller);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn stealing_drains_a_skewed_shard() {
        // One pathological task at index 0 (shard 0); the other shard's
        // worker must finish its own range and steal the rest of shard
        // 0's work while worker 0 is stuck.
        let blocked = AtomicBool::new(true);
        let done = AtomicUsize::new(0);
        let out = WorkQueue::new(2).run(16, |i| {
            if i == 0 {
                // Wait until every other task has completed — only
                // possible if stealing works.
                while done.load(Ordering::Acquire) < 15 {
                    thread::yield_now();
                }
                blocked.store(false, Ordering::Release);
            } else {
                done.fetch_add(1, Ordering::AcqRel);
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert!(!blocked.load(Ordering::Acquire));
    }

    #[test]
    fn tasks_may_borrow_caller_data() {
        let data: Vec<u64> = (0..100).collect();
        let sums = WorkQueue::new(3).run(10, |i| data[i * 10..(i + 1) * 10].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn gate_admits_within_capacity_without_blocking() {
        let gate = MemoryGate::new(100);
        assert_eq!(gate.capacity(), Some(100));
        let a = gate.admit(40);
        let b = gate.admit(60);
        assert_eq!(gate.in_flight(), 100);
        assert_eq!(a.cost(), 40);
        drop(a);
        assert_eq!(gate.in_flight(), 60);
        drop(b);
        assert_eq!(gate.in_flight(), 0);
        // Zero capacity clamps to 1 rather than deadlocking.
        assert_eq!(MemoryGate::new(0).capacity(), Some(1));
    }

    #[test]
    fn oversized_job_is_clamped_not_deadlocked() {
        let gate = MemoryGate::new(10);
        let guard = gate.admit(1_000_000);
        assert_eq!(guard.cost(), 10);
        assert_eq!(gate.in_flight(), 10);
    }

    #[test]
    fn unbounded_gate_never_blocks() {
        let gate = MemoryGate::unbounded();
        assert_eq!(gate.capacity(), None);
        let _a = gate.admit(usize::MAX);
        let _b = gate.admit(usize::MAX);
        assert_eq!(gate.in_flight(), 0, "unbounded admissions carry no cost");
    }

    #[test]
    fn backpressure_bounds_concurrency() {
        // Capacity for exactly 2 unit-cost jobs: across 4 workers and
        // 32 tasks, no more than 2 may ever be inside the gate at once.
        let gate = MemoryGate::new(2);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        WorkQueue::new(4).run(32, |i| {
            let _slot = gate.admit(1);
            let now = running.fetch_add(1, Ordering::AcqRel) + 1;
            peak.fetch_max(now, Ordering::AcqRel);
            thread::yield_now();
            running.fetch_sub(1, Ordering::AcqRel);
            i
        });
        assert_eq!(gate.in_flight(), 0);
        assert!(
            peak.load(Ordering::Acquire) <= 2,
            "gate must cap concurrent admissions at capacity/cost (saw {})",
            peak.load(Ordering::Acquire)
        );
    }
}
