//! Seeded runtime fault injection: scheduled worker panics, slow-die
//! stalls, and allocation-failure simulation, reproducible bit for bit
//! from one seed.
//!
//! PR 4 injected faults into the *devices under test*; this module
//! injects them into the *runtime that screens them*. A
//! [`ChaosConfig`] derives, per task index, whether that task is
//! marked for a fault and which kind — via the same
//! [`derive_seed`](crate::batch::derive_seed()) walk every other seeded
//! subsystem uses — so a chaos run is as reproducible as a clean one:
//! the same seed marks the same dies with the same faults on any
//! machine, any worker count, any schedule.
//!
//! Faults are injected **before** the real task body runs (or instead
//! of it), never into its inputs, which is what makes the fleet's
//! fault-tolerance invariant testable: a die that survives chaos
//! returns exactly the bits it returns without chaos.
//!
//! The `NFBIST_CHAOS=<seed>` environment variable opts a whole test
//! run into a fixed schedule (see [`ChaosConfig::from_env`]); CI runs
//! the fleet suite once under it.

use crate::batch::derive_seed;
use crate::error::RuntimeError;
use std::sync::OnceLock;
use std::time::Duration;

/// Salt separating the chaos-mark derivation walk from measurement
/// and population walks (which derive from the raw lot seed).
const CHAOS_SALT: u64 = 0xC4A0_5C4A_05C4_A05C;

/// Prefix of every injected panic's message; the quiet panic hook
/// ([`install_quiet_panic_hook`]) recognizes and suppresses it.
pub const CHAOS_PANIC_PREFIX: &str = "nfbist chaos injection";

/// Environment variable holding the chaos seed for
/// [`ChaosConfig::from_env`].
pub const CHAOS_ENV: &str = "NFBIST_CHAOS";

/// The kind of runtime fault a marked task receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectedFault {
    /// The worker panics inside the task body.
    Panic,
    /// The task stalls long enough to blow any configured deadline.
    Stall,
    /// The task's transient allocation "fails"
    /// ([`RuntimeError::AllocationFailed`]).
    AllocFailure,
}

/// A seeded runtime fault-injection schedule.
///
/// Marking is per task index: `derive_seed(seed ^ SALT, index)` is
/// reduced modulo 1000 and compared against the per-mille rates, so
/// the marked set is a pure function of `(seed, index)` — independent
/// of workers, budgets, and attempt interleaving. Whether a marked
/// task *stays* faulted is per attempt: the first
/// [`ChaosConfig::faulty_attempts`] attempts fault, later ones pass
/// clean, which is how retry recovery is exercised deterministically.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::chaos::ChaosConfig;
///
/// let chaos = ChaosConfig::new(42);
/// // The schedule is a pure function of the seed.
/// assert_eq!(chaos.scheduled_faults(64), ChaosConfig::new(42).scheduled_faults(64));
/// assert_ne!(chaos.scheduled_faults(64), ChaosConfig::new(43).scheduled_faults(64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    seed: u64,
    panic_per_mille: u16,
    stall_per_mille: u16,
    alloc_per_mille: u16,
    stall_extra: Duration,
    faulty_attempts: usize,
}

impl ChaosConfig {
    /// A schedule with the default rates: 10% panics, 5% stalls, 5%
    /// allocation failures, each marked task faulting on its first
    /// attempt only (so a 2-attempt policy recovers every die).
    pub const fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_per_mille: 100,
            stall_per_mille: 50,
            alloc_per_mille: 50,
            stall_extra: Duration::from_millis(50),
            faulty_attempts: 1,
        }
    }

    /// The chaos seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the panic rate in per mille of task indices (clamped so
    /// all rates sum to ≤ 1000).
    pub fn panic_rate_per_mille(mut self, rate: u16) -> Self {
        self.panic_per_mille = rate.min(1000);
        self.clamp_rates()
    }

    /// Sets the stall rate in per mille of task indices.
    pub fn stall_rate_per_mille(mut self, rate: u16) -> Self {
        self.stall_per_mille = rate.min(1000);
        self.clamp_rates()
    }

    /// Sets the allocation-failure rate in per mille of task indices.
    pub fn alloc_rate_per_mille(mut self, rate: u16) -> Self {
        self.alloc_per_mille = rate.min(1000);
        self.clamp_rates()
    }

    /// How far past the deadline a stalled attempt sleeps (the stall
    /// is `deadline + extra`, so it always blows the deadline by a
    /// margin that does not depend on watchdog scheduling).
    pub const fn stall_extra(mut self, extra: Duration) -> Self {
        self.stall_extra = extra;
        self
    }

    /// How many leading attempts of a marked task fault before it runs
    /// clean (clamped to ≥ 1). Set at or above a policy's attempt
    /// budget to force quarantines; below it to exercise recovery.
    pub fn faulty_attempts(mut self, n: usize) -> Self {
        self.faulty_attempts = n.max(1);
        self
    }

    /// The configured faulty-attempt count.
    pub const fn faulty_attempt_count(&self) -> usize {
        self.faulty_attempts
    }

    fn clamp_rates(mut self) -> Self {
        // Rates partition [0, 1000); trim the later bands if the sum
        // overshoots.
        let p = self.panic_per_mille.min(1000);
        let s = self.stall_per_mille.min(1000 - p);
        let a = self.alloc_per_mille.min(1000 - p - s);
        self.panic_per_mille = p;
        self.stall_per_mille = s;
        self.alloc_per_mille = a;
        self
    }

    /// Reads `NFBIST_CHAOS` and builds the default-rate schedule from
    /// it; `None` when unset or unparsable.
    pub fn from_env() -> Option<Self> {
        let seed = std::env::var(CHAOS_ENV).ok()?.trim().parse::<u64>().ok()?;
        Some(Self::new(seed))
    }

    /// The fault marked for task `index`, if any — a pure function of
    /// `(seed, index)`.
    pub fn fault_for(&self, index: usize) -> Option<InjectedFault> {
        let roll = (derive_seed(self.seed ^ CHAOS_SALT, index as u64) % 1000) as u16;
        if roll < self.panic_per_mille {
            Some(InjectedFault::Panic)
        } else if roll < self.panic_per_mille + self.stall_per_mille {
            Some(InjectedFault::Stall)
        } else if roll < self.panic_per_mille + self.stall_per_mille + self.alloc_per_mille {
            Some(InjectedFault::AllocFailure)
        } else {
            None
        }
    }

    /// Every `(index, fault)` pair marked over `0..n` — the oracle a
    /// determinism test compares a degraded report's faulted-die set
    /// against.
    pub fn scheduled_faults(&self, n: usize) -> Vec<(usize, InjectedFault)> {
        (0..n)
            .filter_map(|i| self.fault_for(i).map(|f| (i, f)))
            .collect()
    }

    /// Injects the scheduled fault for `(index, attempt)`, if any:
    /// panics for [`InjectedFault::Panic`], sleeps past `deadline` for
    /// [`InjectedFault::Stall`], and returns
    /// [`RuntimeError::AllocationFailed`] for
    /// [`InjectedFault::AllocFailure`]. Attempts at or beyond
    /// [`ChaosConfig::faulty_attempts`] pass clean (retry recovery).
    ///
    /// `cost` is the simulated allocation size reported by an
    /// allocation failure; `deadline` sizes the stall (`None` falls
    /// back to the stall-extra alone, which then only blows
    /// elapsed-time budgets shorter than it).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::AllocationFailed`] on an allocation-failure
    /// mark.
    pub fn inject(
        &self,
        index: usize,
        attempt: usize,
        deadline: Option<Duration>,
        cost: usize,
    ) -> Result<(), RuntimeError> {
        if attempt >= self.faulty_attempts {
            return Ok(());
        }
        match self.fault_for(index) {
            None => Ok(()),
            Some(InjectedFault::Panic) => {
                panic!("{CHAOS_PANIC_PREFIX}: worker panic at task {index}, attempt {attempt}")
            }
            Some(InjectedFault::Stall) => {
                let stall = deadline.unwrap_or(Duration::ZERO) + self.stall_extra;
                std::thread::sleep(stall);
                Ok(())
            }
            Some(InjectedFault::AllocFailure) => {
                Err(RuntimeError::AllocationFailed { index, bytes: cost })
            }
        }
    }
}

/// Installs (once per process) a panic hook that suppresses injected
/// chaos panics — whose messages start with [`CHAOS_PANIC_PREFIX`] —
/// and delegates everything else to the previous hook. Without it a
/// chaos run drowns the console in backtraces for panics that are the
/// whole point of the exercise.
pub fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with(CHAOS_PANIC_PREFIX))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.starts_with(CHAOS_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn marking_is_a_pure_function_of_seed_and_index() {
        let chaos = ChaosConfig::new(7);
        for i in 0..256 {
            assert_eq!(chaos.fault_for(i), chaos.fault_for(i));
        }
        assert_eq!(chaos.scheduled_faults(256), chaos.scheduled_faults(256));
        // Rates roughly respected over a large population.
        let marks = ChaosConfig::new(11).scheduled_faults(20_000);
        let panics = marks
            .iter()
            .filter(|(_, f)| *f == InjectedFault::Panic)
            .count();
        assert!((1_000..3_000).contains(&panics), "panic marks: {panics}");
    }

    #[test]
    fn rates_clamp_to_a_partition_of_one_thousand() {
        let chaos = ChaosConfig::new(0)
            .panic_rate_per_mille(900)
            .stall_rate_per_mille(900)
            .alloc_rate_per_mille(900);
        assert_eq!(
            (
                chaos.panic_per_mille,
                chaos.stall_per_mille,
                chaos.alloc_per_mille
            ),
            (900, 100, 0)
        );
        // Rate 1000 marks every index.
        let all = ChaosConfig::new(3).panic_rate_per_mille(1000);
        assert!((0..100).all(|i| all.fault_for(i) == Some(InjectedFault::Panic)));
        // Rate 0 everywhere marks none.
        let none = ChaosConfig::new(3)
            .panic_rate_per_mille(0)
            .stall_rate_per_mille(0)
            .alloc_rate_per_mille(0);
        assert!(none.scheduled_faults(100).is_empty());
    }

    #[test]
    fn injection_matches_the_mark() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig::new(5).faulty_attempts(2);
        assert_eq!(chaos.faulty_attempt_count(), 2);
        for (i, fault) in chaos.scheduled_faults(64) {
            match fault {
                InjectedFault::Panic => {
                    let caught = std::panic::catch_unwind(|| chaos.inject(i, 0, None, 8));
                    let msg = crate::error::panic_message(caught.unwrap_err().as_ref());
                    assert!(msg.starts_with(CHAOS_PANIC_PREFIX), "message: {msg}");
                }
                InjectedFault::AllocFailure => {
                    assert_eq!(
                        chaos.inject(i, 1, None, 8),
                        Err(RuntimeError::AllocationFailed { index: i, bytes: 8 })
                    );
                }
                InjectedFault::Stall => {
                    // Stall extra only (no deadline): bounded sleep.
                    let tiny = chaos.stall_extra(Duration::from_millis(1));
                    assert_eq!(tiny.inject(i, 0, None, 8), Ok(()));
                }
            }
            // Beyond the faulty attempts the task runs clean.
            assert_eq!(chaos.inject(i, 2, None, 8), Ok(()));
        }
        // Unmarked indices are never touched on any attempt.
        let unmarked: Vec<usize> = (0..64).filter(|i| chaos.fault_for(*i).is_none()).collect();
        for i in unmarked {
            assert_eq!(chaos.inject(i, 0, None, 8), Ok(()));
        }
    }

    #[test]
    fn env_parsing() {
        // The test harness never sets NFBIST_CHAOS with garbage; drive
        // the parser directly through a scoped set/remove.
        std::env::remove_var("NFBIST_CHAOS_TEST_SENTINEL");
        // from_env reads the real variable; when CI sets it the parsed
        // seed must round-trip, otherwise it is None.
        match std::env::var(CHAOS_ENV) {
            Ok(v) => {
                let parsed = v.trim().parse::<u64>().ok();
                assert_eq!(ChaosConfig::from_env().map(|c| c.seed()), parsed);
            }
            Err(_) => assert_eq!(ChaosConfig::from_env(), None),
        }
    }
}
