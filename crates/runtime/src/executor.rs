//! The scoped-thread batch executor: deterministic fan-out of
//! independent tasks across a fixed worker pool.
//!
//! Built on `std::thread::scope` only — no external runtime — so task
//! closures may borrow the caller's data (a shared
//! `MeasurementSession`, a reference waveform, acquisition records).
//! Results come back **slot-indexed**: task `i`'s output lands at
//! index `i` of the returned vector regardless of which worker ran it
//! or in what order tasks finished, which is what makes parallel
//! batches bit-identical to their sequential counterparts.
//!
//! Scheduling is delegated to [`crate::queue::WorkQueue`] (sharded
//! claiming with work stealing); this type keeps the one-shot
//! `Vec<FnOnce>` surface the batch entry points are written against.

use crate::error::RuntimeError;
use crate::queue::WorkQueue;
use std::sync::{Mutex, PoisonError};
use std::thread;

/// A fixed-size worker pool executing batches of independent tasks.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::executor::BatchExecutor;
///
/// let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
/// let squares = BatchExecutor::new(4).run(tasks);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchExecutor {
    workers: usize,
}

impl BatchExecutor {
    /// Creates an executor with `workers` worker threads (values below
    /// 1 are clamped to 1; a single worker runs every task inline on
    /// the calling thread).
    pub fn new(workers: usize) -> Self {
        BatchExecutor {
            workers: workers.max(1),
        }
    }

    /// Creates an executor sized to the machine
    /// (`std::thread::available_parallelism`, falling back to 1).
    pub fn with_available_parallelism() -> Self {
        Self::new(thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task and returns their outputs in task order.
    ///
    /// Tasks are claimed off [`WorkQueue`]'s sharded cursors (with
    /// work stealing), so a slow task never blocks the others; each
    /// output is written into its task's slot. With one worker (or at
    /// most one task) the batch degenerates to a plain sequential loop
    /// on the calling thread — no threads are spawned at all.
    ///
    /// A panicking task propagates the panic to the caller once the
    /// scope joins; for per-task isolation use
    /// [`BatchExecutor::run_isolated`]. A violated claiming invariant
    /// (a task slot consumed twice) panics with the
    /// [`RuntimeError::TaskMissing`] message — callers that want the
    /// typed error use [`BatchExecutor::try_run`].
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        match self.try_run(tasks) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// The fallible twin of [`BatchExecutor::run`]: a consumed task
    /// slot or an unfilled result slot comes back as a typed
    /// [`RuntimeError`] instead of panicking the batch.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::TaskMissing`] when a task closure was already
    /// gone at claim time, [`RuntimeError::ResultMissing`] when a
    /// result slot was never filled — both only possible when the
    /// once-per-index scheduling invariant is violated.
    pub fn try_run<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, RuntimeError>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        if self.workers == 1 || tasks.len() <= 1 {
            return Ok(tasks.into_iter().map(|task| task()).collect());
        }
        let n = tasks.len();
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        WorkQueue::new(self.workers)
            .try_run(n, |i| {
                take_slot(&slots[i])
                    .map(|task| task())
                    .ok_or(RuntimeError::TaskMissing { index: i })
            })?
            .into_iter()
            .collect()
    }

    /// Runs every task with **per-task panic isolation**: one
    /// panicking task becomes an `Err` in its own slot
    /// ([`RuntimeError::TaskPanicked`]) while the rest of the batch
    /// completes normally. See [`WorkQueue::run_isolated`] for the
    /// unwind-safety argument.
    ///
    /// # Examples
    ///
    /// ```
    /// use nfbist_runtime::executor::BatchExecutor;
    ///
    /// let tasks: Vec<_> = (0..4)
    ///     .map(|i| move || if i == 1 { panic!("bad task") } else { i })
    ///     .collect();
    /// let out = BatchExecutor::new(2).run_isolated(tasks);
    /// assert_eq!(out[0], Ok(0));
    /// assert!(out[1].is_err());
    /// assert_eq!(out[2], Ok(2));
    /// ```
    pub fn run_isolated<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, RuntimeError>>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let n = tasks.len();
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        WorkQueue::new(self.workers)
            .run_isolated(n, |i| match take_slot(&slots[i]) {
                Some(task) => Ok(task()),
                None => Err(RuntimeError::TaskMissing { index: i }),
            })
            .into_iter()
            .map(|slot| slot.and_then(|inner| inner))
            .collect()
    }
}

impl Default for BatchExecutor {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

fn take_slot<F>(slot: &Mutex<Option<F>>) -> Option<F> {
    slot.lock().unwrap_or_else(PoisonError::into_inner).take()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(BatchExecutor::new(0).workers(), 1);
        assert_eq!(BatchExecutor::new(5).workers(), 5);
        assert!(BatchExecutor::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn results_come_back_in_task_order() {
        for workers in [1usize, 2, 4, 9] {
            let tasks: Vec<_> = (0..23u64).map(|i| move || i * 10).collect();
            let out = BatchExecutor::new(workers).run(tasks);
            assert_eq!(out, (0..23u64).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_worker_runs_inline_on_the_calling_thread() {
        let caller = thread::current().id();
        let tasks: Vec<_> = (0..4)
            .map(|_| move || thread::current().id() == caller)
            .collect();
        assert!(
            BatchExecutor::new(1).run(tasks).into_iter().all(|b| b),
            "a 1-worker batch must degenerate to the sequential loop"
        );
    }

    #[test]
    fn single_task_avoids_thread_spawn_even_with_many_workers() {
        let caller = thread::current().id();
        let out = BatchExecutor::new(8).run(vec![move || thread::current().id() == caller]);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn tasks_may_borrow_caller_data() {
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<_> = data.chunks(10).collect();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|c| move || c.iter().sum::<u64>())
            .collect();
        let sums = BatchExecutor::new(3).run(tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = BatchExecutor::new(4).run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
        let out: Vec<Result<u32, _>> =
            BatchExecutor::new(4).run_isolated(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn try_run_matches_run_on_healthy_batches() {
        for workers in [1usize, 2, 6] {
            let tasks: Vec<_> = (0..17u64).map(|i| move || i * 7).collect();
            let out = BatchExecutor::new(workers).try_run(tasks).unwrap();
            assert_eq!(out, (0..17u64).map(|i| i * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn isolated_batch_survives_panicking_tasks() {
        crate::chaos::install_quiet_panic_hook();
        for workers in [1usize, 2, 8] {
            let tasks: Vec<_> = (0..12usize)
                .map(|i| {
                    move || {
                        if i % 4 == 1 {
                            panic!("task {i} died");
                        }
                        i * 2
                    }
                })
                .collect();
            let out = BatchExecutor::new(workers).run_isolated(tasks);
            assert_eq!(out.len(), 12);
            for (i, slot) in out.iter().enumerate() {
                if i % 4 == 1 {
                    assert_eq!(
                        slot,
                        &Err(RuntimeError::TaskPanicked {
                            index: i,
                            message: format!("task {i} died"),
                        }),
                        "workers={workers}"
                    );
                } else {
                    assert_eq!(slot, &Ok(i * 2), "workers={workers}");
                }
            }
        }
    }
}
