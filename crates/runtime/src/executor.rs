//! The scoped-thread batch executor: deterministic fan-out of
//! independent tasks across a fixed worker pool.
//!
//! Built on `std::thread::scope` only — no external runtime — so task
//! closures may borrow the caller's data (a shared
//! `MeasurementSession`, a reference waveform, acquisition records).
//! Results come back **slot-indexed**: task `i`'s output lands at
//! index `i` of the returned vector regardless of which worker ran it
//! or in what order tasks finished, which is what makes parallel
//! batches bit-identical to their sequential counterparts.
//!
//! Scheduling is delegated to [`crate::queue::WorkQueue`] (sharded
//! claiming with work stealing); this type keeps the one-shot
//! `Vec<FnOnce>` surface the batch entry points are written against.

use crate::queue::WorkQueue;
use std::sync::{Mutex, PoisonError};
use std::thread;

/// A fixed-size worker pool executing batches of independent tasks.
///
/// # Examples
///
/// ```
/// use nfbist_runtime::executor::BatchExecutor;
///
/// let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
/// let squares = BatchExecutor::new(4).run(tasks);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchExecutor {
    workers: usize,
}

impl BatchExecutor {
    /// Creates an executor with `workers` worker threads (values below
    /// 1 are clamped to 1; a single worker runs every task inline on
    /// the calling thread).
    pub fn new(workers: usize) -> Self {
        BatchExecutor {
            workers: workers.max(1),
        }
    }

    /// Creates an executor sized to the machine
    /// (`std::thread::available_parallelism`, falling back to 1).
    pub fn with_available_parallelism() -> Self {
        Self::new(thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task and returns their outputs in task order.
    ///
    /// Tasks are claimed off [`WorkQueue`]'s sharded cursors (with
    /// work stealing), so a slow task never blocks the others; each
    /// output is written into its task's slot. With one worker (or at
    /// most one task) the batch degenerates to a plain sequential loop
    /// on the calling thread — no threads are spawned at all.
    ///
    /// A panicking task propagates the panic to the caller once the
    /// scope joins.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        if self.workers == 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let n = tasks.len();
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        WorkQueue::new(self.workers).run(n, |i| {
            let task = take_slot(&slots[i]).expect("each task index is claimed once");
            task()
        })
    }
}

impl Default for BatchExecutor {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

fn take_slot<F>(slot: &Mutex<Option<F>>) -> Option<F> {
    slot.lock().unwrap_or_else(PoisonError::into_inner).take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(BatchExecutor::new(0).workers(), 1);
        assert_eq!(BatchExecutor::new(5).workers(), 5);
        assert!(BatchExecutor::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn results_come_back_in_task_order() {
        for workers in [1usize, 2, 4, 9] {
            let tasks: Vec<_> = (0..23u64).map(|i| move || i * 10).collect();
            let out = BatchExecutor::new(workers).run(tasks);
            assert_eq!(out, (0..23u64).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_worker_runs_inline_on_the_calling_thread() {
        let caller = thread::current().id();
        let tasks: Vec<_> = (0..4)
            .map(|_| move || thread::current().id() == caller)
            .collect();
        assert!(
            BatchExecutor::new(1).run(tasks).into_iter().all(|b| b),
            "a 1-worker batch must degenerate to the sequential loop"
        );
    }

    #[test]
    fn single_task_avoids_thread_spawn_even_with_many_workers() {
        let caller = thread::current().id();
        let out = BatchExecutor::new(8).run(vec![move || thread::current().id() == caller]);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn tasks_may_borrow_caller_data() {
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<_> = data.chunks(10).collect();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|c| move || c.iter().sum::<u64>())
            .collect();
        let sums = BatchExecutor::new(3).run(tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = BatchExecutor::new(4).run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }
}
