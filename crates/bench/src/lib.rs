//! # nfbist-bench — experiment harness for the DATE'05 reproduction
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! shared scenario builders they use. Criterion benches live in
//! `benches/`.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 1 (reference NF values) | `exp_table1` |
//! | Fig. 7 (waveforms, hot/cold) | `exp_fig7` |
//! | Fig. 8 (bitstream PSDs) | `exp_fig8` |
//! | Fig. 9 (normalized PSDs, zoom) | `exp_fig9` |
//! | Table 2 (3 power-ratio methods) | `exp_table2` |
//! | Fig. 10 (error vs reference amplitude) | `exp_fig10` |
//! | Table 3 (4 op-amps, prototype) | `exp_table3` |
//! | Fig. 13 (prototype PSD) | `exp_fig13` |
//! | — (beyond the paper: defect coverage vs test time) | `exp_coverage` |
//! | — (beyond the paper: fleet-scale wafer/lot screening) | `exp_wafer` |
//!
//! Every binary accepts `--quick` to run a reduced record length for
//! smoke testing; without it the paper's sizes (10⁶ samples, 10⁴-point
//! FFT) are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nfbist_soc::report::{Series, Table};

use nfbist_analog::bitstream::Bitstream;
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::source::{SquareSource, Waveform};
use nfbist_core::power_ratio::OneBitPowerRatio;
use nfbist_core::yfactor;
use nfbist_core::CoreError;

/// The simulated scenario behind the paper's §5.2 / Figs. 7–9 /
/// Table 2: hot and cold noise seen through an F = 10 DUT with
/// Th = 10000 K, Tc = 1000 K, plus a constant-amplitude square-wave
/// reference.
#[derive(Debug, Clone)]
pub struct Table2Scenario {
    /// Analog noise at the digitizer for the hot source state.
    pub hot: Vec<f64>,
    /// Analog noise for the cold state.
    pub cold: Vec<f64>,
    /// The shared reference waveform.
    pub reference: Vec<f64>,
    /// Digitized hot record.
    pub bits_hot: Bitstream,
    /// Digitized cold record.
    pub bits_cold: Bitstream,
    /// Sample rate in hertz.
    pub sample_rate: f64,
    /// Reference fundamental frequency in hertz.
    pub reference_frequency: f64,
    /// The exact noise power ratio the synthesis used.
    pub true_ratio: f64,
}

impl Table2Scenario {
    /// Paper parameters: Th = 10000 K, Tc = 1000 K, DUT F = 10
    /// (Te = 2610 K) — the true Y is (10000+2610)/(1000+2610) ≈ 3.493.
    ///
    /// `n` is the record length (the paper used 10⁶);
    /// `reference_fraction` scales the square wave relative to the
    /// cold noise RMS (0.3 reproduces the paper's working point).
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors.
    pub fn build(n: usize, reference_fraction: f64, seed: u64) -> Result<Self, CoreError> {
        let sample_rate = 10_000.0;
        let reference_frequency = 60.0;
        let f_dut = nfbist_core::figure::NoiseFactor::new(10.0)?;
        let true_ratio = yfactor::expected_y(f_dut, 10_000.0, 1_000.0)?;

        let sigma_cold = 1.0;
        let sigma_hot = sigma_cold * true_ratio.sqrt();
        let hot = WhiteNoise::new(sigma_hot, seed)?.generate(n);
        let cold = WhiteNoise::new(sigma_cold, seed ^ 0xFFFF)?.generate(n);
        let reference = SquareSource::new(reference_frequency, reference_fraction * sigma_cold)?
            .generate(n, sample_rate)?;

        let digitizer = OneBitDigitizer::ideal();
        let bits_hot = digitizer.digitize(&hot, &reference)?;
        let bits_cold = digitizer.digitize(&cold, &reference)?;

        Ok(Table2Scenario {
            hot,
            cold,
            reference,
            bits_hot,
            bits_cold,
            sample_rate,
            reference_frequency,
            true_ratio,
        })
    }

    /// A variant of the scenario with a 3 kHz **sine** reference at
    /// `fs = 20 kHz` — the prototype's operating point. Better
    /// conditioned than the 60 Hz square of the §5.2 demo (the
    /// reference line sits far from DC), so ablation studies isolate
    /// the effect under test.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors.
    pub fn build_sine_reference(
        n: usize,
        reference_fraction: f64,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let sample_rate = 20_000.0;
        let reference_frequency = 3_000.0;
        let f_dut = nfbist_core::figure::NoiseFactor::new(10.0)?;
        let true_ratio = yfactor::expected_y(f_dut, 10_000.0, 1_000.0)?;

        let sigma_cold = 1.0;
        let sigma_hot = sigma_cold * true_ratio.sqrt();
        let hot = WhiteNoise::new(sigma_hot, seed)?.generate(n);
        let cold = WhiteNoise::new(sigma_cold, seed ^ 0xFFFF)?.generate(n);
        let reference = nfbist_analog::source::SineSource::new(
            reference_frequency,
            reference_fraction * sigma_cold,
        )?
        .generate(n, sample_rate)?;

        let digitizer = OneBitDigitizer::ideal();
        let bits_hot = digitizer.digitize(&hot, &reference)?;
        let bits_cold = digitizer.digitize(&cold, &reference)?;

        Ok(Table2Scenario {
            hot,
            cold,
            reference,
            bits_hot,
            bits_cold,
            sample_rate,
            reference_frequency,
            true_ratio,
        })
    }

    /// The estimator configuration matching this scenario.
    ///
    /// For the square-reference build, the noise band sits above the
    /// square wave's strong harmonics and those are excluded; for the
    /// sine build the band is the prototype's 100–1500 Hz.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn estimator(&self, nfft: usize) -> Result<OneBitPowerRatio, CoreError> {
        if self.reference_frequency < 100.0 {
            Ok(OneBitPowerRatio::new(
                self.sample_rate,
                nfft,
                self.reference_frequency,
                (500.0, 4_500.0),
            )?
            // Exclude square-wave harmonics reaching into the band.
            .with_excluded_harmonics(75))
        } else {
            OneBitPowerRatio::new(
                self.sample_rate,
                nfft,
                self.reference_frequency,
                (100.0, 1_500.0),
            )
        }
    }
}

/// Parses the conventional experiment flags: returns `true` when
/// `--quick` was passed.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// `true` when `--streaming` was passed: experiment binaries that
/// support it then run their sessions in chunked (bounded-memory)
/// streaming mode — output is bit-identical to the batch mode by
/// construction, only the memory profile changes.
pub fn streaming_flag() -> bool {
    std::env::args().any(|a| a == "--streaming")
}

/// `true` when `--adaptive` was passed: experiment binaries that
/// support it then additionally run their screening flows under the
/// sequential (early-stopping) decision engine and report the
/// test-time reduction against the fixed schedule.
pub fn adaptive_flag() -> bool {
    std::env::args().any(|a| a == "--adaptive")
}

/// Parses `--workers N` (the batch-engine worker count); defaults to
/// the machine's available parallelism when absent or malformed.
pub fn workers_flag() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--workers" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        }
    }
    nfbist_runtime::BatchExecutor::with_available_parallelism().workers()
}

/// Parses `--dies N` (a lot-size target in dies); returns `default`
/// when absent or malformed. The wafer synthesis rounds the target up
/// to the nearest full disc, so the screened lot may hold slightly
/// more dies than requested.
pub fn dies_flag(default: usize) -> usize {
    parse_value_flag("--dies").unwrap_or(default).max(1)
}

/// Parses `--budget BYTES` (the fleet engine's global memory budget
/// for die-job admission); `None` when absent or malformed — callers
/// then pick their own default.
pub fn budget_flag() -> Option<usize> {
    parse_value_flag("--budget")
}

/// Parses `--monitors N` (the in-field monitoring fleet size); returns
/// `default` when absent or malformed.
pub fn monitors_flag(default: usize) -> usize {
    parse_value_flag("--monitors").unwrap_or(default).max(1)
}

/// Parses `--chaos SEED` (seeded runtime fault injection for the fleet
/// experiments); `None` when absent or malformed. Falls back to the
/// `NFBIST_CHAOS` environment variable so a whole test run can be
/// opted in without touching the command line.
pub fn chaos_flag() -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--chaos" {
            return args.next().and_then(|v| v.parse::<u64>().ok());
        }
    }
    std::env::var(nfbist_runtime::chaos::CHAOS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

fn parse_value_flag(flag: &str) -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next().and_then(|v| v.parse::<usize>().ok());
        }
    }
    None
}

/// Record length / FFT size for the current mode.
pub fn record_sizes(quick: bool) -> (usize, usize) {
    if quick {
        (1 << 17, 2_048)
    } else {
        (1_000_000, 10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_consistently() {
        let s = Table2Scenario::build(1 << 14, 0.3, 1).unwrap();
        assert_eq!(s.hot.len(), 1 << 14);
        assert_eq!(s.bits_hot.len(), s.bits_cold.len());
        assert!((s.true_ratio - 3.493).abs() < 0.001);
        // Hot record carries true_ratio× the cold power.
        let ph = nfbist_dsp::stats::mean_square(&s.hot).unwrap();
        let pc = nfbist_dsp::stats::mean_square(&s.cold).unwrap();
        assert!((ph / pc - s.true_ratio).abs() / s.true_ratio < 0.05);
    }

    #[test]
    fn scenario_estimator_recovers_ratio() {
        let s = Table2Scenario::build(1 << 18, 0.3, 2).unwrap();
        let est = s.estimator(2_000).unwrap();
        let r = est.estimate_bits(&s.bits_hot, &s.bits_cold).unwrap();
        assert!(
            (r.ratio - s.true_ratio).abs() / s.true_ratio < 0.08,
            "ratio {} vs true {}",
            r.ratio,
            s.true_ratio
        );
    }

    #[test]
    fn value_flags_fall_back_when_absent() {
        // The test harness is never invoked with the experiment flags,
        // so both helpers take their fallback path here.
        assert_eq!(dies_flag(512), 512);
        assert_eq!(dies_flag(0), 1);
        assert_eq!(budget_flag(), None);
    }

    #[test]
    fn record_sizes_by_mode() {
        assert_eq!(record_sizes(false), (1_000_000, 10_000));
        assert!(record_sizes(true).0 < 1_000_000);
    }
}
