//! Regenerates **Figure 8** of the paper: power spectrum density of the
//! digitizer bitstream for hot and cold noise.
//!
//! The paper's observation to reproduce: "the noise levels remain
//! similar, while amplitude levels of the reference square wave are
//! larger" (for the cold state).

use nfbist_bench::{quick_flag, record_sizes, Series, Table2Scenario};
use nfbist_dsp::psd::WelchConfig;

fn main() {
    let (n, nfft) = record_sizes(quick_flag());
    let scenario = Table2Scenario::build(n, 0.3, 8).expect("scenario synthesis");

    let welch = WelchConfig::new(nfft).expect("welch config");
    let psd_hot = welch
        .estimate(&scenario.bits_hot.to_bipolar(), scenario.sample_rate)
        .expect("hot psd");
    let psd_cold = welch
        .estimate(&scenario.bits_cold.to_bipolar(), scenario.sample_rate)
        .expect("cold psd");

    println!("Figure 8. Power spectrum density of the 1-bit digitizer output\n");
    for (name, psd) in [
        ("hot_bitstream_psd_db", &psd_hot),
        ("cold_bitstream_psd_db", &psd_cold),
    ] {
        let mut s = Series::new(name);
        // Decimate the plot to ~500 points for readability.
        let step = (psd.len() / 500).max(1);
        for k in (0..psd.len()).step_by(step) {
            s.push(
                psd.bin_frequency(k),
                10.0 * psd.density()[k].max(1e-30).log10(),
            );
        }
        print!("{s}");
    }

    // Quantify the two observations.
    let line = |psd: &nfbist_dsp::spectrum::Spectrum| {
        let p = psd.peak_in_band(40.0, 80.0).expect("reference band");
        psd.tone_power(p.bin, 3).expect("line power")
    };
    let floor = |psd: &nfbist_dsp::spectrum::Spectrum| {
        psd.band_power(1_000.0, 4_000.0).expect("floor band") / 3_000.0
    };
    println!(
        "# reference line power: hot {:.4e}, cold {:.4e} (cold larger, ratio {:.2})",
        line(&psd_hot),
        line(&psd_cold),
        line(&psd_cold) / line(&psd_hot)
    );
    println!(
        "# noise floor density:  hot {:.4e}, cold {:.4e} (similar, ratio {:.2})",
        floor(&psd_hot),
        floor(&psd_cold),
        floor(&psd_cold) / floor(&psd_hot)
    );
}
