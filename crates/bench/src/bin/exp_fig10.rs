//! Regenerates **Figure 10** of the paper: error in power ratio
//! estimates versus reference amplitude (Vref/Vnoise, %).
//!
//! The paper's shape to reproduce: large error for very small
//! references (the line drowns in the noise floor), a usable plateau
//! around 10–40 %, and growing distortion error beyond.
//!
//! Setup: Gaussian noise pairs with a known 2:1 power ratio, a 3 kHz
//! sine reference scaled relative to the cold noise RMS (the
//! prototype's operating point rather than the low-frequency square of
//! the §5.2 demo — the tracker behaves identically, but the line sits
//! far from DC so the sweep isolates the amplitude effect).

use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_bench::quick_flag;
use nfbist_core::power_ratio::OneBitPowerRatio;
use nfbist_soc::report::{Series, Table};

fn main() {
    let quick = quick_flag();
    let n = if quick { 1 << 17 } else { 1 << 20 };
    let nfft = if quick { 2_048 } else { 8_192 };
    let fs = 20_000.0;
    let true_ratio: f64 = 2.0;
    let sigma_cold = 1.0;
    let sigma_hot = sigma_cold * true_ratio.sqrt();

    println!("Figure 10. Error in power ratio estimates vs reference amplitude\n");
    let fractions = [
        0.02, 0.04, 0.06, 0.08, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50, 0.60, 0.70, 0.85,
        1.00, 1.20, 1.50,
    ];
    let mut series = Series::new("power_ratio_error_percent");
    let mut table = Table::new(vec!["Vref/Vnoise (%)", "estimated Y", "error (%)"]);
    let digitizer = OneBitDigitizer::ideal();
    let estimator =
        OneBitPowerRatio::new(fs, nfft, 3_000.0, (100.0, 1_500.0)).expect("estimator config");

    for (i, &frac) in fractions.iter().enumerate() {
        let seed = 300 + i as u64;
        let hot = WhiteNoise::new(sigma_hot, seed).expect("noise").generate(n);
        let cold = WhiteNoise::new(sigma_cold, seed ^ 0xABCD)
            .expect("noise")
            .generate(n);
        let reference = SineSource::new(3_000.0, frac * sigma_cold)
            .expect("sine")
            .generate(n, fs)
            .expect("generate");
        let bits_hot = digitizer.digitize(&hot, &reference).expect("digitize");
        let bits_cold = digitizer.digitize(&cold, &reference).expect("digitize");

        let (y_str, err) = match estimator.estimate_bits(&bits_hot, &bits_cold) {
            Ok(est) => {
                let err = (est.ratio - true_ratio) / true_ratio * 100.0;
                series.push(frac * 100.0, err);
                (format!("{:.4}", est.ratio), format!("{err:+.2}"))
            }
            Err(e) => ("-".to_string(), format!("unusable ({e})")),
        };
        table.row(vec![format!("{:.0}", frac * 100.0), y_str, err]);
    }
    print!("{table}\n{series}");
    println!(
        "# paper guidance: amplitudes in the 10-40 % range give reasonable results;\n\
         # tiny references fail (line below floor), large ones distort the digitizer."
    );
}
