//! Beyond the paper: Monte-Carlo repeatability of the 1-bit NF
//! measurement, validating the analytic uncertainty model of
//! `nfbist_core::uncertainty` against brute-force repetition.
//!
//! For each record length, one measurement session (TL081 prototype)
//! runs with `repeats(trials)` — independent per-repeat seeds — and the
//! spread of the measured NF is compared with
//! `nf_std_from_record_length`'s prediction.
//!
//! The trials are fanned out across worker threads by the
//! `nfbist-runtime` batch engine (`--workers N`, default: all cores);
//! per-repeat seeds are derived from the repeat index, so the table is
//! bit-identical for any worker count.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_bench::{quick_flag, streaming_flag, workers_flag};
use nfbist_core::uncertainty::nf_std_from_record_length;
use nfbist_runtime::BatchPlan;
use nfbist_soc::report::Table;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn main() {
    let quick = quick_flag();
    let workers = workers_flag();
    let streaming = streaming_flag();
    // Well under every record footprint below (2^15 × 8 B = 256 KiB is
    // the smallest), so `--streaming` always exercises the chunked
    // acquisition pipeline.
    let budget = 64 * 1024;
    let trials = if quick { 5 } else { 12 };
    let lengths: &[usize] = if quick {
        &[1 << 15, 1 << 17]
    } else {
        &[1 << 15, 1 << 17, 1 << 19]
    };

    println!(
        "Monte-Carlo repeatability of the BIST NF measurement (TL081 prototype, {trials} trials per point, {workers} worker{}{})\n",
        if workers == 1 { "" } else { "s" },
        if streaming {
            ", streaming acquisition (64 KiB budget)"
        } else {
            ""
        }
    );
    let plan = BatchPlan::new().workers(workers);
    let mut table = Table::new(vec![
        "Record length",
        "mean NF (dB)",
        "measured sigma (dB)",
        "predicted sigma (dB)",
    ]);

    for &n in lengths {
        let dut =
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .expect("dut");
        let setup = BistSetup {
            samples: n,
            nfft: 2_048,
            seed: 7_000 + n as u64,
            ..BistSetup::paper_prototype(0)
        };
        // Effective independent samples: 2·B·T over the configured
        // noise band.
        let n_eff = setup.effective_samples();
        let mut session = MeasurementSession::new(setup)
            .expect("session")
            .dut(dut)
            .repeats(trials);
        if streaming {
            session = session.memory_budget(budget);
            assert!(
                session.streaming_active(),
                "streaming smoke must actually exceed the budget"
            );
        }
        // The batch engine fans the `trials` repeats across workers;
        // the recombined measurement is bit-identical to the old
        // sequential `session.run()` — in streaming mode too, where
        // each worker additionally stays inside the memory budget.
        let m = plan.run_session(&session).expect("measurement");
        if streaming && n == lengths[0] {
            // Self-check at the cheapest point: the streaming result
            // must be bit-identical to the batch path.
            let batch = session.run_batch_reference().expect("batch reference");
            assert_eq!(
                m.nf.y.to_bits(),
                batch.nf.y.to_bits(),
                "streaming and batch measurements diverged"
            );
        }
        let predicted =
            nf_std_from_record_length(m.nf.factor, 2_900.0, 290.0, n_eff).expect("prediction");
        table.row(vec![
            format!("2^{}", n.trailing_zeros()),
            format!("{:.2}", m.nf.figure.db()),
            format!("{:.3}", m.nf_spread_db),
            format!("{predicted:.3}"),
        ]);
    }
    print!("{table}");
    println!(
        "\nchecks: the spread shrinks with record length and then saturates at a\n\
         floor set by the 1-bit normalization (reference-line tracking noise);\n\
         the analytic prediction models only the finite-record variance, so it\n\
         is a lower bound the measurement approaches from above."
    );
}
