//! Beyond the paper: defect-coverage qualification of the 1-bit NF
//! BIST — the production-test question the paper's economics rest on.
//!
//! A [`FaultUniverse`] of defective TL081 prototypes (input-path loss,
//! degraded noise, gain drift, interference, stuck/flipped storage
//! cells) is screened at several acquisition lengths by the full
//! session → guard-banded screen → retest-escalation flow, and the
//! per-class detection/escape/retest rates are tabulated against the
//! test time. Longer records buy narrower guard bands (fewer retests,
//! fewer escapes) at linear test-time cost — the tradeoff a test
//! engineer actually schedules.
//!
//! Campaign cells are fanned out across worker threads by the
//! `nfbist-runtime` batch engine (`--workers N`, default: all cores);
//! every cell is seeded by its index, so the report is **bit-identical
//! for any worker count** (self-checked against a sequential run in
//! `--quick` mode).

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_bench::{adaptive_flag, quick_flag, workers_flag};
use nfbist_runtime::BatchPlan;
use nfbist_soc::coverage::{CoverageCampaign, CoverageReport, FaultUniverse};
use nfbist_soc::report::Table;
use nfbist_soc::screening::{RetestPolicy, Screen, SequentialScreen};
use nfbist_soc::setup::BistSetup;

fn build_campaign(samples: usize, nfft: usize, trials: usize, screen: Screen) -> CoverageCampaign {
    let setup = BistSetup {
        samples,
        nfft,
        seed: 20_050_307, // DATE'05 desk copy
        ..BistSetup::paper_prototype(0)
    };
    CoverageCampaign::new(
        setup,
        screen,
        FaultUniverse::paper_grid().expect("universe"),
    )
    .expect("campaign")
    .trials(trials)
    .retest(RetestPolicy::new(3, 4).expect("policy"))
}

/// The `--adaptive` section: the same fault universe screened by the
/// fixed schedule and by the sequential (early-stopping) decision
/// engine at the operating point the stop rule can resolve — limit at
/// the expectation + 2.5 dB with a 2-sigma guard. (The legacy
/// +1.2 dB / 3-sigma point leaves no room: its guard band spans the
/// whole margin and no interval clears it before the cap.) In
/// `--quick` mode the comparison self-checks the acceptance criteria:
/// the adaptive report is bit-identical across worker counts, the
/// rates match the fixed flow, and the mean test time drops at least
/// 2x.
#[allow(clippy::too_many_arguments)]
fn run_adaptive_comparison(
    plan: &BatchPlan,
    lengths: &[usize],
    nfft: usize,
    trials: usize,
    expected: f64,
    quick: bool,
    workers: usize,
) {
    let screen = Screen::new(expected + 2.5, 2.0).expect("adaptive screen");
    println!(
        "\n== Adaptive (sequential early-stop) vs fixed schedule ==\n\
         limit {:.2} dB (expected {expected:.2} dB + 2.5 dB margin), 2-sigma guard,\n\
         alpha = beta = 0.05, first checkpoint at cap/16, geometric x2 growth\n",
        expected + 2.5
    );
    let mut table = Table::new(vec![
        "Record cap",
        "Detection fix/adp",
        "Escapes fix/adp",
        "Yield loss fix/adp",
        "Mean samples fix/adp",
        "Reduction",
    ]);
    // The sequential rule needs headroom between its first checkpoint
    // and the cap: below 2^16 the gross-confirmation depth (4 Welch
    // segments) and the cap's own guard band leave the schedule only
    // one or two useful decisions, and coverage degrades instead of
    // test time. Shorter lengths stay in the fixed-schedule table
    // above.
    for &samples in lengths.iter().filter(|&&s| s >= 1 << 16) {
        let fixed = build_campaign(samples, nfft, trials, screen);
        let seq = SequentialScreen::new(screen, 0.05, 0.05)
            .expect("sequential rule")
            .min_samples(samples >> 4);
        let adaptive = build_campaign(samples, nfft, trials, screen).adaptive(seq);

        let fr = plan.run_coverage(&fixed).expect("fixed campaign");
        let ar = plan.run_coverage(&adaptive).expect("adaptive campaign");

        let fd = fr.overall_detection_rate().unwrap_or(0.0);
        let ad = ar.overall_detection_rate().unwrap_or(0.0);
        let fe = fr.overall_escape_rate().unwrap_or(0.0);
        let ae = ar.overall_escape_rate().unwrap_or(0.0);
        let fy = fr.yield_loss().unwrap_or(0.0);
        let ay = ar.yield_loss().unwrap_or(0.0);
        let reduction = fr.mean_test_samples() / ar.mean_test_samples();

        if quick {
            // Acceptance self-checks for the adaptive flow.
            let sequential = BatchPlan::sequential()
                .run_coverage(&adaptive)
                .expect("sequential adaptive run");
            assert_eq!(
                ar, sequential,
                "adaptive report differs between {workers} workers and 1 worker"
            );
            assert!(
                (fd - ad).abs() <= 0.10,
                "detection rates diverged at 2^{}: fixed {fd:.3} adaptive {ad:.3}",
                samples.trailing_zeros()
            );
            assert!(
                ae <= fe + 0.05,
                "adaptive escapes more at 2^{}: fixed {fe:.3} adaptive {ae:.3}",
                samples.trailing_zeros()
            );
            assert!(
                ay <= fy + 0.05,
                "adaptive yield loss worse at 2^{}: fixed {fy:.3} adaptive {ay:.3}",
                samples.trailing_zeros()
            );
            assert!(
                reduction >= 2.0,
                "adaptive must at least halve the mean test time at 2^{}: {reduction:.2}x",
                samples.trailing_zeros()
            );
            assert_eq!(ar.retest_rate(), 0.0, "adaptive cells never retest");
        }

        table.row(vec![
            format!("2^{}", samples.trailing_zeros()),
            format!("{:.1} % / {:.1} %", 100.0 * fd, 100.0 * ad),
            format!("{:.1} % / {:.1} %", 100.0 * fe, 100.0 * ae),
            format!("{:.1} % / {:.1} %", 100.0 * fy, 100.0 * ay),
            format!(
                "{:.0} / {:.0}",
                fr.mean_test_samples(),
                ar.mean_test_samples()
            ),
            format!("{reduction:.1}x"),
        ]);
    }
    print!("{table}");
    if quick {
        println!(
            "\nadaptive self-checks passed: bit-identical across workers, rates match\n\
             the fixed flow, mean test time at least halved"
        );
    }
    println!(
        "\nThe sequential rule stops healthy DUTs as soon as two consecutive\n\
         checkpoints confirm a guard-band-clear estimate and gross rejects as\n\
         soon as two confirm an unmeasurable one, so the mean bill is dominated\n\
         by the defective tail instead of the healthy majority."
    );
}

fn main() {
    let quick = quick_flag();
    let adaptive = adaptive_flag();
    let workers = workers_flag();
    let trials = if quick { 6 } else { 12 };
    let nfft = if quick { 1_024 } else { 2_048 };
    let lengths: &[usize] = if quick {
        &[1 << 14, 1 << 16]
    } else {
        &[1 << 15, 1 << 17, 1 << 19]
    };

    // Screen at the healthy TL081 expectation + 1.2 dB margin, 3-sigma
    // guard band — a realistic production limit for the prototype DUT.
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut")
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .expect("expected NF");
    let screen = Screen::new(expected + 1.2, 3.0).expect("screen");

    println!(
        "Defect-coverage campaign: 1-bit BIST screening a faulted TL081 population\n\
         limit {:.2} dB (expected {expected:.2} dB + 1.2 dB margin), 3-sigma guard, \
         retest ×4 up to 3 rounds, {trials} trials/variant, {workers} worker{}\n",
        expected + 1.2,
        if workers == 1 { "" } else { "s" }
    );

    let plan = BatchPlan::new().workers(workers);
    let mut tradeoff = Table::new(vec![
        "Record length",
        "Detection",
        "Escapes",
        "Yield loss",
        "Retest rate",
        "Mean test samples/DUT",
    ]);
    let mut reports: Vec<(usize, CoverageReport)> = Vec::new();

    for &samples in lengths {
        let campaign = build_campaign(samples, nfft, trials, screen);
        let report = plan.run_coverage(&campaign).expect("campaign run");

        if quick {
            // Acceptance self-check: the report must be bit-identical
            // for any worker count.
            let sequential = BatchPlan::sequential()
                .run_coverage(&campaign)
                .expect("sequential run");
            assert_eq!(
                report, sequential,
                "coverage report differs between {workers} workers and 1 worker"
            );
        }

        println!("== Record length 2^{} ==", samples.trailing_zeros());
        print!("{report}");
        println!();

        tradeoff.row(vec![
            format!("2^{}", samples.trailing_zeros()),
            format!(
                "{:.1} %",
                100.0 * report.overall_detection_rate().unwrap_or(0.0)
            ),
            format!(
                "{:.1} %",
                100.0 * report.overall_escape_rate().unwrap_or(0.0)
            ),
            format!("{:.1} %", 100.0 * report.yield_loss().unwrap_or(0.0)),
            format!("{:.1} %", 100.0 * report.retest_rate()),
            format!("{:.0}", report.mean_test_samples()),
        ]);
        reports.push((samples, report));
    }

    println!("== Coverage vs acquisition length ==");
    print!("{tradeoff}");
    if quick {
        println!("\nworker-determinism self-check passed: report bit-identical at 1 and {workers} worker(s)");
    }

    if adaptive {
        run_adaptive_comparison(&plan, lengths, nfft, trials, expected, quick, workers);
    }
    println!(
        "\nchecks: gross noise/attenuation faults are caught at every length, and\n\
         longer records trade test time for fewer retests and escapes. The blind\n\
         spots are structural, not statistical: mild gain drift cancels out of\n\
         the Y ratio (only the shifted reference working point leaks through),\n\
         and uniform stuck/flipped storage cells corrupt hot, cold and reference\n\
         lines identically, so the reference normalization self-calibrates them\n\
         away — catching those classes needs the frequency-response mode (§7)\n\
         or a trivial on-line duty-cycle check, not a longer acquisition."
    );
}
