//! Beyond the paper: defect-coverage qualification of the 1-bit NF
//! BIST — the production-test question the paper's economics rest on.
//!
//! A [`FaultUniverse`] of defective TL081 prototypes (input-path loss,
//! degraded noise, gain drift, interference, stuck/flipped storage
//! cells) is screened at several acquisition lengths by the full
//! session → guard-banded screen → retest-escalation flow, and the
//! per-class detection/escape/retest rates are tabulated against the
//! test time. Longer records buy narrower guard bands (fewer retests,
//! fewer escapes) at linear test-time cost — the tradeoff a test
//! engineer actually schedules.
//!
//! Campaign cells are fanned out across worker threads by the
//! `nfbist-runtime` batch engine (`--workers N`, default: all cores);
//! every cell is seeded by its index, so the report is **bit-identical
//! for any worker count** (self-checked against a sequential run in
//! `--quick` mode).

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_bench::{quick_flag, workers_flag};
use nfbist_runtime::BatchPlan;
use nfbist_soc::coverage::{CoverageCampaign, CoverageReport, FaultUniverse};
use nfbist_soc::report::Table;
use nfbist_soc::screening::{RetestPolicy, Screen};
use nfbist_soc::setup::BistSetup;

fn build_campaign(samples: usize, nfft: usize, trials: usize, screen: Screen) -> CoverageCampaign {
    let setup = BistSetup {
        samples,
        nfft,
        seed: 20_050_307, // DATE'05 desk copy
        ..BistSetup::paper_prototype(0)
    };
    CoverageCampaign::new(
        setup,
        screen,
        FaultUniverse::paper_grid().expect("universe"),
    )
    .expect("campaign")
    .trials(trials)
    .retest(RetestPolicy::new(3, 4).expect("policy"))
}

fn main() {
    let quick = quick_flag();
    let workers = workers_flag();
    let trials = if quick { 6 } else { 12 };
    let nfft = if quick { 1_024 } else { 2_048 };
    let lengths: &[usize] = if quick {
        &[1 << 14, 1 << 16]
    } else {
        &[1 << 15, 1 << 17, 1 << 19]
    };

    // Screen at the healthy TL081 expectation + 1.2 dB margin, 3-sigma
    // guard band — a realistic production limit for the prototype DUT.
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut")
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .expect("expected NF");
    let screen = Screen::new(expected + 1.2, 3.0).expect("screen");

    println!(
        "Defect-coverage campaign: 1-bit BIST screening a faulted TL081 population\n\
         limit {:.2} dB (expected {expected:.2} dB + 1.2 dB margin), 3-sigma guard, \
         retest ×4 up to 3 rounds, {trials} trials/variant, {workers} worker{}\n",
        expected + 1.2,
        if workers == 1 { "" } else { "s" }
    );

    let plan = BatchPlan::new().workers(workers);
    let mut tradeoff = Table::new(vec![
        "Record length",
        "Detection",
        "Escapes",
        "Yield loss",
        "Retest rate",
        "Mean test samples/DUT",
    ]);
    let mut reports: Vec<(usize, CoverageReport)> = Vec::new();

    for &samples in lengths {
        let campaign = build_campaign(samples, nfft, trials, screen);
        let report = plan.run_coverage(&campaign).expect("campaign run");

        if quick {
            // Acceptance self-check: the report must be bit-identical
            // for any worker count.
            let sequential = BatchPlan::sequential()
                .run_coverage(&campaign)
                .expect("sequential run");
            assert_eq!(
                report, sequential,
                "coverage report differs between {workers} workers and 1 worker"
            );
        }

        println!("== Record length 2^{} ==", samples.trailing_zeros());
        print!("{report}");
        println!();

        tradeoff.row(vec![
            format!("2^{}", samples.trailing_zeros()),
            format!(
                "{:.1} %",
                100.0 * report.overall_detection_rate().unwrap_or(0.0)
            ),
            format!(
                "{:.1} %",
                100.0 * report.overall_escape_rate().unwrap_or(0.0)
            ),
            format!("{:.1} %", 100.0 * report.yield_loss().unwrap_or(0.0)),
            format!("{:.1} %", 100.0 * report.retest_rate()),
            format!("{:.0}", report.mean_test_samples()),
        ]);
        reports.push((samples, report));
    }

    println!("== Coverage vs acquisition length ==");
    print!("{tradeoff}");
    if quick {
        println!("\nworker-determinism self-check passed: report bit-identical at 1 and {workers} worker(s)");
    }
    println!(
        "\nchecks: gross noise/attenuation faults are caught at every length, and\n\
         longer records trade test time for fewer retests and escapes. The blind\n\
         spots are structural, not statistical: mild gain drift cancels out of\n\
         the Y ratio (only the shifted reference working point leaks through),\n\
         and uniform stuck/flipped storage cells corrupt hot, cold and reference\n\
         lines identically, so the reference normalization self-calibrates them\n\
         away — catching those classes needs the frequency-response mode (§7)\n\
         or a trivial on-line duty-cycle check, not a longer acquisition."
    );
}
