//! Regenerates **Figure 13** of the paper: PSD plot for noise levels
//! after normalization in the prototype setup (TL081 DUT) — the 3 kHz
//! reference line with the ≤1 kHz noise band.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_bench::quick_flag;
use nfbist_soc::report::Series;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn main() {
    let quick = quick_flag();
    let dut =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut construction");
    let setup = if quick {
        BistSetup::quick(13)
    } else {
        BistSetup::paper_prototype(13)
    };
    let m = MeasurementSession::new(setup)
        .expect("session construction")
        .dut(dut)
        .run()
        .expect("measurement");
    let detail = m
        .one_bit_detail()
        .expect("the default estimator reports 1-bit intermediates");

    println!(
        "Figure 13. PSD for noise levels after normalization (TL081 prototype)\n\
         # measured NF {:.2} dB (expected {:.2} dB), Y = {:.4}, ref scale {:.4}\n",
        m.nf.figure.db(),
        m.expected_nf_db,
        m.nf.y,
        detail.normalization.scale
    );

    for (name, psd) in [
        ("hot_psd_db", &detail.hot_spectrum),
        ("cold_psd_db_normalized", &detail.cold_spectrum_normalized),
    ] {
        let mut s = Series::new(name);
        // Plot 0–4 kHz: the noise band and the 3 kHz reference line.
        let hi = psd.bin_of(4_000.0).expect("plot range");
        let step = (hi / 800).max(1);
        for k in (0..=hi).step_by(step) {
            s.push(
                psd.bin_frequency(k),
                10.0 * psd.density()[k].max(1e-30).log10(),
            );
        }
        print!("{s}");
    }
    println!(
        "# shape: both spectra share the reference line at 3 kHz; the hot noise floor\n\
         # below 1 kHz sits ~{:.1} dB above the normalized cold floor (10·log10(Y)).",
        10.0 * m.nf.y.log10()
    );
}
