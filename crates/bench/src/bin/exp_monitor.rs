//! Beyond the paper: continuous in-field monitoring — the BIST
//! resources the paper leaves in the SoC (§4) put to work over the
//! product's lifetime instead of one production insert.
//!
//! A fleet of monitors runs unbounded missions through the full
//! source → DUT → digitizer → windowed-estimator pipeline. Each
//! emission point folds a sliding-window NF estimate (with its
//! uncertainty sigma) through a freshness-scaled CUSUM drift detector;
//! the result is a typed alarm timeline per monitor. Even-indexed
//! monitors stay healthy; odd-indexed monitors age through a seeded
//! [`DriftingDut`] — a linear excess-noise ramp or an exponential
//! aging curve composing excess noise with input attenuation — and
//! must be **drift-flagged before their NF crosses the hard limit**
//! (the whole point of trend detection: the alarm leads the failure).
//!
//! The demo rides the multi-bit bench (12-bit ADC + PSD-ratio
//! estimator), whose per-window sigma is tight enough for an absolute
//! NF limit at an 8-segment window; the windowed machinery itself is
//! estimator-agnostic and covers the paper's 1-bit estimator too
//! (property-tested in the core/dsp suites — at these short windows
//! the 1-bit estimator's variance calls for forgetting-window depths
//! rather than a hard limit).
//!
//! Every timeline is a pure function of `(seed, drift profile, window
//! config)`: bit-identical for any worker count, chunk size, or memory
//! budget (self-checked against a sequential run in `--quick` mode,
//! along with the drift-leads-limit ordering and a binomial bound on
//! healthy false alarms).
//!
//! `--chaos SEED` arms seeded runtime fault injection: marked monitors
//! are quarantined into a degraded fleet report while every surviving
//! timeline keeps the clean run's exact bits (self-checked across
//! 1/2/8 workers in `--quick` mode).
//!
//! Usage: `exp_monitor [--quick] [--monitors N] [--workers N]
//! [--budget BYTES] [--chaos SEED]`.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::AdcDigitizer;
use nfbist_analog::fault::{AnalogFault, DriftSchedule, DriftingDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_bench::{budget_flag, chaos_flag, monitors_flag, quick_flag, workers_flag};
use nfbist_core::power_ratio::PsdRatioEstimator;
use nfbist_core::streaming::EstimatorWindow;
use nfbist_runtime::batch::derive_seed;
use nfbist_runtime::chaos::{install_quiet_panic_hook, ChaosConfig};
use nfbist_runtime::monitor::MonitorPlan;
use nfbist_runtime::supervisor::TaskPolicy;
use nfbist_soc::monitor::{AlarmKind, MonitorSession};
use nfbist_soc::report::Table;
use nfbist_soc::setup::BistSetup;
use nfbist_soc::SocError;
use std::error::Error;
use std::time::Instant;

const BASE_SEED: u64 = 20_050_307; // DATE'05 desk copy

/// Mission geometry shared by every monitor in the fleet.
#[derive(Clone, Copy)]
struct MissionConfig {
    samples: usize,
    nfft: usize,
    onset: usize,
    ramp: usize,
    tau: usize,
    limit_db: f64,
}

fn amp() -> Result<NonInvertingAmplifier, SocError> {
    Ok(NonInvertingAmplifier::new(
        OpampModel::op27(),
        Ohms::new(10_000.0),
        Ohms::new(100.0),
    )?)
}

/// The drift profile for fleet slot `index`: even slots healthy, odd
/// slots alternating between a linear excess-noise ramp and an
/// exponential aging curve that composes excess noise with input
/// attenuation.
fn drifting_dut(
    index: usize,
    cfg: MissionConfig,
) -> Result<Option<DriftingDut<NonInvertingAmplifier>>, SocError> {
    if index.is_multiple_of(2) {
        return Ok(None);
    }
    let dut = if (index / 2).is_multiple_of(2) {
        DriftingDut::new(
            amp()?,
            DriftSchedule::Linear {
                onset: cfg.onset,
                ramp: cfg.ramp,
            },
        )?
        .with_fault(AnalogFault::ExcessNoise { factor: 8.0 })?
    } else {
        DriftingDut::new(
            amp()?,
            DriftSchedule::Exponential {
                onset: cfg.onset,
                tau: cfg.tau,
            },
        )?
        .with_faults([
            AnalogFault::ExcessNoise { factor: 4.0 },
            AnalogFault::InputAttenuation { factor: 1.6 },
        ])?
    };
    Ok(Some(dut))
}

fn profile_name(index: usize) -> &'static str {
    if index.is_multiple_of(2) {
        "healthy"
    } else if (index / 2).is_multiple_of(2) {
        "linear 8x-noise ramp"
    } else {
        "exp 4x-noise + atten"
    }
}

fn mission(index: usize, cfg: MissionConfig) -> Result<MonitorSession, SocError> {
    let mut setup = BistSetup::quick(derive_seed(BASE_SEED, index as u64));
    setup.samples = cfg.samples;
    setup.nfft = cfg.nfft;
    let estimator = PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band)?;
    // Operating point: an 8-emission warm-up tightens the learned
    // baseline, and h = 6 trades a little false-alarm headroom for
    // earlier detection — the calibration suite pins the conservative
    // default (k = 0.5, h = 8); a deployment tunes to its window.
    let monitor = MonitorSession::new(setup)?
        .digitizer(AdcDigitizer::new(12)?)
        .estimator(estimator)
        .window(EstimatorWindow::Sliding { segments: 8 })
        .warmup(8)
        .cusum(0.5, 6.0)
        .nf_limit_db(cfg.limit_db);
    Ok(match drifting_dut(index, cfg)? {
        Some(dut) => monitor.dut(dut),
        None => monitor.dut(amp()?),
    })
}

/// The experiment's chaos schedule: panics and allocation failures
/// only (stalls need a wall-clock deadline), faulting on both attempts
/// of the two-attempt policy so every marked monitor quarantines.
fn chaos_schedule(seed: u64) -> ChaosConfig {
    ChaosConfig::new(seed)
        .stall_rate_per_mille(0)
        .faulty_attempts(2)
}

fn main() -> Result<(), Box<dyn Error>> {
    let quick = quick_flag();
    let workers = workers_flag();
    let chaos_seed = chaos_flag();
    let monitors = monitors_flag(if quick { 6 } else { 12 });
    // In-field aging is slow relative to the estimator window: the
    // ramp spans most of the mission, which is exactly what lets the
    // trend detector lead the hard limit.
    let (samples, onset) = if quick {
        (40 * 1_024, 10_240)
    } else {
        (160 * 1_024, 40_960)
    };
    let nfft = 1_024;
    let ramp = 5 * samples / 8;
    let tau = 3 * samples / 8;

    // The hard limit sits at 85% of the way from the healthy
    // expectation to the fully drifted one — the slow ramp crosses it
    // late, so a working trend detector must alarm first.
    let setup = BistSetup::quick(0);
    let (f_lo, f_hi) = setup.noise_band;
    let rs = setup.source_resistance;
    let healthy_nf = amp()?.expected_noise_figure_db(rs, f_lo, f_hi)?;
    let probe = DriftingDut::new(amp()?, DriftSchedule::Step { at: 0 })?
        .with_fault(AnalogFault::ExcessNoise { factor: 8.0 })?;
    let drifted_nf = probe.drifting_expected_noise_figure_db_at(0, rs, f_lo, f_hi)?;
    let cfg = MissionConfig {
        samples,
        nfft,
        onset,
        ramp,
        tau,
        limit_db: healthy_nf + 0.85 * (drifted_nf - healthy_nf),
    };

    let cost = 64 * samples; // per-monitor transient ballpark for the gate
    let mut plan = MonitorPlan::workers(workers);
    if let Some(bytes) = budget_flag() {
        plan = plan.memory_budget(bytes);
    }
    if let Some(seed) = chaos_seed {
        install_quiet_panic_hook();
        plan = plan
            .task_policy(TaskPolicy::new().attempts(2))
            .chaos(chaos_schedule(seed));
    }

    println!(
        "In-field monitoring fleet: {monitors} monitors, {samples} samples/mission, \
         1024-sample emissions\n\
         8-segment sliding window, CUSUM k=0.5 h=6, warm-up 8 emissions\n\
         healthy NF {healthy_nf:.2} dB, fully drifted {drifted_nf:.2} dB, \
         hard limit {:.2} dB\n\
         drift onset at sample {onset}, ramp {ramp} samples (exp tau {tau}), \
         {workers} worker{}",
        cfg.limit_db,
        if workers == 1 { "" } else { "s" },
    );
    if let Some(seed) = chaos_seed {
        println!(
            "chaos armed: seed {seed}, {} monitors marked for runtime faults (2-attempt policy)",
            chaos_schedule(seed).scheduled_faults(monitors).len()
        );
    }
    println!();

    let start = Instant::now();
    let fleet = plan.run_fleet(monitors, cost, |i| mission(i, cfg));
    let elapsed = start.elapsed().as_secs_f64();

    let mut table = Table::new(vec![
        "Monitor",
        "Profile",
        "Baseline",
        "Drift alarm",
        "Limit cross",
        "Final NF",
    ]);
    let mut false_alarms = 0usize;
    let mut healthy_count = 0usize;
    for outcome in fleet.outcomes().iter().enumerate() {
        let (i, outcome) = outcome;
        let Some(report) = outcome.report() else {
            table.row(vec![
                format!("{i}"),
                profile_name(i).to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "QUARANTINED".into(),
            ]);
            continue;
        };
        let drift = report.first_event(AlarmKind::DriftAlarm);
        let limit = report.first_event(AlarmKind::LimitViolation);
        if i.is_multiple_of(2) {
            healthy_count += 1;
            if drift.is_some() {
                false_alarms += 1;
            }
        }
        table.row(vec![
            format!("{i}"),
            profile_name(i).to_string(),
            report
                .baseline_db()
                .map_or("-".into(), |b| format!("{b:.2} dB")),
            drift.map_or("-".into(), |e| format!("@{}", e.sample_index)),
            limit.map_or("-".into(), |e| format!("@{}", e.sample_index)),
            report
                .points()
                .last()
                .map_or("-".into(), |p| format!("{:.2} dB", p.nf_db)),
        ]);
    }
    println!("== Alarm timelines (sample indices; onset at {onset}) ==");
    print!("{table}");
    println!();

    if quick {
        if let Some(seed) = chaos_seed {
            // Fault-tolerance self-check: the quarantined set must be
            // exactly the injected schedule, every surviving timeline
            // must carry the clean sequential run's bits, and the
            // degraded fleet must be identical at 1, 2 and 8 workers.
            let clean = MonitorPlan::sequential().run_fleet(monitors, cost, |i| mission(i, cfg));
            let schedule = chaos_schedule(seed);
            let marked: Vec<usize> = schedule
                .scheduled_faults(monitors)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let faulted: Vec<usize> = fleet.faults().map(|f| f.monitor).collect();
            assert_eq!(faulted, marked, "quarantines must match the schedule");
            for (i, report) in fleet.reports() {
                let reference = clean.outcomes()[i]
                    .report()
                    .expect("clean fleet completes every monitor");
                assert_eq!(
                    report.alarm_signature(),
                    reference.alarm_signature(),
                    "monitor {i} timeline changed under chaos"
                );
                assert_eq!(
                    report.series_signature(),
                    reference.series_signature(),
                    "monitor {i} NF series changed under chaos"
                );
            }
            for other_workers in [1usize, 2, 8] {
                let other = MonitorPlan::workers(other_workers)
                    .task_policy(TaskPolicy::new().attempts(2))
                    .chaos(schedule)
                    .run_fleet(monitors, cost, |i| mission(i, cfg));
                assert_eq!(
                    other, fleet,
                    "degraded fleet differs between {workers} and {other_workers} workers"
                );
            }
            println!(
                "chaos self-check passed: quarantines match the schedule, survivors \
                 bit-identical, fleet identical at 1/2/8 workers"
            );
        } else {
            // 1-vs-N determinism: the fanned-out fleet must carry the
            // sequential run's exact bits.
            let sequential =
                MonitorPlan::sequential().run_fleet(monitors, cost, |i| mission(i, cfg));
            assert_eq!(
                fleet, sequential,
                "fleet differs between {workers} workers and the sequential run"
            );

            // Every drifting monitor must be drift-flagged after its
            // onset and BEFORE its NF crosses the hard limit.
            for (i, report) in fleet.reports() {
                if i.is_multiple_of(2) {
                    continue;
                }
                let drift = report
                    .first_event(AlarmKind::DriftAlarm)
                    .unwrap_or_else(|| panic!("drifting monitor {i} was never flagged"));
                assert!(
                    drift.sample_index > onset,
                    "monitor {i} flagged at {} before its onset {onset}",
                    drift.sample_index
                );
                let limit = report
                    .first_event(AlarmKind::LimitViolation)
                    .unwrap_or_else(|| panic!("drifting monitor {i} never crossed the limit"));
                assert!(
                    drift.sample_index < limit.sample_index,
                    "monitor {i}: drift alarm @{} must lead the limit crossing @{}",
                    drift.sample_index,
                    limit.sample_index
                );
            }

            // Healthy false alarms within a 3-sigma binomial envelope
            // of the 5% design budget.
            let n = healthy_count as f64;
            let bound = (0.05 * n + 3.0 * (0.05 * n * 0.95).sqrt()).max(1.0);
            assert!(
                (false_alarms as f64) <= bound,
                "{false_alarms} false alarms over {healthy_count} healthy monitors \
                 exceeds the binomial bound {bound:.1}"
            );
            println!(
                "self-checks passed: fleet bit-identical to the sequential run, every \
                 drift alarm leads its limit crossing, {false_alarms}/{healthy_count} \
                 healthy false alarms within budget"
            );
        }
    }

    let emissions: usize = fleet.reports().map(|(_, r)| r.points().len()).sum();
    println!(
        "\nthroughput: {} monitors ({} emissions) in {:.2} s = {:.1} emissions/s \
         at {workers} worker{}",
        fleet.completed(),
        emissions,
        elapsed,
        emissions as f64 / elapsed,
        if workers == 1 { "" } else { "s" },
    );
    if fleet.degraded() {
        println!(
            "fleet DEGRADED: {} of {} monitors lost to injected runtime faults; \
             surviving timelines are exact",
            fleet.faulted(),
            fleet.monitors(),
        );
    }
    println!(
        "\nchecks: healthy monitors complete warm-up, learn a baseline near the\n\
         expected NF and stay quiet; drifting monitors raise their CUSUM drift\n\
         alarm after the onset and before the hard-limit crossing — the trend\n\
         detector leads the failure it predicts. Every timeline is a pure\n\
         function of (seed, drift profile, window config): any worker count,\n\
         chunk size or memory budget reproduces it bit for bit."
    );
    Ok(())
}
