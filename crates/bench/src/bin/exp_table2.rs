//! Regenerates **Table 2** of the paper: noise power ratio evaluated by
//! three methods (time-domain mean square, PSD ratio, 1-bit PSD ratio
//! excluding the reference) for Th = 10000 K, Tc = 1000 K through an
//! F = 10 DUT, with derived F and NF.
//!
//! Pass `--quick` for a reduced record; `--no-exclude` adds an ablation
//! row with reference exclusion disabled.

use nfbist_bench::{quick_flag, record_sizes, Table2Scenario};
use nfbist_core::power_ratio;
use nfbist_core::yfactor::noise_factor_from_temperatures;
use nfbist_soc::report::Table;

fn main() {
    let quick = quick_flag();
    let ablate = std::env::args().any(|a| a == "--no-exclude");
    let (n, nfft) = record_sizes(quick);

    let scenario = Table2Scenario::build(n, 0.3, 2005).expect("scenario synthesis");
    println!(
        "Table 2. Noise power ratio evaluation for Th=10000K, Tc=1000K (true Y = {:.4})\n",
        scenario.true_ratio
    );

    let mut table = Table::new(vec!["Method", "Noise power ratio", "F", "NF(dB)"]);
    let mut push = |method: &str, y: f64| match noise_factor_from_temperatures(y, 10_000.0, 1_000.0)
    {
        Ok(f) => table.row(vec![
            method.to_string(),
            format!("{y:.4}"),
            format!("{:.2}", f.value()),
            format!("{:.2}", f.to_figure().db()),
        ]),
        Err(e) => table.row(vec![
            method.to_string(),
            format!("{y:.4}"),
            format!("({e})"),
            String::new(),
        ]),
    };

    let y_ms =
        power_ratio::mean_square_ratio(&scenario.hot, &scenario.cold).expect("mean square ratio");
    push("Mean square ratio", y_ms);

    let y_psd = power_ratio::psd_ratio(
        &scenario.hot,
        &scenario.cold,
        scenario.sample_rate,
        nfft,
        (500.0, 4_500.0),
    )
    .expect("psd ratio");
    push("PSD ratio", y_psd);

    let estimator = scenario.estimator(nfft).expect("estimator config");
    let one_bit = estimator
        .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
        .expect("one-bit estimate");
    push("1-bit PSD ratio excluding reference", one_bit.ratio);

    if ablate {
        let no_excl = estimator.with_reference_exclusion(false);
        let r = no_excl
            .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
            .expect("ablation estimate");
        push("1-bit PSD ratio INCLUDING reference (ablation)", r.ratio);
    }

    print!("{table}");
    let err = (one_bit.ratio - scenario.true_ratio).abs() / scenario.true_ratio * 100.0;
    println!(
        "\n1-bit power-ratio error vs truth: {err:.2} % (paper reports ~2.5 %)\n\
         paper rows: 3.4866/10.03/10.01, 3.4766/10.08/10.03, 3.5620/9.66/9.85"
    );
}
