//! Regenerates **Table 2** of the paper: noise power ratio evaluated by
//! three methods (time-domain mean square, PSD ratio, 1-bit PSD ratio
//! excluding the reference) for Th = 10000 K, Tc = 1000 K through an
//! F = 10 DUT, with derived F and NF.
//!
//! The three estimator rows (plus the optional ablation row) run as
//! independent batch cells on the `nfbist-runtime` engine over one
//! shared scenario (`--workers N`, default: all cores) — the heavy
//! Welch analyses of different rows proceed concurrently while the
//! printed table stays bit-identical to the sequential version.
//!
//! Pass `--quick` for a reduced record; `--no-exclude` adds an ablation
//! row with reference exclusion disabled.

use nfbist_bench::{quick_flag, record_sizes, workers_flag, Table2Scenario};
use nfbist_core::power_ratio;
use nfbist_core::yfactor::noise_factor_from_temperatures;
use nfbist_runtime::BatchPlan;
use nfbist_soc::report::Table;

fn main() {
    let quick = quick_flag();
    let workers = workers_flag();
    let ablate = std::env::args().any(|a| a == "--no-exclude");
    let (n, nfft) = record_sizes(quick);

    let scenario = Table2Scenario::build(n, 0.3, 2005).expect("scenario synthesis");
    println!(
        "Table 2. Noise power ratio evaluation for Th=10000K, Tc=1000K (true Y = {:.4})\n",
        scenario.true_ratio
    );

    // One batch cell per estimator row, all borrowing the shared
    // scenario; cell order fixes row order. Each row carries a
    // `headline` tag marking the 1-bit result the closing error line
    // reports, so reordering or inserting rows cannot silently point
    // that line at a different estimator.
    struct Row {
        method: String,
        y: f64,
        headline: bool,
    }
    type Cell<'a> = Box<dyn FnOnce() -> Row + Send + 'a>;
    let scenario_ref = &scenario;
    let mut cells: Vec<Cell> = vec![
        Box::new(move || Row {
            method: "Mean square ratio".to_string(),
            y: power_ratio::mean_square_ratio(&scenario_ref.hot, &scenario_ref.cold)
                .expect("mean square ratio"),
            headline: false,
        }),
        Box::new(move || Row {
            method: "PSD ratio".to_string(),
            y: power_ratio::psd_ratio(
                &scenario_ref.hot,
                &scenario_ref.cold,
                scenario_ref.sample_rate,
                nfft,
                (500.0, 4_500.0),
            )
            .expect("psd ratio"),
            headline: false,
        }),
        Box::new(move || {
            let estimator = scenario_ref.estimator(nfft).expect("estimator config");
            let one_bit = estimator
                .estimate_bits(&scenario_ref.bits_hot, &scenario_ref.bits_cold)
                .expect("one-bit estimate");
            Row {
                method: "1-bit PSD ratio excluding reference".to_string(),
                y: one_bit.ratio,
                headline: true,
            }
        }),
    ];
    if ablate {
        cells.push(Box::new(move || {
            let no_excl = scenario_ref
                .estimator(nfft)
                .expect("estimator config")
                .with_reference_exclusion(false);
            let r = no_excl
                .estimate_bits(&scenario_ref.bits_hot, &scenario_ref.bits_cold)
                .expect("ablation estimate");
            Row {
                method: "1-bit PSD ratio INCLUDING reference (ablation)".to_string(),
                y: r.ratio,
                headline: false,
            }
        }));
    }
    let rows = BatchPlan::new().workers(workers).run_cells(cells);
    let one_bit_ratio = rows
        .iter()
        .find(|r| r.headline)
        .map(|r| r.y)
        .expect("the 1-bit headline row is always present");

    let mut table = Table::new(vec!["Method", "Noise power ratio", "F", "NF(dB)"]);
    for Row { method, y, .. } in rows {
        match noise_factor_from_temperatures(y, 10_000.0, 1_000.0) {
            Ok(f) => table.row(vec![
                method,
                format!("{y:.4}"),
                format!("{:.2}", f.value()),
                format!("{:.2}", f.to_figure().db()),
            ]),
            Err(e) => table.row(vec![
                method,
                format!("{y:.4}"),
                format!("({e})"),
                String::new(),
            ]),
        }
    }

    print!("{table}");
    let err = (one_bit_ratio - scenario.true_ratio).abs() / scenario.true_ratio * 100.0;
    println!(
        "\n1-bit power-ratio error vs truth: {err:.2} % (paper reports ~2.5 %)\n\
         paper rows: 3.4866/10.03/10.01, 3.4766/10.08/10.03, 3.5620/9.66/9.85"
    );
}
