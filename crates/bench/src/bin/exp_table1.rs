//! Regenerates **Table 1** of the paper: reference values for noise
//! figure and noise factor.

use nfbist_core::figure::{NoiseFactor, TABLE_1};
use nfbist_soc::report::Table;

fn main() {
    println!("Table 1. Some reference values for noise figure and noise factor\n");
    let mut table = Table::new(vec!["NF(dB)", "F", "Example"]);
    for row in TABLE_1 {
        // Recompute NF from the factor through the library conversions
        // rather than echoing constants.
        let nf = NoiseFactor::new(row.factor)
            .expect("table factors are physical")
            .to_figure();
        table.row(vec![
            format!("{:.0}", nf.db().round()),
            format!("{:.0}", row.factor),
            row.example.to_string(),
        ]);
    }
    print!("{table}");
    println!("\npaper: 0/1, 3/2, 10/10 — reproduced exactly (3.0103 dB rounds to 3).");
}
