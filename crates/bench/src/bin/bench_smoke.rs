//! Quick perf smoke for the spectral and bit-domain hot paths,
//! recording the perf trajectory (the PR 3 speedups, the PR 5
//! streaming case, the PR 6 fleet lot screen, and the PR 7 SIMD
//! dispatch arms) as a JSON point.
//!
//! Each case records the `workers` it ran with and the SIMD `dispatch`
//! arm that was active, so a result is interpretable on its own — the
//! PR 6 wafer case's ~1.0x "speedup" turned out to be exactly such a
//! context artifact: on a 1-core host `available_parallelism()` hands
//! the fleet queue a single worker, so the case measures scheduler
//! overhead, not fan-out (see its baseline note).
//!
//! Five engine comparisons, each new-engine vs the baseline it
//! replaced or competes with (baselines are reconstructed from the
//! still-public primitives, so the comparison stays honest after the
//! estimators themselves moved on):
//!
//! 0. **Fleet lot screening** — the parallel, memory-gated
//!    `FleetPlan::screen_lot` vs the sequential die loop
//!    (`LotScreen::run`). Runs first, before anything materializes a
//!    big record, and proves the fleet engine's memory bound: after
//!    screening one lot, screening a lot with 4x the dies must grow
//!    peak RSS by a small fraction of the larger lot's *total*
//!    transient cost (asserted — the gate, not the lot size, sets the
//!    peak), and the budgeted parallel report must equal the
//!    sequential one bit for bit.
//! 1. **Streaming Welch at 2²⁴ samples** — chunked `StreamingWelch`
//!    vs the batch estimator over a materialized record. Proves
//!    bounded memory: the chunked pass's peak-RSS growth
//!    must stay a small fraction of the 128 MiB record (asserted), and
//!    the two estimates must agree bit for bit.
//! 2. **Welch at the paper's record class** — a 2²⁰-sample record
//!    through 4096-point Hann segments: workspace `estimate_into`
//!    (packed real FFT, one-sided spectrum) vs the PR 2 path (full
//!    `N`-point complex FFT per segment).
//! 3. **Single transform** — `RealFft::forward_into` vs
//!    `Fft::forward_real_into` at 4096 points.
//! 4. **One-bit autocorrelation** — XOR+popcount on the packed words
//!    vs expand-to-±1 + float lag products.
//!
//! Then five SIMD-dispatch comparisons (PR 7), one per ported hot
//! kernel, timing the best available arm against the same kernel
//! forced onto the scalar arm (`SimdArm::Scalar`) — on a scalar-only
//! host both sides run the same code and the speedup sits at ~1.0:
//!
//! 5. **Welch segment conditioning** — detrend subtract + window MAC.
//! 6. **Real-FFT butterflies** — a whole 4096-point `RealFft` forward.
//! 7. **Goertzel bank** — 8 simultaneous bins across SIMD lanes.
//! 8. **Bipolar expansion** — packed words to ±1.0 samples.
//! 9. **XOR+popcount lag** — the bit-domain autocorrelation kernel.
//!
//! And one decision-engine comparison (PR 9):
//!
//! 10. **Adaptive lot screening** — the sequential early-stopping
//!     engine (`LotScreen::adaptive`) vs the fixed schedule on the
//!     same lot at the same record cap: the wall-clock realization of
//!     the mean test-time reduction that `exp_coverage --adaptive`
//!     reports in samples.
//!
//! And one monitoring comparison (PR 10):
//!
//! 11. **Windowed NF emissions** — the monitoring hot loop's
//!     `SlidingWelch` (ring update + zero-alloc finalize at every
//!     emission) vs recomputing a batch Welch estimate over the
//!     retained span at every emission point; the two emission series
//!     are asserted bit-identical before timing.
//!
//! Usage: `bench_smoke [--json [PATH]] [--reps N] [--assert-simd]`.
//! With `--json` the results are written to `PATH` (default
//! `BENCH_pr10.json`); the JSON `cases` keys (`name`, `baseline`,
//! `baseline_ns`, `new_ns`, `speedup`, `workers`, `dispatch`) are
//! exactly the README perf-table columns, so the table regenerates
//! field for field. `--assert-simd` exits nonzero unless a vector arm
//! (AVX2/NEON) is actually dispatching — CI uses it to prove the
//! runner exercised the SIMD arms rather than silently falling back.

use std::time::Instant;

use nfbist_analog::bitstream::Bitstream;
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::WhiteNoise;
use nfbist_dsp::complex::Complex64;
use nfbist_dsp::correlation::{autocorrelation, Bias};
use nfbist_dsp::fft::{Fft, RealFft};
use nfbist_dsp::psd::{DspWorkspace, WelchConfig};
use nfbist_dsp::window::Window;

struct Case {
    name: &'static str,
    baseline: &'static str,
    baseline_ns: f64,
    new_ns: f64,
    /// Worker threads the "new" side ran with (1 for single-threaded
    /// kernels) — the PR 6 wafer case is only interpretable next to
    /// this number.
    workers: usize,
    /// SIMD arm the "new" side dispatched to (`avx2`/`neon`/`scalar`).
    dispatch: &'static str,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.new_ns
    }
}

/// Mean wall-clock nanoseconds per call over `reps` calls (after one
/// warm-up call).
fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

/// The PR 2 Welch inner loop: full `N`-point complex FFT per segment,
/// reconstructed from the public complex primitives with its scratch
/// state planned once up front (mirroring what `PsdPlan` cached then).
struct WelchComplexBaseline {
    fs: f64,
    coeffs: Vec<f64>,
    window_power: f64,
    fft: Fft,
    seg: Vec<f64>,
    spec: Vec<Complex64>,
}

impl WelchComplexBaseline {
    fn new(nfft: usize, fs: f64) -> Self {
        let coeffs = Window::Hann.coefficients(nfft);
        let window_power = coeffs.iter().map(|w| w * w).sum();
        WelchComplexBaseline {
            fs,
            coeffs,
            window_power,
            fft: Fft::new(nfft).expect("baseline plan"),
            seg: vec![0.0; nfft],
            spec: vec![Complex64::ZERO; nfft],
        }
    }

    fn estimate_into(&mut self, x: &[f64], out: &mut [f64]) {
        let nfft = self.seg.len();
        out.fill(0.0);
        let hop = nfft / 2;
        let mut segments = 0usize;
        let mut start = 0usize;
        while start + nfft <= x.len() {
            self.seg.copy_from_slice(&x[start..start + nfft]);
            for (v, w) in self.seg.iter_mut().zip(&self.coeffs) {
                *v *= w;
            }
            self.fft
                .forward_real_into(&self.seg, &mut self.spec)
                .expect("baseline fft");
            let base = 1.0 / (self.fs * self.window_power);
            for (k, (a, z)) in out.iter_mut().zip(self.spec.iter()).enumerate() {
                let mut d = z.norm_sqr() * base;
                if k != 0 && k != nfft / 2 {
                    d *= 2.0;
                }
                *a += d;
            }
            segments += 1;
            start += hop;
        }
        let inv = 1.0 / segments as f64;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }
}

/// Peak resident set size (`VmHWM`) in bytes, when the platform
/// exposes it (Linux `/proc`); `None` elsewhere — the RSS proof is
/// then skipped, the timing comparison still runs.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A small wafer-lot screening for the fleet case: defects over a
/// disc, 2^13-sample dies, the TL081 production screen with one
/// retest round of 2x escalation.
fn lot_screening(grid: usize) -> nfbist_soc::fleet::LotScreen {
    use nfbist_analog::circuits::NonInvertingAmplifier;
    use nfbist_analog::opamp::OpampModel;
    use nfbist_analog::units::Ohms;
    use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
    use nfbist_soc::coverage::FaultUniverse;
    use nfbist_soc::fleet::LotScreen;
    use nfbist_soc::screening::{RetestPolicy, Screen};
    use nfbist_soc::setup::BistSetup;

    let lot = Lot::new(
        WaferMap::disc(grid).expect("wafer"),
        ProcessVariation::default(),
        DefectModel::new()
            .background(0.08)
            .expect("background")
            .edge_gradient(0.20)
            .expect("edge"),
        20_050_307,
    )
    .expect("lot");
    let mut setup = BistSetup::quick(0);
    setup.samples = 1 << 13;
    setup.nfft = 1_024;
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut")
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .expect("expected NF");
    LotScreen::new(
        lot,
        setup,
        Screen::new(expected + 1.2, 3.0).expect("screen"),
        FaultUniverse::new()
            .excess_noise(&[2.0, 8.0])
            .expect("universe"),
    )
    .expect("lot screen")
    .retest(RetestPolicy::new(2, 2).expect("policy"))
}

/// The PR 9 comparison pair: the same defective lot at a 2^15-sample
/// cap, screened either by the fixed schedule (with one 2x retest
/// escalation round) or by the sequential early-stopping engine at
/// its operating point (limit +2.5 dB, 2-sigma guard, first
/// checkpoint at 2^12).
fn decision_lot_screening(grid: usize, adaptive: bool) -> nfbist_soc::fleet::LotScreen {
    use nfbist_analog::circuits::NonInvertingAmplifier;
    use nfbist_analog::opamp::OpampModel;
    use nfbist_analog::units::Ohms;
    use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
    use nfbist_soc::coverage::FaultUniverse;
    use nfbist_soc::fleet::LotScreen;
    use nfbist_soc::screening::{RetestPolicy, Screen, SequentialScreen};
    use nfbist_soc::setup::BistSetup;

    let lot = Lot::new(
        WaferMap::disc(grid).expect("wafer"),
        ProcessVariation::default(),
        DefectModel::new()
            .background(0.08)
            .expect("background")
            .edge_gradient(0.20)
            .expect("edge"),
        20_050_307,
    )
    .expect("lot");
    let mut setup = BistSetup::quick(0);
    setup.samples = 1 << 15;
    setup.nfft = 1_024;
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut")
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .expect("expected NF");
    let screen = Screen::new(expected + 2.5, 2.0).expect("screen");
    let screening = LotScreen::new(
        lot,
        setup,
        screen,
        FaultUniverse::new()
            .excess_noise(&[2.0, 8.0])
            .expect("universe"),
    )
    .expect("lot screen");
    if adaptive {
        screening.adaptive(
            SequentialScreen::new(screen, 0.05, 0.05)
                .expect("sequential rule")
                .min_samples(1 << 12),
        )
    } else {
        screening.retest(RetestPolicy::new(2, 2).expect("policy"))
    }
}

fn run(reps: usize) -> Vec<Case> {
    let mut cases = Vec::new();
    let fs = 20_000.0;

    // --- Case 0 (first, before anything materializes a large record
    // that would lift the VmHWM high-water mark and mask the proof):
    // fleet lot screening, parallel + memory-gated vs sequential.
    {
        use nfbist_runtime::fleet::FleetPlan;

        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let small = lot_screening(8); // ~50 dies
        let large = lot_screening(16); // ~4x the dies
        let die_cost = large.die_cost_bytes();
        let budget = 2 * die_cost;
        let plan = FleetPlan::workers(workers).memory_budget(budget);

        // RSS proof: VmHWM is monotone, so screen the small lot first
        // to establish the working-set peak, then the 4x lot. The
        // *additional* peak growth must stay a small fraction of the
        // larger lot's total transient cost — the gate (2 dies in
        // flight), not the lot size, sets the peak.
        let rss_before = peak_rss_bytes();
        let report_small = plan.screen_lot(&small).expect("small lot");
        let rss_small = peak_rss_bytes();
        let report_large = plan.screen_lot(&large).expect("large lot");
        let rss_large = peak_rss_bytes();
        let large_total = large.dies() * die_cost;
        if let (Some(mid), Some(after)) = (rss_small, rss_large) {
            let delta = after.saturating_sub(mid);
            assert!(
                delta < (large_total / 8) as u64,
                "screening 4x the dies grew peak RSS by {delta} B — not bounded \
                 (the lot's total transient cost is {large_total} B)"
            );
        }

        // Determinism: the budgeted parallel report must carry the
        // same bits as the sequential die loop.
        let sequential = small.run().expect("sequential run");
        assert_eq!(report_small, sequential, "parallel lot != sequential lot");

        let new_ns = time_ns(reps, || plan.screen_lot(&small).expect("fleet"));
        let baseline_ns = time_ns(reps, || small.run().expect("sequential"));
        match (rss_before, rss_small, rss_large) {
            (Some(b), Some(m), Some(a)) => println!(
                "fleet RSS proof: small lot ({} dies) peaked at {:.1} MiB, the 4x lot \
                 ({} dies, {:.0} MiB total transient) added {:.1} MiB on top",
                small.dies(),
                m.saturating_sub(b) as f64 / (1 << 20) as f64,
                large.dies(),
                large_total as f64 / (1 << 20) as f64,
                a.saturating_sub(m) as f64 / (1 << 20) as f64,
            ),
            _ => println!("fleet RSS proof: /proc not available, skipped"),
        }
        drop(report_large);
        cases.push(Case {
            name: "wafer_lot_grid8_screen",
            // PR 6 recorded ~1.0x here and PR 7 ran it down: it is not
            // WorkQueue steal overhead drowning the per-die cost — on a
            // 1-core host available_parallelism() is 1, so the fleet
            // queue gets a single worker and the case degenerates to
            // sequential-vs-sequential (gate never contended). The
            // workers field now records that context with the number.
            baseline: "sequential die loop (LotScreen::run); ~1.0x is expected when \
                       workers=1 (1-core host): the queue degenerates to the \
                       sequential loop and only scheduler overhead is measured",
            baseline_ns,
            new_ns,
            workers,
            dispatch: nfbist_dsp::simd::active_arm().name(),
        });
    }

    // --- Case 1: streaming vs batch Welch over a 2^24-sample record.
    //
    // The streaming pass generates the record chunk by chunk straight
    // into `StreamingWelch` — the 128 MiB record never exists — and
    // its peak-RSS delta must stay bounded by the chunk/segment
    // working set, not the record length. The batch pass then
    // materializes the same record; both estimates must agree to the
    // last bit.
    {
        use nfbist_dsp::psd::StreamingWelch;

        let samples = 1usize << 24;
        let nfft = 4_096;
        let chunk = 1usize << 16;
        let record_bytes = samples * std::mem::size_of::<f64>();
        let cfg = WelchConfig::new(nfft).expect("config").window(Window::Hann);

        // RSS proof: one full bounded-memory pass, record never built.
        let rss_before = peak_rss_bytes();
        let mut sw = StreamingWelch::new(cfg.clone(), fs).expect("streaming");
        let mut gen = WhiteNoise::new(1.0, 42).expect("noise");
        let mut fed = 0usize;
        while fed < samples {
            let m = chunk.min(samples - fed);
            sw.push(&gen.generate(m)).expect("push");
            fed += m;
        }
        let mut out_streamed = vec![0.0f64; nfft / 2 + 1];
        sw.finalize_into(&mut out_streamed).expect("finalize");
        let streaming_peak_delta = match (rss_before, peak_rss_bytes()) {
            (Some(b), Some(a)) => Some(a.saturating_sub(b)),
            _ => None,
        };
        if let Some(delta) = streaming_peak_delta {
            assert!(
                delta < (record_bytes / 8) as u64,
                "streaming pass peak memory grew by {delta} B — not bounded \
                 (record is {record_bytes} B)"
            );
        }

        // Same seed, materialized: the batch estimate must carry the
        // same bits (this is the acceptance check of the PR).
        let x = WhiteNoise::new(1.0, 42).expect("noise").generate(samples);
        let rss_after_record = peak_rss_bytes();
        let mut ws = DspWorkspace::new();
        let mut out_batch = vec![0.0f64; nfft / 2 + 1];
        cfg.estimate_into(&x, fs, &mut ws, &mut out_batch)
            .expect("batch estimate");
        for (s, b) in out_streamed.iter().zip(&out_batch) {
            assert_eq!(s.to_bits(), b.to_bits(), "streaming != batch");
        }

        // Throughput: the pure estimator loop over an existing record
        // (chunked pushes vs one batch call).
        let new_ns = time_ns(reps, || {
            sw.reset();
            for c in x.chunks(chunk) {
                sw.push(c).expect("push");
            }
            sw.finalize_into(&mut out_streamed).expect("finalize")
        });
        let baseline_ns = time_ns(reps, || {
            cfg.estimate_into(&x, fs, &mut ws, &mut out_batch)
                .expect("estimate")
        });
        match (streaming_peak_delta, rss_before, rss_after_record) {
            (Some(delta), Some(_), Some(after)) => println!(
                "streaming RSS proof: peak grew {:.1} MiB during the chunked pass \
                 (record itself is {:.0} MiB; peak after materializing it: {:.0} MiB)",
                delta as f64 / (1 << 20) as f64,
                record_bytes as f64 / (1 << 20) as f64,
                after as f64 / (1 << 20) as f64,
            ),
            _ => println!("streaming RSS proof: /proc not available, skipped"),
        }
        cases.push(Case {
            name: "welch_2pow24_streaming",
            baseline: "batch Welch over a materialized 2^24-sample record",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch: nfbist_dsp::simd::active_arm().name(),
        });
    }

    // --- Case 2: Welch over a 2^20-sample record, 4096-point segments.
    {
        let samples = 1 << 20;
        let nfft = 4_096;
        let x = WhiteNoise::new(1.0, 42).expect("noise").generate(samples);
        let cfg = WelchConfig::new(nfft).expect("config").window(Window::Hann);
        let mut ws = DspWorkspace::new();
        let mut out_new = vec![0.0f64; nfft / 2 + 1];
        cfg.estimate_into(&x, fs, &mut ws, &mut out_new)
            .expect("warm-up");

        let mut baseline = WelchComplexBaseline::new(nfft, fs);
        let mut out_base = vec![0.0f64; nfft / 2 + 1];
        baseline.estimate_into(&x, &mut out_base);
        // The two engines must agree on the estimate itself.
        for (a, b) in out_new.iter().zip(&out_base) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "engines disagree");
        }

        let new_ns = time_ns(reps, || {
            cfg.estimate_into(&x, fs, &mut ws, &mut out_new)
                .expect("estimate")
        });
        let baseline_ns = time_ns(reps, || baseline.estimate_into(&x, &mut out_base));
        cases.push(Case {
            name: "welch_2pow20_nfft4096",
            baseline: "full complex-FFT segments (PR 2 path)",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch: nfbist_dsp::simd::active_arm().name(),
        });
    }

    // --- Case 3: one 4096-point transform, real vs complex engine.
    {
        let n = 4_096;
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.37).sin() + 0.2).collect();
        let real_plan = RealFft::new(n).expect("real plan");
        let complex_plan = Fft::new(n).expect("complex plan");
        let mut one_sided = vec![Complex64::ZERO; real_plan.output_len()];
        let mut full = vec![Complex64::ZERO; n];
        let new_ns = time_ns(reps * 64, || {
            real_plan
                .forward_into(&x, &mut one_sided)
                .expect("real fft")
        });
        let baseline_ns = time_ns(reps * 64, || {
            complex_plan
                .forward_real_into(&x, &mut full)
                .expect("complex fft")
        });
        cases.push(Case {
            name: "fft_real_vs_complex_4096",
            baseline: "Fft::forward_real_into (full N-point complex)",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch: nfbist_dsp::simd::active_arm().name(),
        });
    }

    // --- Case 4: one-bit autocorrelation, popcount vs float.
    {
        let n = 1 << 20;
        let max_lag = 64;
        let x = WhiteNoise::new(1.0, 7).expect("noise").generate(n);
        let bits: Bitstream = OneBitDigitizer::ideal().digitize_sign(&x).expect("bits");
        let popcount = bits
            .autocorrelation(max_lag, Bias::Biased)
            .expect("popcount");
        let float_ref = autocorrelation(&bits.to_bipolar(), max_lag, Bias::Biased).expect("float");
        assert_eq!(popcount, float_ref, "popcount kernel must be bit-exact");

        let new_ns = time_ns(reps, || {
            bits.autocorrelation(max_lag, Bias::Biased)
                .expect("popcount")
        });
        let baseline_ns = time_ns(reps, || {
            autocorrelation(&bits.to_bipolar(), max_lag, Bias::Biased).expect("float")
        });
        cases.push(Case {
            name: "onebit_autocorr_2pow20_lag64",
            baseline: "expand to ±1 + float lag products",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch: nfbist_dsp::simd::active_arm().name(),
        });
    }

    cases.extend(simd_cases(reps));

    // --- Case 10: the PR 9 sequential decision engine — the same lot
    // at the same 2^15-sample cap, screened adaptively vs by the fixed
    // schedule. The "speedup" here is the wall-clock realization of
    // the mean test-time reduction exp_coverage reports in samples:
    // healthy dies stop as soon as two checkpoints confirm a
    // guard-band-clear estimate, gross rejects as soon as two confirm
    // an unmeasurable one.
    {
        use nfbist_runtime::fleet::FleetPlan;

        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let fixed = decision_lot_screening(8, false);
        let adaptive = decision_lot_screening(8, true);
        let plan = FleetPlan::workers(workers);

        // Determinism self-check before timing: the fanned-out
        // adaptive report (stopping points included) must carry the
        // sequential loop's exact bits.
        let parallel = plan.screen_lot(&adaptive).expect("adaptive lot");
        let sequential = adaptive.run().expect("sequential adaptive lot");
        assert_eq!(parallel, sequential, "adaptive lot != sequential loop");
        // And early stopping must actually bite on this lot.
        assert!(
            parallel.mean_test_samples() < adaptive.fixed_die_samples() as f64,
            "no die stopped early"
        );

        let new_ns = time_ns(reps, || plan.screen_lot(&adaptive).expect("adaptive"));
        let baseline_ns = time_ns(reps, || plan.screen_lot(&fixed).expect("fixed"));
        cases.push(Case {
            name: "adaptive_lot_grid8_2pow15cap",
            baseline: "fixed-schedule LotScreen at the same cap and FleetPlan; the \
                       speedup is the realized mean test-time reduction",
            baseline_ns,
            new_ns,
            workers,
            dispatch: nfbist_dsp::simd::active_arm().name(),
        });
    }

    // --- Case 11: the PR 10 monitoring hot loop — a windowed NF
    // estimate at every emission point of a long stream. The sliding
    // ring pays one segment FFT per hop and a zero-alloc fold per
    // emission; the baseline re-runs a batch Welch estimate over the
    // same retained span each time. Both emission series must carry
    // the same bits (that is the sliding window's whole contract).
    {
        use nfbist_dsp::psd::SlidingWelch;

        let nfft = 1_024;
        let window_segments = 8usize;
        let emissions = 256usize;
        let stride = nfft; // one emission per fresh segment's worth
        let total = stride * emissions;
        let x = WhiteNoise::new(1.0, 11).expect("noise").generate(total);
        let cfg = WelchConfig::new(nfft).expect("config").window(Window::Hann);
        let mut ws = DspWorkspace::new();
        let mut out_sliding = vec![0.0f64; nfft / 2 + 1];
        let mut out_batch = vec![0.0f64; nfft / 2 + 1];

        // Bit-identity proof across every emission point.
        let mut sw = SlidingWelch::new(cfg.clone(), fs, window_segments).expect("sliding");
        for chunk in x.chunks(stride) {
            sw.push(chunk).expect("push");
            sw.finalize_into(&mut out_sliding).expect("finalize");
            let (start, end) = sw.retained_range().expect("range");
            cfg.estimate_into(&x[start..end], fs, &mut ws, &mut out_batch)
                .expect("batch");
            for (s, b) in out_sliding.iter().zip(&out_batch) {
                assert_eq!(s.to_bits(), b.to_bits(), "windowed emission != batch");
            }
        }

        let new_ns = time_ns(reps, || {
            sw.reset();
            for chunk in x.chunks(stride) {
                sw.push(chunk).expect("push");
                sw.finalize_into(&mut out_sliding).expect("finalize");
            }
        });
        let baseline_ns = time_ns(reps, || {
            sw.reset();
            for chunk in x.chunks(stride) {
                sw.push(chunk).expect("push");
                let (start, end) = sw.retained_range().expect("range");
                cfg.estimate_into(&x[start..end], fs, &mut ws, &mut out_batch)
                    .expect("batch");
            }
        });
        cases.push(Case {
            name: "windowed_emissions_256x1024",
            baseline: "batch Welch recomputed over the retained span at every \
                       emission point",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch: nfbist_dsp::simd::active_arm().name(),
        });
    }

    cases
}

/// The PR 7 SIMD-vs-scalar rows: each ported kernel timed on the best
/// available arm against the same kernel pinned to the scalar arm.
/// Integer kernels are asserted bit-identical across the two arms
/// before timing; float kernels run under the default `Exact` policy,
/// which is bit-identical by construction (and proptest-enforced in
/// `crates/dsp/tests/proptest_simd.rs`).
fn simd_cases(reps: usize) -> Vec<Case> {
    use nfbist_dsp::simd::{self, SimdArm};

    let mut cases = Vec::new();
    let arm = simd::active_arm();
    let dispatch = arm.name();

    // --- Case 5: Welch segment conditioning (detrend + window MAC).
    {
        let n = 4_096;
        let seg: Vec<f64> = (0..n).map(|j| (j as f64 * 0.37).sin() + 0.2).collect();
        let coeffs = Window::Hann.coefficients(n);
        let mut buf = seg.clone();
        let new_ns = time_ns(reps * 256, || {
            buf.copy_from_slice(&seg);
            simd::subtract_scalar_with(arm, &mut buf, 0.2);
            simd::apply_window_with(arm, &mut buf, &coeffs);
        });
        let baseline_ns = time_ns(reps * 256, || {
            buf.copy_from_slice(&seg);
            simd::subtract_scalar_with(SimdArm::Scalar, &mut buf, 0.2);
            simd::apply_window_with(SimdArm::Scalar, &mut buf, &coeffs);
        });
        cases.push(Case {
            name: "simd_window_mac_4096",
            baseline: "scalar arm of the same kernel",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch,
        });
    }

    // --- Case 6: whole real FFT (butterfly + density feed), forced
    // per arm through the thread-local dispatch override.
    {
        let n = 4_096;
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.53).cos() - 0.1).collect();
        let plan = RealFft::new(n).expect("real plan");
        let mut out = vec![Complex64::ZERO; plan.output_len()];
        let new_ns = simd::with_forced_arm(arm, || {
            time_ns(reps * 64, || {
                plan.forward_into(&x, &mut out).expect("real fft")
            })
        });
        let baseline_ns = simd::with_forced_arm(SimdArm::Scalar, || {
            time_ns(reps * 64, || {
                plan.forward_into(&x, &mut out).expect("real fft")
            })
        });
        cases.push(Case {
            name: "simd_realfft_4096",
            baseline: "scalar arm of the same butterfly kernels",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch,
        });
    }

    // --- Case 7: Goertzel bank, 8 bins in lockstep over 2^16 samples.
    {
        let n = 1usize << 16;
        let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.11).sin()).collect();
        let coeffs: Vec<f64> = (1..=8).map(|k| 1.95 - 0.05 * k as f64).collect();
        let mut s1 = vec![0.0f64; 8];
        let mut s2 = vec![0.0f64; 8];
        let mut check = |a: SimdArm| {
            s1.fill(0.0);
            s2.fill(0.0);
            simd::goertzel_bank_run_with(a, &x, &coeffs, &mut s1, &mut s2);
            (s1.clone(), s2.clone())
        };
        assert_eq!(
            check(arm),
            check(SimdArm::Scalar),
            "goertzel bank arms disagree"
        );
        let new_ns = time_ns(reps * 16, || {
            s1.fill(0.0);
            s2.fill(0.0);
            simd::goertzel_bank_run_with(arm, &x, &coeffs, &mut s1, &mut s2);
        });
        let baseline_ns = time_ns(reps * 16, || {
            s1.fill(0.0);
            s2.fill(0.0);
            simd::goertzel_bank_run_with(SimdArm::Scalar, &x, &coeffs, &mut s1, &mut s2);
        });
        cases.push(Case {
            name: "simd_goertzel_bank8_2pow16",
            baseline: "scalar arm of the same bank recurrence",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch,
        });
    }

    // --- Case 8: bipolar expansion of 2^20 packed bits.
    {
        let bits = 1usize << 20;
        let words: Vec<u64> = (0..bits / 64)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut out = vec![0.0f64; bits];
        let mut reference = vec![0.0f64; bits];
        simd::expand_bipolar_with(arm, &words, &mut out);
        simd::expand_bipolar_with(SimdArm::Scalar, &words, &mut reference);
        assert!(
            out.iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "bipolar expansion arms disagree"
        );
        let new_ns = time_ns(reps * 16, || {
            simd::expand_bipolar_with(arm, &words, &mut out)
        });
        let baseline_ns = time_ns(reps * 16, || {
            simd::expand_bipolar_with(SimdArm::Scalar, &words, &mut out)
        });
        cases.push(Case {
            name: "simd_bipolar_expand_2pow20",
            baseline: "scalar arm of the same word-walk expansion",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch,
        });
    }

    // --- Case 9: XOR+popcount lag kernel, odd lags over 2^20 bits.
    {
        let bits = 1usize << 20;
        let words: Vec<u64> = (0..bits / 64)
            .map(|i| (i as u64 ^ 0xA5A5).wrapping_mul(0xD134_2543_DE82_EF95))
            .collect();
        let lags = [1usize, 7, 63, 64, 65, 129];
        let run = |a: SimdArm| -> usize {
            lags.iter()
                .map(|&lag| simd::xor_popcount_lag_with(a, &words, bits, lag))
                .sum()
        };
        assert_eq!(run(arm), run(SimdArm::Scalar), "xor-lag arms disagree");
        let new_ns = time_ns(reps * 16, || run(arm));
        let baseline_ns = time_ns(reps * 16, || run(SimdArm::Scalar));
        cases.push(Case {
            name: "simd_xor_lag_2pow20_oddlags",
            baseline: "scalar arm of the same shifted-XOR popcount",
            baseline_ns,
            new_ns,
            workers: 1,
            dispatch,
        });
    }

    cases
}

fn write_json(path: &str, cases: &[Case]) -> std::io::Result<()> {
    let mut body =
        String::from("{\n  \"pr\": 10,\n  \"bench\": \"bench_smoke\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"baseline_ns\": {:.0}, \"new_ns\": {:.0}, \"speedup\": {:.3}, \"workers\": {}, \"dispatch\": \"{}\"}}{}\n",
            c.name,
            c.baseline,
            c.baseline_ns,
            c.new_ns,
            c.speedup(),
            c.workers,
            c.dispatch,
            if i + 1 == cases.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut reps = 5usize;
    let mut assert_simd = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = match args.peek() {
                    Some(p) if !p.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_pr10.json".to_string(),
                };
                json_path = Some(path);
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--assert-simd" => assert_simd = true,
            other => {
                eprintln!(
                    "unknown argument {other}; usage: \
                     bench_smoke [--json [PATH]] [--reps N] [--assert-simd]"
                );
                std::process::exit(2);
            }
        }
    }

    let arm = nfbist_dsp::simd::active_arm();
    println!("simd dispatch arm: {arm}");
    if assert_simd && arm == nfbist_dsp::simd::SimdArm::Scalar {
        eprintln!(
            "--assert-simd: active dispatch arm is scalar (no AVX2/NEON, or \
             NFBIST_SIMD forced it off) — this run would not exercise the \
             vector kernels"
        );
        std::process::exit(1);
    }

    let cases = run(reps);
    println!(
        "{:<32} {:>14} {:>14} {:>9} {:>8} {:>9}",
        "case", "baseline", "new", "speedup", "workers", "dispatch"
    );
    for c in &cases {
        println!(
            "{:<32} {:>11.3} ms {:>11.3} ms {:>8.2}x {:>8} {:>9}",
            c.name,
            c.baseline_ns / 1e6,
            c.new_ns / 1e6,
            c.speedup(),
            c.workers,
            c.dispatch,
        );
    }
    if let Some(path) = json_path {
        write_json(&path, &cases).expect("write json");
        println!("wrote {path}");
    }
}
