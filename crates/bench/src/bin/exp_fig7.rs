//! Regenerates **Figure 7** of the paper: noise and reference
//! waveforms for hot (left) and cold (right) noise temperatures.
//!
//! Emits the first 400 samples of each digitizer input pair as CSV
//! series.

use nfbist_bench::{quick_flag, record_sizes, Series, Table2Scenario};

fn main() {
    let (n, _) = record_sizes(quick_flag());
    let scenario = Table2Scenario::build(n, 0.3, 7).expect("scenario synthesis");
    let show = 400.min(n);

    println!(
        "Figure 7. Noise and reference waveforms for hot (sigma={:.3}) and cold (sigma=1.0)\n",
        scenario.true_ratio.sqrt()
    );
    for (name, data) in [
        ("hot_noise", &scenario.hot),
        ("cold_noise", &scenario.cold),
        ("reference", &scenario.reference),
    ] {
        let mut s = Series::new(name);
        for (i, &v) in data.iter().take(show).enumerate() {
            s.push(i as f64 / scenario.sample_rate, v);
        }
        print!("{s}");
    }
    println!(
        "# shape check: reference level {:.2} stays below both noise RMS values, as in the paper",
        0.3
    );
}
