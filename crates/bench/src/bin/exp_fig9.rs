//! Regenerates **Figure 9** of the paper: power spectrum density after
//! the normalization procedure (zoom at the reference frequency).
//!
//! Before normalization the two bitstream noise floors nearly coincide;
//! after scaling the cold spectrum so the reference lines match, the
//! floors separate by the noise power ratio Y.

use nfbist_bench::{quick_flag, record_sizes, Series, Table2Scenario};
use nfbist_core::normalize::{normalize_to_reference, ReferenceTracker};
use nfbist_dsp::psd::WelchConfig;

fn main() {
    let (n, nfft) = record_sizes(quick_flag());
    let scenario = Table2Scenario::build(n, 0.3, 9).expect("scenario synthesis");

    let welch = WelchConfig::new(nfft).expect("welch config");
    let psd_hot = welch
        .estimate(&scenario.bits_hot.to_bipolar(), scenario.sample_rate)
        .expect("hot psd");
    let psd_cold = welch
        .estimate(&scenario.bits_cold.to_bipolar(), scenario.sample_rate)
        .expect("cold psd");

    let tracker =
        ReferenceTracker::new(scenario.reference_frequency, 10.0, 3).expect("tracker config");
    let (psd_cold_norm, norm) =
        normalize_to_reference(&psd_hot, &psd_cold, &tracker).expect("normalization");

    println!(
        "Figure 9. PSD after normalization (zoom at {} Hz); scale factor {:.4}\n",
        scenario.reference_frequency, norm.scale
    );
    // Zoom: ±40 Hz around the reference.
    let zoom = |name: &str, psd: &nfbist_dsp::spectrum::Spectrum| {
        let mut s = Series::new(name);
        let lo = psd
            .bin_of(scenario.reference_frequency - 40.0)
            .expect("zoom lo");
        let hi = psd
            .bin_of(scenario.reference_frequency + 40.0)
            .expect("zoom hi");
        for k in lo..=hi {
            s.push(
                psd.bin_frequency(k),
                10.0 * psd.density()[k].max(1e-30).log10(),
            );
        }
        s
    };
    print!("{}", zoom("hot_psd_db", &psd_hot));
    print!("{}", zoom("cold_psd_db_before_norm", &psd_cold));
    print!("{}", zoom("cold_psd_db_after_norm", &psd_cold_norm));

    let floor = |psd: &nfbist_dsp::spectrum::Spectrum| {
        psd.band_power(1_000.0, 4_000.0).expect("floor band") / 3_000.0
    };
    let before = floor(&psd_hot) / floor(&psd_cold);
    let after = floor(&psd_hot) / floor(&psd_cold_norm);
    println!(
        "# noise floor ratio hot/cold: before normalization {before:.3} (≈1), after {after:.3} (≈Y={:.3})",
        scenario.true_ratio
    );
}
