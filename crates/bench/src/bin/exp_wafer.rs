//! Beyond the paper: fleet-scale wafer/lot screening with the 1-bit
//! NF BIST — the production line the paper's per-DUT economics scale
//! up to.
//!
//! A synthesized lot (process variation plus spatially correlated
//! defect clusters over a wafer disc) is screened die by die through
//! the full session → guard-banded screen → retest-escalation flow.
//! Die jobs are fanned across the fleet engine's sharded work queue
//! (`--workers N`, default: all cores) and admitted through a global
//! memory gate (`--budget BYTES`, default: four dies' worth), whose
//! backpressure bounds peak transient memory independent of lot size.
//! Every die outcome is a pure function of `derive_seed(lot_seed,
//! die_index)`, so the report — wafer map and every rolling statistic
//! — is **bit-identical for any worker count and budget**
//! (self-checked against a sequential run in `--quick` mode).
//!
//! `--chaos SEED` arms seeded runtime fault injection (worker panics
//! and allocation failures, two faulty attempts against a two-attempt
//! retry policy): marked dies are quarantined into a *degraded* report
//! while every surviving die keeps the clean run's exact bits — the
//! fault-tolerance contract, self-checked across 1/2/8 workers in
//! `--quick` mode.
//!
//! Usage: `exp_wafer [--quick] [--dies N] [--workers N]
//! [--budget BYTES] [--chaos SEED]`. Without `--quick` the lot holds
//! 1000+ dies.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
use nfbist_bench::{budget_flag, chaos_flag, dies_flag, quick_flag, workers_flag};
use nfbist_runtime::chaos::{install_quiet_panic_hook, ChaosConfig};
use nfbist_runtime::fleet::FleetPlan;
use nfbist_runtime::supervisor::TaskPolicy;
use nfbist_soc::coverage::FaultUniverse;
use nfbist_soc::fleet::{LotReport, LotScreen, LotStatus};
use nfbist_soc::report::Table;
use nfbist_soc::screening::{RetestPolicy, Screen};
use nfbist_soc::setup::BistSetup;
use std::error::Error;
use std::time::Instant;

/// Smallest disc grid whose die count reaches `target` (disc dies grow
/// as roughly π/4 · grid², so this rounds the lot up, never down).
fn grid_for_dies(target: usize) -> Result<usize, Box<dyn Error>> {
    let mut grid = 3usize;
    while WaferMap::disc(grid)?.dies() < target {
        grid += 1;
    }
    Ok(grid)
}

/// Peak resident set size (`VmHWM`) in bytes where `/proc` exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn build_screening(
    dies: usize,
    samples: usize,
    nfft: usize,
    quick: bool,
) -> Result<LotScreen, Box<dyn Error>> {
    let lot_seed = 20_050_307; // DATE'05 desk copy
    let lot = Lot::new(
        WaferMap::disc(grid_for_dies(dies)?)?,
        ProcessVariation::default(),
        DefectModel::new()
            .background(0.06)?
            .edge_gradient(0.20)?
            .seeded_clusters(if quick { 1 } else { 3 }, 0.25, 0.7, lot_seed)?,
        lot_seed,
    )?;

    let mut setup = BistSetup::quick(0); // seed overridden by the lot
    setup.samples = samples;
    setup.nfft = nfft;

    // Screen at the healthy TL081 expectation + 1.2 dB margin, 3-sigma
    // guard band: healthy dies pass, 2x-noise defects fail with finite
    // NF, 8x-noise defects swamp both source states and go gross, and
    // process variation parks marginal dies in the retest band.
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))?
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)?;
    Ok(LotScreen::new(
        lot,
        setup,
        Screen::new(expected + 1.2, 3.0)?,
        FaultUniverse::new().excess_noise(&[2.0, 8.0])?,
    )?
    .retest(RetestPolicy::new(2, 2)?))
}

/// The rolling-yield dashboard: the in-line yield trace a production
/// monitor would chart, sampled at (up to) eight checkpoints.
fn rolling_table(report: &LotReport) -> Table {
    let series = report.rolling_yield();
    let mut table = Table::new(vec!["Dies screened", "Rolling yield"]);
    let checkpoints = 8.min(series.len());
    for k in 1..=checkpoints {
        let idx = k * series.len() / checkpoints - 1;
        table.row(vec![
            format!("{}", idx + 1),
            format!("{:.1} %", 100.0 * series[idx]),
        ]);
    }
    table
}

/// The experiment's chaos schedule for `--chaos SEED`: panics and
/// allocation failures only (stalls need a wall-clock deadline and
/// would dominate the run time), faulting on both attempts of the
/// two-attempt retry policy so every marked die quarantines.
fn chaos_schedule(seed: u64) -> ChaosConfig {
    ChaosConfig::new(seed)
        .stall_rate_per_mille(0)
        .faulty_attempts(2)
}

fn main() -> Result<(), Box<dyn Error>> {
    let quick = quick_flag();
    let workers = workers_flag();
    let chaos_seed = chaos_flag();
    let dies = dies_flag(if quick { 100 } else { 1_000 });
    let (samples, nfft) = if quick {
        (1 << 13, 1_024)
    } else {
        (1 << 15, 2_048)
    };

    let screening = build_screening(dies, samples, nfft, quick)?;
    let die_cost = screening.die_cost_bytes();
    let budget = budget_flag().unwrap_or(4 * die_cost);
    let mut plan = FleetPlan::workers(workers).memory_budget(budget);
    if let Some(seed) = chaos_seed {
        install_quiet_panic_hook();
        plan = plan
            .task_policy(TaskPolicy::new().attempts(2))
            .chaos(chaos_schedule(seed));
    }

    println!(
        "Fleet lot screen: {} dies on a grid-{} wafer disc, ~{:.0} expected defects\n\
         limit {:.2} dB, 3-sigma guard, retest x2 up to 2 rounds, 2^{} samples/die\n\
         {workers} worker{}, global budget {:.1} MiB ({:.1} dies' transient cost of {:.1} MiB each)",
        screening.dies(),
        screening.lot().wafer().grid(),
        screening.lot().expected_defects(),
        screening.screen().limit_db(),
        samples.trailing_zeros(),
        if workers == 1 { "" } else { "s" },
        budget as f64 / (1 << 20) as f64,
        budget as f64 / die_cost as f64,
        die_cost as f64 / (1 << 20) as f64,
    );
    if let Some(seed) = chaos_seed {
        let marked = chaos_schedule(seed)
            .scheduled_faults(screening.dies())
            .len();
        println!(
            "chaos armed: seed {seed}, {marked} dies marked for runtime faults (2-attempt policy)"
        );
    }
    println!();

    let start = Instant::now();
    let report = plan.screen_lot(&screening)?;
    let elapsed = start.elapsed().as_secs_f64();

    if quick {
        if let Some(seed) = chaos_seed {
            // Fault-tolerance self-check: the degraded die set must be
            // exactly the injected schedule, every surviving die must
            // carry the clean sequential run's bits, and the whole
            // degraded report must be identical at 1, 2 and 8 workers.
            let clean = FleetPlan::sequential().screen_lot(&screening)?;
            let schedule = chaos_schedule(seed);
            let marked: Vec<usize> = schedule
                .scheduled_faults(screening.dies())
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let faulted: Vec<usize> = report.faults().map(|f| f.die).collect();
            assert_eq!(faulted, marked, "degraded dies must match the schedule");
            for record in report.records() {
                if let Some(outcome) = record.outcome() {
                    let reference = clean
                        .outcomes()
                        .find(|o| o.die == outcome.die)
                        .expect("clean run screens every die");
                    assert_eq!(
                        outcome.nf_db.to_bits(),
                        reference.nf_db.to_bits(),
                        "die {} bits changed under chaos",
                        outcome.die
                    );
                }
            }
            for other_workers in [1usize, 2, 8] {
                let other = FleetPlan::workers(other_workers)
                    .memory_budget(budget)
                    .task_policy(TaskPolicy::new().attempts(2))
                    .chaos(schedule)
                    .screen_lot(&screening)?;
                assert_eq!(
                    other, report,
                    "degraded report differs between {workers} and {other_workers} workers"
                );
            }
        } else {
            // Acceptance self-check: the budgeted N-worker report must
            // be bit-identical to the sequential, unbudgeted reference.
            let sequential = FleetPlan::sequential().screen_lot(&screening)?;
            assert_eq!(
                report, sequential,
                "lot report differs between {workers} workers and 1 worker"
            );
        }
    }

    println!("== Wafer map (o pass, x fail, G gross reject, ? unresolved, ! runtime fault) ==");
    println!("{}", report.render_on(screening.lot().wafer())?);

    println!("== Rolling yield ==");
    print!("{}", rolling_table(&report));
    println!();

    println!("== Lot summary ==");
    print!("{report}");

    if report.status() == LotStatus::Degraded {
        println!(
            "\nlot DEGRADED: {} of {} dies lost to injected runtime faults \
             (quarantined after 2 attempts); surviving dies are exact",
            report.faulted(),
            report.dies(),
        );
    }

    println!(
        "\nthroughput: {} dies in {:.2} s = {:.1} dies/s at {workers} worker{}",
        report.dies(),
        elapsed,
        report.dies() as f64 / elapsed,
        if workers == 1 { "" } else { "s" },
    );
    if let Some(rss) = peak_rss_bytes() {
        println!(
            "peak RSS {:.0} MiB (gate admits at most {:.1} concurrent dies)",
            rss as f64 / (1 << 20) as f64,
            budget as f64 / die_cost as f64,
        );
    }
    if quick {
        if chaos_seed.is_some() {
            println!(
                "chaos self-check passed: degraded set matches the schedule, survivors \
                 bit-identical, report identical at 1/2/8 workers"
            );
        } else {
            println!(
                "worker-determinism self-check passed: report bit-identical at 1 and {workers} worker(s)"
            );
        }
    }
    println!(
        "\nchecks: the map shows the synthesized spatial structure — defects\n\
         concentrate toward the wafer edge (the gradient term) and in the seeded\n\
         cluster blobs; 8x-noise defects land as gross rejects (unmeasurable Y),\n\
         2x defects as finite-NF fails. The rolling yield settles as the lot\n\
         drains, and the whole report is a pure function of the lot seed: any\n\
         worker count, budget, or admission ordering reproduces it bit for bit\n\
         — and under --chaos, injected runtime faults only ever remove dies\n\
         from the report, never change a surviving die's bits."
    );
    Ok(())
}
