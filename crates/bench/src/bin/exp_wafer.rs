//! Beyond the paper: fleet-scale wafer/lot screening with the 1-bit
//! NF BIST — the production line the paper's per-DUT economics scale
//! up to.
//!
//! A synthesized lot (process variation plus spatially correlated
//! defect clusters over a wafer disc) is screened die by die through
//! the full session → guard-banded screen → retest-escalation flow.
//! Die jobs are fanned across the fleet engine's sharded work queue
//! (`--workers N`, default: all cores) and admitted through a global
//! memory gate (`--budget BYTES`, default: four dies' worth), whose
//! backpressure bounds peak transient memory independent of lot size.
//! Every die outcome is a pure function of `derive_seed(lot_seed,
//! die_index)`, so the report — wafer map and every rolling statistic
//! — is **bit-identical for any worker count and budget**
//! (self-checked against a sequential run in `--quick` mode).
//!
//! Usage: `exp_wafer [--quick] [--dies N] [--workers N] [--budget BYTES]`.
//! Without `--quick` the lot holds 1000+ dies.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_analog::wafer::{DefectModel, Lot, ProcessVariation, WaferMap};
use nfbist_bench::{budget_flag, dies_flag, quick_flag, workers_flag};
use nfbist_runtime::fleet::FleetPlan;
use nfbist_soc::coverage::FaultUniverse;
use nfbist_soc::fleet::{LotReport, LotScreen};
use nfbist_soc::report::Table;
use nfbist_soc::screening::{RetestPolicy, Screen};
use nfbist_soc::setup::BistSetup;
use std::time::Instant;

/// Smallest disc grid whose die count reaches `target` (disc dies grow
/// as roughly π/4 · grid², so this rounds the lot up, never down).
fn grid_for_dies(target: usize) -> usize {
    let mut grid = 3usize;
    while WaferMap::disc(grid).expect("disc").dies() < target {
        grid += 1;
    }
    grid
}

/// Peak resident set size (`VmHWM`) in bytes where `/proc` exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn build_screening(dies: usize, samples: usize, nfft: usize, quick: bool) -> LotScreen {
    let lot_seed = 20_050_307; // DATE'05 desk copy
    let lot = Lot::new(
        WaferMap::disc(grid_for_dies(dies)).expect("wafer"),
        ProcessVariation::default(),
        DefectModel::new()
            .background(0.06)
            .expect("background")
            .edge_gradient(0.20)
            .expect("edge gradient")
            .seeded_clusters(if quick { 1 } else { 3 }, 0.25, 0.7, lot_seed)
            .expect("clusters"),
        lot_seed,
    )
    .expect("lot");

    let mut setup = BistSetup::quick(0); // seed overridden by the lot
    setup.samples = samples;
    setup.nfft = nfft;

    // Screen at the healthy TL081 expectation + 1.2 dB margin, 3-sigma
    // guard band: healthy dies pass, 2x-noise defects fail with finite
    // NF, 8x-noise defects swamp both source states and go gross, and
    // process variation parks marginal dies in the retest band.
    let expected =
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut")
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .expect("expected NF");
    LotScreen::new(
        lot,
        setup,
        Screen::new(expected + 1.2, 3.0).expect("screen"),
        FaultUniverse::new()
            .excess_noise(&[2.0, 8.0])
            .expect("universe"),
    )
    .expect("lot screen")
    .retest(RetestPolicy::new(2, 2).expect("policy"))
}

/// The rolling-yield dashboard: the in-line yield trace a production
/// monitor would chart, sampled at (up to) eight checkpoints.
fn rolling_table(report: &LotReport) -> Table {
    let series = report.rolling_yield();
    let mut table = Table::new(vec!["Dies screened", "Rolling yield"]);
    let checkpoints = 8.min(series.len());
    for k in 1..=checkpoints {
        let idx = k * series.len() / checkpoints - 1;
        table.row(vec![
            format!("{}", idx + 1),
            format!("{:.1} %", 100.0 * series[idx]),
        ]);
    }
    table
}

fn main() {
    let quick = quick_flag();
    let workers = workers_flag();
    let dies = dies_flag(if quick { 100 } else { 1_000 });
    let (samples, nfft) = if quick {
        (1 << 13, 1_024)
    } else {
        (1 << 15, 2_048)
    };

    let screening = build_screening(dies, samples, nfft, quick);
    let die_cost = screening.die_cost_bytes();
    let budget = budget_flag().unwrap_or(4 * die_cost);
    let plan = FleetPlan::workers(workers).memory_budget(budget);

    println!(
        "Fleet lot screen: {} dies on a grid-{} wafer disc, ~{:.0} expected defects\n\
         limit {:.2} dB, 3-sigma guard, retest x2 up to 2 rounds, 2^{} samples/die\n\
         {workers} worker{}, global budget {:.1} MiB ({:.1} dies' transient cost of {:.1} MiB each)\n",
        screening.dies(),
        screening.lot().wafer().grid(),
        screening.lot().expected_defects(),
        screening.screen().limit_db(),
        samples.trailing_zeros(),
        if workers == 1 { "" } else { "s" },
        budget as f64 / (1 << 20) as f64,
        budget as f64 / die_cost as f64,
        die_cost as f64 / (1 << 20) as f64,
    );

    let start = Instant::now();
    let report = plan.screen_lot(&screening).expect("lot screen");
    let elapsed = start.elapsed().as_secs_f64();

    if quick {
        // Acceptance self-check: the budgeted N-worker report must be
        // bit-identical to the sequential, unbudgeted reference.
        let sequential = FleetPlan::sequential()
            .screen_lot(&screening)
            .expect("sequential screen");
        assert_eq!(
            report, sequential,
            "lot report differs between {workers} workers and 1 worker"
        );
    }

    println!("== Wafer map (o pass, x fail, G gross reject, ? unresolved) ==");
    println!(
        "{}",
        report
            .render_on(screening.lot().wafer())
            .expect("wafer map")
    );

    println!("== Rolling yield ==");
    print!("{}", rolling_table(&report));
    println!();

    println!("== Lot summary ==");
    print!("{report}");

    println!(
        "\nthroughput: {} dies in {:.2} s = {:.1} dies/s at {workers} worker{}",
        report.dies(),
        elapsed,
        report.dies() as f64 / elapsed,
        if workers == 1 { "" } else { "s" },
    );
    if let Some(rss) = peak_rss_bytes() {
        println!(
            "peak RSS {:.0} MiB (gate admits at most {:.1} concurrent dies)",
            rss as f64 / (1 << 20) as f64,
            budget as f64 / die_cost as f64,
        );
    }
    if quick {
        println!(
            "worker-determinism self-check passed: report bit-identical at 1 and {workers} worker(s)"
        );
    }
    println!(
        "\nchecks: the map shows the synthesized spatial structure — defects\n\
         concentrate toward the wafer edge (the gradient term) and in the seeded\n\
         cluster blobs; 8x-noise defects land as gross rejects (unmeasurable Y),\n\
         2x defects as finite-NF fails. The rolling yield settles as the lot\n\
         drains, and the whole report is a pure function of the lot seed: any\n\
         worker count, budget, or admission ordering reproduces it bit for bit."
    );
}
