//! Regenerates **Table 3** of the paper: noise figure results for the
//! four op-amps (OP27, OP07, TL081, CA3140) in the prototype setup of
//! Fig. 11 — non-inverting DUT (Av = 101), Th = 2900 K, T0 = 290 K,
//! 3 kHz sine reference, 1 kHz noise bandwidth, 10⁶ samples,
//! 10⁴-point FFT.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_bench::quick_flag;
use nfbist_soc::report::Table;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn main() {
    let quick = quick_flag();
    println!("Table 3. Noise figure results for T0=290K and Th=2900K\n");

    // The paper's expected column, for side-by-side comparison.
    let paper_expected = [3.7, 6.5, 10.1, 16.2];
    let paper_measured = [3.69, 4.841, 9.698, 14.02];

    let mut table = Table::new(vec![
        "Opamp",
        "Expected (ours)",
        "Measured (ours)",
        "Expected (paper)",
        "Measured (paper)",
    ]);
    for (i, opamp) in OpampModel::paper_set().into_iter().enumerate() {
        let name = opamp.name().to_string();
        let dut = NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut construction");
        let setup = if quick {
            BistSetup::quick(2005 + i as u64)
        } else {
            BistSetup::paper_prototype(2005 + i as u64)
        };
        let m = MeasurementSession::new(setup)
            .expect("session construction")
            .dut(dut)
            .run()
            .expect("measurement");
        table.row(vec![
            name,
            format!("{:.2}", m.expected_nf_db),
            format!("{:.2}", m.nf.figure.db()),
            format!("{:.1}", paper_expected[i]),
            format!("{:.2}", paper_measured[i]),
        ]);
    }
    print!("{table}");
    println!(
        "\nshape criteria: ranking OP27 < OP07 < TL081 < CA3140 preserved;\n\
         each measured value within ~2 dB of its expectation (the paper's own\n\
         maximum absolute error). Expected values differ from the paper's\n\
         because they derive from our datasheet models and Rs = 2 kOhm (the\n\
         paper does not report its source resistance); see EXPERIMENTS.md."
    );
}
