//! Regenerates **Table 3** of the paper: noise figure results for the
//! four op-amps (OP27, OP07, TL081, CA3140) in the prototype setup of
//! Fig. 11 — non-inverting DUT (Av = 101), Th = 2900 K, T0 = 290 K,
//! 3 kHz sine reference, 1 kHz noise bandwidth, 10⁶ samples,
//! 10⁴-point FFT.
//!
//! The four op-amp rows are independent sweep cells, fanned out across
//! worker threads by the `nfbist-runtime` batch engine (`--workers N`,
//! default: all cores); each cell is seeded by its row index, so the
//! table is bit-identical for any worker count.

use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_bench::{quick_flag, workers_flag};
use nfbist_runtime::BatchPlan;
use nfbist_soc::report::Table;
use nfbist_soc::session::{Measurement, MeasurementSession};
use nfbist_soc::setup::BistSetup;
use nfbist_soc::SocError;

fn measure_row(opamp: OpampModel, index: usize, quick: bool) -> Result<Measurement, SocError> {
    let dut = NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0))?;
    let setup = if quick {
        BistSetup::quick(2005 + index as u64)
    } else {
        BistSetup::paper_prototype(2005 + index as u64)
    };
    MeasurementSession::new(setup)?.dut(dut).run()
}

fn main() {
    let quick = quick_flag();
    let workers = workers_flag();
    println!("Table 3. Noise figure results for T0=290K and Th=2900K\n");

    // The paper's expected column, for side-by-side comparison.
    let paper_expected = [3.7, 6.5, 10.1, 16.2];
    let paper_measured = [3.69, 4.841, 9.698, 14.02];

    // One batch cell per op-amp row; cell order is preserved by the
    // executor, so the table rows come back in the paper's order.
    let cells: Vec<_> = OpampModel::paper_set()
        .into_iter()
        .enumerate()
        .map(|(i, opamp)| {
            move || {
                let name = opamp.name().to_string();
                let m = measure_row(opamp, i, quick).expect("measurement");
                (name, m)
            }
        })
        .collect();
    let rows = BatchPlan::new().workers(workers).run_cells(cells);

    let mut table = Table::new(vec![
        "Opamp",
        "Expected (ours)",
        "Measured (ours)",
        "Expected (paper)",
        "Measured (paper)",
    ]);
    for (i, (name, m)) in rows.into_iter().enumerate() {
        table.row(vec![
            name,
            format!("{:.2}", m.expected_nf_db),
            format!("{:.2}", m.nf.figure.db()),
            format!("{:.1}", paper_expected[i]),
            format!("{:.2}", paper_measured[i]),
        ]);
    }
    print!("{table}");
    println!(
        "\nshape criteria: ranking OP27 < OP07 < TL081 < CA3140 preserved;\n\
         each measured value within ~2 dB of its expectation (the paper's own\n\
         maximum absolute error). Expected values differ from the paper's\n\
         because they derive from our datasheet models and Rs = 2 kOhm (the\n\
         paper does not report its source resistance); see EXPERIMENTS.md."
    );
}
