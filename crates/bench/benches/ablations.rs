//! Criterion bench: ablations of the 1-bit estimator's design choices —
//! reference exclusion, analysis window, and acquisition length.
//! The timing numbers quantify cost; the printed accuracy notes (once
//! per process, via eprintln) quantify benefit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nfbist_bench::Table2Scenario;
use nfbist_dsp::window::Window;

/// Minimal scenario record for the exclusion ablation.
struct ExclusionScenario {
    bits_hot: nfbist_analog::bitstream::Bitstream,
    bits_cold: nfbist_analog::bitstream::Bitstream,
    true_ratio: f64,
}

fn bench_exclusion(c: &mut Criterion) {
    // Exclusion only matters when the reference (or its harmonics)
    // lands inside the noise band: put a 700 Hz reference in the
    // 100-1500 Hz band, as the power_ratio unit tests do.
    use nfbist_analog::converter::OneBitDigitizer;
    use nfbist_analog::noise::WhiteNoise;
    use nfbist_analog::source::{SineSource, Waveform};
    use nfbist_core::power_ratio::OneBitPowerRatio;

    let n = 1 << 18;
    let fs = 20_000.0;
    let true_ratio: f64 = 3.4931;
    let hot = WhiteNoise::new(true_ratio.sqrt(), 7)
        .expect("noise")
        .generate(n);
    let cold = WhiteNoise::new(1.0, 8).expect("noise").generate(n);
    let reference = SineSource::new(700.0, 0.3)
        .expect("sine")
        .generate(n, fs)
        .expect("generate");
    let d = OneBitDigitizer::ideal();
    let bits_hot = d.digitize(&hot, &reference).expect("digitize");
    let bits_cold = d.digitize(&cold, &reference).expect("digitize");
    let scenario_true_ratio = true_ratio;
    let scenario = ExclusionScenario {
        bits_hot,
        bits_cold,
        true_ratio: scenario_true_ratio,
    };
    let with = OneBitPowerRatio::new(fs, 2_048, 700.0, (100.0, 1_500.0)).expect("estimator");
    let without = with.clone().with_reference_exclusion(false);

    let err = |r: f64| (r - scenario.true_ratio).abs() / scenario.true_ratio * 100.0;
    let r_with = with
        .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
        .expect("estimate")
        .ratio;
    let r_without = without
        .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
        .expect("estimate")
        .ratio;
    eprintln!(
        "# ablation/exclusion: error with = {:.1} %, without = {:.1} %",
        err(r_with),
        err(r_without)
    );

    let mut group = c.benchmark_group("ablation_exclusion");
    group.bench_function("with_exclusion", |b| {
        b.iter(|| {
            with.estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
                .expect("est")
        })
    });
    group.bench_function("without_exclusion", |b| {
        b.iter(|| {
            without
                .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
                .expect("est")
        })
    });
    group.finish();
}

fn bench_windows(c: &mut Criterion) {
    let scenario = Table2Scenario::build_sine_reference(1 << 18, 0.3, 8).expect("scenario");
    let mut group = c.benchmark_group("ablation_window");
    for (name, window) in [
        ("hann", Window::Hann),
        ("rectangular", Window::Rectangular),
        ("flattop", Window::FlatTop),
    ] {
        let est = scenario
            .estimator(2_048)
            .expect("estimator")
            .with_window(window);
        let r = est
            .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
            .expect("estimate")
            .ratio;
        eprintln!(
            "# ablation/window {name}: error {:.1} %",
            (r - scenario.true_ratio).abs() / scenario.true_ratio * 100.0
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &window, |b, _| {
            b.iter(|| {
                est.estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
                    .expect("est")
            })
        });
    }
    group.finish();
}

fn bench_acquisition_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_acquisition");
    group.sample_size(10);
    for &shift in &[14usize, 16, 18, 20] {
        let n = 1usize << shift;
        let scenario = Table2Scenario::build_sine_reference(n, 0.3, 9).expect("scenario");
        let est = scenario.estimator(2_048).expect("estimator");
        if let Ok(r) = est.estimate_bits(&scenario.bits_hot, &scenario.bits_cold) {
            eprintln!(
                "# ablation/acquisition n=2^{shift}: error {:.1} %",
                (r.ratio - scenario.true_ratio).abs() / scenario.true_ratio * 100.0
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                est.estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
                    .expect("est")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exclusion,
    bench_windows,
    bench_acquisition_length
);
criterion_main!(benches);
