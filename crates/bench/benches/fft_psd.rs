//! Criterion bench: FFT and Welch PSD throughput — the SoC processing
//! cost side of the paper's resource-reuse argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nfbist_analog::noise::WhiteNoise;
use nfbist_dsp::complex::Complex64;
use nfbist_dsp::fft::{ArbitraryFft, Fft};
use nfbist_dsp::psd::WelchConfig;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1_024usize, 4_096, 16_384] {
        let plan = Fft::new(n).expect("plan");
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| plan.forward(&x).expect("forward"));
        });
    }
    // The paper's exact size: 10⁴ points (Bluestein path).
    let n = 10_000;
    let plan = ArbitraryFft::new(n).expect("plan");
    let x: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("bluestein/10000", |b| {
        b.iter(|| plan.forward(&x).expect("forward"));
    });
    group.finish();
}

fn bench_welch(c: &mut Criterion) {
    let fs = 20_000.0;
    let x = WhiteNoise::new(1.0, 1).expect("noise").generate(200_000);
    let mut group = c.benchmark_group("welch");
    group.throughput(Throughput::Elements(x.len() as u64));
    for &nfft in &[1_024usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("segment", nfft), &nfft, |b, &nfft| {
            let cfg = WelchConfig::new(nfft).expect("config");
            b.iter(|| cfg.estimate(&x, fs).expect("estimate"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_welch);
criterion_main!(benches);
