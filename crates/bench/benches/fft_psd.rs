//! Criterion bench: FFT and Welch PSD throughput — the SoC processing
//! cost side of the paper's resource-reuse argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nfbist_analog::noise::WhiteNoise;
use nfbist_dsp::complex::Complex64;
use nfbist_dsp::fft::{ArbitraryFft, Fft, RealFft};
use nfbist_dsp::psd::WelchConfig;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1_024usize, 4_096, 16_384] {
        let plan = Fft::new(n).expect("plan");
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| plan.forward(&x).expect("forward"));
        });
    }
    // The paper's exact size: 10⁴ points (Bluestein path).
    let n = 10_000;
    let plan = ArbitraryFft::new(n).expect("plan");
    let x: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("bluestein/10000", |b| {
        b.iter(|| plan.forward(&x).expect("forward"));
    });
    group.finish();
}

/// Real-input transform: the packed one-sided engine vs widening to a
/// full N-point complex transform (the PR 2 path).
fn bench_fft_real_vs_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_real");
    for &n in &[1_024usize, 4_096, 16_384] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        group.throughput(Throughput::Elements(n as u64));

        let complex_plan = Fft::new(n).expect("plan");
        let mut full = vec![Complex64::ZERO; n];
        group.bench_with_input(BenchmarkId::new("complex_full", n), &n, |b, _| {
            b.iter(|| complex_plan.forward_real_into(&x, &mut full).expect("fft"));
        });

        let real_plan = RealFft::new(n).expect("plan");
        let mut one_sided = vec![Complex64::ZERO; real_plan.output_len()];
        group.bench_with_input(BenchmarkId::new("real_packed", n), &n, |b, _| {
            b.iter(|| real_plan.forward_into(&x, &mut one_sided).expect("fft"));
        });
    }
    group.finish();
}

fn bench_welch(c: &mut Criterion) {
    let fs = 20_000.0;
    let x = WhiteNoise::new(1.0, 1).expect("noise").generate(200_000);
    let mut group = c.benchmark_group("welch");
    group.throughput(Throughput::Elements(x.len() as u64));
    for &nfft in &[1_024usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("segment", nfft), &nfft, |b, &nfft| {
            let cfg = WelchConfig::new(nfft).expect("config");
            b.iter(|| cfg.estimate(&x, fs).expect("estimate"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_fft_real_vs_complex, bench_welch);
criterion_main!(benches);
