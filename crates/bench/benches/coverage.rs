//! Criterion bench for the defect-coverage campaign engine: a small
//! fault universe screened end to end (session → screen → retest),
//! sequential vs fanned across workers, plus the per-cell cost of
//! fault injection itself (a faulted session vs a healthy one).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::fault::{AnalogFault, FaultyDut};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_runtime::{BatchExecutor, BatchPlan};
use nfbist_soc::coverage::{CoverageCampaign, FaultUniverse};
use nfbist_soc::screening::Screen;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn tl081_expected_nf_db() -> f64 {
    NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
        .expect("dut")
        .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
        .expect("expected NF")
}

fn small_campaign() -> CoverageCampaign {
    let setup = BistSetup {
        samples: 1 << 14,
        nfft: 1_024,
        ..BistSetup::paper_prototype(77)
    };
    let universe = FaultUniverse::new()
        .input_attenuation(&[2.0])
        .expect("grid")
        .excess_noise(&[4.0])
        .expect("grid");
    CoverageCampaign::new(
        setup,
        Screen::new(tl081_expected_nf_db() + 1.2, 3.0).expect("screen"),
        universe,
    )
    .expect("campaign")
    .trials(4)
}

/// Whole-campaign throughput: 12 cells (3 variants × 4 trials),
/// sequential vs all-core fan-out. Output is bit-identical either way;
/// only the wall clock moves.
fn bench_campaign_throughput(c: &mut Criterion) {
    let campaign = small_campaign();
    let cells = campaign.cell_count() as u64;
    let all_cores = BatchExecutor::with_available_parallelism().workers();

    let mut group = c.benchmark_group("coverage");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    for workers in [1usize, all_cores.max(2)] {
        group.bench_with_input(
            BenchmarkId::new("campaign_workers", workers),
            &workers,
            |b, &workers| {
                let plan = BatchPlan::new().workers(workers);
                b.iter(|| plan.run_coverage(&campaign).expect("campaign"));
            },
        );
    }
    group.finish();
}

/// The overhead of the fault wrapper on one measurement: a healthy
/// session vs the same session with an injected excess-noise fault
/// (which synthesizes one extra shaped-noise stream per acquisition).
fn bench_faulty_session_overhead(c: &mut Criterion) {
    let setup = BistSetup {
        samples: 1 << 14,
        nfft: 1_024,
        ..BistSetup::paper_prototype(78)
    };
    let dut = || {
        NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
            .expect("dut")
    };

    let mut group = c.benchmark_group("coverage");
    group.sample_size(10);
    group.bench_function("session_healthy", |b| {
        let session = MeasurementSession::new(setup.clone())
            .expect("session")
            .dut(dut());
        b.iter(|| session.run().expect("run"));
    });
    group.bench_function("session_excess_noise_fault", |b| {
        let session = MeasurementSession::new(setup.clone())
            .expect("session")
            .dut(
                FaultyDut::new(dut())
                    .with_fault(AnalogFault::ExcessNoise { factor: 4.0 })
                    .expect("fault"),
            );
        b.iter(|| session.run().expect("run"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign_throughput,
    bench_faulty_session_overhead
);
criterion_main!(benches);
