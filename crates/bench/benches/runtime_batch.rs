//! Criterion bench for the two layers of the batch-execution redesign:
//!
//! 1. **Welch hot path** at the paper's record size (10⁶ samples,
//!    10⁴-point segments): the per-call allocating entry point vs the
//!    workspace-reuse `estimate_into` path (zero planning, zero
//!    allocation in steady state).
//! 2. **Batch throughput**: a Monte Carlo batch of independent
//!    measurement sessions, sequential (1 worker) vs all-core fan-out
//!    through `nfbist-runtime`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nfbist_analog::bitstream::Bitstream;
use nfbist_analog::converter::{AdcDigitizer, OneBitDigitizer};
use nfbist_analog::noise::WhiteNoise;
use nfbist_core::power_ratio::PsdRatioEstimator;
use nfbist_dsp::psd::{DspWorkspace, WelchConfig};
use nfbist_runtime::batch::{derive_seed, BatchPlan};
use nfbist_runtime::BatchExecutor;
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

/// The paper's processing load: 10⁶ samples through 10⁴-point Welch
/// segments (199 Bluestein FFTs per estimate).
fn bench_welch_workspace_vs_allocating(c: &mut Criterion) {
    let samples = 1_000_000;
    let nfft = 10_000;
    let fs = 20_000.0;
    let x = WhiteNoise::new(1.0, 42).expect("noise").generate(samples);
    let cfg = WelchConfig::new(nfft).expect("config");

    let mut group = c.benchmark_group("welch_paper_size");
    group.throughput(Throughput::Elements(samples as u64));
    group.bench_function("allocating_per_call", |b| {
        b.iter(|| cfg.estimate(&x, fs).expect("estimate"));
    });
    group.bench_function("workspace_reuse", |b| {
        let mut ws = DspWorkspace::new();
        let mut out = vec![0.0f64; nfft / 2 + 1];
        // Warm the plan cache once so the measured loop is steady-state.
        cfg.estimate_into(&x, fs, &mut ws, &mut out)
            .expect("warm-up");
        b.iter(|| {
            cfg.estimate_into(&x, fs, &mut ws, &mut out)
                .expect("estimate")
        });
    });
    group.finish();
}

/// Monte Carlo batch throughput: whole trials fanned across workers.
/// On a multi-core host the N-worker row divides the sequential wall
/// clock by ~min(N, trials); output is bit-identical either way.
fn bench_batch_throughput(c: &mut Criterion) {
    let trials = 8usize;
    // ADC front-end + PSD-ratio estimator: Welch FFTs dominate the
    // cost (as in the paper's processing), and the scale-preserving
    // path has no reference-line tracking to degenerate at reduced
    // record lengths, so every derived trial seed is valid.
    let build = |t: usize| {
        let setup = BistSetup {
            samples: 1 << 15,
            nfft: 1_024,
            ..BistSetup::paper_prototype(derive_seed(7, t as u64))
        };
        let estimator = PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band)?;
        Ok(MeasurementSession::new(setup)?
            .digitizer(AdcDigitizer::new(12)?)
            .estimator(estimator))
    };

    let all_cores = BatchExecutor::with_available_parallelism().workers();
    let mut group = c.benchmark_group("monte_carlo_batch");
    group.throughput(Throughput::Elements(trials as u64));
    for workers in [1usize, all_cores.max(2)] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let plan = BatchPlan::new().workers(workers);
                b.iter(|| plan.run_monte_carlo(trials, build).expect("batch"));
            },
        );
    }
    group.finish();
}

/// One-bit autocorrelation at the paper's record size: XOR+popcount on
/// the packed words vs expanding to ±1 floats and multiplying (the
/// pre-bit-kernel path). The two produce bit-identical lag estimates.
fn bench_onebit_autocorr_popcount_vs_float(c: &mut Criterion) {
    use nfbist_dsp::correlation::{autocorrelation, Bias};

    let n = 1_000_000;
    let max_lag = 64;
    let x = WhiteNoise::new(1.0, 11).expect("noise").generate(n);
    let bits: Bitstream = OneBitDigitizer::ideal().digitize_sign(&x).expect("bits");

    let mut group = c.benchmark_group("onebit_autocorr");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("float_expand_direct", |b| {
        b.iter(|| autocorrelation(&bits.to_bipolar(), max_lag, Bias::Biased).expect("float"));
    });
    group.bench_function("popcount", |b| {
        b.iter(|| {
            bits.autocorrelation(max_lag, Bias::Biased)
                .expect("popcount")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_welch_workspace_vs_allocating,
    bench_batch_throughput,
    bench_onebit_autocorr_popcount_vs_float
);
criterion_main!(benches);
