//! Criterion bench: end-to-end BIST measurement cost (Table 3's
//! workload) through the generic `MeasurementSession`, against a
//! hand-monomorphized concrete path (the old `BistPipeline::measure`
//! flow) to quantify the trait-object indirection, and against the ADC
//! front-end.
//!
//! Acceptance target: the generic path within 2 % of the concrete one —
//! the per-sample work (noise synthesis, FFTs) dwarfs a handful of
//! dynamic dispatches per measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::converter::{AdcDigitizer, OneBitDigitizer};
use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_analog::units::{Kelvin, Ohms};
use nfbist_core::estimator::NfMeasurement;
use nfbist_core::power_ratio::{OneBitPowerRatio, PsdRatioEstimator};
use nfbist_soc::session::MeasurementSession;
use nfbist_soc::setup::BistSetup;

fn small_setup(seed: u64) -> BistSetup {
    BistSetup {
        samples: 1 << 15,
        nfft: 1_024,
        ..BistSetup::paper_prototype(seed)
    }
}

fn dut() -> NonInvertingAmplifier {
    NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
        .expect("dut")
}

/// The old concrete pipeline flow, fully monomorphized: identical
/// physics and record sizes to the generic session, zero dynamic
/// dispatch.
fn concrete_measure(setup: &BistSetup, dut: &NonInvertingAmplifier) -> NfMeasurement {
    let n = setup.samples;
    let fs = setup.sample_rate;
    let digitizer = OneBitDigitizer::ideal();
    let nyquist = fs / 2.0;

    let source = || {
        CalibratedNoiseSource::new(
            Kelvin::new(setup.hot_kelvin),
            Kelvin::new(setup.cold_kelvin),
            setup.source_resistance,
            setup.seed ^ 0xA5A5_A5A5,
        )
        .expect("source")
    };
    let added = dut
        .mean_added_noise_density_sq(setup.source_resistance, 1.0, nyquist)
        .expect("noise model");
    let cold_rms = dut.gain()
        * setup.post_gain
        * ((source().voltage_density(NoiseSourceState::Cold) + added) * nyquist).sqrt();
    let reference_amplitude = setup.reference_fraction * cold_rms;

    let acquire = |state: NoiseSourceState| {
        let mut src = source();
        let salt = match state {
            NoiseSourceState::Hot => 1u64,
            NoiseSourceState::Cold => 2u64,
        };
        if state == NoiseSourceState::Cold {
            let _ = src.generate(state, 1, fs).expect("advance");
        }
        let noise = src.generate(state, n, fs).expect("generate");
        let out = dut
            .amplify(
                &noise,
                setup.source_resistance,
                fs,
                setup.seed.wrapping_add(salt).wrapping_mul(0x9E37),
            )
            .expect("amplify");
        let conditioned: Vec<f64> = out.iter().map(|v| v * setup.post_gain).collect();
        let reference = SineSource::new(setup.reference_frequency, reference_amplitude)
            .expect("reference")
            .generate(n, fs)
            .expect("generate");
        digitizer
            .digitize(&conditioned, &reference)
            .expect("digitize")
    };

    let hot = acquire(NoiseSourceState::Hot);
    let cold = acquire(NoiseSourceState::Cold);
    let ratio = OneBitPowerRatio::new(fs, setup.nfft, setup.reference_frequency, setup.noise_band)
        .expect("estimator")
        .estimate_bits(&hot, &cold)
        .expect("estimate");
    NfMeasurement::from_y(ratio.ratio, setup.hot_kelvin, setup.cold_kelvin).expect("nf")
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.sample_size(10);

    group.bench_function("concrete_one_bit_measure_32k", |b| {
        let setup = small_setup(1);
        let d = dut();
        b.iter(|| concrete_measure(&setup, &d));
    });
    group.bench_function("generic_one_bit_measure_32k", |b| {
        let session = MeasurementSession::new(small_setup(1))
            .expect("session")
            .dut(dut());
        b.iter(|| session.run().expect("measure"));
    });
    group.bench_function("generic_adc_measure_32k", |b| {
        let setup = small_setup(2);
        let session = MeasurementSession::new(setup.clone())
            .expect("session")
            .dut(dut())
            .digitizer(AdcDigitizer::new(12).expect("adc"))
            .estimator(
                PsdRatioEstimator::new(setup.sample_rate, setup.nfft, setup.noise_band)
                    .expect("estimator"),
            );
        b.iter(|| session.run().expect("measure"));
    });
    group.finish();
}

fn bench_overhead_ratio(c: &mut Criterion) {
    // Measure both paths back to back and print the ratio the
    // acceptance criterion cares about.
    let setup = small_setup(3);
    let d = dut();
    let session = MeasurementSession::new(setup.clone())
        .expect("session")
        .dut(dut());

    let mut concrete_ns = 0.0;
    let mut generic_ns = 0.0;
    c.bench_function("overhead/concrete", |b| {
        b.iter(|| concrete_measure(&setup, &d));
        concrete_ns = b.mean_ns();
    });
    c.bench_function("overhead/generic", |b| {
        b.iter(|| session.run().expect("measure"));
        generic_ns = b.mean_ns();
    });
    if concrete_ns > 0.0 {
        println!(
            "trait-object overhead: {:+.3} % (generic {:.3} ms vs concrete {:.3} ms)",
            (generic_ns / concrete_ns - 1.0) * 100.0,
            generic_ns / 1e6,
            concrete_ns / 1e6,
        );
    }
}

criterion_group!(benches, bench_session, bench_overhead_ratio);
criterion_main!(benches);
