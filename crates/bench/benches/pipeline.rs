//! Criterion bench: end-to-end BIST measurement cost (Table 3's
//! workload), 1-bit pipeline vs ADC baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;
use nfbist_soc::baseline::AdcYFactorBaseline;
use nfbist_soc::pipeline::BistPipeline;
use nfbist_soc::setup::BistSetup;

fn small_setup(seed: u64) -> BistSetup {
    BistSetup {
        samples: 1 << 15,
        nfft: 1_024,
        ..BistSetup::paper_prototype(seed)
    }
}

fn dut() -> NonInvertingAmplifier {
    NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
        .expect("dut")
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("one_bit_measure_32k", |b| {
        let p = BistPipeline::new(small_setup(1), dut()).expect("pipeline");
        b.iter(|| p.measure().expect("measure"));
    });
    group.bench_function("adc_baseline_measure_32k", |b| {
        let p = AdcYFactorBaseline::new(small_setup(2), dut(), 12).expect("baseline");
        b.iter(|| p.measure().expect("measure"));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
