//! Criterion bench: the three Table 2 power-ratio estimators on equal
//! records — the accuracy/cost trade at the heart of the paper.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nfbist_bench::Table2Scenario;
use nfbist_core::power_ratio::{mean_square_ratio, psd_ratio};

fn bench_methods(c: &mut Criterion) {
    let n = 1 << 17;
    let nfft = 2_048;
    let scenario = Table2Scenario::build(n, 0.3, 123).expect("scenario");
    let estimator = scenario.estimator(nfft).expect("estimator");

    let mut group = c.benchmark_group("power_ratio");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("mean_square", |b| {
        b.iter(|| mean_square_ratio(&scenario.hot, &scenario.cold).expect("ratio"))
    });
    group.bench_function("psd", |b| {
        b.iter(|| {
            psd_ratio(
                &scenario.hot,
                &scenario.cold,
                scenario.sample_rate,
                nfft,
                (500.0, 4_500.0),
            )
            .expect("ratio")
        })
    });
    group.bench_function("one_bit", |b| {
        b.iter(|| {
            estimator
                .estimate_bits(&scenario.bits_hot, &scenario.bits_cold)
                .expect("ratio")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
