//! Criterion bench: 1-bit digitizer throughput — the operation a SoC
//! BIST runs continuously.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nfbist_analog::converter::{Comparator, OneBitDigitizer};
use nfbist_analog::noise::WhiteNoise;
use nfbist_analog::source::{SineSource, Waveform};

fn bench_digitizer(c: &mut Criterion) {
    let fs = 20_000.0;
    let mut group = c.benchmark_group("digitizer");
    for &n in &[10_000usize, 100_000] {
        let noise = WhiteNoise::new(1.0, 1).expect("noise").generate(n);
        let reference = SineSource::new(3_000.0, 0.3)
            .expect("sine")
            .generate(n, fs)
            .expect("generate");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("ideal", n), &n, |b, _| {
            let d = OneBitDigitizer::ideal();
            b.iter(|| d.digitize(&noise, &reference).expect("digitize"));
        });
        group.bench_with_input(BenchmarkId::new("hysteresis", n), &n, |b, _| {
            let cmp = Comparator::ideal().with_hysteresis(0.01).expect("cmp");
            let d = OneBitDigitizer::with_comparator(cmp);
            b.iter(|| d.digitize(&noise, &reference).expect("digitize"));
        });
    }
    group.finish();
}

fn bench_bitstream_expansion(c: &mut Criterion) {
    let n = 100_000;
    let noise = WhiteNoise::new(1.0, 2).expect("noise").generate(n);
    let bits = OneBitDigitizer::ideal()
        .digitize_sign(&noise)
        .expect("digitize");
    c.bench_function("bitstream/to_bipolar_100k", |b| {
        b.iter(|| bits.to_bipolar())
    });
}

criterion_group!(benches, bench_digitizer, bench_bitstream_expansion);
criterion_main!(benches);
