//! Measurement reports with table formatting, used by the experiment
//! binaries to print paper-style tables.

use std::fmt;

/// A formatted results table (fixed-width columns, Markdown-compatible
/// separators).
///
/// # Examples
///
/// ```
/// use nfbist_soc::report::Table;
///
/// let mut t = Table::new(vec!["Opamp", "Expected", "Measured"]);
/// t.row(vec!["OP27".into(), "3.7".into(), "3.69".into()]);
/// let s = t.to_string();
/// assert!(s.contains("OP27"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells; long
    /// rows are truncated to the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate().take(cols) {
                write!(f, " {:<width$} |", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A named data series (for figure-style experiments): `(x, y)` pairs
/// printed one per line, gnuplot/CSV-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# series: {}", self.name)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:.6e}, {y:.6e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout() {
        let mut t = Table::new(vec!["A", "Longer"]);
        assert!(t.is_empty());
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyyy".into()]); // padded
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines share the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    fn row_truncation() {
        let mut t = Table::new(vec!["A"]);
        t.row(vec!["1".into(), "extra".into()]);
        let s = t.to_string();
        assert!(!s.contains("extra"));
    }

    #[test]
    fn series_format() {
        let mut s = Series::new("error");
        s.push(10.0, -2.5);
        s.extend([(20.0, 1.0)]);
        assert_eq!(s.points().len(), 2);
        assert_eq!(s.name(), "error");
        let out = s.to_string();
        assert!(out.starts_with("# series: error"));
        assert!(out.contains("1.000000e1, -2.500000e0") || out.contains("1.000000e+01"));
    }
}
