//! # nfbist-soc — the BIST measurement environment in a SoC
//!
//! The paper's system-level claim (§4) is that a SoC can measure noise
//! figure by reusing resources it already has: on-chip memory stores the
//! 1-bit records, the CPU/DSP runs the FFTs, and a tiny comparator sits
//! permanently at each analog test point. This crate assembles the
//! substrate crates into that environment:
//!
//! * [`setup`] — configuration of the paper's Fig. 11 bench (source
//!   temperatures, reference tone, record/FFT sizes, noise band).
//! * [`session`] — the generic measurement path:
//!   [`session::MeasurementSession`] runs hot/cold acquisitions through
//!   **any** circuit (the `Dut` trait), **any** acquisition front-end
//!   (the `Digitizer` trait: the paper's 1-bit comparator cell of
//!   Fig. 11 or the conventional ADC + mux bench of Fig. 4), and
//!   **any** Table 2 power-ratio estimator (the `PowerRatioEstimator`
//!   trait), with optional repeated/averaged acquisitions.
//! * [`multipoint`] — simultaneous observation of several test points
//!   along a cascade, each with its own permanently attached digitizer
//!   (the observability argument of §4.3).
//! * [`resources`] — SoC memory/compute accounting: what an acquisition
//!   costs in bytes and arithmetic, 1-bit vs ADC.
//! * [`screening`] — guard-banded pass/fail verdicts for production
//!   test, with the documented retest-escalation loop
//!   ([`screening::screen_with_retest`]).
//! * [`coverage`] — defect-coverage campaigns: a
//!   [`coverage::FaultUniverse`] of defective DUT variants screened
//!   through the full flow, reduced to detection/escape/yield-loss
//!   rates per fault class ([`coverage::CoverageReport`]).
//! * [`fleet`] — fleet-scale lot screening: every die of a synthesized
//!   wafer population ([`nfbist_analog::wafer`]) through the full
//!   screening flow, folded into rolling yield statistics and a wafer
//!   map ([`fleet::LotReport`]).
//! * [`monitor`] — continuous in-field monitoring:
//!   [`monitor::MonitorSession`] runs the acquisition pipeline as an
//!   unbounded mission, emits a forgetting-window NF time series with
//!   per-point sigmas, and folds it through a CUSUM drift detector
//!   into a deterministic [`monitor::AlarmEvent`] timeline.
//! * [`freqresp`] — the comparator cell reused for frequency-response
//!   measurement (§7).
//! * [`testplan`] — scheduling acquisitions under a memory budget.
//! * [`report`] — measurement report types with display formatting.
//!
//! ## Example
//!
//! ```no_run
//! use nfbist_analog::circuits::NonInvertingAmplifier;
//! use nfbist_analog::opamp::OpampModel;
//! use nfbist_analog::units::Ohms;
//! use nfbist_soc::session::MeasurementSession;
//! use nfbist_soc::setup::BistSetup;
//!
//! # fn main() -> Result<(), nfbist_soc::SocError> {
//! let dut = NonInvertingAmplifier::new(
//!     OpampModel::op27(),
//!     Ohms::new(10_000.0),
//!     Ohms::new(100.0),
//! )?;
//! let m = MeasurementSession::new(BistSetup::paper_prototype(42))?
//!     .dut(dut)
//!     .repeats(4)
//!     .run()?;
//! println!("expected {:.2} dB, measured {:.2} dB", m.expected_nf_db, m.nf.figure.db());
//! # Ok(())
//! # }
//! ```
//!
//! Swapping one axis reproduces the conventional bench the paper argues
//! against — same session, different front-end and estimator:
//!
//! ```no_run
//! use nfbist_analog::converter::AdcDigitizer;
//! use nfbist_core::power_ratio::PsdRatioEstimator;
//! use nfbist_soc::session::MeasurementSession;
//! use nfbist_soc::setup::BistSetup;
//!
//! # fn main() -> Result<(), nfbist_soc::SocError> {
//! let setup = BistSetup::quick(1);
//! let m = MeasurementSession::new(setup.clone())?
//!     .digitizer(AdcDigitizer::new(12)?)
//!     .estimator(PsdRatioEstimator::new(
//!         setup.sample_rate,
//!         setup.nfft,
//!         setup.noise_band,
//!     )?)
//!     .run()?;
//! println!("{m}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod coverage;
pub mod fleet;
pub mod freqresp;
pub mod monitor;
pub mod multipoint;
pub mod report;
pub mod resources;
pub mod screening;
pub mod session;
pub mod setup;
pub mod testplan;

mod error;

pub use error::SocError;
pub use session::{Measurement, MeasurementSession};
