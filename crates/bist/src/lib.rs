//! # nfbist-soc — the BIST measurement environment in a SoC
//!
//! The paper's system-level claim (§4) is that a SoC can measure noise
//! figure by reusing resources it already has: on-chip memory stores the
//! 1-bit records, the CPU/DSP runs the FFTs, and a tiny comparator sits
//! permanently at each analog test point. This crate assembles the
//! substrate crates into that environment:
//!
//! * [`setup`] — configuration of the paper's Fig. 11 bench (source
//!   temperatures, reference tone, record/FFT sizes, noise band).
//! * [`pipeline`] — the end-to-end measurement: acquire hot/cold
//!   bitstreams through the simulated analog chain, run the 1-bit
//!   Y-factor estimator, report NF with the analytic expectation.
//! * [`multipoint`] — simultaneous observation of several test points
//!   along a cascade, each with its own permanently attached digitizer
//!   (the observability argument of §4.3).
//! * [`resources`] — SoC memory/compute accounting: what an acquisition
//!   costs in bytes and arithmetic, 1-bit vs ADC.
//! * [`baseline`] — the ADC + analog-mux Y-factor setup of Fig. 4, the
//!   baseline the proposed digitizer replaces.
//! * [`report`] — measurement report types with display formatting.
//!
//! ## Example
//!
//! ```no_run
//! use nfbist_analog::circuits::NonInvertingAmplifier;
//! use nfbist_analog::opamp::OpampModel;
//! use nfbist_analog::units::Ohms;
//! use nfbist_soc::pipeline::BistPipeline;
//! use nfbist_soc::setup::BistSetup;
//!
//! # fn main() -> Result<(), nfbist_soc::SocError> {
//! let dut = NonInvertingAmplifier::new(
//!     OpampModel::op27(),
//!     Ohms::new(10_000.0),
//!     Ohms::new(100.0),
//! )?;
//! let setup = BistSetup::paper_prototype(42);
//! let pipeline = BistPipeline::new(setup, dut)?;
//! let m = pipeline.measure()?;
//! println!("expected {:.2} dB, measured {:.2} dB", m.expected_nf_db, m.nf.figure.db());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod freqresp;
pub mod multipoint;
pub mod pipeline;
pub mod report;
pub mod resources;
pub mod screening;
pub mod setup;
pub mod testplan;

mod error;

pub use error::SocError;
