//! Defect-coverage campaigns: what fraction of defective DUTs does a
//! test plan actually catch, at what test time?
//!
//! The paper's economics (§1: "test costs must be kept lower for the
//! device to be competitive") only close if the BIST screens real
//! defects. This module asks that question quantitatively:
//!
//! 1. a [`FaultUniverse`] enumerates the healthy design plus faulted
//!    variants over a parameter grid (built on
//!    [`nfbist_analog::fault`]);
//! 2. a [`CoverageCampaign`] measures every variant × Monte Carlo
//!    trial through the full session → screen → retest flow, each
//!    cell an independent, index-seeded task (so `nfbist-runtime` can
//!    fan cells across workers with bit-identical output);
//! 3. a [`CoverageReport`] aggregates verdicts per fault class:
//!    detection rate, escape rate, yield loss on healthy parts, and
//!    retest rate/test time.
//!
//! The report is as interesting for what *escapes* as for what is
//! caught: pure gain drift and bandwidth loss cancel out of the
//! Y-factor ratio itself and reach the verdict only through the
//! shifted signal-to-reference working point of the 1-bit bench —
//! mild deviations escape, gross ones get caught indirectly or lose
//! the reference line (a gross reject). Fully covering those classes
//! needs the frequency-response mode (paper §7); the campaign puts
//! numbers on that boundary.

use crate::screening::{RetestPolicy, Screen, ScreeningRecipe, SequentialScreen, Verdict};
use crate::session::derive_seed;
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::dut::Dut;
use nfbist_analog::fault::{AnalogFault, BitFault};
use nfbist_analog::opamp::OpampModel;
use nfbist_analog::units::Ohms;

/// One member of a [`FaultUniverse`]: a named fault signature (zero
/// faults = the healthy variant).
///
/// # Examples
///
/// ```
/// use nfbist_soc::coverage::FaultVariant;
/// use nfbist_analog::fault::AnalogFault;
///
/// let v = FaultVariant::new("excess_noise", "noise ×4")
///     .analog(AnalogFault::ExcessNoise { factor: 4.0 })?;
/// assert_eq!(v.class(), "excess_noise");
/// assert!(!v.is_healthy());
/// assert!(FaultVariant::healthy().is_healthy());
/// # Ok::<(), nfbist_soc::SocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultVariant {
    class: String,
    label: String,
    analog: Vec<AnalogFault>,
    bit: Vec<BitFault>,
}

impl FaultVariant {
    /// The healthy (fault-free) variant.
    pub fn healthy() -> Self {
        FaultVariant {
            class: "healthy".to_string(),
            label: "healthy".to_string(),
            analog: Vec::new(),
            bit: Vec::new(),
        }
    }

    /// A named empty variant; add faults with [`FaultVariant::analog`]
    /// / [`FaultVariant::bit`]. `class` groups variants in the report
    /// (conventionally the fault's own
    /// [`AnalogFault::class`]/[`BitFault::class`]), `label`
    /// distinguishes grid points within a class.
    pub fn new(class: impl Into<String>, label: impl Into<String>) -> Self {
        FaultVariant {
            class: class.into(),
            label: label.into(),
            analog: Vec::new(),
            bit: Vec::new(),
        }
    }

    /// Adds an analog fault (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault
    /// parameters.
    pub fn analog(mut self, fault: AnalogFault) -> Result<Self, SocError> {
        fault.validate()?;
        self.analog.push(fault);
        Ok(self)
    }

    /// Adds a 1-bit stream fault (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain fault
    /// parameters.
    pub fn bit(mut self, fault: BitFault) -> Result<Self, SocError> {
        fault.validate()?;
        self.bit.push(fault);
        Ok(self)
    }

    /// The fault class used for report grouping.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The grid-point label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The analog faults of this variant.
    pub fn analog_faults(&self) -> &[AnalogFault] {
        &self.analog
    }

    /// The bit faults of this variant.
    pub fn bit_faults(&self) -> &[BitFault] {
        &self.bit
    }

    /// `true` for the fault-free variant.
    pub fn is_healthy(&self) -> bool {
        self.analog.is_empty() && self.bit.is_empty()
    }
}

/// Seed fixing the defective positions of grid-generated
/// [`BitFault::FlippedBits`] variants (positions must be a pure
/// function of the universe, not of time).
const FLIPPED_CELLS_SEED: u64 = 0xB17F_A017_5EED_0001;

/// The population a campaign screens: the healthy design plus faulted
/// variants over a parameter grid.
///
/// # Examples
///
/// ```
/// use nfbist_soc::coverage::FaultUniverse;
///
/// let universe = FaultUniverse::new()
///     .input_attenuation(&[1.5, 2.0])?
///     .excess_noise(&[4.0])?
///     .stuck_bits(&[2])?;
/// // Healthy + 2 + 1 + 1 variants.
/// assert_eq!(universe.len(), 5);
/// assert!(universe.get(0).unwrap().is_healthy());
/// # Ok::<(), nfbist_soc::SocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    variants: Vec<FaultVariant>,
}

impl FaultUniverse {
    /// A universe containing only the healthy variant (always variant
    /// 0, so yield loss is measurable in every campaign).
    pub fn new() -> Self {
        FaultUniverse {
            variants: vec![FaultVariant::healthy()],
        }
    }

    /// Appends a custom variant (builder style).
    pub fn variant(mut self, variant: FaultVariant) -> Self {
        self.variants.push(variant);
        self
    }

    /// Adds one input-path-loss variant per attenuation factor.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain factors.
    pub fn input_attenuation(mut self, factors: &[f64]) -> Result<Self, SocError> {
        for &factor in factors {
            let fault = AnalogFault::InputAttenuation { factor };
            self.variants
                .push(FaultVariant::new(fault.class(), fault.to_string()).analog(fault)?);
        }
        Ok(self)
    }

    /// Adds one output-gain-drift variant per gain factor.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain factors.
    pub fn gain_deviation(mut self, factors: &[f64]) -> Result<Self, SocError> {
        for &factor in factors {
            let fault = AnalogFault::GainDeviation { factor };
            self.variants
                .push(FaultVariant::new(fault.class(), fault.to_string()).analog(fault)?);
        }
        Ok(self)
    }

    /// Adds one degraded-noise variant per noise-power factor.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain factors.
    pub fn excess_noise(mut self, factors: &[f64]) -> Result<Self, SocError> {
        for &factor in factors {
            let fault = AnalogFault::ExcessNoise { factor };
            self.variants
                .push(FaultVariant::new(fault.class(), fault.to_string()).analog(fault)?);
        }
        Ok(self)
    }

    /// Adds one interference variant per `(frequency, amplitude
    /// fraction)` tone.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain tones.
    pub fn interference(mut self, tones: &[(f64, f64)]) -> Result<Self, SocError> {
        for &(frequency, amplitude_fraction) in tones {
            let fault = AnalogFault::InterferenceTone {
                frequency,
                amplitude_fraction,
            };
            self.variants
                .push(FaultVariant::new(fault.class(), fault.to_string()).analog(fault)?);
        }
        Ok(self)
    }

    /// Adds one stuck-cell variant per defect period (cells stuck at
    /// 1).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for a zero period.
    pub fn stuck_bits(mut self, periods: &[usize]) -> Result<Self, SocError> {
        for &period in periods {
            let fault = BitFault::StuckBits {
                period,
                value: true,
            };
            self.variants
                .push(FaultVariant::new(fault.class(), fault.to_string()).bit(fault)?);
        }
        Ok(self)
    }

    /// Adds one scattered-flipped-cell variant per defect probability
    /// (defective positions fixed by an internal seed, distinct per
    /// variant).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Analog`] for out-of-domain probabilities.
    pub fn flipped_bits(mut self, probabilities: &[f64]) -> Result<Self, SocError> {
        for &probability in probabilities {
            let fault = BitFault::FlippedBits {
                probability,
                seed: derive_seed(FLIPPED_CELLS_SEED, self.variants.len() as u64),
            };
            self.variants
                .push(FaultVariant::new(fault.class(), fault.to_string()).bit(fault)?);
        }
        Ok(self)
    }

    /// The default campaign grid used by the `exp_coverage`
    /// experiment: every fault class at moderate and gross severity.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the grid is in-domain by
    /// construction); the signature propagates validation anyway.
    pub fn paper_grid() -> Result<Self, SocError> {
        Self::new()
            .input_attenuation(&[std::f64::consts::SQRT_2, 2.0])?
            .excess_noise(&[2.0, 4.0])?
            .gain_deviation(&[0.5, 2.0])?
            .interference(&[(500.0, 0.5)])?
            .stuck_bits(&[2])?
            .flipped_bits(&[0.02])
    }

    /// Number of variants (healthy included).
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// `true` when the universe has no variants (not constructible via
    /// [`FaultUniverse::new`], which always seeds the healthy variant).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Variant `i`, if present.
    pub fn get(&self, i: usize) -> Option<&FaultVariant> {
        self.variants.get(i)
    }

    /// All variants, in index order.
    pub fn variants(&self) -> &[FaultVariant] {
        &self.variants
    }
}

impl Default for FaultUniverse {
    fn default() -> Self {
        Self::new()
    }
}

/// The outcome of one campaign cell (one variant × one Monte Carlo
/// trial), including its retest history.
///
/// # Examples
///
/// ```
/// use nfbist_soc::coverage::CellOutcome;
/// use nfbist_soc::screening::Verdict;
///
/// let cell = CellOutcome {
///     variant: 1,
///     trial: 0,
///     verdict: Verdict::Fail,
///     retests: 1,
///     nf_db: 16.4,
///     test_samples: 2 * (8_192 + 32_768),
/// };
/// assert_eq!(cell.verdict, Verdict::Fail);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Index of the variant in the universe.
    pub variant: usize,
    /// Monte Carlo trial index within the variant.
    pub trial: usize,
    /// Final screening verdict after retest escalation.
    pub verdict: Verdict,
    /// Retests performed (rounds beyond the first).
    pub retests: usize,
    /// NF measured in the final round, in dB (`f64::INFINITY` for an
    /// unmeasurable gross reject).
    pub nf_db: f64,
    /// Total samples acquired across all rounds, hot+cold, all
    /// repeats — the cell's test-time cost.
    pub test_samples: u64,
}

/// The builder for a healthy DUT instance, called once per cell (each
/// cell wraps its own copy in the variant's faults).
pub type DutBuilder = Box<dyn Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync>;

/// A defect-coverage campaign: every universe variant × `trials`
/// Monte Carlo instances, measured by the paper's 1-bit BIST session
/// and judged by a guard-banded [`Screen`] with retest escalation.
///
/// Cells are independent and fully determined by their index (seeds
/// from [`derive_seed`]), so the campaign can run sequentially
/// ([`CoverageCampaign::run`]) or be fanned across workers by
/// `nfbist_runtime::BatchPlan::run_coverage` with **bit-identical**
/// reports.
///
/// # Examples
///
/// ```
/// use nfbist_soc::coverage::{CoverageCampaign, FaultUniverse};
/// use nfbist_soc::screening::Screen;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(42);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let universe = FaultUniverse::new().excess_noise(&[8.0])?;
/// let campaign = CoverageCampaign::new(setup, Screen::new(12.0, 3.0)?, universe)?
///     .trials(2);
/// assert_eq!(campaign.cell_count(), 4); // 2 variants × 2 trials
/// let report = campaign.run()?;
/// // A gross noise fault against a generous limit: caught.
/// assert_eq!(report.class("excess_noise").unwrap().detected, 2);
/// # Ok(())
/// # }
/// ```
pub struct CoverageCampaign {
    setup: BistSetup,
    screen: Screen,
    universe: FaultUniverse,
    trials: usize,
    repeats: usize,
    retest: RetestPolicy,
    adaptive: Option<SequentialScreen>,
    build_dut: DutBuilder,
}

impl std::fmt::Debug for CoverageCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoverageCampaign")
            .field("setup", &self.setup)
            .field("screen", &self.screen)
            .field("variants", &self.universe.len())
            .field("trials", &self.trials)
            .field("repeats", &self.repeats)
            .field("retest", &self.retest)
            .field("adaptive", &self.adaptive)
            .finish()
    }
}

impl CoverageCampaign {
    /// Creates a campaign over a validated setup. Defaults: 8 trials
    /// per variant, 1 repeat per measurement, no retest escalation
    /// ([`RetestPolicy::single`]), and the paper's TL081 non-inverting
    /// prototype as the healthy DUT.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an invalid setup or
    /// an empty universe.
    pub fn new(
        setup: BistSetup,
        screen: Screen,
        universe: FaultUniverse,
    ) -> Result<Self, SocError> {
        setup.validate()?;
        if universe.is_empty() {
            return Err(SocError::InvalidParameter {
                name: "universe",
                reason: "a campaign needs at least one variant",
            });
        }
        Ok(CoverageCampaign {
            setup,
            screen,
            universe,
            trials: 8,
            repeats: 1,
            retest: RetestPolicy::single(),
            adaptive: None,
            build_dut: Box::new(|| {
                Ok(Box::new(NonInvertingAmplifier::new(
                    OpampModel::tl081(),
                    Ohms::new(10_000.0),
                    Ohms::new(100.0),
                )?))
            }),
        })
    }

    /// Sets the Monte Carlo trials per variant (clamped to ≥ 1).
    pub fn trials(mut self, n: usize) -> Self {
        self.trials = n.max(1);
        self
    }

    /// Sets the hot/cold repeats averaged per measurement (clamped to
    /// ≥ 1).
    pub fn repeats(mut self, n: usize) -> Self {
        self.repeats = n.max(1);
        self
    }

    /// Enables retest escalation with the given policy.
    pub fn retest(mut self, policy: RetestPolicy) -> Self {
        self.retest = policy;
        self
    }

    /// Switches every cell to the *adaptive* (sequential,
    /// early-stopping) flow: instead of one fixed-length measurement
    /// plus retest escalation, each cell grows its record through the
    /// checkpoint schedule of `seq` and stops as soon as the running
    /// estimate clears or fails the limit
    /// ([`crate::screening::screen_sequential`]). The setup's record
    /// length becomes the hard cap and the retest policy plays no role.
    ///
    /// `seq` carries its own guard-banded [`Screen`]; for a meaningful
    /// fixed-vs-adaptive comparison build it from the same screen the
    /// campaign judges with.
    pub fn adaptive(mut self, seq: SequentialScreen) -> Self {
        self.adaptive = Some(seq);
        self
    }

    /// The sequential screen in force, when the campaign is adaptive.
    pub fn adaptive_screen(&self) -> Option<&SequentialScreen> {
        self.adaptive.as_ref()
    }

    /// Overrides the healthy-DUT builder (called once per cell).
    pub fn dut_builder<F>(mut self, build: F) -> Self
    where
        F: Fn() -> Result<Box<dyn Dut>, SocError> + Send + Sync + 'static,
    {
        self.build_dut = Box::new(build);
        self
    }

    /// The screening limit in force.
    pub fn screen(&self) -> &Screen {
        &self.screen
    }

    /// The campaign's base measurement setup.
    pub fn setup(&self) -> &BistSetup {
        &self.setup
    }

    /// The fault universe under screen.
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// Trials per variant.
    pub fn trial_count(&self) -> usize {
        self.trials
    }

    /// Total cells: variants × trials.
    pub fn cell_count(&self) -> usize {
        self.universe.len() * self.trials
    }

    /// Runs one cell: builds the variant's faulty DUT and front-end,
    /// measures through the full session flow, judges with retest
    /// escalation. Cell `i` is variant `i / trials`, trial
    /// `i % trials`, seeded by `derive_seed(setup.seed, i)` — fully
    /// self-contained, which is what makes worker fan-out
    /// bit-identical to the sequential loop.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] for an out-of-range cell
    /// index and propagates configuration errors (an *unmeasurable*
    /// DUT is a [`Verdict::Fail`], not an error — see
    /// [`crate::screening::screen_with_retest`]).
    pub fn run_cell(&self, cell: usize) -> Result<CellOutcome, SocError> {
        if cell >= self.cell_count() {
            return Err(SocError::InvalidParameter {
                name: "cell",
                reason: "cell index beyond variants × trials",
            });
        }
        let variant_index = cell / self.trials;
        let trial = cell % self.trials;
        let variant = &self.universe.variants[variant_index];

        let recipe = ScreeningRecipe::new()
            .dut_builder(&*self.build_dut)
            .analog_faults(variant.analog.iter().copied())?
            .bit_faults(variant.bit.iter().copied())?
            .repeats(self.repeats);

        if let Some(seq) = &self.adaptive {
            let outcome = recipe.screen_sequential_indexed(seq, &self.setup, cell as u64)?;
            return Ok(CellOutcome {
                variant: variant_index,
                trial,
                verdict: outcome.verdict,
                // The checkpoint schedule replaces retest escalation.
                retests: 0,
                nf_db: outcome.nf_db,
                // Hot + cold per repeat; only the samples actually
                // acquired before the stop are billed.
                test_samples: outcome.samples as u64 * 2 * self.repeats as u64,
            });
        }

        let outcome =
            recipe.screen_indexed(&self.screen, &self.setup, &self.retest, cell as u64)?;

        let final_round = outcome
            .rounds
            .last()
            .expect("screen_with_retest always records at least one round");
        Ok(CellOutcome {
            variant: variant_index,
            trial,
            verdict: outcome.verdict,
            retests: outcome.retests(),
            nf_db: final_round.nf_db,
            // Hot + cold per repeat, per round.
            test_samples: outcome.total_samples() * 2 * self.repeats as u64,
        })
    }

    /// Aggregates cell outcomes (in any order) into the per-class
    /// report. Classes appear in universe order.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidParameter`] when `cells` does not
    /// cover exactly every cell of the campaign.
    pub fn assemble(&self, cells: Vec<CellOutcome>) -> Result<CoverageReport, SocError> {
        if cells.len() != self.cell_count() {
            return Err(SocError::InvalidParameter {
                name: "cells",
                reason: "outcome count must equal variants × trials",
            });
        }
        // Every (variant, trial) pair exactly once — a right-sized
        // list from a different campaign (or with duplicated/missing
        // cells) must be rejected, not silently aggregated.
        let mut seen = vec![false; self.cell_count()];
        for cell in &cells {
            if cell.variant >= self.universe.len() || cell.trial >= self.trials {
                return Err(SocError::InvalidParameter {
                    name: "cells",
                    reason: "cell index beyond the campaign's variants × trials",
                });
            }
            let slot = &mut seen[cell.variant * self.trials + cell.trial];
            if *slot {
                return Err(SocError::InvalidParameter {
                    name: "cells",
                    reason: "duplicate outcome for one (variant, trial) cell",
                });
            }
            *slot = true;
        }
        // Classes in universe order.
        let mut classes: Vec<ClassStats> = Vec::new();
        let mut class_of_variant: Vec<usize> = Vec::with_capacity(self.universe.len());
        for variant in &self.universe.variants {
            let idx = classes
                .iter()
                .position(|c| c.class == variant.class)
                .unwrap_or_else(|| {
                    classes.push(ClassStats {
                        class: variant.class.clone(),
                        healthy: variant.is_healthy(),
                        trials: 0,
                        detected: 0,
                        escaped: 0,
                        unresolved: 0,
                        gross: 0,
                        retested: 0,
                        test_samples: 0,
                        mean_nf_db: 0.0,
                    });
                    classes.len() - 1
                });
            class_of_variant.push(idx);
        }

        let mut nf_sums = vec![(0.0f64, 0usize); classes.len()];
        for cell in &cells {
            let stats = &mut classes[class_of_variant[cell.variant]];
            stats.trials += 1;
            match cell.verdict {
                Verdict::Fail => stats.detected += 1,
                Verdict::Pass => stats.escaped += 1,
                Verdict::Retest => stats.unresolved += 1,
            }
            if cell.nf_db == f64::INFINITY {
                stats.gross += 1;
            } else {
                let (sum, n) = &mut nf_sums[class_of_variant[cell.variant]];
                *sum += cell.nf_db;
                *n += 1;
            }
            if cell.retests > 0 {
                stats.retested += 1;
            }
            stats.test_samples += cell.test_samples;
        }
        for (stats, (sum, n)) in classes.iter_mut().zip(nf_sums) {
            stats.mean_nf_db = if n > 0 { sum / n as f64 } else { f64::INFINITY };
        }
        Ok(CoverageReport { classes })
    }

    /// Runs the whole campaign sequentially, in cell order. The
    /// parallel twin is `nfbist_runtime::BatchPlan::run_coverage`,
    /// whose report is bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates the first failing cell, in cell order.
    pub fn run(&self) -> Result<CoverageReport, SocError> {
        let cells = (0..self.cell_count())
            .map(|c| self.run_cell(c))
            .collect::<Result<Vec<_>, _>>()?;
        self.assemble(cells)
    }
}

/// Aggregated screening outcomes for one fault class.
///
/// # Examples
///
/// ```
/// use nfbist_soc::coverage::ClassStats;
///
/// let stats = ClassStats {
///     class: "excess_noise".into(),
///     healthy: false,
///     trials: 8,
///     detected: 6,
///     escaped: 1,
///     unresolved: 1,
///     gross: 2,
///     retested: 4,
///     test_samples: 1 << 20,
///     mean_nf_db: 15.3,
/// };
/// assert_eq!(stats.detection_rate(), 0.75);
/// assert_eq!(stats.escape_rate(), 0.125);
/// assert_eq!(stats.retest_rate(), 0.5);
/// assert_eq!(stats.mean_test_samples(), (1 << 17) as f64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// The fault class key (`"healthy"` for the fault-free variant).
    pub class: String,
    /// `true` for the healthy class.
    pub healthy: bool,
    /// Cells screened in this class (variants × trials).
    pub trials: usize,
    /// Cells judged [`Verdict::Fail`] — detections for a faulty
    /// class, yield loss for the healthy class.
    pub detected: usize,
    /// Cells judged [`Verdict::Pass`] — escapes for a faulty class,
    /// good yield for the healthy class.
    pub escaped: usize,
    /// Cells still [`Verdict::Retest`] when the round budget ran out.
    pub unresolved: usize,
    /// Detections that were *gross* rejects (unmeasurable DUT), a
    /// subset of `detected`.
    pub gross: usize,
    /// Cells that needed at least one retest.
    pub retested: usize,
    /// Total samples acquired by this class (hot+cold, all repeats and
    /// rounds) — its test-time bill.
    pub test_samples: u64,
    /// Mean measured NF in dB over the class's measurable cells
    /// (`f64::INFINITY` when every cell was a gross reject).
    pub mean_nf_db: f64,
}

impl ClassStats {
    /// Fraction of cells judged Fail.
    pub fn detection_rate(&self) -> f64 {
        self.detected as f64 / self.trials as f64
    }

    /// Fraction of cells judged Pass.
    pub fn escape_rate(&self) -> f64 {
        self.escaped as f64 / self.trials as f64
    }

    /// Fraction of cells that needed a retest.
    pub fn retest_rate(&self) -> f64 {
        self.retested as f64 / self.trials as f64
    }

    /// Mean test time per cell, in samples.
    pub fn mean_test_samples(&self) -> f64 {
        self.test_samples as f64 / self.trials as f64
    }
}

/// The campaign's aggregate answer: detection, escapes, yield loss and
/// test time per fault class (and overall).
///
/// # Examples
///
/// ```
/// use nfbist_soc::coverage::{CoverageCampaign, FaultUniverse};
/// use nfbist_soc::screening::Screen;
/// use nfbist_soc::setup::BistSetup;
///
/// # fn main() -> Result<(), nfbist_soc::SocError> {
/// let mut setup = BistSetup::quick(9);
/// setup.samples = 1 << 13;
/// setup.nfft = 1_024;
/// let campaign = CoverageCampaign::new(
///     setup,
///     Screen::new(12.0, 3.0)?,
///     FaultUniverse::new().input_attenuation(&[4.0])?,
/// )?
/// .trials(2);
/// let report = campaign.run()?;
/// assert_eq!(report.classes().len(), 2);
/// // The report prints as a paper-style table.
/// assert!(report.to_string().contains("healthy"));
/// assert!(report.overall_detection_rate().unwrap() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    classes: Vec<ClassStats>,
}

impl CoverageReport {
    /// Per-class statistics, in universe order (healthy first).
    pub fn classes(&self) -> &[ClassStats] {
        &self.classes
    }

    /// Statistics for one class, by key.
    pub fn class(&self, class: &str) -> Option<&ClassStats> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// Detection rate over all *faulty* cells, or `None` if the
    /// universe had no faulty class.
    pub fn overall_detection_rate(&self) -> Option<f64> {
        let (detected, trials) = self
            .classes
            .iter()
            .filter(|c| !c.healthy)
            .fold((0usize, 0usize), |(d, t), c| (d + c.detected, t + c.trials));
        (trials > 0).then(|| detected as f64 / trials as f64)
    }

    /// Escape rate over all faulty cells (defective parts shipped), or
    /// `None` if the universe had no faulty class.
    pub fn overall_escape_rate(&self) -> Option<f64> {
        let (escaped, trials) = self
            .classes
            .iter()
            .filter(|c| !c.healthy)
            .fold((0usize, 0usize), |(e, t), c| (e + c.escaped, t + c.trials));
        (trials > 0).then(|| escaped as f64 / trials as f64)
    }

    /// Fraction of *healthy* cells wrongly rejected, or `None` if the
    /// universe had no healthy class.
    pub fn yield_loss(&self) -> Option<f64> {
        let (detected, trials) = self
            .classes
            .iter()
            .filter(|c| c.healthy)
            .fold((0usize, 0usize), |(d, t), c| (d + c.detected, t + c.trials));
        (trials > 0).then(|| detected as f64 / trials as f64)
    }

    /// Fraction of all cells that needed at least one retest.
    pub fn retest_rate(&self) -> f64 {
        let (retested, trials) = self
            .classes
            .iter()
            .fold((0usize, 0usize), |(r, t), c| (r + c.retested, t + c.trials));
        if trials == 0 {
            0.0
        } else {
            retested as f64 / trials as f64
        }
    }

    /// Mean test time per screened DUT, in samples.
    pub fn mean_test_samples(&self) -> f64 {
        let (samples, trials) = self.classes.iter().fold((0u64, 0usize), |(s, t), c| {
            (s + c.test_samples, t + c.trials)
        });
        if trials == 0 {
            0.0
        } else {
            samples as f64 / trials as f64
        }
    }

    /// The report as a formatted table (one row per class).
    pub fn to_table(&self) -> crate::report::Table {
        let mut table = crate::report::Table::new(vec![
            "Fault class",
            "Trials",
            "Detected",
            "Escaped",
            "Unresolved",
            "Detection",
            "Retest rate",
            "Mean NF (dB)",
        ]);
        for c in &self.classes {
            table.row(vec![
                c.class.clone(),
                c.trials.to_string(),
                if c.gross > 0 {
                    format!("{} ({} gross)", c.detected, c.gross)
                } else {
                    c.detected.to_string()
                },
                c.escaped.to_string(),
                c.unresolved.to_string(),
                format!("{:.1} %", 100.0 * c.detection_rate()),
                format!("{:.1} %", 100.0 * c.retest_rate()),
                if c.mean_nf_db.is_finite() {
                    format!("{:.2}", c.mean_nf_db)
                } else {
                    "∞".to_string()
                },
            ]);
        }
        table
    }
}

impl std::fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup(seed: u64) -> BistSetup {
        let mut setup = BistSetup::quick(seed);
        setup.samples = 1 << 13;
        setup.nfft = 1_024;
        setup
    }

    #[test]
    fn universe_grids_and_accessors() {
        let u = FaultUniverse::paper_grid().unwrap();
        // healthy + 2 + 2 + 2 + 1 + 1 + 1.
        assert_eq!(u.len(), 10);
        assert!(!u.is_empty());
        assert!(u.get(0).unwrap().is_healthy());
        assert_eq!(u.get(1).unwrap().class(), "input_attenuation");
        assert!(u.get(10).is_none());
        let classes: std::collections::HashSet<&str> =
            u.variants().iter().map(|v| v.class()).collect();
        assert_eq!(classes.len(), 7);
        // Distinct labels within a class (grid points).
        assert_ne!(u.get(1).unwrap().label(), u.get(2).unwrap().label());
        // Grid-generated flipped-cell variants use distinct masks.
        let seeds: Vec<u64> = FaultUniverse::new()
            .flipped_bits(&[0.1, 0.1])
            .unwrap()
            .variants()
            .iter()
            .filter_map(|v| match v.bit_faults().first() {
                Some(BitFault::FlippedBits { seed, .. }) => Some(*seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds.len(), 2);
        assert_ne!(seeds[0], seeds[1]);
    }

    #[test]
    fn campaign_validation() {
        let screen = Screen::new(10.0, 3.0).unwrap();
        let mut bad = tiny_setup(1);
        bad.samples = 0;
        assert!(CoverageCampaign::new(bad, screen, FaultUniverse::new()).is_err());
        let empty = FaultUniverse {
            variants: Vec::new(),
        };
        assert!(CoverageCampaign::new(tiny_setup(1), screen, empty).is_err());
        let campaign = CoverageCampaign::new(tiny_setup(1), screen, FaultUniverse::new()).unwrap();
        assert!(campaign.run_cell(campaign.cell_count()).is_err());
        assert!(campaign.assemble(Vec::new()).is_err());
        // Right-sized but wrong-shaped outcome lists are rejected too.
        let cell = |variant: usize, trial: usize| CellOutcome {
            variant,
            trial,
            verdict: Verdict::Pass,
            retests: 0,
            nf_db: 9.0,
            test_samples: 1,
        };
        let two_trials = campaign.trials(2);
        assert_eq!(two_trials.cell_count(), 2);
        assert!(
            two_trials.assemble(vec![cell(0, 0), cell(7, 0)]).is_err(),
            "variant index beyond the universe must be rejected"
        );
        assert!(
            two_trials.assemble(vec![cell(0, 0), cell(0, 0)]).is_err(),
            "a duplicated cell (and a missing one) must be rejected"
        );
        assert!(
            two_trials.assemble(vec![cell(0, 1), cell(0, 0)]).is_ok(),
            "complete coverage in any order is accepted"
        );
        let campaign = two_trials.trials(1);
        // Clamps.
        let campaign = campaign.trials(0).repeats(0);
        assert_eq!(campaign.trial_count(), 1);
        assert_eq!(campaign.cell_count(), 1);
        assert!(format!("{campaign:?}").contains("CoverageCampaign"));
    }

    #[test]
    fn cells_are_deterministic_and_self_contained() {
        let screen = Screen::new(11.0, 3.0).unwrap();
        let universe = FaultUniverse::new().excess_noise(&[4.0]).unwrap();
        let campaign = CoverageCampaign::new(tiny_setup(7), screen, universe.clone())
            .unwrap()
            .trials(2);
        let a = campaign.run_cell(3).unwrap();
        let b = campaign.run_cell(3).unwrap();
        assert_eq!(a, b, "a cell must be a pure function of its index");
        assert_eq!(a.variant, 1);
        assert_eq!(a.trial, 1);
        // Different trials of the same variant draw different noise.
        let c = campaign.run_cell(2).unwrap();
        assert_ne!(a.nf_db, c.nf_db);
        // Sequential run == assembled shuffled cells (order-free
        // reduction).
        let report = campaign.run().unwrap();
        let mut cells: Vec<CellOutcome> = (0..campaign.cell_count())
            .map(|i| campaign.run_cell(i).unwrap())
            .collect();
        cells.reverse();
        assert_eq!(report, campaign.assemble(cells).unwrap());
    }

    #[test]
    fn gross_noise_fault_is_detected_and_healthy_passes() {
        // Limit 1.2 dB above the TL081's expected NF: healthy parts
        // pass, an 8× noise fault (+~8 dB) fails decisively.
        let dut =
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .unwrap();
        let expected = dut
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
        let screen = Screen::new(expected + 1.2, 3.0).unwrap();
        let universe = FaultUniverse::new().excess_noise(&[8.0]).unwrap();
        let campaign = CoverageCampaign::new(tiny_setup(3), screen, universe)
            .unwrap()
            .trials(3)
            .retest(RetestPolicy::new(3, 4).unwrap());
        let report = campaign.run().unwrap();
        let healthy = report.class("healthy").unwrap();
        let faulty = report.class("excess_noise").unwrap();
        assert_eq!(healthy.detected, 0, "healthy yield loss: {report}");
        assert_eq!(faulty.detected, 3, "missed gross fault: {report}");
        assert_eq!(report.overall_detection_rate(), Some(1.0));
        assert_eq!(report.overall_escape_rate(), Some(0.0));
        assert_eq!(report.yield_loss(), Some(0.0));
        assert!(report.mean_test_samples() >= (2 << 13) as f64);
        assert!(faulty.mean_nf_db > healthy.mean_nf_db + 4.0);
        // Table formatting smoke.
        let shown = report.to_string();
        assert!(shown.contains("excess_noise") && shown.contains("100.0 %"));
    }

    #[test]
    fn gain_deviation_escapes_the_nf_screen() {
        // The partial blindness the module docs describe: a gain-down
        // fault cancels out of the Y ratio and only *raises* the
        // effective reference fraction (deeper into Fig. 10's valid
        // region), so the NF screen has nothing to catch.
        let dut =
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .unwrap();
        let expected = dut
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
        let screen = Screen::new(expected + 1.2, 3.0).unwrap();
        let universe = FaultUniverse::new().gain_deviation(&[0.5]).unwrap();
        let campaign = CoverageCampaign::new(tiny_setup(13), screen, universe)
            .unwrap()
            .trials(3)
            .retest(RetestPolicy::new(3, 4).unwrap());
        let report = campaign.run().unwrap();
        let gain = report.class("gain_deviation").unwrap();
        assert_eq!(
            gain.escaped, 3,
            "gain faults must escape an NF screen: {report}"
        );
    }

    #[test]
    fn adaptive_campaign_matches_fixed_rates_at_a_fraction_of_the_test_time() {
        // The statistical-equivalence contract over the full paper
        // grid: switching a campaign to adaptive (sequential) screening
        // must reproduce the fixed schedule's detection/escape rates
        // while healthy dies stop early. The operating point gives the
        // sequential rule room to resolve (margin +2.5 dB, 2-sigma
        // guard): at the legacy +1.2 dB / 3-sigma point the guard band
        // spans nearly the whole margin and no interval can clear it
        // before the cap.
        //
        // Everything here is seeded, so the asserted numbers are
        // regression bounds on measured behavior, not statistical
        // hopes: measured detection 0.333 for both flows, escape
        // 0.630 fixed vs 0.519 adaptive (the cross-checkpoint Pass
        // confirmation holds marginal defects to the cap, where they
        // land Unresolved instead of escaping), yield loss 0 for
        // both, healthy-class reduction 4.0x, overall 5.7x.
        let dut =
            NonInvertingAmplifier::new(OpampModel::tl081(), Ohms::new(10_000.0), Ohms::new(100.0))
                .unwrap();
        let expected = dut
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
        let screen = Screen::new(expected + 2.5, 2.0).unwrap();
        let setup = BistSetup {
            samples: 1 << 16,
            nfft: 1_024,
            seed: 20_050_307,
            ..BistSetup::paper_prototype(0)
        };
        let universe = FaultUniverse::paper_grid().unwrap();
        let fixed = CoverageCampaign::new(setup.clone(), screen, universe.clone())
            .unwrap()
            .trials(3)
            .retest(RetestPolicy::new(3, 4).unwrap());
        let seq = SequentialScreen::new(screen, 0.05, 0.05)
            .unwrap()
            .min_samples(setup.samples >> 4);
        let adaptive = CoverageCampaign::new(setup, screen, universe)
            .unwrap()
            .trials(3)
            .adaptive(seq);
        assert!(adaptive.adaptive_screen().is_some());

        let fr = fixed.run().unwrap();
        let ar = adaptive.run().unwrap();

        // Equal rates within campaign tolerance.
        let fd = fr.overall_detection_rate().unwrap();
        let ad = ar.overall_detection_rate().unwrap();
        assert!(
            (fd - ad).abs() <= 0.10,
            "detection rates diverged: fixed {fd:.3} adaptive {ad:.3}\n{fr}\n{ar}"
        );
        // One-sided: adaptive must not let *more* defects escape than
        // the fixed schedule does. It is allowed to escape fewer —
        // measured, it does (0.519 vs 0.630).
        let fe = fr.overall_escape_rate().unwrap();
        let ae = ar.overall_escape_rate().unwrap();
        assert!(
            ae <= fe + 0.05,
            "adaptive escapes more than fixed: fixed {fe:.3} adaptive {ae:.3}\n{fr}\n{ar}"
        );
        assert_eq!(fr.yield_loss(), Some(0.0), "fixed yield loss\n{fr}");
        assert_eq!(ar.yield_loss(), Some(0.0), "adaptive yield loss\n{ar}");

        // Healthy dies stop early: mean samples per die drops well
        // past the 2x acceptance floor (measured 4.0x).
        let fh = fr.class("healthy").unwrap().mean_test_samples();
        let ah = ar.class("healthy").unwrap().mean_test_samples();
        assert!(
            fh >= 2.0 * ah,
            "healthy mean test samples: fixed {fh:.0} adaptive {ah:.0}"
        );
        // And the lot as a whole is cheaper (measured 5.7x; bound at
        // the acceptance criterion's 2x).
        assert!(
            fr.mean_test_samples() >= 2.0 * ar.mean_test_samples(),
            "overall mean test samples: fixed {:.0} adaptive {:.0}",
            fr.mean_test_samples(),
            ar.mean_test_samples()
        );
        // Adaptive cells never retest — the checkpoint schedule
        // replaces escalation.
        assert_eq!(ar.retest_rate(), 0.0);
    }

    #[test]
    fn custom_dut_builder_is_used() {
        // An OP27 (quiet) healthy DUT against a limit tuned for it.
        let dut =
            NonInvertingAmplifier::new(OpampModel::op27(), Ohms::new(10_000.0), Ohms::new(100.0))
                .unwrap();
        let expected = dut
            .expected_noise_figure_db(Ohms::new(2_000.0), 100.0, 1_000.0)
            .unwrap();
        // A quiet DUT has a high Y, which pushes the hot-state
        // reference fraction to the bottom of Fig. 10's valid region:
        // reliable measurement needs the full quick record length, not
        // the shrunken campaign grids the other tests use. This test
        // checks *which DUT* was measured, not the screen calibration.
        let mut setup = BistSetup::quick(17);
        setup.nfft = 1_024;
        let screen = Screen::new(expected + 3.0, 3.0).unwrap();
        let campaign = CoverageCampaign::new(setup, screen, FaultUniverse::new())
            .unwrap()
            .trials(2)
            .retest(RetestPolicy::new(3, 4).unwrap())
            .dut_builder(|| {
                Ok(Box::new(NonInvertingAmplifier::new(
                    OpampModel::op27(),
                    Ohms::new(10_000.0),
                    Ohms::new(100.0),
                )?))
            });
        let report = campaign.run().unwrap();
        let healthy = report.class("healthy").unwrap();
        assert_eq!(healthy.escaped, 2, "{report}");
        assert!(healthy.mean_nf_db < 6.0, "OP27 NF {}", healthy.mean_nf_db);
    }
}
