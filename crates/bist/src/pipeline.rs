//! The end-to-end BIST measurement pipeline (paper Fig. 11).
//!
//! Per acquisition: the calibrated source emits hot or cold noise into
//! the DUT (a non-inverting amplifier that adds its own datasheet
//! noise); a post-amplifier conditions the level; the comparator
//! digitizes the result against the reference sine; the 1-bit Y-factor
//! estimator of `nfbist-core` turns the two bitstreams into a noise
//! figure.

use crate::resources::{one_bit_usage, ResourceUsage};
use crate::setup::BistSetup;
use crate::SocError;
use nfbist_analog::bitstream::Bitstream;
use nfbist_analog::circuits::NonInvertingAmplifier;
use nfbist_analog::component::{Amplifier, Block};
use nfbist_analog::converter::OneBitDigitizer;
use nfbist_analog::noise::{CalibratedNoiseSource, NoiseSourceState};
use nfbist_analog::source::{SineSource, Waveform};
use nfbist_analog::units::Kelvin;
use nfbist_core::estimator::{NfMeasurement, OneBitNfEstimator};
use nfbist_core::power_ratio::{OneBitPowerRatio, OneBitRatioEstimate};

/// Result of a complete BIST noise-figure measurement.
#[derive(Debug, Clone)]
pub struct BistMeasurement {
    /// The measured noise figure (Y factor, F, NF).
    pub nf: NfMeasurement,
    /// The analytic expectation from the DUT's datasheet noise model
    /// over the measurement band (Table 3's "Expected" column).
    pub expected_nf_db: f64,
    /// Ratio-level intermediates: spectra, reference lines,
    /// normalization.
    pub ratio: OneBitRatioEstimate,
    /// The reference amplitude used at the comparator, in volts.
    pub reference_amplitude: f64,
    /// Resource accounting for this measurement.
    pub usage: ResourceUsage,
}

/// The assembled measurement pipeline.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct BistPipeline {
    setup: BistSetup,
    dut: NonInvertingAmplifier,
    digitizer: OneBitDigitizer,
}

impl BistPipeline {
    /// Builds a pipeline after validating the setup.
    ///
    /// # Errors
    ///
    /// Propagates [`BistSetup::validate`] failures.
    pub fn new(setup: BistSetup, dut: NonInvertingAmplifier) -> Result<Self, SocError> {
        setup.validate()?;
        Ok(BistPipeline {
            setup,
            dut,
            digitizer: OneBitDigitizer::ideal(),
        })
    }

    /// Replaces the ideal digitizer (e.g. with comparator offset or
    /// hysteresis for robustness studies).
    pub fn with_digitizer(mut self, digitizer: OneBitDigitizer) -> Self {
        self.digitizer = digitizer;
        self
    }

    /// The setup.
    pub fn setup(&self) -> &BistSetup {
        &self.setup
    }

    /// The DUT.
    pub fn dut(&self) -> &NonInvertingAmplifier {
        &self.dut
    }

    fn source(&self) -> Result<CalibratedNoiseSource, SocError> {
        let mut src = CalibratedNoiseSource::new(
            Kelvin::new(self.setup.hot_kelvin),
            Kelvin::new(self.setup.cold_kelvin),
            self.setup.source_resistance,
            self.setup.seed ^ 0xA5A5_A5A5,
        )?;
        if self.setup.hot_calibration_error != 0.0 {
            src.set_hot_error(self.setup.hot_calibration_error)?;
        }
        Ok(src)
    }

    /// The comparator-input noise RMS for a source state, computed
    /// analytically from the models (the calibration a real BIST would
    /// do with a short trial acquisition).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn comparator_noise_rms(&self, state: NoiseSourceState) -> Result<f64, SocError> {
        let src = self.source()?;
        let nyquist = self.setup.sample_rate / 2.0;
        let source_density = src.voltage_density(state);
        let added = self
            .dut
            .mean_added_noise_density_sq(self.setup.source_resistance, 1.0, nyquist)?;
        let input_power = (source_density + added) * nyquist;
        Ok(self.dut.gain() * self.setup.post_gain * input_power.sqrt())
    }

    /// The reference amplitude the pipeline will use: the configured
    /// fraction of the **cold** comparator noise RMS (so the hot state,
    /// with more noise, sees a smaller relative reference — both states
    /// stay inside Fig. 10's valid region for realistic Y).
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn reference_amplitude(&self) -> Result<f64, SocError> {
        Ok(self.setup.reference_fraction * self.comparator_noise_rms(NoiseSourceState::Cold)?)
    }

    /// Runs one acquisition: source noise → DUT → post-amp →
    /// comparator vs the reference sine.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn acquire(&self, state: NoiseSourceState) -> Result<Bitstream, SocError> {
        let n = self.setup.samples;
        let fs = self.setup.sample_rate;
        let mut src = self.source()?;
        // Distinct noise records per state: the source seed evolves per
        // call, and the DUT noise seed is derived from the state.
        let state_salt = match state {
            NoiseSourceState::Hot => 1u64,
            NoiseSourceState::Cold => 2u64,
        };
        if state == NoiseSourceState::Cold {
            // Advance the source stream so hot/cold records are
            // independent even though `src` is rebuilt per call.
            let _ = src.generate(state, 1, fs)?;
        }
        let source_noise = src.generate(state, n, fs)?;

        let dut_out = self.dut.amplify(
            &source_noise,
            self.setup.source_resistance,
            fs,
            self.setup.seed.wrapping_add(state_salt).wrapping_mul(0x9E37),
        )?;

        let mut post = Amplifier::ideal(self.setup.post_gain)?;
        let conditioned = post.process(&dut_out);

        let reference = SineSource::new(self.setup.reference_frequency, self.reference_amplitude()?)?
            .generate(n, fs)?;

        Ok(self.digitizer.digitize(&conditioned, &reference)?)
    }

    /// Builds the estimator matching this setup.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn estimator(&self) -> Result<OneBitNfEstimator, SocError> {
        let ratio = OneBitPowerRatio::new(
            self.setup.sample_rate,
            self.setup.nfft,
            self.setup.reference_frequency,
            self.setup.noise_band,
        )?;
        Ok(OneBitNfEstimator::new(
            ratio,
            self.setup.hot_kelvin,
            self.setup.cold_kelvin,
        )?)
    }

    /// Runs the complete measurement: hot and cold acquisitions, 1-bit
    /// Y-factor estimation, analytic expectation and resource
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates acquisition and estimation errors.
    pub fn measure(&self) -> Result<BistMeasurement, SocError> {
        let hot = self.acquire(NoiseSourceState::Hot)?;
        let cold = self.acquire(NoiseSourceState::Cold)?;
        let estimator = self.estimator()?;
        let (nf, ratio) = estimator.estimate(&hot, &cold)?;
        let expected_nf_db = self.dut.expected_noise_figure_db(
            self.setup.source_resistance,
            self.setup.noise_band.0.max(1.0),
            self.setup.noise_band.1,
        )?;
        Ok(BistMeasurement {
            nf,
            expected_nf_db,
            ratio,
            reference_amplitude: self.reference_amplitude()?,
            usage: one_bit_usage(self.setup.samples, self.setup.nfft),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfbist_analog::opamp::OpampModel;
    use nfbist_analog::units::Ohms;

    fn dut(opamp: OpampModel) -> NonInvertingAmplifier {
        NonInvertingAmplifier::new(opamp, Ohms::new(10_000.0), Ohms::new(100.0)).unwrap()
    }

    #[test]
    fn invalid_setup_rejected() {
        let mut setup = BistSetup::quick(1);
        setup.samples = 0;
        assert!(BistPipeline::new(setup, dut(OpampModel::op27())).is_err());
    }

    #[test]
    fn acquisition_has_expected_shape() {
        let pipeline = BistPipeline::new(BistSetup::quick(3), dut(OpampModel::op27())).unwrap();
        let bits = pipeline.acquire(NoiseSourceState::Hot).unwrap();
        assert_eq!(bits.len(), pipeline.setup().samples);
        // Zero-mean noise against a zero-mean reference: duty near 50 %.
        assert!((bits.duty() - 0.5).abs() < 0.02, "duty {}", bits.duty());
    }

    #[test]
    fn hot_acquisition_has_weaker_reference_line() {
        // The physics behind normalization: more noise → smaller
        // effective reference gain through the comparator.
        let pipeline = BistPipeline::new(BistSetup::quick(4), dut(OpampModel::op27())).unwrap();
        let fs = pipeline.setup().sample_rate;
        let hot = pipeline.acquire(NoiseSourceState::Hot).unwrap().to_bipolar();
        let cold = pipeline.acquire(NoiseSourceState::Cold).unwrap().to_bipolar();
        let welch = nfbist_dsp::psd::WelchConfig::new(2048).unwrap();
        let ph = welch.estimate(&hot, fs).unwrap();
        let pc = welch.estimate(&cold, fs).unwrap();
        let line = |p: &nfbist_dsp::spectrum::Spectrum| {
            let peak = p.peak_in_band(2_900.0, 3_100.0).unwrap();
            p.tone_power(peak.bin, 3).unwrap()
        };
        assert!(line(&ph) < line(&pc));
    }

    #[test]
    fn reference_amplitude_tracks_cold_rms() {
        let pipeline = BistPipeline::new(BistSetup::quick(5), dut(OpampModel::op27())).unwrap();
        let rms = pipeline.comparator_noise_rms(NoiseSourceState::Cold).unwrap();
        let amp = pipeline.reference_amplitude().unwrap();
        assert!((amp / rms - 0.3).abs() < 1e-12);
        let hot_rms = pipeline.comparator_noise_rms(NoiseSourceState::Hot).unwrap();
        assert!(hot_rms > rms);
    }

    #[test]
    fn quick_measurement_recovers_expected_nf() {
        // The Table 3 shape on a reduced record: measured within 2 dB
        // of expected (the paper's own worst case) for a noisy and a
        // quiet op-amp.
        for (opamp, seed) in [(OpampModel::tl081(), 10u64), (OpampModel::ca3140(), 11u64)] {
            let pipeline = BistPipeline::new(BistSetup::quick(seed), dut(opamp)).unwrap();
            let m = pipeline.measure().unwrap();
            assert!(
                (m.nf.figure.db() - m.expected_nf_db).abs() < 2.0,
                "{}: measured {:.2} vs expected {:.2}",
                pipeline.dut().opamp().name(),
                m.nf.figure.db(),
                m.expected_nf_db
            );
        }
    }

    #[test]
    fn measurement_reports_resources() {
        let pipeline = BistPipeline::new(BistSetup::quick(6), dut(OpampModel::tl081())).unwrap();
        let m = pipeline.measure().unwrap();
        assert_eq!(m.usage.record_bytes, (1usize << 17) / 8);
        assert!(m.reference_amplitude > 0.0);
        assert!(m.ratio.normalization.scale > 0.0);
    }

    #[test]
    fn calibration_error_biases_measurement() {
        let mut setup = BistSetup::quick(7);
        setup.hot_calibration_error = 0.20; // gross 20 % error
        let biased = BistPipeline::new(setup, dut(OpampModel::tl081())).unwrap();
        let clean =
            BistPipeline::new(BistSetup::quick(7), dut(OpampModel::tl081())).unwrap();
        let m_biased = biased.measure().unwrap();
        let m_clean = clean.measure().unwrap();
        // Hotter-than-declared source → Y up → reported NF down.
        assert!(
            m_biased.nf.figure.db() < m_clean.nf.figure.db(),
            "biased {:.2} vs clean {:.2}",
            m_biased.nf.figure.db(),
            m_clean.nf.figure.db()
        );
    }
}
